//! `slider-cli` — command-line front end for the Slider reasoner.
//!
//! ```text
//! slider-cli materialize <input.nt|-> [--fragment rho-df|rdfs|rdfs-plus]
//!                                     [--format nt|ttl] [--output FILE]
//!                                     [--buffer N] [--timeout-ms N]
//!                                     [--workers N] [--stats]
//! slider-cli graph       [--fragment rho-df|rdfs|rdfs-plus]
//! slider-cli generate    <ontology> [--scale F] [--output FILE]
//! slider-cli serve       [--sessions N] [--workers N] [--budget-us N]
//!                        [--fragment rho-df|rdfs|rdfs-plus] [--scale F]
//! slider-cli list
//! ```
//!
//! `materialize` streams the input into the reasoner while parsing (the
//! paper's input-manager path), waits for quiescence and writes the closure
//! as N-Triples (generalised triples with literal subjects are skipped on
//! output, with a note on stderr).
//!
//! `serve` demonstrates the shared execution runtime: N independent
//! reasoner sessions multiplexed onto one worker pool + flusher, each
//! materialising its own stream concurrently while deferred retractions
//! are flushed under the runtime's per-tick maintenance budget.

use slider::parser::{Format, NTriplesWriter, ParseError};
use slider::prelude::*;
use slider::workloads::{to_ntriples, PaperOntology, ONTOLOGIES};
use std::io::{BufRead, BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  slider-cli materialize <input.nt|-> [--fragment rho-df|rdfs|rdfs-plus] \
         [--format nt|ttl] [--output FILE] [--buffer N] [--timeout-ms N] [--workers N] [--stats]\n\
         \x20 slider-cli graph [--fragment rho-df|rdfs|rdfs-plus]\n\
         \x20 slider-cli generate <ontology> [--scale F] [--output FILE]\n\
         \x20 slider-cli serve [--sessions N] [--workers N] [--budget-us N] \
         [--fragment rho-df|rdfs|rdfs-plus] [--scale F]\n\
         \x20 slider-cli list"
    );
    ExitCode::from(2)
}

fn parse_fragment(s: &str) -> Option<Fragment> {
    match s.to_ascii_lowercase().as_str() {
        "rho-df" | "rhodf" | "rho_df" | "pdf" => Some(Fragment::RhoDf),
        "rdfs" => Some(Fragment::Rdfs),
        "rdfs-plus" | "rdfsplus" | "rdfs_plus" => Some(Fragment::RdfsPlus),
        _ => None,
    }
}

struct Options {
    fragment: Fragment,
    format: Format,
    output: Option<String>,
    stats: bool,
    config: SliderConfig,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        fragment: Fragment::Rdfs,
        format: Format::NTriples,
        output: None,
        stats: false,
        config: SliderConfig::default(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fragment" => {
                let v = iter.next().ok_or("--fragment needs a value")?;
                opts.fragment =
                    parse_fragment(v).ok_or_else(|| format!("unknown fragment '{v}'"))?;
            }
            "--format" => {
                let v = iter.next().ok_or("--format needs a value")?;
                opts.format = match v.as_str() {
                    "nt" | "ntriples" => Format::NTriples,
                    "ttl" | "turtle" => Format::Turtle,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--output" | "-o" => {
                opts.output = Some(iter.next().ok_or("--output needs a path")?.clone());
            }
            "--buffer" => {
                let v = iter.next().ok_or("--buffer needs a number")?;
                opts.config.buffer_capacity =
                    v.parse().map_err(|_| format!("bad buffer size '{v}'"))?;
            }
            "--timeout-ms" => {
                let v = iter.next().ok_or("--timeout-ms needs a number")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad timeout '{v}'"))?;
                opts.config.timeout = if ms == 0 {
                    None
                } else {
                    Some(Duration::from_millis(ms))
                };
            }
            "--workers" => {
                let v = iter.next().ok_or("--workers needs a number")?;
                opts.config.workers = v.parse().map_err(|_| format!("bad worker count '{v}'"))?;
            }
            "--stats" => opts.stats = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

fn cmd_materialize(input: &str, opts: &Options) -> Result<(), String> {
    let start = Instant::now();
    let dict = Arc::new(Dictionary::new());
    let ruleset = Ruleset::fragment(opts.fragment, &dict);
    let slider = Slider::new(Arc::clone(&dict), ruleset, opts.config.clone());

    // Stream-parse into the reasoner (chunked input-manager path).
    let reader: Box<dyn BufRead> = if input == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        let file = std::fs::File::open(input).map_err(|e| format!("open {input}: {e}"))?;
        Box::new(std::io::BufReader::new(file))
    };
    let mut chunk: Vec<Triple> = Vec::with_capacity(4096);
    let mut parsed = 0usize;
    let feed = |t: Result<TermTriple, ParseError>,
                chunk: &mut Vec<Triple>,
                parsed: &mut usize|
     -> Result<(), String> {
        let t = t.map_err(|e| e.to_string())?;
        chunk.push(dict.encode_triple_owned(t));
        *parsed += 1;
        if chunk.len() == 4096 {
            slider.add_triples(chunk);
            chunk.clear();
        }
        Ok(())
    };
    match opts.format {
        Format::NTriples => {
            for t in slider::parser::NTriplesParser::new(reader) {
                feed(t, &mut chunk, &mut parsed)?;
            }
        }
        Format::Turtle => {
            for t in slider::parser::TurtleParser::new(reader) {
                feed(t, &mut chunk, &mut parsed)?;
            }
        }
    }
    slider.add_triples(&chunk);
    slider.wait_idle();
    let elapsed = start.elapsed();

    // Emit the closure.
    let sink: Box<dyn Write> = match &opts.output {
        Some(path) => Box::new(BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?,
        )),
        None => Box::new(BufWriter::new(std::io::stdout().lock())),
    };
    let mut writer = NTriplesWriter::new(sink);
    let mut generalised = 0usize;
    for t in slider.store().to_sorted_vec() {
        if dict.is_literal(t.s) {
            generalised += 1;
            continue;
        }
        writer.write_encoded(t, &dict).map_err(|e| e.to_string())?;
    }
    let written = writer.written();
    writer.into_inner().map_err(|e| e.to_string())?;

    let stats = slider.stats();
    eprintln!(
        "{} triples parsed, {} distinct, {} inferred, {} written ({} generalised skipped) in {:.3}s ({:.0} triples/s)",
        parsed,
        stats.input_fresh,
        stats.total_inferred(),
        written,
        generalised,
        elapsed.as_secs_f64(),
        parsed as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    if opts.stats {
        eprintln!("\n{stats}");
    }
    Ok(())
}

fn cmd_graph(opts: &Options) -> Result<(), String> {
    let dict = Arc::new(Dictionary::new());
    let ruleset = Ruleset::fragment(opts.fragment, &dict);
    let graph = DependencyGraph::build(&ruleset);
    print!("{}", graph.to_dot());
    Ok(())
}

fn cmd_generate(name: &str, args: &[String]) -> Result<(), String> {
    let ontology = ONTOLOGIES
        .iter()
        .copied()
        .find(|o| o.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown ontology '{name}' (try `slider-cli list`)"))?;
    let mut scale = 1.0f64;
    let mut output: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let v = iter.next().ok_or("--scale needs a number")?;
                scale = v.parse().map_err(|_| format!("bad scale '{v}'"))?;
            }
            "--output" | "-o" => output = Some(iter.next().ok_or("--output needs a path")?.clone()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let text = to_ntriples(&ontology.generate(scale));
    match output {
        Some(path) => std::fs::write(&path, text).map_err(|e| format!("write {path}: {e}"))?,
        None => print!("{text}"),
    }
    Ok(())
}

/// The multi-stream demo: N sessions on one shared `Runtime`, each
/// materialising its own generated stream concurrently. Every session
/// defers the retraction of its first chunk, so the shared flusher's
/// deadline flush — sliced under `--budget-us` — runs while the other
/// tenants keep ingesting.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut sessions = 4usize;
    let mut fragment = Fragment::RhoDf;
    let mut scale = 0.01f64;
    let mut runtime_config =
        RuntimeConfig::default().with_maintenance_budget(Some(Duration::from_micros(100)));
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--sessions" => {
                let v = iter.next().ok_or("--sessions needs a number")?;
                sessions = v.parse().map_err(|_| format!("bad session count '{v}'"))?;
            }
            "--workers" => {
                let v = iter.next().ok_or("--workers needs a number")?;
                let n: usize = v.parse().map_err(|_| format!("bad worker count '{v}'"))?;
                runtime_config = runtime_config.with_workers(n);
            }
            "--budget-us" => {
                let v = iter.next().ok_or("--budget-us needs a number")?;
                let us: u64 = v.parse().map_err(|_| format!("bad budget '{v}'"))?;
                runtime_config = runtime_config.with_maintenance_budget(if us == 0 {
                    None
                } else {
                    Some(Duration::from_micros(us))
                });
            }
            "--fragment" => {
                let v = iter.next().ok_or("--fragment needs a value")?;
                fragment = parse_fragment(v).ok_or_else(|| format!("unknown fragment '{v}'"))?;
            }
            "--scale" => {
                let v = iter.next().ok_or("--scale needs a number")?;
                scale = v.parse().map_err(|_| format!("bad scale '{v}'"))?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if sessions == 0 {
        return Err("--sessions must be at least 1".into());
    }

    let runtime = Runtime::new(runtime_config);
    let start = Instant::now();
    let results: Vec<Result<String, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let runtime = &runtime;
                scope.spawn(move || -> Result<String, String> {
                    // Each tenant: its own dictionary, store and stream —
                    // only the pool and flusher are shared.
                    let dict = Arc::new(Dictionary::new());
                    let ruleset = Ruleset::fragment(fragment, &dict);
                    let config = SliderConfig::default()
                        .with_maintenance_batch(usize::MAX)
                        .with_maintenance_max_age(Some(Duration::from_millis(20)));
                    let session = runtime.session(Arc::clone(&dict), ruleset, config);
                    let ontology = ONTOLOGIES[i % ONTOLOGIES.len()];
                    let data = ontology.generate(scale);
                    let encoded: Vec<Triple> = data
                        .iter()
                        .map(|t| dict.encode_triple_owned(t.clone()))
                        .collect();
                    let mut chunks = encoded.chunks(512);
                    let first: Vec<Triple> = chunks.next().unwrap_or_default().to_vec();
                    session.add_triples(&first);
                    // Expire the first chunk while the rest of the stream
                    // is still arriving: the shared flusher's deadline
                    // flush retracts it mid-ingest, sliced under the
                    // budget so co-tenants keep their pool turns.
                    session.remove_deferred(&first);
                    for chunk in chunks {
                        session.add_triples(chunk);
                    }
                    session.wait_idle();
                    session.flush_maintenance();
                    session.wait_idle();
                    let stats = session.stats();
                    Ok(format!(
                        "session {i:>2} [{:<14}]: {:>7} in, {:>8} closure ({} inferred), \
                         {} retracted, {} budget deferrals",
                        ontology.name(),
                        encoded.len(),
                        stats.store_size,
                        stats.total_inferred(),
                        stats.retracted,
                        stats.budget_deferrals,
                    ))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "session thread panicked".to_string())?
            })
            .collect()
    });
    let elapsed = start.elapsed();
    for line in results {
        println!("{}", line?);
    }
    println!(
        "runtime: {} sessions multiplexed on {} threads in {:.3}s",
        sessions,
        runtime.thread_count(),
        elapsed.as_secs_f64(),
    );
    Ok(())
}

fn cmd_list() {
    println!("{:<16} {:>12}", "ontology", "paper size");
    for o in ONTOLOGIES {
        println!("{:<16} {:>12}", o.name(), o.paper_size());
    }
    let _ = PaperOntology::Bsbm100k; // catalogue type is public API
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "materialize" => {
            let Some(input) = args.get(1) else {
                return usage();
            };
            match parse_options(&args[2..]) {
                Ok(opts) => cmd_materialize(input, &opts),
                Err(e) => Err(e),
            }
        }
        "graph" => match parse_options(&args[1..]) {
            Ok(opts) => cmd_graph(&opts),
            Err(e) => Err(e),
        },
        "generate" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            cmd_generate(name, &args[2..])
        }
        "serve" => cmd_serve(&args[1..]),
        "list" => {
            cmd_list();
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
