//! # Slider — an efficient incremental RDFS reasoner
//!
//! A from-scratch Rust reproduction of *Slider: an Efficient Incremental
//! Reasoner* (Chevalier, Subercaze, Gravier, Laforest — SIGMOD 2015),
//! including every substrate the paper depends on: RDF data model and
//! dictionary encoding, N-Triples/Turtle parsing, a vertically partitioned
//! concurrent triple store, the ρdf and RDFS rule fragments with their
//! dependency graph, the buffered incremental reasoning engine, batch
//! baselines, workload generators and the full benchmark harness.
//!
//! This facade crate re-exports the public API of every member crate under
//! one roof; depend on it to get everything, or on the individual
//! `slider-*` crates for narrower footprints.
//!
//! ## Quickstart
//!
//! ```
//! use slider::prelude::*;
//!
//! // A reasoner over the ρdf fragment with default tuning.
//! let slider = Slider::fragment(Fragment::RhoDf, SliderConfig::default());
//!
//! // Feed triples (here through the Turtle parser).
//! let doc = r#"
//!     @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
//!     @prefix ex:   <http://example.org/> .
//!     ex:Cat  rdfs:subClassOf ex:Feline .
//!     ex:Feline rdfs:subClassOf ex:Animal .
//!     ex:felix a ex:Cat .
//! "#;
//! let triples: Vec<_> = slider::parser::parse_turtle_str(doc)
//!     .collect::<Result<_, _>>()
//!     .unwrap();
//! slider.add_terms(&triples);
//!
//! // Wait for the closure: felix is a Feline and an Animal, and
//! // Cat ⊑ Animal was derived by SCM-SCO.
//! slider.wait_idle();
//! assert_eq!(slider.store().len(), 3 + 3);
//!
//! // Retraction (DRed truth maintenance): retract the Feline ⊑ Animal
//! // assertion and every conclusion that depended on it goes too.
//! let feline_animal = slider::parser::parse_turtle_str(
//!     "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
//!      @prefix ex: <http://example.org/> .
//!      ex:Feline rdfs:subClassOf ex:Animal .",
//! ).collect::<Result<Vec<_>, _>>().unwrap();
//! assert_eq!(slider.remove_terms(&feline_animal), 1);
//! // Cat ⊑ Animal and felix's Animal typing went with it; what is left is
//! // the closure of the two surviving assertions: felix is just a Feline.
//! assert_eq!(slider.store().len(), 2 + 1);
//! ```
//!
//! ## Removal semantics
//!
//! The store distinguishes **explicit** triples (asserted through
//! `add_*` — what you said) from **derived** ones (rule conclusions —
//! what follows). `Slider::remove_triples`/`remove_terms` retract
//! *assertions*: the triple loses its explicit status, and DRed
//! maintenance (overdelete, then rederive — see `slider_core::maintenance`)
//! updates the derived closure, leaving the store equal to the closure of
//! the surviving explicit triples. Consequences:
//!
//! * removing a **derived-only** fact is a no-op — it is not an assertion,
//!   and it would be rederived anyway; `Slider::remove_triples_outcome`
//!   reports these distinctly (`RemovalOutcome::ignored_derived`) from
//!   triples that were absent altogether (`RemovalOutcome::not_found`), so
//!   callers can tell "you offered a consequence, not an assertion" apart
//!   from "never heard of it";
//! * removing an explicit fact that is *also* derivable (e.g. an asserted
//!   `Cat ⊑ Animal` in a taxonomy that implies it) demotes it to derived:
//!   it stays in the store but no longer survives on its own authority;
//! * `remove_terms` only looks terms up (never interns), so a triple over
//!   unknown terms is skipped;
//! * `Slider::stats().store` reports the explicit/derived split, and the
//!   `retracted`/`overdeleted`/`rederived` counters the maintenance runs.
//!
//! ## Deferred (coalesced) removal
//!
//! High-churn sliding windows retract a batch per arrival; paying one
//! overdelete/rederive cycle per batch wastes the work the batches share.
//! `Slider::remove_deferred`/`remove_terms_deferred` *enqueue* retractions
//! on the maintenance scheduler instead, and one **coalesced** DRed run
//! over the whole pending set fires when the pending count reaches
//! `SliderConfig::maintenance_batch`, when the oldest pending retraction
//! outlives `SliderConfig::maintenance_max_age`, or on an explicit
//! `Slider::flush_maintenance`. The deferred semantics:
//!
//! * a flush leaves the store at the closure of the explicit set that
//!   **survived the interleaving** — in particular, *re-asserting a
//!   triple while its retraction is pending cancels the retraction*
//!   (the assertion is newer; `StatsSnapshot::cancelled_removals`
//!   counts these);
//! * until a trigger fires, queries see the pre-retraction closure;
//!   `Slider::pending_staleness()` bounds how stale (the age of the
//!   oldest pending retraction);
//! * dropping the reasoner flushes the pending set — retractions apply
//!   on teardown rather than being discarded;
//! * when the pending set spans several independent dependency-graph
//!   partitions (disjoint rule families — see
//!   `DependencyGraph::component_of`), the flush runs one DRed pass per
//!   partition in parallel on the worker pool
//!   (`SliderConfig::maintenance_partitioning`).
//!
//! Use eager `remove_triples` when retractions must be visible
//! immediately.
//!
//! ## Shared runtime & multi-tenant sessions
//!
//! A standalone `Slider` owns a private execution runtime: a worker pool
//! plus one flusher thread servicing buffer timeouts and maintenance
//! deadlines. When many reasoners must coexist — one per stream, tenant
//! or ontology — spawning a pool each wastes threads and lets one
//! tenant's maintenance monopolise the machine. `Runtime::new` builds the
//! pool once and `Runtime::session` attaches any number of independent
//! sessions (own store, ruleset, scheduler and stats) to it:
//!
//! ```
//! use slider::prelude::*;
//! use std::time::Duration;
//!
//! // One pool, two workers, flushes sliced under a 2 ms per-tick budget.
//! let runtime = Runtime::new(
//!     RuntimeConfig::default()
//!         .with_workers(2)
//!         .with_maintenance_budget(Some(Duration::from_millis(2))),
//! );
//! let news = runtime.session_fragment(Fragment::RhoDf, SliderConfig::default());
//! let social = runtime.session_fragment(Fragment::Rdfs, SliderConfig::default());
//! assert_eq!(runtime.session_count(), 2);
//! assert_eq!(runtime.thread_count(), 2 + 1); // workers + one flusher
//! # drop((news, social));
//! ```
//!
//! The job queue is **session-fair** (round-robin across sessions, so a
//! bursty tenant cannot starve a quiet one), worker panics are contained
//! to the session whose rule instance panicked, and deadline-triggered
//! flushes are **sliced** under `RuntimeConfig::maintenance_budget`: a
//! tick applies at most a budget's worth of one session's pending
//! retractions — always at least one slice, so no session starves — and
//! defers the rest (`StatsSnapshot::budget_deferrals`), keeping a
//! co-tenant's huge coalesced DRed out of everyone else's ingest latency.
//! Dropping a session detaches it; the pool's threads only join when the
//! last session *and* the last `Runtime` handle are gone.
//!
//! ## Lock-free reads & ruleset hot-swap
//!
//! Queries (`contains`, `matches`, `stats`, `to_sorted_vec`) and rule
//! joins answer from the store's published **epoch snapshot**
//! (`slider_store::EpochSnapshot`) — an immutable, generation-stamped
//! copy-on-write image republished at every write release — so the read
//! path takes **zero locks** and never blocks behind ingest or
//! maintenance. `Slider::swap_ruleset` replaces the loaded ruleset on the
//! live reasoner: derivations supported only by dropped rules are
//! retracted with DRed, added rules are evaluated semi-naively, and the
//! dependency graph / read plans / maintenance partitions are rebuilt
//! atomically at the swap's linearisation point:
//!
//! ```
//! use slider::prelude::*;
//! use slider::rules::Transitive;
//! use std::sync::Arc;
//!
//! let dict = Arc::new(Dictionary::new());
//! let p = NodeId(7);
//! let slider = Slider::new(
//!     Arc::clone(&dict),
//!     Ruleset::custom("trans").with(Transitive::new("T", p)),
//!     SliderConfig::default(),
//! );
//! slider.materialize(&[
//!     Triple::new(NodeId(1), p, NodeId(2)),
//!     Triple::new(NodeId(2), p, NodeId(3)),
//! ]);
//!
//! // Live program change: drop the transitivity rule. Its derivations
//! // retract incrementally — no rebuild, no downtime.
//! let outcome: SwapOutcome = slider.swap_ruleset(Ruleset::custom("empty"));
//! assert_eq!(outcome.dropped, 1);
//! assert!(!slider.store().contains(Triple::new(NodeId(1), p, NodeId(3))));
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`model`] | `slider-model` | terms, triples, sharded lock-free-read dictionary (+ sweep compaction), vocabulary |
//! | [`parser`] | `slider-parser` | N-Triples + Turtle subset, writer |
//! | [`store`] | `slider-store` | vertically partitioned triple store |
//! | [`rules`] | `slider-rules` | ρdf/RDFS rules, dependency graph |
//! | [`core`] | `slider-core` | the incremental reasoner |
//! | [`baseline`] | `slider-baseline` | batch materialisers (comparators/oracles) |
//! | [`workloads`] | `slider-workloads` | benchmark ontology generators |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use slider_baseline as baseline;
pub use slider_core as core;
pub use slider_model as model;
pub use slider_parser as parser;
pub use slider_rules as rules;
pub use slider_store as store;
pub use slider_workloads as workloads;

/// The names most programs need, in one import.
pub mod prelude {
    pub use slider_baseline::{NaiveReasoner, SemiNaiveReasoner};
    pub use slider_core::{
        RemovalOutcome, Runtime, RuntimeConfig, SessionHandle, Slider, SliderConfig, SwapOutcome,
    };
    pub use slider_model::{
        DictConfig, DictStats, Dictionary, Literal, NodeId, SweepOutcome, Term, TermTriple, Triple,
    };
    pub use slider_parser::{NTriplesParser, TurtleParser};
    pub use slider_rules::{DependencyGraph, Fragment, Rule, Ruleset};
    pub use slider_store::{EpochSnapshot, ShardedStore, StoreView, TriplePattern, VerticalStore};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let slider = Slider::fragment(Fragment::Rdfs, SliderConfig::default());
        let nt = "<http://e/a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://e/b> .\n";
        let triples = slider_parser::load_ntriples(nt.as_bytes(), slider.dict()).unwrap();
        slider.add_triples(&triples);
        slider.wait_idle();
        assert!(slider.store().len() > 1);
        // The retraction path round-trips through the facade too.
        assert_eq!(slider.remove_triples(&triples), 1);
        assert!(slider.store().is_empty());
    }
}
