//! Fragment customisation: plugging a user-defined rule into Slider.
//!
//! The paper: "Slider natively supports both ρdf and RDFS fragments, and
//! its architecture allows it to be further extended to any other
//! fragments" (via Java interfaces there; via the [`Rule`] trait here).
//!
//! We add the OWL rule `PRP-INV` (inverse properties):
//!
//! ```text
//! (p1 inverseOf p2), (x p1 y) ⊢ (y p2 x)
//! (p1 inverseOf p2), (x p2 y) ⊢ (y p1 x)
//! ```
//!
//! and watch the dependency graph wire it into the ρdf fragment.
//!
//! ```text
//! cargo run --release --example custom_rule
//! ```

use slider::prelude::*;
use slider::rules::{InputFilter, OutputSignature};
use slider::store::StoreView;
use std::sync::Arc;

const OWL_INVERSE_OF: &str = "http://www.w3.org/2002/07/owl#inverseOf";
const EX: &str = "http://example.org/family#";

/// `PRP-INV`: symmetric propagation through `owl:inverseOf`.
struct PrpInv {
    /// Dictionary id of `owl:inverseOf`, interned at construction.
    inverse_of: NodeId,
}

impl PrpInv {
    fn new(dict: &Dictionary) -> Self {
        PrpInv {
            inverse_of: dict.intern(&Term::iri(OWL_INVERSE_OF)),
        }
    }
}

impl Rule for PrpInv {
    fn name(&self) -> &'static str {
        "PRP-INV"
    }

    fn definition(&self) -> &'static str {
        "(p1 inverseOf p2), (x p1 y) ⊢ (y p2 x)  [and symmetrically]"
    }

    fn input_filter(&self) -> InputFilter {
        // The (x p1 y) atom has a variable predicate → universal input.
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        // The emitted predicate is a variable → universal output.
        OutputSignature::Universal
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == self.inverse_of {
                // New schema: flip every existing fact using p1 or p2.
                for (x, y) in store.pairs(t.s) {
                    out.push(Triple::new(y, t.o, x));
                }
                for (x, y) in store.pairs(t.o) {
                    out.push(Triple::new(y, t.s, x));
                }
            }
            // New fact: flip through both directions of the schema.
            for p2 in store.objects_with(self.inverse_of, t.p) {
                out.push(Triple::new(t.o, p2, t.s));
            }
            for p1 in store.subjects_with(self.inverse_of, t.p) {
                out.push(Triple::new(t.o, p1, t.s));
            }
        }
    }
}

fn main() {
    let dict = Arc::new(Dictionary::new());

    // ρdf + our custom rule = a custom fragment.
    let mut ruleset = Ruleset::rho_df();
    ruleset.push(PrpInv::new(&dict));

    // The dependency graph wires PRP-INV automatically: it has universal
    // output, so it feeds every rule — and universal input, so every rule
    // feeds it.
    let graph = DependencyGraph::build(&ruleset);
    println!("dependency graph with the custom rule:");
    for i in 0..graph.len() {
        let succ: Vec<&str> = graph.successors(i).iter().map(|&j| graph.name(j)).collect();
        println!("  {:<10} -> {}", graph.name(i), succ.join(", "));
    }

    let slider = Slider::new(Arc::clone(&dict), ruleset, SliderConfig::default());

    // Family data: hasParent is inverseOf hasChild; hasParent is a
    // subProperty of relatedTo (so PRP-SPO1 composes with PRP-INV).
    let doc: Vec<TermTriple> = vec![
        (
            Term::iri(format!("{EX}hasParent")),
            Term::iri(OWL_INVERSE_OF),
            Term::iri(format!("{EX}hasChild")),
        ),
        (
            Term::iri(format!("{EX}hasParent")),
            Term::iri("http://www.w3.org/2000/01/rdf-schema#subPropertyOf"),
            Term::iri(format!("{EX}relatedTo")),
        ),
        (
            Term::iri(format!("{EX}ada")),
            Term::iri(format!("{EX}hasParent")),
            Term::iri(format!("{EX}byron")),
        ),
    ];
    slider.add_terms(&doc);
    slider.wait_idle();

    println!("\nmaterialised {} triples:", slider.store().len());
    let mut lines: Vec<String> = slider
        .store()
        .to_sorted_vec()
        .into_iter()
        .map(|t| format!("  {}", dict.format_triple(t)))
        .collect();
    lines.sort();
    for line in &lines {
        println!("{line}");
    }

    // The inverse was derived …
    let byron = dict.id_of(&Term::iri(format!("{EX}byron"))).unwrap();
    let ada = dict.id_of(&Term::iri(format!("{EX}ada"))).unwrap();
    let has_child = dict.id_of(&Term::iri(format!("{EX}hasChild"))).unwrap();
    assert!(slider.store().contains(Triple::new(byron, has_child, ada)));
    // … and composed with the ρdf rules.
    let related_to = dict.id_of(&Term::iri(format!("{EX}relatedTo"))).unwrap();
    assert!(slider.store().contains(Triple::new(ada, related_to, byron)));
    println!("\nPRP-INV fired and composed with PRP-SPO1 — custom fragment works.");
}
