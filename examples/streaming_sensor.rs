//! Streamed reasoning over a **sliding window** — the paper's motivating
//! scenario ("inferences on streams of semantic data") extended with the
//! retraction subsystem: observations *expire*.
//!
//! A simulated building-sensor feed publishes observations in timed
//! batches while the background knowledge (sensor taxonomy, room
//! topology) stays resident. Each window step feeds the arriving batch to
//! the reasoner and retracts the batch sliding out of the window
//! (`Slider::remove_terms` → DRed truth maintenance), so the
//! materialisation always reflects exactly the last `WINDOW` observation
//! batches — no rebuild, and queries keep running concurrently.
//!
//! ```text
//! cargo run --release --example streaming_sensor
//! ```

use slider::prelude::*;
use slider::workloads::stream::SlidingWindow;
use std::time::Duration;

/// How many observation batches stay live.
const WINDOW: usize = 10;
/// Total observation batches streamed.
const BATCHES: usize = 40;

const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
const S_NS: &str = "http://example.org/sensors#";

fn iri(ns: &str, local: &str) -> Term {
    Term::iri(format!("{ns}{local}"))
}

/// Background knowledge: a sensor taxonomy and observation schema.
fn background() -> Vec<TermTriple> {
    let sco = iri(RDFS_NS, "subClassOf");
    let dom = iri(RDFS_NS, "domain");
    let rng = iri(RDFS_NS, "range");
    vec![
        (
            iri(S_NS, "TemperatureSensor"),
            sco.clone(),
            iri(S_NS, "ClimateSensor"),
        ),
        (
            iri(S_NS, "HumiditySensor"),
            sco.clone(),
            iri(S_NS, "ClimateSensor"),
        ),
        (iri(S_NS, "ClimateSensor"), sco.clone(), iri(S_NS, "Sensor")),
        (
            iri(S_NS, "SmokeDetector"),
            sco.clone(),
            iri(S_NS, "SafetySensor"),
        ),
        (iri(S_NS, "SafetySensor"), sco, iri(S_NS, "Sensor")),
        (
            iri(S_NS, "observedBy"),
            dom.clone(),
            iri(S_NS, "Observation"),
        ),
        (iri(S_NS, "observedBy"), rng.clone(), iri(S_NS, "Sensor")),
        (iri(S_NS, "locatedIn"), dom, iri(S_NS, "Sensor")),
        (iri(S_NS, "locatedIn"), rng, iri(S_NS, "Room")),
    ]
}

/// One observation batch: a sensor (typed with a leaf class) placed in a
/// room, plus an observation event pointing at it.
fn observation_batch(i: usize) -> Vec<TermTriple> {
    let a = iri(RDF_NS, "type");
    let kinds = ["TemperatureSensor", "HumiditySensor", "SmokeDetector"];
    let sensor = iri(S_NS, &format!("sensor{i}"));
    let obs = iri(S_NS, &format!("obs{i}"));
    let room = iri(S_NS, &format!("room{}", i % 4));
    vec![
        (sensor.clone(), a, iri(S_NS, kinds[i % kinds.len()])),
        (sensor.clone(), iri(S_NS, "locatedIn"), room),
        (obs.clone(), iri(S_NS, "observedBy"), sensor),
        (
            obs,
            iri(S_NS, "value"),
            Term::literal(format!("{}.5", 18 + i % 6)),
        ),
    ]
}

fn main() {
    // Streaming tuning: small buffers, tight timeout — the reasoner reacts
    // within ~10 ms of an arrival instead of waiting for full buffers.
    let config = SliderConfig::default()
        .with_buffer_capacity(64)
        .with_timeout(Some(Duration::from_millis(5)));
    let slider = Slider::fragment(Fragment::RhoDf, config);

    println!("loading background knowledge …");
    slider.add_terms(&background());
    slider.wait_idle();
    let background_size = slider.store().len();
    println!("  {background_size} triples (incl. taxonomy closure)\n");

    // The stream: observation batches (4 triples each) through a sliding
    // window of WINDOW batches, one arrival every 10 ms.
    let feed: Vec<TermTriple> = (0..BATCHES).flat_map(observation_batch).collect();
    let window = SlidingWindow::new(&feed, 4, WINDOW, Duration::from_millis(10));

    let dict = slider.dict();
    let rdf_type = slider::model::vocab::RDF_TYPE;
    let sensor_class = dict.intern(&iri(S_NS, "Sensor"));

    println!(
        "streaming {} batches through a {}-batch window …",
        window.len(),
        window.window()
    );
    let mut step = 0usize;
    window.play(|arrival, expiring| {
        step += 1;
        slider.add_terms(arrival);
        if let Some(expired) = expiring {
            // The batch sliding out of the window is retracted; DRed
            // deletes its derived types and keeps everything else.
            slider.remove_terms(expired);
        }
        // Query concurrently with inference — no global lock, no re-run.
        let known_sensors = slider
            .store()
            .read()
            .subjects_with(rdf_type, sensor_class)
            .count();
        if step % 10 == 0 {
            println!(
                "  after step {step:>3}: store = {:>4} triples, {} live Sensors",
                slider.store().len(),
                known_sensors
            );
        }
    });

    slider.wait_idle();
    let stats = slider.stats();
    println!(
        "\nstream drained: {} triples live ({} explicit, {} derived), {} inferred in total",
        stats.store_size,
        stats.store.explicit,
        stats.store.derived,
        stats.total_inferred()
    );
    println!(
        "maintenance: {} retracted, {} overdeleted, {} rederived over {} runs",
        stats.retracted, stats.overdeleted, stats.rederived, stats.removal_runs
    );

    // Every sensor was typed with a *leaf* class only; CAX-SCO made each a
    // Sensor against the background taxonomy — and expiry took it away
    // again, so exactly the last WINDOW batches' sensors remain.
    let sensors = slider
        .store()
        .read()
        .subjects_with(rdf_type, sensor_class)
        .count();
    println!("sensors currently rdf:type s:Sensor: {sensors} (expected {WINDOW})");
    assert_eq!(sensors, WINDOW);

    // Timeout flushes are what kept latency low — show they happened.
    let timeout_fires: u64 = stats.rules.iter().map(|r| r.timeout_flushes).sum();
    println!("buffer timeout flushes during the stream: {timeout_fires}");
}
