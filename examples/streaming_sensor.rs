//! Streamed reasoning over evolving data — the paper's motivating
//! scenario: "inferences on streams of semantic data … handle expanding
//! data with a growing background knowledge base".
//!
//! A simulated building-sensor feed publishes observations in timed
//! batches while the background knowledge (sensor taxonomy, room
//! topology) is already loaded. Slider infers continuously: between
//! arrival batches, buffer timeouts flush partial buffers, so queries see
//! up-to-date inferences *without* any batch re-run.
//!
//! ```text
//! cargo run --release --example streaming_sensor
//! ```

use slider::prelude::*;
use slider::workloads::stream::TimedStream;
use std::time::Duration;

const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
const S_NS: &str = "http://example.org/sensors#";

fn iri(ns: &str, local: &str) -> Term {
    Term::iri(format!("{ns}{local}"))
}

/// Background knowledge: a sensor taxonomy and observation schema.
fn background() -> Vec<TermTriple> {
    let sco = iri(RDFS_NS, "subClassOf");
    let dom = iri(RDFS_NS, "domain");
    let rng = iri(RDFS_NS, "range");
    vec![
        (
            iri(S_NS, "TemperatureSensor"),
            sco.clone(),
            iri(S_NS, "ClimateSensor"),
        ),
        (
            iri(S_NS, "HumiditySensor"),
            sco.clone(),
            iri(S_NS, "ClimateSensor"),
        ),
        (iri(S_NS, "ClimateSensor"), sco.clone(), iri(S_NS, "Sensor")),
        (
            iri(S_NS, "SmokeDetector"),
            sco.clone(),
            iri(S_NS, "SafetySensor"),
        ),
        (iri(S_NS, "SafetySensor"), sco, iri(S_NS, "Sensor")),
        (
            iri(S_NS, "observedBy"),
            dom.clone(),
            iri(S_NS, "Observation"),
        ),
        (iri(S_NS, "observedBy"), rng.clone(), iri(S_NS, "Sensor")),
        (iri(S_NS, "locatedIn"), dom, iri(S_NS, "Sensor")),
        (iri(S_NS, "locatedIn"), rng, iri(S_NS, "Room")),
    ]
}

/// One observation batch: a sensor (typed with a leaf class) placed in a
/// room, plus an observation event pointing at it.
fn observation_batch(i: usize) -> Vec<TermTriple> {
    let a = iri(RDF_NS, "type");
    let kinds = ["TemperatureSensor", "HumiditySensor", "SmokeDetector"];
    let sensor = iri(S_NS, &format!("sensor{i}"));
    let obs = iri(S_NS, &format!("obs{i}"));
    let room = iri(S_NS, &format!("room{}", i % 4));
    vec![
        (sensor.clone(), a, iri(S_NS, kinds[i % kinds.len()])),
        (sensor.clone(), iri(S_NS, "locatedIn"), room),
        (obs.clone(), iri(S_NS, "observedBy"), sensor),
        (
            obs,
            iri(S_NS, "value"),
            Term::literal(format!("{}.5", 18 + i % 6)),
        ),
    ]
}

fn main() {
    // Streaming tuning: small buffers, tight timeout — the reasoner reacts
    // within ~10 ms of an arrival instead of waiting for full buffers.
    let config = SliderConfig::default()
        .with_buffer_capacity(64)
        .with_timeout(Some(Duration::from_millis(5)));
    let slider = Slider::fragment(Fragment::RhoDf, config);

    println!("loading background knowledge …");
    slider.add_terms(&background());
    slider.wait_idle();
    let background_size = slider.store().len();
    println!("  {background_size} triples (incl. taxonomy closure)\n");

    // The stream: 40 observation batches arriving every 10 ms.
    let feed: Vec<TermTriple> = (0..40).flat_map(observation_batch).collect();
    let stream = TimedStream::uniform(&feed, 12, Duration::from_millis(10));

    let dict = slider.dict();
    let rdf_type = slider::model::vocab::RDF_TYPE;
    let sensor_class = dict.intern(&iri(S_NS, "Sensor"));

    println!("streaming {} batches …", stream.len());
    let mut batch_no = 0usize;
    stream.play(|batch| {
        batch_no += 1;
        slider.add_terms(batch);
        // Query concurrently with inference — no global lock, no re-run.
        let known_sensors = slider.store().read().subjects_with(rdf_type, sensor_class).count();
        if batch_no % 10 == 0 {
            println!(
                "  after batch {batch_no:>3}: store = {:>5} triples, {} resources known to be Sensors",
                slider.store().len(),
                known_sensors
            );
        }
    });

    slider.wait_idle();
    let stats = slider.stats();
    println!(
        "\nstream drained: {} triples total, {} inferred",
        stats.store_size,
        stats.total_inferred()
    );

    // Every sensor was typed with a *leaf* class only; the stream made
    // them all Sensors through CAX-SCO against the background taxonomy.
    let sensors = slider
        .store()
        .read()
        .subjects_with(rdf_type, sensor_class)
        .count();
    println!("sensors inferred to be rdf:type s:Sensor: {sensors} (expected 40)");
    assert_eq!(sensors, 40);

    // Timeout flushes are what kept latency low — show they happened.
    let timeout_fires: u64 = stats.rules.iter().map(|r| r.timeout_flushes).sum();
    println!("buffer timeout flushes during the stream: {timeout_fires}");
}
