//! Streamed reasoning over a **time-based sliding window** — the paper's
//! motivating scenario ("inferences on streams of semantic data") extended
//! with the retraction subsystem and the coalesced maintenance scheduler:
//! observations *expire by timestamp*, and expiring batches are retracted
//! **deferred** so bursts of churn cost one DRed pass instead of many.
//!
//! A simulated building-sensor feed publishes observations on a *bursty*
//! schedule (back-to-back bursts, occasional long pauses) while the
//! background knowledge (sensor taxonomy, room topology) stays resident.
//! Each arrival enters the reasoner immediately; batches older than the
//! window are handed to `Slider::remove_terms_deferred`, which merely
//! enqueues them — the maintenance scheduler runs one coalesced
//! overdelete/rederive pass when enough retractions are pending (or when
//! the oldest has waited too long), so the post-pause step that expires a
//! whole run of batches at once does not pay per-batch maintenance.
//!
//! ```text
//! cargo run --release --example streaming_sensor
//! ```

use slider::prelude::*;
use slider::workloads::stream::{TimedStream, TimedWindow};
use std::time::Duration;

/// Total observation batches streamed.
const BATCHES: usize = 40;
/// Observation triples per batch.
const BATCH_SIZE: usize = 4;
/// Virtual time an observation batch stays live.
const WINDOW: Duration = Duration::from_millis(60);
/// Base tick of the bursty arrival schedule.
const TICK: Duration = Duration::from_millis(8);

const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
const S_NS: &str = "http://example.org/sensors#";

fn iri(ns: &str, local: &str) -> Term {
    Term::iri(format!("{ns}{local}"))
}

/// Background knowledge: a sensor taxonomy and observation schema.
fn background() -> Vec<TermTriple> {
    let sco = iri(RDFS_NS, "subClassOf");
    let dom = iri(RDFS_NS, "domain");
    let rng = iri(RDFS_NS, "range");
    vec![
        (
            iri(S_NS, "TemperatureSensor"),
            sco.clone(),
            iri(S_NS, "ClimateSensor"),
        ),
        (
            iri(S_NS, "HumiditySensor"),
            sco.clone(),
            iri(S_NS, "ClimateSensor"),
        ),
        (iri(S_NS, "ClimateSensor"), sco.clone(), iri(S_NS, "Sensor")),
        (
            iri(S_NS, "SmokeDetector"),
            sco.clone(),
            iri(S_NS, "SafetySensor"),
        ),
        (iri(S_NS, "SafetySensor"), sco, iri(S_NS, "Sensor")),
        (
            iri(S_NS, "observedBy"),
            dom.clone(),
            iri(S_NS, "Observation"),
        ),
        (iri(S_NS, "observedBy"), rng.clone(), iri(S_NS, "Sensor")),
        (iri(S_NS, "locatedIn"), dom, iri(S_NS, "Sensor")),
        (iri(S_NS, "locatedIn"), rng, iri(S_NS, "Room")),
    ]
}

/// One observation batch: a sensor (typed with a leaf class) placed in a
/// room, plus an observation event pointing at it.
fn observation_batch(i: usize) -> Vec<TermTriple> {
    let a = iri(RDF_NS, "type");
    let kinds = ["TemperatureSensor", "HumiditySensor", "SmokeDetector"];
    let sensor = iri(S_NS, &format!("sensor{i}"));
    let obs = iri(S_NS, &format!("obs{i}"));
    let room = iri(S_NS, &format!("room{}", i % 4));
    vec![
        (sensor.clone(), a, iri(S_NS, kinds[i % kinds.len()])),
        (sensor.clone(), iri(S_NS, "locatedIn"), room),
        (obs.clone(), iri(S_NS, "observedBy"), sensor),
        (
            obs,
            iri(S_NS, "value"),
            Term::literal(format!("{}.5", 18 + i % 6)),
        ),
    ]
}

fn main() {
    // Streaming tuning: small buffers, tight timeout — the reasoner reacts
    // within ~10 ms of an arrival instead of waiting for full buffers. The
    // maintenance knobs coalesce expiring batches: a flush fires at 16
    // pending retractions (≈ 4 expired batches) or once the oldest has
    // waited 30 ms, whichever comes first.
    let config = SliderConfig::default()
        .with_buffer_capacity(64)
        .with_timeout(Some(Duration::from_millis(5)))
        .with_maintenance_batch(16)
        .with_maintenance_max_age(Some(Duration::from_millis(30)));
    let slider = Slider::fragment(Fragment::RhoDf, config);

    println!("loading background knowledge …");
    slider.add_terms(&background());
    slider.wait_idle();
    let background_size = slider.store().len();
    println!("  {background_size} triples (incl. taxonomy closure)\n");

    // The stream: observation batches on a bursty schedule (geometric
    // gaps, mean ≈ 1.5 × TICK) through a time-based window — a burst
    // expires nothing, the arrival after a pause expires several batches
    // at once.
    let feed: Vec<TermTriple> = (0..BATCHES).flat_map(observation_batch).collect();
    let stream = TimedStream::bursty(&feed, BATCH_SIZE, TICK, 0.6, 42);
    let window = TimedWindow::from_stream(&stream, WINDOW);

    let dict = slider.dict();
    let rdf_type = slider::model::vocab::RDF_TYPE;
    let sensor_class = dict.intern(&iri(S_NS, "Sensor"));

    println!(
        "streaming {} batches through a {:?} window (bursty, tick {:?}) …",
        window.len(),
        window.window(),
        TICK
    );
    window.play(|step| {
        slider.add_terms(step.arrival);
        // Batches aging out of the window are *deferred*: enqueued on the
        // maintenance scheduler, which coalesces them into one DRed pass
        // per threshold/deadline trigger instead of one per batch.
        for expired in &step.expiring {
            slider.remove_terms_deferred(expired);
        }
        // Query concurrently with inference — no global lock, no re-run.
        let known_sensors = slider
            .store()
            .read()
            .subjects_with(rdf_type, sensor_class)
            .count();
        if step.index % 10 == 9 || !step.expiring.is_empty() {
            println!(
                "  step {:>3} (t={:>4}ms): +{} triples, {} batch(es) expired, \
                 store = {:>4}, {} live Sensors",
                step.index,
                step.at.as_millis(),
                step.arrival.len(),
                step.expiring.len(),
                slider.store().len(),
                known_sensors
            );
        }
    });

    // Drain: apply whatever is still pending, then settle.
    slider.flush_maintenance();
    slider.wait_idle();
    let stats = slider.stats();
    println!(
        "\nstream drained: {} triples live ({} explicit, {} derived), {} inferred in total",
        stats.store_size,
        stats.store.explicit,
        stats.store.derived,
        stats.total_inferred()
    );
    println!(
        "maintenance: {} retractions deferred, {} coalesced runs \
         ({} retracted, {} overdeleted, {} rederived; {} pending)",
        stats.deferred,
        stats.coalesced_runs,
        stats.retracted,
        stats.overdeleted,
        stats.rederived,
        stats.pending_removals
    );

    // Every sensor was typed with a *leaf* class only; CAX-SCO made each a
    // Sensor against the background taxonomy — and expiry took it away
    // again, so exactly the still-live batches' sensors remain.
    let live_batches = window.live_tail().len();
    let sensors = slider
        .store()
        .read()
        .subjects_with(rdf_type, sensor_class)
        .count();
    println!("sensors currently rdf:type s:Sensor: {sensors} (expected {live_batches})");
    assert_eq!(sensors, live_batches);
    assert_eq!(stats.pending_removals, 0, "final flush drained the queue");

    // Every flush drains whole batches, so runs can never exceed expired
    // batches; usually they are far fewer (a bulk expiry after a pause is
    // one run), but how *much* fewer depends on real-time deadline
    // triggers, so that part is reported rather than asserted.
    let expired_batches = window.len() - live_batches;
    assert!(
        stats.coalesced_runs > 0 && (stats.coalesced_runs as usize) <= expired_batches,
        "expected coalesced maintenance: {} runs for {} expired batches",
        stats.coalesced_runs,
        expired_batches
    );
    println!(
        "coalescing: {} DRed runs covered {} expired batches",
        stats.coalesced_runs, expired_batches
    );
}
