//! Quickstart: load a small Turtle ontology, materialise it under RDFS,
//! and inspect what was inferred.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use slider::prelude::*;

const ZOO: &str = r#"
@prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix zoo:  <http://example.org/zoo#> .

# Terminology (T-Box)
zoo:Cat     rdfs:subClassOf zoo:Feline .
zoo:Feline  rdfs:subClassOf zoo:Carnivore .
zoo:Carnivore rdfs:subClassOf zoo:Animal .
zoo:hasKeeper rdfs:domain zoo:Animal ;
              rdfs:range  zoo:Keeper .
zoo:hasHeadKeeper rdfs:subPropertyOf zoo:hasKeeper .

# Assertions (A-Box)
zoo:felix a zoo:Cat ;
          zoo:hasHeadKeeper zoo:alice ;
          rdfs:label "Felix the cat" .
"#;

fn main() {
    // 1. A reasoner over the RDFS fragment, default tuning (buffer 1024,
    //    20 ms timeout, one worker per core).
    let slider = Slider::fragment(Fragment::Rdfs, SliderConfig::default());

    // 2. Parse and feed. `add_terms` is the paper's input manager: terms
    //    are dictionary-encoded, duplicates dropped, new triples routed to
    //    the rule buffers.
    let triples: Vec<TermTriple> = slider::parser::parse_turtle_str(ZOO)
        .collect::<Result<_, _>>()
        .expect("ZOO parses");
    let fresh = slider.add_terms(&triples);
    println!("loaded {fresh} explicit triples");

    // 3. Wait for the fixpoint.
    slider.wait_idle();

    // 4. Everything in one store: explicit + inferred.
    let stats = slider.stats();
    println!(
        "materialised: {} triples total, {} inferred\n",
        stats.store_size,
        stats.total_inferred()
    );

    // 5. Ask a question through the pattern API: what is felix?
    let dict = slider.dict();
    let felix = dict
        .id_of(&Term::iri("http://example.org/zoo#felix"))
        .unwrap();
    let rdf_type = slider::model::vocab::RDF_TYPE;
    let store = slider.store().read();
    let mut classes: Vec<String> = store
        .objects_with(rdf_type, felix)
        .map(|c| dict.lookup(c).unwrap().to_string())
        .collect();
    classes.sort();
    println!("felix is an instance of:");
    for class in classes {
        println!("  {class}");
    }

    // 6. And the per-rule activity report (the §4 demo counters).
    println!("\nper-rule activity:\n{stats}");
}
