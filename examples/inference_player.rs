//! The inference player — a terminal stand-in for the paper's §4 demo GUI.
//!
//! The original demo records "the state of all the modules of Slider at
//! each step of the process" and lets visitors replay an inference, with
//! per-buffer counters (times full, times timed out, triples inferred) and
//! a two-coloured store bar (explicit vs inferred). This example runs an
//! inference with tracing on, then replays the event log step by step with
//! the same counters.
//!
//! ```text
//! cargo run --release --example inference_player            # rho-df
//! cargo run --release --example inference_player -- rdfs    # RDFS
//! cargo run --release --example inference_player -- rdfs 5000  # bigger run
//! ```

use slider::core::{Event, EventKind};
use slider::prelude::*;
use slider::workloads::{bsbm, encode_all};
use std::sync::Arc;

struct ModuleState {
    name: &'static str,
    full_fires: u64,
    timeout_fires: u64,
    inferred: u64,
}

fn replay(events: &[Event], rule_names: &[&'static str], input_size: usize) {
    let mut modules: Vec<ModuleState> = rule_names
        .iter()
        .map(|&name| ModuleState {
            name,
            full_fires: 0,
            timeout_fires: 0,
            inferred: 0,
        })
        .collect();
    let mut store_size = 0usize;
    let mut input_seen = 0usize;

    println!("\n── inference player: {} events ──", events.len());
    for (step, event) in events.iter().enumerate() {
        let ms = event.at.as_secs_f64() * 1e3;
        match &event.kind {
            EventKind::Input { received, fresh } => {
                input_seen += fresh;
                store_size += fresh;
                println!("[{step:>4} {ms:>8.2}ms] input   +{received} triples ({fresh} new)");
            }
            EventKind::BufferFull { rule } => {
                modules[*rule].full_fires += 1;
                println!(
                    "[{step:>4} {ms:>8.2}ms] fire    {} (buffer full, {}th time)",
                    modules[*rule].name, modules[*rule].full_fires
                );
            }
            EventKind::TimeoutFlush { rule } => {
                modules[*rule].timeout_fires += 1;
                println!(
                    "[{step:>4} {ms:>8.2}ms] fire    {} (timeout, {}th time)",
                    modules[*rule].name, modules[*rule].timeout_fires
                );
            }
            EventKind::RuleFired {
                rule,
                delta,
                derived,
                fresh,
                store_size: size,
            } => {
                modules[*rule].inferred += *fresh as u64;
                store_size = *size;
                println!(
                    "[{step:>4} {ms:>8.2}ms] applied {} on {delta} triples → {derived} derived, {fresh} new",
                    modules[*rule].name
                );
            }
            EventKind::Removal {
                requested,
                retracted,
                overdeleted,
                rederived,
                store_size: size,
            } => {
                store_size = *size;
                println!(
                    "[{step:>4} {ms:>8.2}ms] retract {requested} offered: {retracted} retracted, \
                     {overdeleted} overdeleted, {rederived} rederived"
                );
            }
            EventKind::CoalescedRemoval {
                pending,
                retracted,
                overdeleted,
                rederived,
                store_size: size,
            } => {
                store_size = *size;
                println!(
                    "[{step:>4} {ms:>8.2}ms] flush   {pending} deferred: {retracted} retracted, \
                     {overdeleted} overdeleted, {rederived} rederived (coalesced)"
                );
            }
            EventKind::PartitionedRemoval {
                pending,
                partitions,
                retracted,
                overdeleted,
                rederived,
                store_size: size,
            } => {
                store_size = *size;
                println!(
                    "[{step:>4} {ms:>8.2}ms] flush   {pending} deferred: {retracted} retracted, \
                     {overdeleted} overdeleted, {rederived} rederived \
                     ({partitions} parallel partitions)"
                );
            }
            EventKind::SubpartitionedRemoval {
                pending,
                partitions,
                subpartitions,
                retracted,
                overdeleted,
                rederived,
                store_size: size,
            } => {
                store_size = *size;
                println!(
                    "[{step:>4} {ms:>8.2}ms] flush   {pending} deferred: {retracted} retracted, \
                     {overdeleted} overdeleted, {rederived} rederived \
                     ({partitions} partitions, {subpartitions} subject sub-buckets)"
                );
            }
            EventKind::RulesetSwap {
                dropped,
                added,
                kept,
                overdeleted,
                rederived,
                inferred,
                store_size: size,
            } => {
                store_size = *size;
                println!(
                    "[{step:>4} {ms:>8.2}ms] swap    ruleset: -{dropped} +{added} rules \
                     ({kept} kept); {overdeleted} overdeleted, {rederived} rederived, \
                     {inferred} inferred"
                );
            }
            EventKind::BudgetSlice { applied, remaining } => {
                println!(
                    "[{step:>4} {ms:>8.2}ms] budget  flush sliced: {applied} applied, \
                     {remaining} deferred to later ticks"
                );
            }
            EventKind::DictSweep {
                scanned,
                swept,
                live,
                bytes_before,
                bytes_after,
            } => {
                println!(
                    "[{step:>4} {ms:>8.2}ms] dict    sweep: {swept}/{scanned} terms tombstoned, \
                     {live} live, {bytes_before} -> {bytes_after} bytes"
                );
            }
            EventKind::Idle { store_size: size } => {
                store_size = *size;
                println!("[{step:>4} {ms:>8.2}ms] idle    (closure complete)");
            }
        }
    }

    // The §4 summary panel: store bar + per-module counters.
    let inferred_total = store_size.saturating_sub(input_seen);
    let bar_len = 40usize;
    let explicit_cells = (input_seen * bar_len).checked_div(store_size).unwrap_or(0);
    println!("\n── summary ──");
    println!(
        "store: [{}{}] {} explicit + {} inferred = {}",
        "▓".repeat(explicit_cells),
        "░".repeat(bar_len - explicit_cells),
        input_seen,
        inferred_total,
        store_size
    );
    println!("input fraction seen: {input_size} offered");
    println!(
        "\n{:<10} {:>10} {:>14} {:>12}",
        "module", "full fires", "timeout fires", "inferred"
    );
    for m in &modules {
        println!(
            "{:<10} {:>10} {:>14} {:>12}",
            m.name, m.full_fires, m.timeout_fires, m.inferred
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fragment = match args.first().map(String::as_str) {
        Some("rdfs") | Some("RDFS") => Fragment::Rdfs,
        _ => Fragment::RhoDf,
    };
    let size: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(600);

    let dict = Arc::new(Dictionary::new());
    let ruleset = Ruleset::fragment(fragment, &dict);
    let rule_names: Vec<&'static str> = ruleset.rules().iter().map(|r| r.name()).collect();

    // Small buffers → many module transitions → an interesting replay.
    let config = SliderConfig::default()
        .with_buffer_capacity(128)
        .with_trace(true);
    let slider = Slider::new(Arc::clone(&dict), ruleset, config);

    let data = bsbm::generate(&bsbm::BsbmConfig::sized(size));
    let encoded = encode_all(&data, &dict);
    println!(
        "running {} on a {}-triple BSBM ontology with tracing on …",
        fragment,
        encoded.len()
    );
    for chunk in encoded.chunks(200) {
        slider.add_triples(chunk);
    }
    slider.wait_idle();

    let events = slider.events().expect("tracing was enabled");
    replay(&events, &rule_names, encoded.len());

    // The scheduler-aware staleness bound (queries reflect a closure at
    // most this far behind the retraction stream).
    match slider.pending_staleness() {
        Some(age) => println!(
            "staleness bound: oldest pending retraction {:.1} ms ({} pending)",
            age.as_secs_f64() * 1e3,
            slider.stats().pending_removals
        ),
        None => println!("staleness bound: no pending retractions (queries are exact)"),
    }

    // Store-lock contention over the run: how often exclusive (gate-write)
    // access was taken, and how often a shard write found its shard busy.
    let stats = slider.stats();
    println!(
        "store locking: {} shards, {} gate write acquisitions, {} shard write conflicts",
        slider.store().shard_count(),
        stats.gate_write_acquisitions,
        stats.shard_write_conflicts
    );
    println!(
        "runtime: {} session(s) on the pool, {} budget deferrals",
        stats.runtime_sessions, stats.budget_deferrals
    );
}
