//! A small, API-compatible subset of `proptest`, for offline builds.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the proptest APIs its property tests use: the [`Strategy`] trait with
//! `prop_map`/`boxed`, [`Just`], weighted [`prop_oneof!`], regex-subset
//! string strategies (`"[a-z]{1,5}"` and friends), tuple and range
//! strategies, [`collection::vec`], [`any`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate: cases are generated from a seed derived
//! from the test name (deterministic across runs), and failing cases are
//! **not shrunk** — the panic reports the failing assertion directly. Swap
//! for the real crate by flipping the `[workspace.dependencies]` entry once
//! networked builds are available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use rand;
use rand::rngs::StdRng;

// ----------------------------------------------------------------- errors --

/// Why a single generated test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; only `cases` is interpreted by this subset.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases to run per property.
    pub cases: u32,
    /// Accepted for API parity with the real crate; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

// --------------------------------------------------------------- strategy --

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the strategy type for heterogeneous collections.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice between strategies; backs [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` pairs; total weight must be > 0.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            options.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof! requires a positive total weight"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.random_range(0..total);
        for (weight, strategy) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights were validated in Union::new")
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ------------------------------------------------------- regex strategies --

/// One quantified element of a regex-subset pattern.
#[derive(Debug, Clone)]
struct PatternPiece {
    /// Inclusive char ranges to choose from.
    ranges: Vec<(char, char)>,
    min: u32,
    max: u32,
}

/// Parses the regex subset used as string strategies: literal characters,
/// `[...]` classes with ranges (a trailing or leading `-` is literal), and
/// the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`.
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let ranges = if c == '[' {
            let mut raw = Vec::new();
            for d in chars.by_ref() {
                if d == ']' {
                    break;
                }
                raw.push(d);
            }
            let mut class = Vec::new();
            let mut i = 0;
            while i < raw.len() {
                // `a-z` is a range unless the `-` is first or last in the
                // class, in which case it is a literal.
                if i + 2 < raw.len() && raw[i + 1] == '-' {
                    class.push((raw[i], raw[i + 2]));
                    i += 3;
                } else {
                    class.push((raw[i], raw[i]));
                    i += 1;
                }
            }
            class
        } else {
            vec![(c, c)]
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n} quantifier"),
                        n.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n: u32 = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(PatternPiece { ranges, min, max });
    }
    pieces
}

fn generate_from_pattern(pieces: &[PatternPiece], rng: &mut StdRng) -> String {
    use rand::Rng;
    let mut out = String::new();
    for piece in pieces {
        let count = rng.random_range(piece.min..=piece.max);
        for _ in 0..count {
            if piece.ranges.is_empty() {
                continue;
            }
            let (lo, hi) = piece.ranges[rng.random_range(0..piece.ranges.len())];
            // Sample the scalar range, skipping the surrogate gap.
            loop {
                let v = rng.random_range(lo as u32..=hi as u32);
                if let Some(c) = char::from_u32(v) {
                    out.push(c);
                    break;
                }
            }
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(&parse_pattern(self), rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(&parse_pattern(self), rng)
    }
}

// -------------------------------------------------------------- arbitrary --

/// Types with a canonical "generate anything" strategy, used by [`any`].
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<String>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl Arbitrary for String {
    /// Arbitrary strings deliberately include control characters, quotes,
    /// backslashes and non-ASCII codepoints so escaping logic gets
    /// exercised, mirroring the real `any::<String>()`.
    fn arbitrary(rng: &mut StdRng) -> String {
        use rand::Rng;
        let len = rng.random_range(0usize..=24);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.random_range(0u32..10) {
                0 => char::from_u32(rng.random_range(0u32..0x20)).unwrap(), // control
                1 => ['"', '\\', '\n', '\r', '\t'][rng.random_range(0usize..5)],
                2 | 3 => loop {
                    // Non-ASCII, skipping the surrogate gap.
                    if let Some(c) = char::from_u32(rng.random_range(0x80u32..0x1_0000)) {
                        break c;
                    }
                },
                4 => loop {
                    if let Some(c) = char::from_u32(rng.random_range(0x1_0000u32..0x11_0000)) {
                        break c;
                    }
                },
                _ => char::from_u32(rng.random_range(0x20u32..0x7f)).unwrap(), // printable ASCII
            };
            out.push(c);
        }
        out
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> $ty {
                use rand::RngCore;
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

// ------------------------------------------------------------- collection --

/// Strategies for collections.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.len.is_empty() {
                0
            } else {
                rng.random_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ------------------------------------------------------------ test runner --

/// Internals used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deterministic per-test RNG, seeded from the test's name.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// The names most property tests need, in one import.
pub mod prelude {
    /// Alias so `prop::collection::vec(...)` resolves as in the real crate.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ----------------------------------------------------------------- macros --

/// Defines property tests; supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(pat in strategy)`
/// items, as in the real crate (minus shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or unweighted choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Like `assert!`, but fails the current case instead of panicking so the
/// runner can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Like `assert_eq!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}` at {}:{}",
                format!($($fmt)+),
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Like `assert_ne!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}` at {}:{}",
                left,
                file!(),
                line!()
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn regex_subset_respects_classes_and_counts() {
        let mut rng = rng_for("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9/.#-]{0,30}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 31);
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            for c in chars {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || "/.#-".contains(c),
                    "unexpected char {c:?} in {s:?}"
                );
            }
            let t = Strategy::generate(&"[ -~]{0,20}", &mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");
            let u = Strategy::generate(&"[a-z]{2,5}", &mut rng);
            assert!((2..=5).contains(&u.len()), "{u:?}");
        }
    }

    #[test]
    fn oneof_weights_zero_excludes_arm() {
        let mut rng = rng_for("oneof");
        let strat = prop_oneof![1 => Just(1u32), 0 => Just(2u32)];
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&strat, &mut rng), 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(v in prop::collection::vec(0u64..100, 0..10), flag in any::<bool>()) {
            prop_assert!(v.len() < 10);
            prop_assert_eq!(flag, flag);
            for x in v {
                prop_assert!(x < 100, "x = {}", x);
            }
        }
    }

    // No `#[test]` meta: expands to a plain fn the should_panic test calls.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        always_fails();
    }
}
