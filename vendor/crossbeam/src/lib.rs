//! A small, API-compatible subset of `crossbeam`, backed by `std::sync`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the single crossbeam API it uses: [`channel::unbounded`] — an unbounded
//! MPMC channel with cloneable [`channel::Sender`]s *and*
//! [`channel::Receiver`]s (std's mpsc receiver cannot be cloned, which the
//! reasoner's worker pool requires). Swap for the real crate by flipping
//! the `[workspace.dependencies]` entry once networked builds are
//! available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (each message goes to exactly one
    /// receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    fn ignore_poison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
        r.unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when all receivers were dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = ignore_poison(self.shared.state.lock());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            ignore_poison(self.shared.state.lock()).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = ignore_poison(self.shared.state.lock());
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = ignore_poison(self.shared.state.lock());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = ignore_poison(self.shared.ready.wait(state));
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            ignore_poison(self.shared.state.lock()).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            ignore_poison(self.shared.state.lock()).receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use std::collections::HashSet;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded::<u32>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(all.insert(v), "message {v} delivered twice");
            }
        }
        assert_eq!(all.len(), 100);
    }
}
