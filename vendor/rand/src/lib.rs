//! A tiny, dependency-free, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the handful of `rand` 0.9 APIs it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::random_range`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic per seed, which is all the workload
//! generators require. Swap this crate for the real `rand` by flipping the
//! `[workspace.dependencies]` entry once networked builds are available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be created from a numeric seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Low-level source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty, matching the real `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to sample one of its elements.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self` using `rng`.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Primitive types [`SampleRange`] knows how to sample; the two blanket
/// range impls below hang off this trait so integer-literal inference works
/// (`rng.random_range(0..v.len())` must infer `usize`), as in the real
/// `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Bit-preserving widening cast (sign-extending for signed types).
    fn to_u128(self) -> u128;
    /// Truncating cast back; inverse of [`Self::to_u128`] modulo 2^128.
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn to_u128(self) -> u128 {
                self as u128
            }
            #[inline]
            fn from_u128(v: u128) -> Self {
                v as $ty
            }
        }
    )*};
}

// Only types up to 64 bits: sampling draws a single u64 word, so a u128/i128
// range wider than 2^64 could never be uniform — leave those out so misuse
// fails to compile instead of silently skewing.
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        // Wrapping arithmetic in u128 is correct for signed types too:
        // sign-extension preserves differences modulo 2^128.
        let span = self.end.to_u128().wrapping_sub(self.start.to_u128());
        let offset = (rng.next_u64() as u128) % span;
        T::from_u128(self.start.to_u128().wrapping_add(offset))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = end.to_u128().wrapping_sub(start.to_u128()).wrapping_add(1);
        // span == 0 means the range covers all of u128; any draw is valid.
        let offset = if span == 0 {
            rng.next_u64() as u128
        } else {
            (rng.next_u64() as u128) % span
        };
        T::from_u128(start.to_u128().wrapping_add(offset))
    }
}

/// Provided generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    ///
    /// Unlike the real `StdRng` this is *not* cryptographically secure; the
    /// workloads only need determinism and uniformity.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(1usize..=2);
            assert!((1..=2).contains(&w));
            let neg = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.random_range(0u64..1 << 60)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random_range(0u64..1 << 60)).collect();
        assert_ne!(va, vb);
    }
}
