//! A small, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the lock APIs it uses: [`Mutex`]/[`MutexGuard`], [`Condvar`],
//! [`RwLock`] with [`RwLock::try_read`]/[`RwLock::try_write`],
//! [`RwLockReadGuard::map`] and [`MappedRwLockReadGuard`].
//! Semantics match `parking_lot` where it differs from `std`: no lock
//! poisoning (a panic while holding a guard simply releases it), and
//! `Condvar::wait` takes the guard by `&mut`. Swap for the real crate by
//! flipping the `[workspace.dependencies]` entry once networked builds are
//! available.

#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync as ss;

fn ignore_poison<G>(r: Result<G, ss::PoisonError<G>>) -> G {
    r.unwrap_or_else(ss::PoisonError::into_inner)
}

// ---------------------------------------------------------------- Mutex --

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: ss::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: ss::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        ignore_poison(
            self.inner
                .into_inner()
                .map_err(|e| ss::PoisonError::new(e.into_inner())),
        )
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(ignore_poison(self.inner.lock())),
        }
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back while
    // the caller keeps holding this wrapper by `&mut`.
    guard: Option<ss::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

// -------------------------------------------------------------- Condvar --

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: ss::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        guard.guard = Some(ignore_poison(self.inner.wait(std_guard)));
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// --------------------------------------------------------------- RwLock --

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: ss::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: ss::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        ignore_poison(
            self.inner
                .into_inner()
                .map_err(|e| ss::PoisonError::new(e.into_inner())),
        )
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: ignore_poison(self.inner.read()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: ignore_poison(self.inner.write()),
        }
    }

    /// Attempts to acquire shared read access without blocking; `None` if
    /// the lock is currently held exclusively.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(RwLockReadGuard { guard }),
            Err(ss::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                guard: e.into_inner(),
            }),
            Err(ss::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking; `None`
    /// if the lock is currently held (shared or exclusive).
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(RwLockWriteGuard { guard }),
            Err(ss::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                guard: e.into_inner(),
            }),
            Err(ss::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: ss::RwLockReadGuard<'a, T>,
}

impl<'a, T: ?Sized> RwLockReadGuard<'a, T> {
    /// Maps the guard to a component of the protected data, as
    /// `parking_lot::RwLockReadGuard::map` does.
    pub fn map<U: ?Sized, F>(orig: Self, f: F) -> MappedRwLockReadGuard<'a, U>
    where
        F: FnOnce(&T) -> &U,
    {
        // The pointee lives inside the RwLock, not the guard, so it stays
        // valid while the boxed guard is held; the raw pointer erases `T`
        // from the mapped guard's type, matching parking_lot's signature.
        let ptr: *const U = f(&orig);
        MappedRwLockReadGuard {
            _guard: Box::new(orig.guard),
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: ss::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

trait Erased {}
impl<T: ?Sized> Erased for T {}

/// A read guard that dereferences to a component of the locked data.
pub struct MappedRwLockReadGuard<'a, U: ?Sized> {
    _guard: Box<dyn Erased + 'a>,
    ptr: *const U,
    _marker: PhantomData<&'a U>,
}

impl<U: ?Sized> Deref for MappedRwLockReadGuard<'_, U> {
    type Target = U;
    fn deref(&self) -> &U {
        // SAFETY: `ptr` was derived from a reference into the lock-protected
        // data, and `_guard` keeps the read lock held for our lifetime.
        unsafe { &*self.ptr }
    }
}

// Sharing the mapped guard across threads is fine when `&U` is (the raw
// pointer alone would suppress it). Deliberately NOT `Send`: the underlying
// std read guard must be released on the thread that acquired it, and real
// parking_lot guards are `!Send` by default too.
unsafe impl<U: ?Sized + Sync> Sync for MappedRwLockReadGuard<'_, U> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn rwlock_map_keeps_lock_alive() {
        let lock = RwLock::new(vec![1u32, 2, 3]);
        let mapped = RwLockReadGuard::map(lock.read(), |v| v.as_slice());
        assert_eq!(&*mapped, &[1, 2, 3]);
        drop(mapped);
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
    }

    #[test]
    fn try_locks_report_contention() {
        let lock = RwLock::new(7);
        {
            let _r = lock.read();
            assert!(lock.try_read().is_some(), "read is shared");
            assert!(lock.try_write().is_none(), "write excluded by reader");
        }
        {
            let _w = lock.write();
            assert!(lock.try_read().is_none(), "read excluded by writer");
            assert!(lock.try_write().is_none(), "write excluded by writer");
        }
        assert_eq!(*lock.try_write().expect("uncontended"), 7);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // must not panic
    }
}
