//! A small, API-compatible subset of `criterion`, for offline builds.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the criterion APIs its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of criterion's
//! statistical engine it reports min/mean/max wall-clock time per iteration
//! as plain text — enough to compare configurations locally. Swap for the
//! real crate by flipping the `[workspace.dependencies]` entry once
//! networked builds are available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

/// One benchmark's collected timing summary (shim extension; the real
/// criterion writes these to `target/criterion` instead).
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full benchmark label, `group/function[/parameter]`.
    pub label: String,
    /// Fastest sample.
    pub min: Duration,
    /// Mean over all samples.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Timed samples taken.
    pub samples: usize,
}

static SUMMARIES: Mutex<Vec<Summary>> = Mutex::new(Vec::new());

/// Drains the summaries of every benchmark run so far — a shim extension
/// letting `harness = false` benches emit machine-readable trajectories
/// (the workspace's `slider_bench::report` JSON) from a custom `main`
/// after the criterion groups have run.
pub fn take_summaries() -> Vec<Summary> {
    std::mem::take(&mut SUMMARIES.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Entry point for registering benchmarks, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Registers a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&name.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Registers a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op in this subset, kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => f.write_str(func),
            (None, Some(p)) => f.write_str(p),
            (None, None) => f.write_str("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per configured repetition.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let iters = self.iters_per_sample;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.samples.push(total / iters as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    // One untimed warm-up, then the timed samples.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{label:<56} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{label:<56} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    SUMMARIES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Summary {
            label: label.to_owned(),
            min,
            mean,
            max,
            samples: bencher.samples.len(),
        });
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a function that runs the listed benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut runs = 0;
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 42), &21, |b, &x| {
            runs += 1;
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs >= 2, "warm-up plus samples must run the closure");
    }

    #[test]
    fn summaries_are_collected_and_drained() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("registry");
        group.sample_size(3);
        group.bench_function("probe", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        let summaries = take_summaries();
        let probe = summaries
            .iter()
            .find(|s| s.label == "registry/probe")
            .expect("summary recorded");
        assert_eq!(probe.samples, 3);
        assert!(probe.min <= probe.mean && probe.mean <= probe.max);
        // Drained: a second take returns nothing new for that label.
        assert!(take_summaries().iter().all(|s| s.label != "registry/probe"));
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
