//! Property-based tests over the whole stack: random triple soups must
//! close identically under Slider and the semi-naive oracle; parser and
//! dictionary round-trips; closure-size laws.

use proptest::prelude::*;
use slider::baseline::closure;
use slider::model::vocab;
use slider::prelude::*;
use std::sync::Arc;

// ---------- generators ----------------------------------------------------

/// A node id drawn from a small universe (so joins actually happen).
fn small_node() -> impl Strategy<Value = NodeId> {
    (0u64..12).prop_map(|v| NodeId(1000 + v))
}

/// A predicate: biased towards the RDFS vocabulary so rules fire, with
/// occasional plain predicates.
fn schema_heavy_predicate() -> impl Strategy<Value = NodeId> {
    prop_oneof![
        3 => Just(vocab::RDFS_SUB_CLASS_OF),
        3 => Just(vocab::RDF_TYPE),
        2 => Just(vocab::RDFS_SUB_PROPERTY_OF),
        2 => Just(vocab::RDFS_DOMAIN),
        2 => Just(vocab::RDFS_RANGE),
        2 => (0u64..4).prop_map(|v| NodeId(1000 + v)), // instance predicates
    ]
}

fn random_triples(max: usize) -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec(
        (small_node(), schema_heavy_predicate(), small_node())
            .prop_map(|(s, p, o)| Triple::new(s, p, o)),
        0..max,
    )
}

fn arbitrary_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z][a-z0-9/.#-]{0,30}".prop_map(|s| Term::iri(format!("http://e/{s}"))),
        any::<String>().prop_map(Term::literal),
        ("[ -~]{0,20}", "[a-z]{2,5}").prop_map(|(lex, tag)| Term::Literal(Literal::lang(lex, tag))),
        ("[ -~]{0,20}", "[a-z]{1,10}")
            .prop_map(|(lex, dt)| Term::Literal(Literal::typed(lex, format!("http://dt/{dt}")))),
        "[A-Za-z0-9][A-Za-z0-9_-]{0,10}".prop_map(Term::blank),
    ]
}

// ---------- reasoner properties -------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Slider ≡ semi-naive oracle on random ρdf soups.
    #[test]
    fn slider_matches_oracle_rho_df(input in random_triples(80)) {
        let dict = Arc::new(Dictionary::new());
        let expected = closure(Ruleset::rho_df(), &input).to_sorted_vec();
        let slider = Slider::new(Arc::clone(&dict), Ruleset::rho_df(), SliderConfig::default());
        slider.add_triples(&input);
        slider.wait_idle();
        prop_assert_eq!(slider.store().to_sorted_vec(), expected);
    }

    /// Same with pathological buffering (capacity 1, single worker).
    #[test]
    fn slider_matches_oracle_tiny_buffers(input in random_triples(40)) {
        let dict = Arc::new(Dictionary::new());
        let expected = closure(Ruleset::rho_df(), &input).to_sorted_vec();
        let config = SliderConfig::default().with_buffer_capacity(1).with_workers(1);
        let slider = Slider::new(Arc::clone(&dict), Ruleset::rho_df(), config);
        slider.add_triples(&input);
        slider.wait_idle();
        prop_assert_eq!(slider.store().to_sorted_vec(), expected);
    }

    /// Incremental = batch on random soups and random chunkings.
    #[test]
    fn incremental_equals_batch(input in random_triples(60), chunk in 1usize..16) {
        let dict = Arc::new(Dictionary::new());
        let batch = Slider::new(Arc::clone(&dict), Ruleset::rho_df(), SliderConfig::default());
        batch.add_triples(&input);
        batch.wait_idle();

        let inc = Slider::new(Arc::clone(&dict), Ruleset::rho_df(), SliderConfig::default());
        for c in input.chunks(chunk) {
            inc.add_triples(c);
        }
        inc.wait_idle();
        prop_assert_eq!(batch.store().to_sorted_vec(), inc.store().to_sorted_vec());
    }

    /// Closures are monotone: a superset input yields a superset closure.
    #[test]
    fn closure_is_monotone(input in random_triples(50), extra in random_triples(10)) {
        let small = closure(Ruleset::rho_df(), &input);
        let mut combined = input.clone();
        combined.extend_from_slice(&extra);
        let big = closure(Ruleset::rho_df(), &combined);
        for t in small.iter() {
            prop_assert!(big.contains(t), "monotonicity violated for {}", t);
        }
    }

    /// The closure is a fixpoint: reclosing it adds nothing.
    #[test]
    fn closure_is_idempotent(input in random_triples(50)) {
        let first = closure(Ruleset::rho_df(), &input).to_sorted_vec();
        let second = closure(Ruleset::rho_df(), &first).to_sorted_vec();
        prop_assert_eq!(first, second);
    }
}

// ---------- shared-runtime properties --------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Multi-tenant closure equality: three sessions on ONE shared
    /// runtime interleave adds, deferred retractions and flushes — with
    /// the flusher's budget-sliced deadline flushes racing the explicit
    /// ones — and each session must land exactly on the closure of its
    /// own surviving explicit set. Session-fair scheduling, budget
    /// slicing and the shared flusher must neither leak triples across
    /// tenants nor lose retractions.
    #[test]
    fn shared_runtime_sessions_match_their_oracles(
        soups in prop::collection::vec(random_triples(50), 3..4),
        chunk in 1usize..8,
    ) {
        use std::time::Duration;
        let runtime = Runtime::new(
            RuntimeConfig::default()
                .with_workers(2)
                // Zero budget: deadline flushes defer maximally, so the
                // sliced path is exercised on every case.
                .with_maintenance_budget(Some(Duration::ZERO)),
        );
        let config = SliderConfig::default()
            .with_maintenance_max_age(Some(Duration::from_millis(1)));
        let sessions: Vec<Slider> = (0..soups.len())
            .map(|_| {
                runtime.session(
                    Arc::new(Dictionary::new()),
                    Ruleset::rho_df(),
                    config.clone(),
                )
            })
            .collect();

        // Interleave the feeds round-robin across sessions.
        let mut cursors: Vec<_> = soups.iter().map(|s| s.chunks(chunk)).collect();
        loop {
            let mut fed = false;
            for (session, cursor) in sessions.iter().zip(cursors.iter_mut()) {
                if let Some(c) = cursor.next() {
                    session.add_triples(c);
                    fed = true;
                }
            }
            if !fed {
                break;
            }
        }
        for session in &sessions {
            session.wait_idle();
        }

        // Defer every second distinct triple, interleaved across sessions,
        // with explicit flushes racing the deadline-triggered sliced ones.
        let doomed: Vec<Vec<Triple>> = soups
            .iter()
            .map(|soup| {
                let mut seen = std::collections::HashSet::new();
                soup.iter()
                    .copied()
                    .filter(|t| seen.insert(*t))
                    .step_by(2)
                    .collect()
            })
            .collect();
        let mut cursors: Vec<_> = doomed.iter().map(|d| d.chunks(chunk)).collect();
        let mut round = 0usize;
        loop {
            let mut fed = false;
            for (i, (session, cursor)) in sessions.iter().zip(cursors.iter_mut()).enumerate() {
                if let Some(c) = cursor.next() {
                    session.remove_deferred(c);
                    fed = true;
                    if (round + i) % 3 == 0 {
                        session.flush_maintenance();
                    }
                }
            }
            round += 1;
            if !fed {
                break;
            }
        }

        for ((session, soup), doomed) in sessions.iter().zip(&soups).zip(&doomed) {
            session.flush_maintenance();
            session.wait_idle();
            let survivors: Vec<Triple> = soup
                .iter()
                .copied()
                .filter(|t| !doomed.contains(t))
                .collect();
            let expected = closure(Ruleset::rho_df(), &survivors).to_sorted_vec();
            prop_assert_eq!(
                session.store().to_sorted_vec(),
                expected,
                "a shared-runtime session diverged from its oracle"
            );
            prop_assert_eq!(session.stats().pending_removals, 0);
        }
    }
}

// ---------- store properties ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Store insertion is set semantics: count and membership match a
    /// reference HashSet regardless of duplicates and order.
    #[test]
    fn store_is_a_set(input in random_triples(120)) {
        let mut store = VerticalStore::new();
        let mut reference = std::collections::HashSet::new();
        for &t in &input {
            prop_assert_eq!(store.insert(t), reference.insert(t));
        }
        prop_assert_eq!(store.len(), reference.len());
        for &t in &input {
            prop_assert!(store.contains(t));
        }
        let mut via_iter: Vec<Triple> = store.iter().collect();
        via_iter.sort_unstable();
        let mut via_ref: Vec<Triple> = reference.into_iter().collect();
        via_ref.sort_unstable();
        prop_assert_eq!(via_iter, via_ref);
    }

    /// Pattern matching agrees with brute force for all 8 pattern shapes.
    #[test]
    fn patterns_agree_with_reference(input in random_triples(60), probe in random_triples(1)) {
        let store: VerticalStore = input.iter().copied().collect();
        let probe = probe.first().copied()
            .unwrap_or(Triple::new(NodeId(1000), NodeId(1001), NodeId(1002)));
        for mask in 0u8..8 {
            let pattern = TriplePattern::new(
                (mask & 1 != 0).then_some(probe.s),
                (mask & 2 != 0).then_some(probe.p),
                (mask & 4 != 0).then_some(probe.o),
            );
            let mut got = store.matches(pattern);
            got.sort_unstable();
            got.dedup();
            let mut want: Vec<Triple> =
                input.iter().copied().filter(|&t| pattern.matches(t)).collect();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(got, want, "mask {}", mask);
        }
    }
}

// ---------- parser / dictionary round-trips --------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// write(term) then parse() is the identity, for arbitrary content
    /// including control characters, quotes and non-ASCII.
    #[test]
    fn ntriples_roundtrip(s in arbitrary_term(), o in arbitrary_term()) {
        // Subjects must be IRI/blank; predicates IRIs.
        let s = match s {
            Term::Literal(_) => Term::iri("http://e/s"),
            other => other,
        };
        let p = Term::iri("http://e/p");
        let triple = (s, p, o);
        let mut doc = String::new();
        slider::parser::write_triple(&mut doc, &triple);
        let parsed: Vec<TermTriple> = slider::parser::parse_ntriples_str(&doc)
            .collect::<Result<_, _>>()
            .map_err(|e| TestCaseError::fail(format!("{e} in {doc:?}")))?;
        prop_assert_eq!(parsed, vec![triple]);
    }

    /// Dictionary interning is a bijection on the interned set.
    #[test]
    fn dictionary_roundtrip(terms in prop::collection::vec(arbitrary_term(), 1..40)) {
        let dict = Dictionary::new();
        let ids: Vec<NodeId> = terms.iter().map(|t| dict.intern(t)).collect();
        for (term, &id) in terms.iter().zip(&ids) {
            let looked_up = dict.lookup(id);
            prop_assert_eq!(looked_up.as_ref(), Some(term));
            prop_assert_eq!(dict.id_of(term), Some(id));
        }
        // Distinct terms ↔ distinct ids.
        let distinct_terms: std::collections::HashSet<&Term> = terms.iter().collect();
        let distinct_ids: std::collections::HashSet<NodeId> = ids.iter().copied().collect();
        prop_assert_eq!(distinct_terms.len(), distinct_ids.len());
    }
}

// ---------- closure-size laws ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The subClassOf-chain law the paper builds its worst case on:
    /// closure size is exactly quadratic.
    #[test]
    fn chain_closure_size_law(n in 3usize..60) {
        let dict = Arc::new(Dictionary::new());
        let data = slider::workloads::chains::subclass_chain(n);
        let input = slider::workloads::encode_all(&data, &dict);
        let slider = Slider::new(Arc::clone(&dict), Ruleset::rho_df(), SliderConfig::default());
        slider.add_triples(&input);
        slider.wait_idle();
        let inferred = slider.store().len() - input.len();
        prop_assert_eq!(inferred, (n - 1) * (n - 2) / 2);
    }
}
