//! Concurrency stress: multi-source ingestion, queries racing inference,
//! and teardown under load — the paper's "multiple instances of input
//! manager allows to retrieve data from various sources".

use slider::prelude::*;
use slider::workloads::{encode_all, PaperOntology};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn many_producers_one_closure() {
    let data = PaperOntology::Bsbm100k.generate(0.01);
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&data, &dict);

    // Expected closure from a single-threaded feed.
    let expected = {
        let slider = Slider::new(
            Arc::clone(&dict),
            Ruleset::rho_df(),
            SliderConfig::default(),
        );
        slider.add_triples(&input);
        slider.wait_idle();
        slider.store().to_sorted_vec()
    };

    // 8 producers feeding interleaved slices concurrently.
    let slider = Arc::new(Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default(),
    ));
    std::thread::scope(|scope| {
        for producer in 0..8 {
            let slider = Arc::clone(&slider);
            let slice: Vec<Triple> = input.iter().copied().skip(producer).step_by(8).collect();
            scope.spawn(move || {
                for chunk in slice.chunks(64) {
                    slider.add_triples(chunk);
                }
            });
        }
    });
    slider.wait_idle();
    assert_eq!(slider.store().to_sorted_vec(), expected);
}

#[test]
fn readers_race_inference_without_torn_state() {
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&PaperOntology::SubClassOf200.generate(1.0), &dict);
    let slider = Arc::new(Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default(),
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let slider = Arc::clone(&slider);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut last = 0usize;
            let mut observations = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let now = slider.store().len();
                assert!(now >= last, "reader saw the store shrink");
                last = now;
                observations += 1;
            }
            observations
        }));
    }

    slider.add_triples(&input);
    slider.wait_idle();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    // Chain closure exact size: input 399 + 199·198/2 inferred.
    assert_eq!(slider.store().len(), 399 + 19_701);
}

#[test]
fn wait_idle_from_multiple_threads() {
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&PaperOntology::SubClassOf100.generate(1.0), &dict);
    let slider = Arc::new(Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default(),
    ));
    slider.add_triples(&input);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let slider = Arc::clone(&slider);
            scope.spawn(move || slider.wait_idle());
        }
    });
    assert_eq!(slider.store().len(), 199 + 4_851);
}

#[test]
fn stats_reads_race_inference() {
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&PaperOntology::Bsbm100k.generate(0.005), &dict);
    let slider = Arc::new(Slider::new(
        Arc::clone(&dict),
        Ruleset::rdfs(&dict),
        SliderConfig::default(),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let observer = {
        let slider = Arc::clone(&slider);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let snap = slider.stats();
                // Derived ≥ fresh per rule, always.
                for r in &snap.rules {
                    assert!(
                        r.derived >= r.fresh,
                        "{}: {} < {}",
                        r.name,
                        r.derived,
                        r.fresh
                    );
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };
    slider.add_triples(&input);
    slider.wait_idle();
    stop.store(true, Ordering::Relaxed);
    observer.join().unwrap();

    let finali = slider.stats();
    assert_eq!(
        finali.store_size as u64,
        finali.input_fresh + finali.total_inferred()
    );
}

#[test]
fn removals_race_insertions_without_corrupting_invariants() {
    // Plain (non-schema) predicates: the ρdf rules derive nothing, so the
    // expected final store is exactly the surviving explicit set — which
    // makes len()/dedup/provenance invariants checkable under full racing.
    let plain = |k: u64| Triple::new(NodeId(50_000 + k), NodeId(40_000), NodeId(60_000 + k));
    let preloaded: Vec<Triple> = (0..600).map(plain).collect();
    let added: Vec<Triple> = (600..1_200).map(plain).collect();
    let (doomed, kept) = preloaded.split_at(300);

    let dict = Arc::new(Dictionary::new());
    let slider = Arc::new(Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default(),
    ));
    slider.add_triples(&preloaded);
    slider.wait_idle();

    std::thread::scope(|scope| {
        // 4 producers keep inserting fresh triples…
        for producer in 0..4 {
            let slider = Arc::clone(&slider);
            let slice: Vec<Triple> = added.iter().copied().skip(producer).step_by(4).collect();
            scope.spawn(move || {
                for chunk in slice.chunks(16) {
                    slider.add_triples(chunk);
                }
            });
        }
        // …while 2 removers retract disjoint halves of the preload.
        for (remover, slice) in doomed.chunks(150).enumerate() {
            let slider = Arc::clone(&slider);
            let slice = slice.to_vec();
            scope.spawn(move || {
                let mut retracted = 0usize;
                for chunk in slice.chunks(25) {
                    retracted += slider.remove_triples(chunk);
                }
                assert_eq!(retracted, 150, "remover {remover} lost retractions");
            });
        }
    });
    slider.wait_idle();

    // Exact final contents: preload minus doomed plus added, each once.
    let mut expected: Vec<Triple> = kept.iter().chain(added.iter()).copied().collect();
    expected.sort_unstable();
    let got = slider.store().to_sorted_vec();
    assert_eq!(got, expected);
    // len() agrees with the enumerated (deduplicated) contents, and every
    // survivor kept its explicit provenance.
    assert_eq!(slider.store().len(), got.len());
    let stats = slider.stats();
    assert_eq!(stats.store.explicit, expected.len());
    assert_eq!(stats.store.derived, 0);
    assert_eq!(stats.retracted, 300);
}

#[test]
fn deferred_removals_race_insertions_and_flushes() {
    // Plain (non-schema) predicates as above: the expected final store is
    // exactly the surviving explicit set. Deferred removers race producers
    // AND the threshold/explicit flush triggers: retractions land in
    // whatever coalesced run wins, but the end state is exact.
    let plain = |k: u64| Triple::new(NodeId(70_000 + k), NodeId(40_001), NodeId(80_000 + k));
    let preloaded: Vec<Triple> = (0..600).map(plain).collect();
    let added: Vec<Triple> = (600..1_200).map(plain).collect();
    let (doomed, kept) = preloaded.split_at(300);

    let dict = Arc::new(Dictionary::new());
    // Small threshold: auto-flushes fire mid-race; no deadline so runs are
    // driven by the racing threads themselves (plus the final flush).
    let config = SliderConfig::default()
        .with_maintenance_batch(64)
        .with_maintenance_max_age(None);
    let slider = Arc::new(Slider::new(Arc::clone(&dict), Ruleset::rho_df(), config));
    slider.add_triples(&preloaded);
    slider.wait_idle();

    std::thread::scope(|scope| {
        // 4 producers keep inserting fresh triples…
        for producer in 0..4 {
            let slider = Arc::clone(&slider);
            let slice: Vec<Triple> = added.iter().copied().skip(producer).step_by(4).collect();
            scope.spawn(move || {
                for chunk in slice.chunks(16) {
                    slider.add_triples(chunk);
                }
            });
        }
        // …while 2 deferred removers enqueue disjoint halves of the
        // preload, and one of them interleaves explicit flushes.
        for (remover, slice) in doomed.chunks(150).enumerate() {
            let slider = Arc::clone(&slider);
            let slice = slice.to_vec();
            scope.spawn(move || {
                let mut enqueued = 0usize;
                for chunk in slice.chunks(25) {
                    enqueued += slider.remove_deferred(chunk);
                    if remover == 0 {
                        slider.flush_maintenance();
                    }
                }
                // Disjoint slices, each triple deferred once: every
                // enqueue is fresh even under full racing.
                assert_eq!(enqueued, 150, "remover {remover} lost deferrals");
            });
        }
    });
    // Apply whatever generation is still pending, then settle.
    slider.flush_maintenance();
    slider.wait_idle();

    // Exact final contents: preload minus doomed plus added, each once.
    let mut expected: Vec<Triple> = kept.iter().chain(added.iter()).copied().collect();
    expected.sort_unstable();
    let got = slider.store().to_sorted_vec();
    assert_eq!(got, expected);
    let stats = slider.stats();
    assert_eq!(stats.store.explicit, expected.len());
    assert_eq!(stats.store.derived, 0);
    assert_eq!(stats.deferred, 300);
    assert_eq!(stats.retracted, 300);
    assert_eq!(stats.pending_removals, 0);
    assert!(stats.coalesced_runs > 0);
}

#[test]
fn producers_race_parallel_partition_flushes() {
    // Two independent rule families (disjoint vocabularies → two
    // maintenance partitions) plus an inert predicate. Producers keep
    // asserting chain links in both families while deferred removers
    // retract earlier links and force flushes whose pending sets span the
    // partitions — every such flush runs as parallel DRed passes that
    // split the store, maintain the shards concurrently and merge them
    // back, racing the blocked producers.
    use slider::rules::{Subsumption, Transitive};
    let trans_a = NodeId(90_000);
    let is_a = NodeId(90_001);
    let trans_b = NodeId(90_010);
    let inert = NodeId(90_666);
    let ruleset = Ruleset::custom("race-families")
        .with(Transitive::new("T-A", trans_a))
        .with(Subsumption::new("S-A", is_a, trans_a))
        .with(Transitive::new("T-B", trans_b));

    // Spaced chains: links (2k)→(2k+1) never concatenate, so each family's
    // closure is exactly its explicit links — the expected final store is
    // enumerable even under full racing — while retractions still exercise
    // the real DRed machinery per partition.
    let link = |p: NodeId, k: u64| Triple::new(NodeId(100_000 + 2 * k), p, NodeId(100_001 + 2 * k));
    let preload: Vec<Triple> = (0..200)
        .flat_map(|k| [link(trans_a, k), link(trans_b, k)])
        .chain((0..100).map(|k| Triple::new(NodeId(200_000 + k), inert, NodeId(200_500 + k))))
        .collect();
    let added: Vec<Triple> = (200..400)
        .flat_map(|k| [link(trans_a, k), link(trans_b, k)])
        .collect();
    // Doomed: the first 100 links of each family plus half the inert set.
    let doomed: Vec<Triple> = (0..100)
        .flat_map(|k| [link(trans_a, k), link(trans_b, k)])
        .chain((0..50).map(|k| Triple::new(NodeId(200_000 + k), inert, NodeId(200_500 + k))))
        .collect();

    let dict = Arc::new(Dictionary::new());
    let config = SliderConfig::default()
        .with_maintenance_batch(48) // threshold flushes fire mid-race
        .with_maintenance_max_age(None);
    let slider = Arc::new(Slider::new(Arc::clone(&dict), ruleset, config));
    slider.add_triples(&preload);
    slider.wait_idle();
    assert_eq!(slider.maintenance_partitions(), 2);

    std::thread::scope(|scope| {
        // 3 producers keep inserting fresh links in both families…
        for producer in 0..3 {
            let slider = Arc::clone(&slider);
            let slice: Vec<Triple> = added.iter().copied().skip(producer).step_by(3).collect();
            scope.spawn(move || {
                for chunk in slice.chunks(16) {
                    slider.add_triples(chunk);
                }
            });
        }
        // …while 2 deferred removers enqueue cross-partition retractions;
        // one interleaves explicit flushes on top of the threshold ones.
        for (remover, slice) in doomed.chunks(125).enumerate() {
            let slider = Arc::clone(&slider);
            let slice = slice.to_vec();
            scope.spawn(move || {
                for chunk in slice.chunks(25) {
                    slider.remove_deferred(chunk);
                    if remover == 0 {
                        slider.flush_maintenance();
                    }
                }
            });
        }
    });
    slider.flush_maintenance();
    slider.wait_idle();

    // Exact final contents: preload minus doomed plus added, each once.
    let mut expected: Vec<Triple> = preload
        .iter()
        .filter(|t| !doomed.contains(t))
        .chain(added.iter())
        .copied()
        .collect();
    expected.sort_unstable();
    let got = slider.store().to_sorted_vec();
    assert_eq!(got, expected);
    let stats = slider.stats();
    assert_eq!(stats.store.explicit, expected.len());
    assert_eq!(stats.deferred, 250);
    assert_eq!(stats.retracted, 250);
    assert_eq!(stats.pending_removals, 0);
    assert!(stats.coalesced_runs > 0);
    assert!(
        stats.partitioned_runs > 0,
        "no flush spanned both partitions\n{stats}"
    );
}

/// Lock-free read path, acceptance pin (a): `matches`/`stats`/
/// `to_sorted_vec` complete while a shard write lock is held
/// **indefinitely** — the reader answers from the published epoch and
/// never touches the shard lock. Bounded-time via a channel timeout: a
/// regression back to lock-pinned reads deadlocks the reader thread and
/// trips the `recv_timeout`.
#[test]
fn queries_complete_while_a_shard_write_lock_is_held() {
    use slider::model::vocab::RDFS_SUB_CLASS_OF;
    let dict = Arc::new(Dictionary::new());
    let slider = Arc::new(Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default(),
    ));
    let chain: Vec<Triple> = (1..20)
        .map(|i| Triple::new(NodeId(1_000 + i), RDFS_SUB_CLASS_OF, NodeId(1_001 + i)))
        .collect();
    slider.materialize(&chain);
    let expected = slider.store().to_sorted_vec();

    // Hold the write lock of the shard every subClassOf triple lives in —
    // the worst case for the old lock-pinned read path.
    let guard = slider.store().write_shard(RDFS_SUB_CLASS_OF);
    let (tx, rx) = std::sync::mpsc::channel();
    let reader = {
        let slider = Arc::clone(&slider);
        std::thread::spawn(move || {
            let sorted = slider.store().to_sorted_vec();
            let stats = slider.stats();
            let scoped = slider
                .store()
                .matches(TriplePattern::with_p(RDFS_SUB_CLASS_OF));
            let _ = tx.send((sorted, stats, scoped));
        })
    };
    let (sorted, stats, scoped) = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("reads blocked behind a held shard write lock");
    assert_eq!(sorted, expected, "epoch read returned a torn cut");
    assert_eq!(stats.store_size, expected.len());
    assert_eq!(scoped.len(), expected.len(), "all triples are subClassOf");
    drop(guard);
    reader.join().unwrap();
}

/// Dictionary tentpole, acceptance pin: id→term and id→kind lookups take
/// **zero locks** — they answer from the append-only segmented slot table
/// and complete in bounded time while an intern write lock is held
/// indefinitely. `shards: 1` is the worst case: the single shard's lock
/// covers every term, so a regression back to lock-pinned lookups (the
/// old `RwLock<Inner>` design) deadlocks the reader thread and trips the
/// `recv_timeout`.
#[test]
fn dict_lookups_complete_while_an_intern_write_lock_is_held() {
    use slider::model::vocab::VOCAB_LEN;
    use slider::model::{DictConfig, TermKind};

    let dict = Arc::new(Dictionary::with_config(DictConfig { shards: 1 }));
    let iri = Term::iri("http://example.org/held-shard");
    let lit = Term::literal("forty-two");
    let iri_id = dict.intern(&iri);
    let lit_id = dict.intern(&lit);

    // One shard ⇒ this guard write-locks the entire term→id index.
    let guard = dict.lock_intern_shard(&iri);
    let (tx, rx) = std::sync::mpsc::channel();
    let reader = {
        let dict = Arc::clone(&dict);
        std::thread::spawn(move || {
            let _ = tx.send((
                dict.lookup(iri_id),
                dict.kind(iri_id),
                dict.kind(lit_id),
                dict.is_literal(lit_id),
                dict.len(),
            ));
        })
    };
    let (looked_up, iri_kind, lit_kind, lit_is_literal, len) = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("id→term/kind lookups blocked behind a held intern write lock");
    assert_eq!(looked_up, Some(iri), "lookup resolved the wrong payload");
    assert_eq!(iri_kind, Some(TermKind::Iri));
    assert_eq!(lit_kind, Some(TermKind::Literal));
    assert!(lit_is_literal);
    assert_eq!(len, VOCAB_LEN + 2);
    drop(guard);
    reader.join().unwrap();
}

/// Lock-free read path (c): reads complete while `exclusive()` holds the
/// whole store gathered behind the maintenance gate in write mode — and
/// they see the **pre-exclusive** epoch until the section releases, at
/// which point the mutation becomes visible as one atomic publication.
#[test]
fn queries_answer_from_the_old_epoch_while_exclusive_holds_the_store() {
    let p = NodeId(40_123);
    let t1 = Triple::new(NodeId(1), p, NodeId(2));
    let t2 = Triple::new(NodeId(3), p, NodeId(4));
    let slider = Arc::new(Slider::new(
        Arc::new(Dictionary::new()),
        Ruleset::custom("none"),
        SliderConfig::default(),
    ));
    slider.materialize(&[t1]);

    let mut exclusive = slider.store().exclusive();
    exclusive.insert(t2);
    let (tx, rx) = std::sync::mpsc::channel();
    {
        let slider = Arc::clone(&slider);
        std::thread::spawn(move || {
            let snap = slider.store().snapshot();
            let _ = tx.send((snap.contains(t1), snap.contains(t2), snap.len()));
        });
    }
    let (has_t1, has_t2, len) = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("reads blocked behind the exclusive section");
    assert!(has_t1, "pre-exclusive triple missing from the epoch");
    assert!(
        !has_t2,
        "uncommitted exclusive mutation leaked into readers"
    );
    assert_eq!(len, 1);
    drop(exclusive);
    // Release republishes: the mutation is now visible atomically.
    assert!(slider.store().contains(t2));
    assert_eq!(slider.store().len(), 2);
}

/// Lock-free read path (b): a reader loops `stats`/`to_sorted_vec` while
/// partitioned DRed flushes run. Reads never block (progress is asserted
/// on both sides), generations never regress, and **every observed cut is
/// one of the legal store states** — the pre-flush closure or the
/// post-flush closure — never a torn intermediate (DRed's overdeletions
/// and rederivations publish as one epoch at gate release).
#[test]
fn readers_observe_only_legal_cuts_across_partitioned_flushes() {
    use slider::rules::Transitive;
    let pa = NodeId(91_000);
    let pb = NodeId(91_010);
    let ruleset = Ruleset::custom("two-families")
        .with(Transitive::new("T-A", pa))
        .with(Transitive::new("T-B", pb));
    let slider = Arc::new(Slider::new(
        Arc::new(Dictionary::new()),
        ruleset,
        SliderConfig::default().with_maintenance_batch(usize::MAX),
    ));
    assert_eq!(slider.maintenance_partitions(), 2);
    let link = |p: NodeId, i: u64| Triple::new(NodeId(92_000 + i), p, NodeId(92_001 + i));
    let chains: Vec<Triple> = (1..6).flat_map(|i| [link(pa, i), link(pb, i)]).collect();
    slider.materialize(&chains);
    let before = slider.store().to_sorted_vec();

    // The flush will retract one middle link per family (a partitioned
    // run), landing exactly on this closure:
    let doomed = [link(pa, 3), link(pb, 3)];
    let survivors: Vec<Triple> = chains
        .iter()
        .copied()
        .filter(|t| !doomed.contains(t))
        .collect();
    let after = {
        let oracle = Slider::new(
            Arc::new(Dictionary::new()),
            Ruleset::custom("two-families")
                .with(Transitive::new("T-A", pa))
                .with(Transitive::new("T-B", pb)),
            SliderConfig::default(),
        );
        oracle.materialize(&survivors);
        oracle.store().to_sorted_vec()
    };

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let slider = Arc::clone(&slider);
        let stop = Arc::clone(&stop);
        let (before, after) = (before.clone(), after.clone());
        std::thread::spawn(move || {
            let mut last_generation = 0u64;
            let mut observations = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let snap = slider.store().snapshot();
                assert!(
                    snap.generation() >= last_generation,
                    "epoch generation regressed"
                );
                last_generation = snap.generation();
                let cut = snap.to_sorted_vec();
                assert_eq!(cut.len(), snap.len(), "epoch len out of step");
                assert!(
                    cut == before || cut == after,
                    "reader observed a torn cut ({} triples)",
                    cut.len()
                );
                observations += 1;
            }
            observations
        })
    };
    slider.remove_deferred(&doomed);
    slider.flush_maintenance();
    stop.store(true, Ordering::Relaxed);
    assert!(reader.join().unwrap() > 0, "reader made no progress");
    assert_eq!(slider.store().to_sorted_vec(), after);
    assert_eq!(
        slider.stats().partitioned_runs,
        1,
        "flush did not partition"
    );
}

/// Generation-monotonicity regression: an epoch acquired **before** a
/// maintenance flush is immutable — it never observes the post-flush
/// retractions — while a snapshot acquired after sees them all, at a
/// strictly higher generation.
#[test]
fn snapshot_acquired_before_a_flush_never_observes_its_retractions() {
    use slider::model::vocab::RDFS_SUB_CLASS_OF;
    let slider = Slider::new(
        Arc::new(Dictionary::new()),
        Ruleset::rho_df(),
        SliderConfig::default(),
    );
    let sco = |a: u64, b: u64| Triple::new(NodeId(2_000 + a), RDFS_SUB_CLASS_OF, NodeId(2_000 + b));
    slider.materialize(&[sco(1, 2), sco(2, 3)]);
    let pinned = slider.store().snapshot();
    assert!(pinned.contains(sco(1, 3)), "closure incomplete");

    assert_eq!(slider.remove_triples(&[sco(2, 3)]), 1);
    // The pinned epoch still answers from the pre-flush world…
    assert!(pinned.contains(sco(2, 3)));
    assert!(pinned.contains(sco(1, 3)));
    assert_eq!(pinned.len(), 3);
    // …while the current epoch has the retraction and its consequences.
    let current = slider.store().snapshot();
    assert!(!current.contains(sco(2, 3)));
    assert!(!current.contains(sco(1, 3)));
    assert!(current.generation() > pinned.generation());
    assert_eq!(slider.stats().snapshot_generation, current.generation());
}

#[test]
fn drop_under_load_terminates() {
    for _ in 0..5 {
        let dict = Arc::new(Dictionary::new());
        let input = encode_all(&PaperOntology::SubClassOf200.generate(1.0), &dict);
        let slider = Slider::new(
            Arc::clone(&dict),
            Ruleset::rho_df(),
            SliderConfig::default().with_buffer_capacity(4),
        );
        slider.add_triples(&input);
        // Drop while hundreds of jobs are in flight.
        drop(slider);
    }
}

// ───────────────────── shared runtime: multi-tenant sessions ─────────────────────

/// Acceptance pin: N ≥ 8 sessions on one `Runtime` run on exactly
/// `workers + 1` threads (the pool plus one flusher) — nothing is spawned
/// per session — and concurrent feeds close each session's store exactly,
/// with no bleed between tenants.
#[test]
fn eight_sessions_share_one_pool_and_close_independently() {
    use slider::model::vocab::RDFS_SUB_CLASS_OF;
    let runtime = Runtime::new(RuntimeConfig::default().with_workers(3));
    let sessions: Vec<Slider> = (0..8)
        .map(|_| runtime.session_fragment(Fragment::RhoDf, SliderConfig::default()))
        .collect();
    assert_eq!(runtime.session_count(), 8);
    assert_eq!(
        runtime.thread_count(),
        3 + 1,
        "a session must not spawn threads: workers + one flusher, always"
    );

    // Session i gets a subClassOf chain of 10 + i links; the closures are
    // different sizes on purpose, so any cross-session bleed is visible.
    let links = |i: usize| 10 + i as u64;
    std::thread::scope(|scope| {
        for (i, session) in sessions.iter().enumerate() {
            scope.spawn(move || {
                let chain: Vec<Triple> = (0..links(i))
                    .map(|k| Triple::new(NodeId(500 + k), RDFS_SUB_CLASS_OF, NodeId(501 + k)))
                    .collect();
                for chunk in chain.chunks(3) {
                    session.add_triples(chunk);
                }
                session.wait_idle();
            });
        }
    });
    for (i, session) in sessions.iter().enumerate() {
        let l = links(i) as usize;
        assert_eq!(
            session.store().len(),
            l * (l + 1) / 2,
            "session {i}: chain closure wrong"
        );
        assert_eq!(session.stats().runtime_sessions, 8);
    }
}

/// Satellite pin (teardown order): dropping one session must not tear
/// down the shared pool or flusher. The co-tenant keeps computing exact
/// closures afterwards — including **timeout-driven** buffer flushes,
/// which only the (still-alive) flusher thread can fire.
#[test]
fn dropping_one_session_leaves_the_cotenant_running() {
    use slider::model::vocab::RDFS_SUB_CLASS_OF;
    let runtime = Runtime::new(RuntimeConfig::default().with_workers(2));
    let doomed = runtime.session_fragment(Fragment::RhoDf, SliderConfig::default());
    let survivor = Arc::new(runtime.session_fragment(Fragment::RhoDf, SliderConfig::default()));

    // Put the doomed session under load and drop it mid-flight.
    let sco = |a: u64, b: u64| Triple::new(NodeId(3_000 + a), RDFS_SUB_CLASS_OF, NodeId(3_000 + b));
    doomed.add_triples(&(0..200).map(|k| sco(k, k + 1)).collect::<Vec<_>>());
    drop(doomed);
    assert_eq!(runtime.session_count(), 1);
    assert_eq!(runtime.thread_count(), 3, "the pool died with a session");

    // Two triples in a 1024-capacity buffer: only a flusher timeout can
    // drain them. Bound the wait so a dead flusher fails the test instead
    // of hanging it.
    survivor.add_triples(&[sco(1, 2), sco(2, 3)]);
    let (tx, rx) = std::sync::mpsc::channel();
    let waiter = {
        let survivor = Arc::clone(&survivor);
        std::thread::spawn(move || {
            survivor.wait_idle();
            let _ = tx.send(());
        })
    };
    rx.recv_timeout(Duration::from_secs(10))
        .expect("the flusher died with the dropped session");
    waiter.join().unwrap();
    assert_eq!(survivor.store().len(), 3, "sco(1,3) was not derived");
}

/// Satellite pin (flusher wake-up): the flusher parks indefinitely while
/// no live session has a deadline; registering a session **with** one
/// must nudge it awake, or the new session's timeout flushes never fire.
#[test]
fn registering_a_deadlined_session_wakes_a_parked_flusher() {
    use slider::model::vocab::RDFS_SUB_CLASS_OF;
    let runtime = Runtime::new(RuntimeConfig::default().with_workers(1));
    // Spawn-then-drop a deadlined session: the flusher thread starts,
    // then — with the live set empty — has nothing to tick for and parks.
    drop(runtime.session_fragment(Fragment::RhoDf, SliderConfig::default()));
    assert_eq!(runtime.thread_count(), 2);
    std::thread::sleep(Duration::from_millis(30));

    let session = Arc::new(runtime.session_fragment(
        Fragment::RhoDf,
        SliderConfig::default().with_timeout(Some(Duration::from_millis(5))),
    ));
    let sco = |a: u64, b: u64| Triple::new(NodeId(4_000 + a), RDFS_SUB_CLASS_OF, NodeId(4_000 + b));
    session.add_triples(&[sco(1, 2), sco(2, 3)]);
    let (tx, rx) = std::sync::mpsc::channel();
    let waiter = {
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            session.wait_idle();
            let _ = tx.send(());
        })
    };
    rx.recv_timeout(Duration::from_secs(10))
        .expect("registration did not wake the parked flusher");
    waiter.join().unwrap();
    assert_eq!(session.store().len(), 3);
}

/// Isolation battery (a): a rule that panics mid-join loses its own
/// conclusions and nothing else. The panicking session's inflight tokens
/// are released (its `wait_idle` returns), its *other* rules keep
/// deriving, and a co-tenant sharing the workers computes an exact
/// closure throughout.
#[test]
fn a_panicking_rule_is_contained_to_its_session() {
    use slider::rules::{InputFilter, OutputSignature, Rule, Transitive};
    use slider::store::StoreView;

    /// Detonates on every application; accepts only its trigger predicate.
    struct Grenade {
        trigger: NodeId,
    }
    impl Rule for Grenade {
        fn name(&self) -> &'static str {
            "GRENADE"
        }
        fn definition(&self) -> &'static str {
            "(s trigger o) ⊢ panic!"
        }
        fn input_filter(&self) -> InputFilter {
            InputFilter::Predicates(vec![self.trigger])
        }
        fn output_signature(&self) -> OutputSignature {
            OutputSignature::Predicates(vec![])
        }
        fn apply(&self, _store: &StoreView, _delta: &[Triple], _out: &mut Vec<Triple>) {
            panic!("grenade detonated (deliberately, in a test)");
        }
    }

    let trans = NodeId(95_000);
    let trigger = NodeId(95_001);
    let runtime = Runtime::new(RuntimeConfig::default().with_workers(2));
    let victim = Arc::new(
        runtime.session(
            Arc::new(Dictionary::new()),
            Ruleset::custom("grenade")
                .with(Transitive::new("T", trans))
                .with(Grenade { trigger }),
            // Capacity 1: every trigger triple detonates its own rule instance.
            SliderConfig::default().with_buffer_capacity(1),
        ),
    );
    let bystander = Arc::new(runtime.session_fragment(Fragment::RhoDf, SliderConfig::default()));

    let link = |k: u64| Triple::new(NodeId(96_000 + k), trans, NodeId(96_001 + k));
    let bomb = |k: u64| Triple::new(NodeId(97_000 + k), trigger, NodeId(97_500 + k));
    std::thread::scope(|scope| {
        {
            let victim = Arc::clone(&victim);
            scope.spawn(move || {
                for k in 0..20 {
                    victim.add_triples(&[link(k), bomb(k)]);
                }
            });
        }
        {
            let bystander = Arc::clone(&bystander);
            scope.spawn(move || {
                use slider::model::vocab::RDFS_SUB_CLASS_OF;
                let chain: Vec<Triple> = (0..60)
                    .map(|k| Triple::new(NodeId(500 + k), RDFS_SUB_CLASS_OF, NodeId(501 + k)))
                    .collect();
                for chunk in chain.chunks(5) {
                    bystander.add_triples(chunk);
                }
            });
        }
    });

    // The victim still quiesces: every detonated instance released its
    // inflight token. Bound the wait so a leaked token fails, not hangs.
    let (tx, rx) = std::sync::mpsc::channel();
    let waiter = {
        let victim = Arc::clone(&victim);
        std::thread::spawn(move || {
            victim.wait_idle();
            let _ = tx.send(());
        })
    };
    rx.recv_timeout(Duration::from_secs(10))
        .expect("a panicked rule instance leaked its inflight token");
    waiter.join().unwrap();
    bystander.wait_idle();

    // Victim: explicit triples all present (the input manager inserted
    // them before the rules ran), and the non-panicking rule kept
    // deriving — the 20 chained links close transitively (20·21/2 = 210)
    // while the 20 bombs add only themselves.
    assert_eq!(victim.store().len(), 210 + 20);
    // Bystander: untouched by the detonations next door.
    assert_eq!(bystander.store().len(), 60 * 61 / 2);
}

/// Isolation battery (b): a co-tenant with a huge pending DRed being
/// flushed under a per-tick budget must not stall another session's
/// ingest. The flush is sliced (`budget_deferrals` counts the deferrals),
/// drains to the exact closure across ticks, and the other session's
/// `add_triples` calls stay bounded while it happens.
#[test]
fn a_budgeted_flush_defers_and_does_not_stall_the_cotenant() {
    use std::time::Instant;
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            // Zero budget = exactly one reserve slice per tick: maximal
            // slicing, deterministic deferral counts.
            .with_maintenance_budget(Some(Duration::ZERO)),
    );
    let churn = runtime.session(
        Arc::new(Dictionary::new()),
        Ruleset::rho_df(),
        SliderConfig::default()
            .with_maintenance_batch(usize::MAX) // only the deadline triggers
            .with_maintenance_max_age(Some(Duration::from_millis(1))),
    );
    let plain = |k: u64| Triple::new(NodeId(50_000 + k), NodeId(40_000), NodeId(60_000 + k));
    let preload: Vec<Triple> = (0..2_000).map(plain).collect();
    churn.add_triples(&preload);
    churn.wait_idle();
    assert_eq!(churn.remove_deferred(&preload[..1_500]), 1_500);

    // While the flusher slices that backlog, the co-tenant ingests; each
    // call must complete promptly (generous bound — the precise p99 claim
    // is the multi_tenant bench's job).
    let live = Arc::new(runtime.session_fragment(Fragment::RhoDf, SliderConfig::default()));
    use slider::model::vocab::RDFS_SUB_CLASS_OF;
    let chain: Vec<Triple> = (0..100)
        .map(|k| Triple::new(NodeId(500 + k), RDFS_SUB_CLASS_OF, NodeId(501 + k)))
        .collect();
    for chunk in chain.chunks(4) {
        let start = Instant::now();
        live.add_triples(chunk);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "co-tenant ingest stalled behind a sliced flush"
        );
    }
    live.wait_idle();
    assert_eq!(live.store().len(), 100 * 101 / 2);

    // The sliced flush converges to the unsliced store.
    let deadline = Instant::now() + Duration::from_secs(20);
    while churn.stats().pending_removals > 0 {
        assert!(
            Instant::now() < deadline,
            "budget-sliced flush never drained: {}",
            churn.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = churn.stats();
    assert!(
        stats.budget_deferrals > 0,
        "1 500 pending retractions flushed without a single slice deferral\n{stats}"
    );
    assert_eq!(stats.retracted, 1_500);
    assert_eq!(stats.runtime_sessions, 2);
    assert_eq!(churn.store().len(), 500);
}

/// Parallel deletion path, acceptance pin: two eager removals on
/// disjoint subject ranges **overlap in wall-clock time** (their
/// maintenance units run on different threads at once) and land
/// field-for-field where a serial run does.
///
/// Shape of the race: a third, slow removal occupies the maintenance
/// mutex first; the two racing callers enqueue behind it, and whichever
/// acquires the mutex next becomes the combining leader — it drains both
/// batches, sub-splits them by subject bucket and runs the two units
/// concurrently (coordinator inline, the other on the worker pool).
#[test]
fn disjoint_subject_eager_removals_overlap_and_match_serial() {
    use slider::rules::{InputFilter, OutputSignature, Rule, Subsumption, Transitive};
    use slider::store::{subject_bucket, StoreView};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;
    use std::time::Instant;

    const TRANS: NodeId = NodeId(98_000);
    const IS: NodeId = NodeId(98_001);
    const MARK: NodeId = NodeId(98_002);

    /// `(x IS c) ⊢ (x MARK c)`, slowly: every application sleeps and
    /// logs its wall-clock interval, so the test can prove two
    /// maintenance units ran at the same time. `IS` is subject-local
    /// (the conclusion stays on the delta's subject), so the rule keeps
    /// the family sub-splittable.
    struct SlowMark {
        delay: Duration,
        entered: Arc<AtomicUsize>,
        log: Arc<Mutex<Vec<(Instant, Instant)>>>,
    }
    impl Rule for SlowMark {
        fn name(&self) -> &'static str {
            "SLOW-MARK"
        }
        fn definition(&self) -> &'static str {
            "(x IS c) ⊢ (x MARK c), slowly"
        }
        fn input_filter(&self) -> InputFilter {
            InputFilter::Predicates(vec![IS])
        }
        fn output_signature(&self) -> OutputSignature {
            OutputSignature::Predicates(vec![MARK])
        }
        fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
            self.entered.fetch_add(1, Ordering::SeqCst);
            let start = Instant::now();
            std::thread::sleep(self.delay);
            for t in delta.iter().filter(|t| t.p == IS) {
                out.push(Triple::new(t.s, MARK, t.o));
            }
            self.log.lock().unwrap().push((start, Instant::now()));
        }
        fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
            Some(t.p == MARK && store.contains(Triple::new(t.s, IS, t.o)))
        }
        fn subject_local_inputs(&self) -> Vec<NodeId> {
            vec![IS]
        }
    }

    let entered = Arc::new(AtomicUsize::new(0));
    let log: Arc<Mutex<Vec<(Instant, Instant)>>> = Arc::new(Mutex::new(Vec::new()));
    let ruleset =
        |delay: Duration, entered: &Arc<AtomicUsize>, log: &Arc<Mutex<Vec<(Instant, Instant)>>>| {
            Ruleset::custom("slow-family")
                .with(Transitive::new("T", TRANS))
                .with(Subsumption::new("S", IS, TRANS))
                .with(SlowMark {
                    delay,
                    entered: Arc::clone(entered),
                    log: Arc::clone(log),
                })
        };

    // Members whose subject-hash buckets differ at sub-split width 2 —
    // the racing removals are guaranteed to land in different units.
    let member = |want: usize| -> NodeId {
        (0u64..100)
            .map(|v| NodeId(98_400 + v))
            .find(|&s| subject_bucket(s, 2) == want)
            .expect("a subject hashing into the bucket")
    };
    let m0 = member(0);
    let m1 = member(1);
    let m2 = NodeId(98_550);
    let cls = |i: u64| NodeId(98_200 + i);
    let rm = |m: NodeId| Triple::new(m, IS, cls(1));
    let mut input: Vec<Triple> = (1..4)
        .map(|i| Triple::new(cls(i), TRANS, cls(i + 1)))
        .collect();
    input.extend([m0, m1, m2].map(|m| Triple::new(m, IS, cls(1))));

    let par = Arc::new(Slider::new(
        Arc::new(Dictionary::new()),
        ruleset(Duration::from_millis(200), &entered, &log),
        SliderConfig::default()
            .with_workers(2)
            .with_deletion_subsplit(2),
    ));
    par.materialize(&input);

    // From here on, only maintenance passes append to the log; the
    // blocker's applications are serial (it holds the maintenance mutex
    // alone), so any overlapping pair proves two *units* ran at once.
    let start_idx = log.lock().unwrap().len();
    let entered_before = entered.load(Ordering::SeqCst);
    let (o0, o1) = std::thread::scope(|scope| {
        let blocker = {
            let par = Arc::clone(&par);
            scope.spawn(move || par.remove_triples_outcome(&[rm(m2)]))
        };
        // Wait until the blocker's DRed is inside the slow rule — the
        // maintenance mutex is then certainly held, so both racing
        // callers enqueue behind it and combine under the next leader.
        let deadline = Instant::now() + Duration::from_secs(10);
        while entered.load(Ordering::SeqCst) == entered_before {
            assert!(
                Instant::now() < deadline,
                "blocking removal never reached the slow rule"
            );
            std::thread::yield_now();
        }
        let w0 = {
            let par = Arc::clone(&par);
            scope.spawn(move || par.remove_triples_outcome(&[rm(m0)]))
        };
        let w1 = {
            let par = Arc::clone(&par);
            scope.spawn(move || par.remove_triples_outcome(&[rm(m1)]))
        };
        blocker.join().unwrap();
        (w0.join().unwrap(), w1.join().unwrap())
    });

    // Identical-to-serial outcomes, per caller and for the final store.
    let serial = Slider::new(
        Arc::new(Dictionary::new()),
        ruleset(
            Duration::ZERO,
            &Arc::new(AtomicUsize::new(0)),
            &Arc::new(Mutex::new(Vec::new())),
        ),
        SliderConfig::default().with_workers(2),
    );
    serial.materialize(&input);
    serial.remove_triples(&[rm(m2)]);
    let s0 = serial.remove_triples_outcome(&[rm(m0)]);
    let s1 = serial.remove_triples_outcome(&[rm(m1)]);
    assert_eq!(o0, s0, "parallel eager outcome diverged from serial");
    assert_eq!(o1, s1, "parallel eager outcome diverged from serial");
    assert_eq!(
        par.store().to_sorted_vec(),
        serial.store().to_sorted_vec(),
        "parallel eager removals diverged from the serial store"
    );

    // The demonstrable overlap: two slow-rule applications from the
    // combined run were in flight at the same time.
    let intervals: Vec<(Instant, Instant)> = log.lock().unwrap()[start_idx..].to_vec();
    let overlapped = intervals
        .iter()
        .enumerate()
        .any(|(i, a)| intervals[i + 1..].iter().any(|b| a.0 < b.1 && b.0 < a.1));
    assert!(
        overlapped,
        "no two maintenance units overlapped in time ({} intervals)",
        intervals.len()
    );
    let stats = par.stats();
    assert!(stats.parallel_eager_runs >= 1, "{stats}");
    assert!(stats.subpartitioned_runs >= 1, "{stats}");
    assert_eq!(stats.retracted, 3);
}

/// Two-level locking under contention: producers feed **disjoint
/// predicate families** concurrently, so their input writes (and their
/// rules' distributor writes) land on different store shards and no
/// longer serialise on a global writer lock. Whatever the interleaving,
/// no fresh triple may be lost or double-counted: every producer-reported
/// fresh count sums to the explicit population, and the closure equals a
/// single-threaded feed of the same input.
#[test]
fn disjoint_family_producers_lose_no_fresh_triples() {
    use slider::model::NodeId;
    use slider::rules::{Subsumption, Transitive};

    const FAMILIES: usize = 4;
    const TRANS_NAMES: [&str; FAMILIES] = ["T-0", "T-1", "T-2", "T-3"];
    const IS_NAMES: [&str; FAMILIES] = ["S-0", "S-1", "S-2", "S-3"];
    let trans = |f: usize| NodeId(20_000 + 10 * f as u64);
    let is_a = |f: usize| NodeId(20_001 + 10 * f as u64);
    let node = |f: usize, v: u64| NodeId(30_000 + 1_000 * f as u64 + v);

    let ruleset = || {
        let mut rs = Ruleset::custom("four-families");
        for f in 0..FAMILIES {
            rs.push(Transitive::new(TRANS_NAMES[f], trans(f)));
            rs.push(Subsumption::new(IS_NAMES[f], is_a(f), trans(f)));
        }
        rs
    };
    // Each family: a chain plus memberships at several chain positions.
    let family_feed = |f: usize| -> Vec<Triple> {
        let mut feed: Vec<Triple> = (1..40)
            .map(|i| Triple::new(node(f, i), trans(f), node(f, i + 1)))
            .collect();
        for m in 0..10 {
            feed.push(Triple::new(node(f, 500 + m), is_a(f), node(f, 1 + m)));
        }
        feed
    };

    // Expected closure from a single-threaded feed.
    let expected = {
        let slider = Slider::new(
            Arc::new(Dictionary::new()),
            ruleset(),
            SliderConfig::default(),
        );
        for f in 0..FAMILIES {
            slider.add_triples(&family_feed(f));
        }
        slider.wait_idle();
        slider.store().to_sorted_vec()
    };

    for shards in [1usize, 16] {
        let slider = Arc::new(Slider::new(
            Arc::new(Dictionary::new()),
            ruleset(),
            SliderConfig::default().with_store_shards(shards),
        ));
        let mut total_fresh = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..FAMILIES)
                .map(|f| {
                    let slider = Arc::clone(&slider);
                    scope.spawn(move || {
                        let feed = family_feed(f);
                        let mut fresh = 0;
                        for chunk in feed.chunks(7) {
                            fresh += slider.add_triples(chunk);
                        }
                        fresh
                    })
                })
                .collect();
            total_fresh = handles.into_iter().map(|h| h.join().unwrap()).sum();
        });
        slider.wait_idle();
        let stats = slider.stats();
        assert_eq!(
            slider.store().to_sorted_vec(),
            expected,
            "shards={shards}: closure diverged under concurrent family feeds"
        );
        assert_eq!(
            total_fresh, stats.store.explicit,
            "shards={shards}: a fresh triple was lost or double-reported"
        );
        assert_eq!(total_fresh as u64, stats.input_fresh);
        assert_eq!(slider.store().len(), expected.len(), "len counter drift");
    }
}
