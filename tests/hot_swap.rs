//! The ruleset hot-swap suite: `Slider::swap_ruleset` on a *live* reasoner
//! must leave the store identical to a reasoner built with the new program
//! from scratch — dropped rules' derivations retracted by DRed, added
//! rules evaluated semi-naively, kept rules untouched — under any
//! interleaving with adds, deferrals and flushes, as judged by the
//! [`RecomputeOracle`] baseline rebuilt with the final ruleset.

use proptest::prelude::*;
use slider::baseline::RecomputeOracle;
use slider::core::EventKind;
use slider::model::vocab::{RDFS_SUB_CLASS_OF, RDF_TYPE};
use slider::prelude::*;
use slider::rules::{Subsumption, Transitive};
use std::sync::Arc;

fn n(v: u64) -> NodeId {
    NodeId(1000 + v)
}

/// Predicates of two independent rule families plus an inert one (same
/// vocabulary as the partitioned-maintenance suite).
const TRANS_A: NodeId = NodeId(600);
const IS_A: NodeId = NodeId(601);
const TRANS_B: NodeId = NodeId(610);
const IS_B: NodeId = NodeId(611);
const INERT: NodeId = NodeId(666);

/// The swap pool: programs sharing rules pairwise (kept on swap), dropping
/// whole families, and crossing into the ρdf fragment. Rule identity is
/// (name, definition), so "T-A" here is the *same rule* in every variant
/// that contains it.
const RULESET_VARIANTS: usize = 5;

fn ruleset_variant(which: usize) -> Ruleset {
    match which {
        0 => Ruleset::custom("two-families")
            .with(Transitive::new("T-A", TRANS_A))
            .with(Subsumption::new("S-A", IS_A, TRANS_A))
            .with(Transitive::new("T-B", TRANS_B))
            .with(Subsumption::new("S-B", IS_B, TRANS_B)),
        1 => Ruleset::custom("family-a")
            .with(Transitive::new("T-A", TRANS_A))
            .with(Subsumption::new("S-A", IS_A, TRANS_A)),
        2 => Ruleset::custom("transitive-only")
            .with(Transitive::new("T-A", TRANS_A))
            .with(Transitive::new("T-B", TRANS_B)),
        3 => Ruleset::rho_df(),
        _ => Ruleset::custom("empty"),
    }
}

fn manual_flush_slider(ruleset: Ruleset) -> Slider {
    Slider::new(
        Arc::new(Dictionary::new()),
        ruleset,
        SliderConfig::default()
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    )
}

/// Triples over both families, the inert predicate *and* the ρdf schema
/// vocabulary — whichever program is loaded, part of the pool joins and
/// part is inert, and a swap flips which is which.
fn pool_triple() -> impl Strategy<Value = Triple> {
    let node = || (0u64..8).prop_map(n);
    (
        node(),
        prop_oneof![
            2 => Just(TRANS_A),
            2 => Just(IS_A),
            2 => Just(TRANS_B),
            1 => Just(IS_B),
            1 => Just(INERT),
            2 => Just(RDFS_SUB_CLASS_OF),
            1 => Just(RDF_TYPE),
        ],
        node(),
    )
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

/// One scripted operation of the hot-swap property test.
#[derive(Debug, Clone)]
enum SwapOp {
    /// Feed a batch to the input manager.
    Add(Vec<Triple>),
    /// Enqueue a batch on the maintenance scheduler.
    Defer(Vec<Triple>),
    /// Coalesced flush of everything pending.
    Flush,
    /// Hot-swap to the indexed ruleset variant.
    Swap(usize),
}

fn swap_op() -> impl Strategy<Value = SwapOp> {
    let batch = || prop::collection::vec(pool_triple(), 1..8);
    prop_oneof![
        3 => batch().prop_map(SwapOp::Add),
        2 => batch().prop_map(SwapOp::Defer),
        1 => Just(SwapOp::Flush),
        2 => (0..RULESET_VARIANTS).prop_map(SwapOp::Swap),
    ]
}

/// The model's view of the store: the closure, under `ruleset`, of the
/// explicit triples that survived the interleaving so far.
fn expected_closure(ruleset: &Ruleset, explicit: &[Triple]) -> Vec<Triple> {
    let mut oracle = RecomputeOracle::new(ruleset.clone());
    oracle.add(explicit);
    oracle.to_sorted_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The acceptance property: ANY interleaving of adds, deferrals and
    /// flushes **punctuated by random ruleset swaps** leaves the store
    /// equal to the from-scratch closure of the surviving explicit set
    /// under the ruleset loaded at that moment — and the run ends
    /// store-identical to a recompute oracle built with the *final*
    /// ruleset. Pending retractions survive swaps and apply (under the
    /// program live at flush time) at their next flush.
    #[test]
    fn swap_interleavings_match_recompute_oracle(
        start in 0..RULESET_VARIANTS,
        ops in prop::collection::vec(swap_op(), 1..14),
    ) {
        let slider = manual_flush_slider(ruleset_variant(start));
        // The model: the surviving explicit set, the distinct pending
        // retractions (re-assertion cancels), and the loaded program.
        let mut explicit: Vec<Triple> = Vec::new();
        let mut pending: Vec<Triple> = Vec::new();
        let mut current = ruleset_variant(start);
        let mut swaps = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                SwapOp::Add(batch) => {
                    slider.add_triples(batch);
                    for &t in batch {
                        if !explicit.contains(&t) {
                            explicit.push(t);
                        }
                    }
                    pending.retain(|t| !batch.contains(t));
                }
                SwapOp::Defer(batch) => {
                    slider.remove_deferred(batch);
                    for &t in batch {
                        if !pending.contains(&t) {
                            pending.push(t);
                        }
                    }
                }
                SwapOp::Flush => {
                    let outcome = slider.flush_maintenance();
                    prop_assert_eq!(outcome.requested, pending.len(), "op {}", i);
                    explicit.retain(|t| !pending.contains(t));
                    pending.clear();
                }
                SwapOp::Swap(which) => {
                    let next = ruleset_variant(*which);
                    let outcome = slider.swap_ruleset(next.clone());
                    // The diff partitions both programs exactly.
                    prop_assert_eq!(
                        outcome.dropped + outcome.kept,
                        current.rules().len(),
                        "op {}", i
                    );
                    prop_assert_eq!(
                        outcome.added + outcome.kept,
                        next.rules().len(),
                        "op {}", i
                    );
                    current = next;
                    swaps += 1;
                }
            }
            slider.wait_idle();
            prop_assert_eq!(slider.stats().pending_removals, pending.len());
            prop_assert_eq!(
                slider.store().to_sorted_vec(),
                expected_closure(&current, &explicit),
                "diverged after op {} of {:?}",
                i,
                ops
            );
        }
        // Drain the queue; the end state must be store-identical to an
        // oracle built with the FINAL ruleset over the surviving set.
        slider.flush_maintenance();
        explicit.retain(|t| !pending.contains(t));
        let mut oracle = RecomputeOracle::new(current);
        oracle.add(&explicit);
        prop_assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
        prop_assert_eq!(slider.stats().store.explicit, oracle.explicit_len());
        prop_assert_eq!(slider.stats().ruleset_swaps, swaps);
    }
}

/// Deterministic pin of the repair itself: dropping one rule of a mixed
/// program retracts exactly its unsupported derivations, adding it back
/// re-infers them without re-feeding any input.
#[test]
fn dropping_and_re_adding_a_rule_round_trips() {
    let slider = manual_flush_slider(ruleset_variant(0));
    let mut input: Vec<Triple> = (1..8)
        .map(|i| Triple::new(n(i), TRANS_A, n(i + 1)))
        .collect();
    input.push(Triple::new(n(100), IS_A, n(1)));
    input.extend((1..5).map(|i| Triple::new(n(i), TRANS_B, n(i + 1))));
    slider.materialize(&input);

    // Drop family B's transitivity (and family B's subsumption with it).
    let outcome = slider.swap_ruleset(ruleset_variant(1));
    assert_eq!(outcome.dropped, 2);
    assert_eq!(outcome.kept, 2);
    assert!(outcome.overdeleted > 0, "{outcome:?}");
    assert_eq!(
        slider.store().to_sorted_vec(),
        expected_closure(&ruleset_variant(1), &input),
        "dropped-rule derivations survived the swap"
    );
    assert!(!slider.store().contains(Triple::new(n(1), TRANS_B, n(3))));
    // Family A's closure is untouched.
    assert!(slider.store().contains(Triple::new(n(1), TRANS_A, n(7))));
    assert!(slider.store().contains(Triple::new(n(100), IS_A, n(7))));

    // Swap back: the added rules re-infer from the store, no re-feed.
    let outcome = slider.swap_ruleset(ruleset_variant(0));
    assert_eq!(outcome.added, 2);
    assert!(outcome.inferred > 0, "{outcome:?}");
    assert_eq!(
        slider.store().to_sorted_vec(),
        expected_closure(&ruleset_variant(0), &input),
        "re-added rules did not rebuild their closure"
    );
}

/// Swapping to an identical ruleset (rebuilt from fresh rule instances,
/// so identity is judged by name + definition, not pointer) is a
/// store-level no-op: nothing dropped, added, retracted or inferred —
/// but it still counts as a swap and reinstalls fresh state.
#[test]
fn swap_to_identical_ruleset_is_a_store_noop() {
    let slider = manual_flush_slider(ruleset_variant(0));
    let input: Vec<Triple> = (1..10)
        .map(|i| Triple::new(n(i), TRANS_A, n(i + 1)))
        .collect();
    slider.materialize(&input);
    let before = slider.store().to_sorted_vec();
    let generation_before = slider.stats().snapshot_generation;

    let outcome = slider.swap_ruleset(ruleset_variant(0));
    assert_eq!(
        outcome,
        SwapOutcome {
            kept: 4,
            ..SwapOutcome::default()
        }
    );
    assert_eq!(slider.store().to_sorted_vec(), before);
    let stats = slider.stats();
    assert_eq!(stats.ruleset_swaps, 1);
    // The quiescent section republishes: readers linearise past the swap.
    assert!(stats.snapshot_generation >= generation_before);
    // The reasoner still works afterwards.
    slider.materialize(&[Triple::new(n(50), TRANS_A, n(1))]);
    assert!(slider.store().contains(Triple::new(n(50), TRANS_A, n(10))));
}

/// Swaps racing live producers: feeds keep flowing from several threads
/// while rulesets swap mid-stream. Every input batch either joins under
/// the old program or the new one — and once the dust settles the store
/// is the final program's closure of EVERYTHING that was fed, exactly as
/// if the reasoner had been born with it.
#[test]
fn swap_while_producers_race_lands_on_final_program_closure() {
    let link = |p: NodeId, i: u64| Triple::new(n(i), p, n(i + 1));
    let input: Vec<Triple> = (1..40)
        .flat_map(|i| [link(TRANS_A, i), link(TRANS_B, i)])
        .chain([
            Triple::new(n(200), IS_A, n(1)),
            Triple::new(n(201), IS_B, n(1)),
        ])
        .collect();

    let slider = Arc::new(manual_flush_slider(ruleset_variant(0)));
    std::thread::scope(|scope| {
        for producer in 0..4 {
            let slider = Arc::clone(&slider);
            let slice: Vec<Triple> = input.iter().copied().skip(producer).step_by(4).collect();
            scope.spawn(move || {
                for chunk in slice.chunks(8) {
                    slider.add_triples(chunk);
                }
            });
        }
        // Swap under fire: narrow the program, then restore it.
        let slider = Arc::clone(&slider);
        scope.spawn(move || {
            slider.swap_ruleset(ruleset_variant(2));
            slider.swap_ruleset(ruleset_variant(1));
            slider.swap_ruleset(ruleset_variant(0));
        });
    });
    slider.wait_idle();

    assert_eq!(slider.stats().ruleset_swaps, 3);
    assert_eq!(
        slider.store().to_sorted_vec(),
        expected_closure(&ruleset_variant(0), &input),
        "post-race store is not the final program's closure"
    );
}

/// A swap on a traced reasoner records [`EventKind::RulesetSwap`] with the
/// outcome's own numbers and the post-swap store size.
#[test]
fn swap_emits_trace_event_matching_outcome() {
    let slider = Slider::new(
        Arc::new(Dictionary::new()),
        ruleset_variant(0),
        SliderConfig::default().with_trace(true),
    );
    slider.materialize(
        &(1..8)
            .map(|i| Triple::new(n(i), TRANS_A, n(i + 1)))
            .collect::<Vec<_>>(),
    );
    let outcome = slider.swap_ruleset(ruleset_variant(4));
    assert_eq!(outcome.dropped, 4);

    let events = slider.events().expect("tracing on");
    let swap = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::RulesetSwap {
                dropped,
                added,
                kept,
                overdeleted,
                rederived,
                inferred,
                store_size,
            } => Some((
                dropped,
                added,
                kept,
                overdeleted,
                rederived,
                inferred,
                store_size,
            )),
            _ => None,
        })
        .expect("ruleset swap event recorded");
    assert_eq!(swap.0, outcome.dropped);
    assert_eq!(swap.1, outcome.added);
    assert_eq!(swap.2, outcome.kept);
    assert_eq!(swap.3, outcome.overdeleted);
    assert_eq!(swap.4, outcome.rederived);
    assert_eq!(swap.5, outcome.inferred);
    assert_eq!(swap.6, slider.store().len());
    // The explicit chain survives the program's death; only derivations go.
    assert_eq!(slider.store().len(), 7);
}
