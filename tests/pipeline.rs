//! End-to-end pipeline tests: text → parser → dictionary → reasoner →
//! serializer → text, across formats and fragments.

use slider::parser::{self, Format};
use slider::prelude::*;
use slider::workloads::{to_ntriples, PaperOntology};
use std::sync::Arc;

#[test]
fn turtle_and_ntriples_agree_end_to_end() {
    let ttl = r#"
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix ex:   <http://example.org/> .
        ex:A rdfs:subClassOf ex:B .
        ex:B rdfs:subClassOf ex:C .
        ex:x a ex:A ;
             ex:knows ex:y , ex:z .
    "#;
    let from_ttl: Vec<TermTriple> = parser::parse_turtle_str(ttl)
        .collect::<Result<_, _>>()
        .unwrap();
    // Serialise to N-Triples and parse back: same triples.
    let nt = to_ntriples(&from_ttl);
    let from_nt: Vec<TermTriple> = parser::parse_ntriples_str(&nt)
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(from_ttl, from_nt);

    // Same closure whichever syntax fed the reasoner.
    let close = |triples: &[TermTriple]| {
        let slider = Slider::fragment(Fragment::RhoDf, SliderConfig::default());
        slider.add_terms(triples);
        slider.wait_idle();
        let dict = slider.dict();
        let mut out: Vec<String> = slider
            .store()
            .to_sorted_vec()
            .into_iter()
            .map(|t| dict.format_triple(t))
            .collect();
        out.sort();
        out
    };
    assert_eq!(close(&from_ttl), close(&from_nt));
}

#[test]
fn closure_serialises_and_reloads_as_fixpoint() {
    // Materialise a generated ontology and write the closure to N-Triples.
    // The RDFS closure contains *generalised* triples (literal subjects,
    // from rdfs1) that valid N-Triples cannot carry — exactly the triples
    // a reasoner re-derives for free. So: serialise the valid-RDF subset,
    // reload it, and check the reasoner reconstructs the full closure.
    let data = PaperOntology::Bsbm100k.generate(0.005);
    let slider = Slider::fragment(Fragment::Rdfs, SliderConfig::default());
    slider.add_terms(&data);
    slider.wait_idle();

    let dict = slider.dict();
    let mut generalised = 0usize;
    let closure_text = {
        let mut text = String::new();
        for t in slider.store().to_sorted_vec() {
            if dict.is_literal(t.s) {
                generalised += 1;
                continue;
            }
            let decoded = dict.decode_triple(t).expect("closure decodes");
            parser::write_triple(&mut text, &decoded);
        }
        text
    };
    let closure_size = slider.store().len();
    assert!(
        generalised > 0,
        "RDFS closure should contain rdfs1 conclusions"
    );

    let reloaded = Slider::fragment(Fragment::Rdfs, SliderConfig::default());
    let triples: Vec<TermTriple> = parser::parse_ntriples_str(&closure_text)
        .collect::<Result<_, _>>()
        .unwrap();
    reloaded.add_terms(&triples);
    reloaded.wait_idle();
    assert_eq!(reloaded.store().len(), closure_size);
    assert_eq!(
        reloaded.inferred_count() as usize,
        generalised,
        "only the generalised triples are re-derived"
    );
}

#[test]
fn format_dispatch_loads_both_syntaxes() {
    let nt = "<http://e/s> <http://e/p> <http://e/o> .\n";
    let ttl = "@prefix e: <http://e/> . e:s e:p e:o .\n";
    let a: Vec<TermTriple> = parser::parse(std::io::Cursor::new(nt.to_owned()), Format::NTriples)
        .collect::<Result<_, _>>()
        .unwrap();
    let b: Vec<TermTriple> = parser::parse(std::io::Cursor::new(ttl.to_owned()), Format::Turtle)
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn malformed_input_reports_position_not_panic() {
    let bad = "<http://e/s> <http://e/p> <http://e/o> .\nthis is not a triple\n";
    let result: Result<Vec<TermTriple>, _> = parser::parse_ntriples_str(bad).collect();
    let err = result.unwrap_err();
    assert_eq!(err.line, 2);
}

#[test]
fn generated_ontologies_are_valid_ntriples() {
    for ontology in [
        PaperOntology::Bsbm100k,
        PaperOntology::Wikipedia,
        PaperOntology::Wordnet,
        PaperOntology::SubClassOf20,
    ] {
        let data = ontology.generate(0.002);
        let text = to_ntriples(&data);
        let parsed: Vec<TermTriple> = parser::parse_ntriples_str(&text)
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("{ontology}: {e}"));
        assert_eq!(parsed, data, "{ontology} must round-trip");
    }
}

#[test]
fn stats_accounting_closes_the_books() {
    // input_fresh + Σ fresh-per-rule = store size, on a workload that
    // exercises every ρdf rule.
    let dict = Arc::new(Dictionary::new());
    let ttl = r#"
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix ex:   <http://example.org/> .
        ex:A rdfs:subClassOf ex:B . ex:B rdfs:subClassOf ex:C .
        ex:p rdfs:subPropertyOf ex:q . ex:q rdfs:subPropertyOf ex:r .
        ex:q rdfs:domain ex:A . ex:q rdfs:range ex:B .
        ex:x ex:p ex:y .
    "#;
    let triples: Vec<TermTriple> = parser::parse_turtle_str(ttl)
        .collect::<Result<_, _>>()
        .unwrap();
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default(),
    );
    slider.add_terms(&triples);
    slider.wait_idle();

    let stats = slider.stats();
    assert_eq!(
        stats.store_size as u64,
        stats.input_fresh + stats.total_inferred(),
        "{stats}"
    );
    // Every ρdf rule contributed at least one conclusion here except the
    // schema-only dom/rng propagators which contribute via ex:p ⊑ ex:q.
    let by_name = |name: &str| stats.rules.iter().find(|r| r.name == name).unwrap();
    assert!(by_name("CAX-SCO").fresh > 0);
    assert!(by_name("SCM-SCO").fresh > 0);
    assert!(by_name("SCM-SPO").fresh > 0);
    assert!(by_name("SCM-DOM2").fresh > 0);
    assert!(by_name("SCM-RNG2").fresh > 0);
    assert!(by_name("PRP-DOM").fresh > 0);
    assert!(by_name("PRP-RNG").fresh > 0);
    assert!(by_name("PRP-SPO1").fresh > 0);
}

#[test]
fn axiomatic_triples_extend_the_closure_consistently() {
    let dict = Arc::new(Dictionary::new());
    let input: Vec<Triple> = slider::rules::axiomatic_triples();
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rdfs(&dict),
        SliderConfig::default(),
    );
    slider.add_triples(&input);
    slider.wait_idle();
    // The axioms self-describe the vocabulary; closure must terminate and
    // agree with the oracle.
    let expected = slider::baseline::closure(Ruleset::rdfs(&dict), &input).to_sorted_vec();
    assert_eq!(slider.store().to_sorted_vec(), expected);
}
