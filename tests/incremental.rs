//! Incremental-mode guarantees: streamed ingestion reaches exactly the
//! batch closure, regardless of chunking, ordering, or interleaved waits.

use slider::prelude::*;
use slider::workloads::{encode_all, stream, PaperOntology};
use std::sync::Arc;
use std::time::Duration;

fn batch_closure(dict: &Arc<Dictionary>, fragment: Fragment, input: &[Triple]) -> Vec<Triple> {
    let slider = Slider::new(
        Arc::clone(dict),
        Ruleset::fragment(fragment, dict),
        SliderConfig::default(),
    );
    slider.add_triples(input);
    slider.wait_idle();
    slider.store().to_sorted_vec()
}

#[test]
fn chunked_ingestion_matches_batch() {
    let data = PaperOntology::Bsbm100k.generate(0.01);
    for chunk_size in [1usize, 7, 64, 1024] {
        let dict = Arc::new(Dictionary::new());
        let input = encode_all(&data, &dict);
        let expected = batch_closure(&dict, Fragment::RhoDf, &input);

        let dict2 = Arc::new(Dictionary::new());
        let input2 = encode_all(&data, &dict2);
        let slider = Slider::new(
            Arc::clone(&dict2),
            Ruleset::rho_df(),
            SliderConfig::default(),
        );
        for chunk in input2.chunks(chunk_size) {
            slider.add_triples(chunk);
        }
        slider.wait_idle();
        assert_eq!(
            slider.store().to_sorted_vec(),
            expected,
            "chunk size {chunk_size}"
        );
    }
}

#[test]
fn wait_idle_between_chunks_matches_batch() {
    // The hardest incremental discipline: full quiescence between chunks
    // (closure of prefix, then extend). Schema arrives *last*.
    let dict = Arc::new(Dictionary::new());
    let schema = encode_all(&PaperOntology::SubClassOf50.generate(1.0), &dict);
    let (types, rest) = schema.split_at(schema.len() / 2);

    let expected = {
        let all: Vec<Triple> = schema.to_vec();
        batch_closure(&dict, Fragment::RhoDf, &all)
    };

    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default(),
    );
    slider.add_triples(rest);
    slider.wait_idle();
    slider.add_triples(types);
    slider.wait_idle();
    assert_eq!(slider.store().to_sorted_vec(), expected);
}

#[test]
fn reversed_and_shuffled_order_reach_same_closure() {
    let data = PaperOntology::Wikipedia.generate(0.003);
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&data, &dict);
    let expected = batch_closure(&dict, Fragment::RhoDf, &input);

    // Reversed.
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default(),
    );
    let mut reversed = input.clone();
    reversed.reverse();
    slider.add_triples(&reversed);
    slider.wait_idle();
    assert_eq!(slider.store().to_sorted_vec(), expected, "reversed");

    // Deterministically shuffled (multiplicative stride).
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default(),
    );
    let n = input.len();
    let stride = 7919usize; // prime ≫ any small factor of n
    for k in 0..n {
        slider.add_triple(input[(k * stride) % n]);
    }
    slider.wait_idle();
    assert_eq!(slider.store().to_sorted_vec(), expected, "shuffled");
}

#[test]
fn duplicate_stream_converges() {
    // The same data fed three times: second and third passes are no-ops.
    let data = PaperOntology::Wordnet.generate(0.005);
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&data, &dict);
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rdfs(&dict),
        SliderConfig::default(),
    );
    slider.add_triples(&input);
    slider.wait_idle();
    let first = slider.store().len();
    for _ in 0..2 {
        slider.add_triples(&input);
        slider.wait_idle();
    }
    assert_eq!(slider.store().len(), first);
    let stats = slider.stats();
    assert_eq!(stats.input_received, 3 * input.len() as u64);
    assert_eq!(stats.input_fresh, first as u64 - stats.total_inferred());
}

#[test]
fn timed_stream_with_background_knowledge() {
    // The paper's headline scenario: static background + arriving facts.
    let dict = Arc::new(Dictionary::new());
    let background = encode_all(&PaperOntology::SubClassOf20.generate(1.0), &dict);

    // Facts typed with the deepest chain class: each must climb 19 levels.
    let deepest = dict.intern(&Term::iri("http://slider.example.org/chain#20"));
    let rdf_type = slider::model::vocab::RDF_TYPE;
    let facts: Vec<Triple> = (0..50)
        .map(|i| {
            Triple::new(
                dict.intern(&Term::iri(format!("http://e/x{i}"))),
                rdf_type,
                deepest,
            )
        })
        .collect();

    let config = SliderConfig::default()
        .with_buffer_capacity(8)
        .with_timeout(Some(Duration::from_millis(2)));
    let slider = Slider::new(Arc::clone(&dict), Ruleset::rho_df(), config);
    slider.add_triples(&background);
    slider.wait_idle();

    // Stream in timed batches without ever calling wait_idle in between.
    let decoded: Vec<TermTriple> = facts
        .iter()
        .map(|&t| dict.decode_triple(t).unwrap())
        .collect();
    let timed = stream::TimedStream::uniform(&decoded, 5, Duration::from_millis(3));
    timed.play(|batch| {
        slider.add_terms(batch);
    });
    slider.wait_idle();

    // Every fact instance is now typed with all 20 chain classes.
    let store = slider.store().read();
    for i in 0..50 {
        let x = dict.id_of(&Term::iri(format!("http://e/x{i}"))).unwrap();
        assert_eq!(store.objects_with(rdf_type, x).count(), 20, "instance {i}");
    }
}

#[test]
fn monotonicity_store_never_shrinks() {
    let data = PaperOntology::Bsbm100k.generate(0.005);
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&data, &dict);
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rdfs(&dict),
        SliderConfig::default(),
    );
    let mut last = 0usize;
    for chunk in input.chunks(100) {
        slider.add_triples(chunk);
        let now = slider.store().len();
        assert!(now >= last, "store shrank: {last} → {now}");
        last = now;
    }
    slider.wait_idle();
    assert!(slider.store().len() >= last);
}
