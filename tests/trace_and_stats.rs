//! Telemetry consistency: the event log (the demo player's data source)
//! and the per-module counters are two independent recording paths — they
//! must tell the same story.

use slider::core::{events_to_json, EventKind};
use slider::prelude::*;
use slider::workloads::{encode_all, PaperOntology};
use std::collections::HashMap;
use std::sync::Arc;

fn traced_run(ontology: PaperOntology, scale: f64) -> (Slider, Vec<slider::core::Event>) {
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&ontology.generate(scale), &dict);
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default()
            .with_trace(true)
            .with_buffer_capacity(256),
    );
    for chunk in input.chunks(512) {
        slider.add_triples(chunk);
    }
    slider.wait_idle();
    let events = slider.events().expect("tracing enabled");
    (slider, events)
}

#[test]
fn event_log_agrees_with_counters() {
    let (slider, events) = traced_run(PaperOntology::SubClassOf100, 1.0);
    let stats = slider.stats();

    // Aggregate the event log per rule.
    let mut fired: HashMap<usize, u64> = HashMap::new();
    let mut fresh: HashMap<usize, u64> = HashMap::new();
    let mut derived: HashMap<usize, u64> = HashMap::new();
    let mut input_fresh = 0u64;
    for event in &events {
        match event.kind {
            EventKind::RuleFired {
                rule,
                fresh: f,
                derived: d,
                ..
            } => {
                *fired.entry(rule).or_default() += 1;
                *fresh.entry(rule).or_default() += f as u64;
                *derived.entry(rule).or_default() += d as u64;
            }
            EventKind::Input { fresh: f, .. } => input_fresh += f as u64,
            _ => {}
        }
    }

    assert_eq!(input_fresh, stats.input_fresh);
    for (i, rule) in stats.rules.iter().enumerate() {
        assert_eq!(
            fired.get(&i).copied().unwrap_or(0),
            rule.fired,
            "{} fired",
            rule.name
        );
        assert_eq!(
            fresh.get(&i).copied().unwrap_or(0),
            rule.fresh,
            "{} fresh",
            rule.name
        );
        assert_eq!(
            derived.get(&i).copied().unwrap_or(0),
            rule.derived,
            "{} derived",
            rule.name
        );
    }
}

#[test]
fn store_size_in_events_is_monotone_and_final() {
    let (slider, events) = traced_run(PaperOntology::SubClassOf50, 1.0);
    let final_size = slider.store().len();
    let mut last_seen = 0usize;
    for event in &events {
        if let EventKind::RuleFired { store_size, .. } | EventKind::Idle { store_size } = event.kind
        {
            assert!(
                store_size >= last_seen,
                "store size went backwards in the log"
            );
            last_seen = store_size;
        }
    }
    assert_eq!(last_seen, final_size);
}

#[test]
fn every_fire_has_a_matching_flush_event() {
    let (slider, events) = traced_run(PaperOntology::SubClassOf100, 1.0);
    let stats = slider.stats();
    let mut full = 0u64;
    let mut timeout = 0u64;
    let mut fired = 0u64;
    for event in &events {
        match event.kind {
            EventKind::BufferFull { .. } => full += 1,
            EventKind::TimeoutFlush { .. } => timeout += 1,
            EventKind::RuleFired { .. } => fired += 1,
            _ => {}
        }
    }
    let stats_full: u64 = stats.rules.iter().map(|r| r.full_flushes).sum();
    let stats_timeout: u64 = stats.rules.iter().map(|r| r.timeout_flushes).sum();
    assert_eq!(full, stats_full);
    assert_eq!(timeout, stats_timeout);
    // Every flush spawned exactly one rule instance.
    assert_eq!(fired, full + timeout);
    assert_eq!(fired, stats.total_fired());
}

#[test]
fn json_export_of_a_real_run_is_well_formed() {
    let (_slider, events) = traced_run(PaperOntology::SubClassOf20, 1.0);
    let json = events_to_json(&events);
    assert!(json.starts_with('[') && json.ends_with(']'));
    // Object count equals event count; no nesting in this format.
    assert_eq!(json.matches('{').count(), events.len());
    assert_eq!(json.matches('}').count(), events.len());
    // Quotes are balanced.
    assert_eq!(json.matches('"').count() % 2, 0);
    // Ends with the idle event.
    assert!(json.contains(r#""type":"idle""#));
}

#[test]
fn epoch_counters_track_publications_and_swaps() {
    let (slider, _events) = traced_run(PaperOntology::SubClassOf50, 1.0);
    let stats = slider.stats();
    // Every write release published an epoch: a run that inserted
    // anything must have advanced the generation past the empty store's.
    assert!(stats.snapshot_generation > 0, "no epoch was ever published");
    assert_eq!(
        stats.snapshot_generation,
        slider.store().snapshot_generation(),
        "stats and store disagree on the published generation"
    );
    assert_eq!(stats.ruleset_swaps, 0, "no swap ran");
    // The Display table renders the epoch line from these counters.
    let rendered = stats.to_string();
    assert!(
        rendered.contains(&format!(
            "epochs: generation {}, 0 ruleset swaps",
            stats.snapshot_generation
        )),
        "{rendered}"
    );

    // A (no-op) hot swap bumps the swap counter and republishes.
    slider.swap_ruleset(Ruleset::rho_df());
    let stats = slider.stats();
    assert_eq!(stats.ruleset_swaps, 1);
    assert!(stats.snapshot_generation >= slider.store().snapshot_generation() - 1);
}

#[test]
fn ruleset_swap_event_round_trips_through_json() {
    use slider::rules::Transitive;
    let p = NodeId(9_000);
    let slider = Slider::new(
        Arc::new(Dictionary::new()),
        Ruleset::custom("trans").with(Transitive::new("T", p)),
        SliderConfig::default().with_trace(true),
    );
    slider.materialize(&[
        Triple::new(NodeId(1), p, NodeId(2)),
        Triple::new(NodeId(2), p, NodeId(3)),
    ]);
    let outcome = slider.swap_ruleset(Ruleset::custom("empty"));
    assert_eq!(outcome.dropped, 1);

    let events = slider.events().expect("tracing on");
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RulesetSwap { dropped: 1, .. })),
        "swap left no trace event"
    );
    let json = events_to_json(&events);
    assert!(
        json.contains(r#""type":"ruleset_swap","dropped":1,"added":0,"kept":0"#),
        "{json}"
    );
    // The export stays flat and balanced with the new event kind in it.
    assert_eq!(json.matches('{').count(), events.len());
    assert_eq!(json.matches('"').count() % 2, 0);
}

#[test]
fn subpartitioned_removal_event_round_trips_through_json() {
    use slider::rules::{Subsumption, Transitive};
    use slider::store::subject_bucket;
    let trans = NodeId(9_100);
    let is = NodeId(9_101);
    // Members whose subject-hash buckets differ at sub-split width 2.
    let member = |want: usize| {
        (0u64..100)
            .map(|v| NodeId(9_200 + v))
            .find(|&s| subject_bucket(s, 2) == want)
            .expect("a subject hashing into the bucket")
    };
    let (m0, m1) = (member(0), member(1));
    let cls = |i: u64| NodeId(9_500 + i);
    let slider = Slider::new(
        Arc::new(Dictionary::new()),
        Ruleset::custom("one-family")
            .with(Transitive::new("T", trans))
            .with(Subsumption::new("S", is, trans)),
        SliderConfig::default()
            .with_trace(true)
            .with_deletion_subsplit(2)
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    );
    let mut input: Vec<Triple> = (1..4)
        .map(|i| Triple::new(cls(i), trans, cls(i + 1)))
        .collect();
    input.extend([m0, m1].map(|m| Triple::new(m, is, cls(1))));
    slider.materialize(&input);
    slider.remove_deferred(&[Triple::new(m0, is, cls(1)), Triple::new(m1, is, cls(1))]);
    slider.flush_maintenance();

    let events = slider.events().expect("tracing on");
    assert!(
        events.iter().any(|e| matches!(
            e.kind,
            EventKind::SubpartitionedRemoval {
                pending: 2,
                partitions: 1,
                subpartitions: 2,
                ..
            }
        )),
        "sub-split flush left no trace event"
    );
    let json = events_to_json(&events);
    assert!(
        json.contains(
            r#""type":"subpartitioned_removal","pending":2,"partitions":1,"subpartitions":2"#
        ),
        "{json}"
    );
    // The export stays flat and balanced with the new event kind in it.
    assert_eq!(json.matches('{').count(), events.len());
    assert_eq!(json.matches('"').count() % 2, 0);

    // The Display table renders the two-level line from the counters.
    let stats = slider.stats();
    assert_eq!(stats.subpartitioned_runs, 1);
    assert!(stats.coordinator_work > 0, "{stats}");
    let rendered = stats.to_string();
    assert!(
        rendered.contains(&format!(
            "subsplit: 1 subpartitioned runs, 0 parallel eager runs, {} coordinator work",
            stats.coordinator_work
        )),
        "{rendered}"
    );
}

#[test]
fn subsplit_line_is_omitted_when_the_planner_never_subsplits() {
    // A plain ρdf run never engages the two-level planner; its stats
    // table must not render the subsplit line at all.
    let (slider, _events) = traced_run(PaperOntology::SubClassOf20, 1.0);
    assert!(!slider.stats().to_string().contains("subsplit:"));
}

#[test]
fn batch_mode_counts_forced_flushes_as_timeouts() {
    // With timeout: None and huge buffers, the only flushes are the forced
    // ones from wait_idle, which are accounted as timeout flushes.
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&PaperOntology::SubClassOf50.generate(1.0), &dict);
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::batch().with_buffer_capacity(1_000_000),
    );
    slider.add_triples(&input);
    slider.wait_idle();
    let stats = slider.stats();
    let full: u64 = stats.rules.iter().map(|r| r.full_flushes).sum();
    let timeout: u64 = stats.rules.iter().map(|r| r.timeout_flushes).sum();
    assert_eq!(full, 0, "buffers can never fill at this capacity");
    assert!(timeout > 0, "forced flushes must be accounted");
}
