//! The retraction (DRed truth-maintenance) suite: any interleaving of
//! `add_*`/`remove_*` calls must leave the store equal to the from-scratch
//! semi-naive closure of the surviving explicit triples, as computed by
//! the [`RecomputeOracle`] baseline.

use proptest::prelude::*;
use slider::baseline::RecomputeOracle;
use slider::core::EventKind;
use slider::model::vocab::{
    RDFS_DOMAIN, RDFS_RANGE, RDFS_SUB_CLASS_OF, RDFS_SUB_PROPERTY_OF, RDF_TYPE,
};
use slider::prelude::*;
use std::sync::Arc;

fn n(v: u64) -> NodeId {
    NodeId(1000 + v)
}
fn sco(a: u64, b: u64) -> Triple {
    Triple::new(n(a), RDFS_SUB_CLASS_OF, n(b))
}
fn ty(a: u64, b: u64) -> Triple {
    Triple::new(n(a), RDF_TYPE, n(b))
}
fn chain(k: u64) -> Vec<Triple> {
    (1..k).map(|i| sco(i, i + 1)).collect()
}

fn rho_slider(config: SliderConfig) -> Slider {
    Slider::new(Arc::new(Dictionary::new()), Ruleset::rho_df(), config)
}

/// Asserts the DRed invariant: Slider's store == oracle closure.
#[track_caller]
fn assert_matches_oracle(slider: &Slider, oracle: &RecomputeOracle, context: &str) {
    assert_eq!(
        slider.store().to_sorted_vec(),
        oracle.to_sorted_vec(),
        "store diverged from recompute oracle: {context}"
    );
    assert_eq!(
        slider.stats().store.explicit,
        oracle.explicit_len(),
        "explicit count diverged: {context}"
    );
}

#[test]
fn single_link_retraction_on_chain() {
    let input = chain(20);
    let slider = rho_slider(SliderConfig::default());
    slider.materialize(&input);
    let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
    oracle.add(&input);

    slider.remove_triples(&[sco(10, 11)]);
    oracle.remove(&[sco(10, 11)]);
    assert_matches_oracle(&slider, &oracle, "chain minus middle link");
    // The two halves survive: 1→…→10 and 11→…→20.
    assert!(slider.store().contains(sco(1, 10)));
    assert!(slider.store().contains(sco(11, 20)));
    assert!(!slider.store().contains(sco(1, 20)));
}

#[test]
fn alternative_derivations_are_rederived() {
    // Diamond: 1→{2,3}→4 plus an instance typed at the bottom.
    let input = vec![sco(1, 2), sco(2, 4), sco(1, 3), sco(3, 4), ty(9, 1)];
    let slider = rho_slider(SliderConfig::default());
    slider.materialize(&input);
    let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
    oracle.add(&input);

    let outcome = slider.remove_triples_outcome(&[sco(2, 4)]);
    oracle.remove(&[sco(2, 4)]);
    assert_matches_oracle(&slider, &oracle, "diamond minus one side");
    // (1 sco 4) and (9 type 4) survived via the 1→3→4 path…
    assert!(slider.store().contains(sco(1, 4)));
    assert!(slider.store().contains(ty(9, 4)));
    // …which means rederivation actually ran.
    assert!(outcome.rederived > 0, "{outcome:?}");
}

#[test]
fn removing_derived_facts_is_a_noop() {
    let input = chain(6);
    let slider = rho_slider(SliderConfig::default());
    slider.materialize(&input);
    let before = slider.store().to_sorted_vec();
    // sco(1,3) is derived; ty(1,1) absent; both no-ops.
    assert_eq!(slider.remove_triples(&[sco(1, 3), ty(1, 1)]), 0);
    assert_eq!(slider.store().to_sorted_vec(), before);
    assert_eq!(slider.stats().removal_runs, 0);
}

#[test]
fn retracting_everything_empties_the_store() {
    let input = chain(15);
    let slider = rho_slider(SliderConfig::default());
    slider.materialize(&input);
    assert_eq!(slider.remove_triples(&input), input.len());
    assert!(slider.store().is_empty(), "{:?}", slider.store().stats());
    let stats = slider.stats();
    assert_eq!(stats.store.explicit, 0);
    assert_eq!(stats.store.derived, 0);
}

#[test]
fn interleaved_adds_and_removes_match_oracle_at_each_quiescence() {
    let slider = rho_slider(SliderConfig::default());
    let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
    let script: Vec<(bool, Vec<Triple>)> = vec![
        (true, chain(8)),
        (false, vec![sco(3, 4)]),
        (true, vec![ty(9, 1), sco(3, 4)]), // re-add the removed link
        (false, vec![sco(1, 2), sco(7, 8)]),
        (true, vec![sco(20, 1), sco(21, 20)]),
        (false, vec![ty(9, 1)]),
        (false, vec![sco(21, 20), sco(4, 5)]),
    ];
    for (i, (is_add, batch)) in script.iter().enumerate() {
        if *is_add {
            slider.add_triples(batch);
            oracle.add(batch);
        } else {
            slider.remove_triples(batch);
            oracle.remove(batch);
        }
        slider.wait_idle();
        assert_matches_oracle(&slider, &oracle, &format!("script step {i}"));
    }
}

#[test]
fn full_rederive_mode_agrees_with_restricted_mode() {
    let input = vec![
        sco(1, 2),
        sco(2, 3),
        sco(1, 3), // also derivable
        ty(9, 1),
        Triple::new(n(5), RDFS_SUB_PROPERTY_OF, n(6)),
        Triple::new(n(6), RDFS_DOMAIN, n(2)),
        Triple::new(n(6), RDFS_RANGE, n(3)),
        Triple::new(n(7), n(5), n(8)),
    ];
    let removals = [
        vec![Triple::new(n(5), RDFS_SUB_PROPERTY_OF, n(6))],
        vec![sco(1, 3), sco(2, 3)],
        vec![Triple::new(n(7), n(5), n(8)), ty(9, 1)],
    ];
    let restricted = rho_slider(SliderConfig::default());
    let full = rho_slider(SliderConfig::default().with_full_rederive(true));
    let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
    restricted.materialize(&input);
    full.materialize(&input);
    oracle.add(&input);
    for (i, batch) in removals.iter().enumerate() {
        restricted.remove_triples(batch);
        full.remove_triples(batch);
        oracle.remove(batch);
        assert_matches_oracle(&restricted, &oracle, &format!("restricted, removal {i}"));
        assert_matches_oracle(&full, &oracle, &format!("full_rederive, removal {i}"));
    }
}

#[test]
fn rdfs_fragment_retraction_matches_oracle() {
    let dict = Arc::new(Dictionary::new());
    let ruleset = Ruleset::rdfs(&dict);
    let slider = Slider::new(Arc::clone(&dict), ruleset.clone(), SliderConfig::default());
    let mut oracle = RecomputeOracle::new(ruleset);
    let input = vec![
        sco(1, 2),
        sco(2, 3),
        ty(9, 1),
        Triple::new(n(4), n(5), n(6)),
    ];
    slider.materialize(&input);
    oracle.add(&input);
    for removal in [
        vec![sco(2, 3)],
        vec![ty(9, 1)],
        vec![Triple::new(n(4), n(5), n(6))],
    ] {
        slider.remove_triples(&removal);
        oracle.remove(&removal);
        assert_matches_oracle(&slider, &oracle, &format!("RDFS removal {removal:?}"));
    }
}

#[test]
fn remove_terms_resolves_through_the_dictionary() {
    let slider = Slider::fragment(Fragment::RhoDf, SliderConfig::default());
    let sco_t = Term::iri("http://www.w3.org/2000/01/rdf-schema#subClassOf");
    let a = Term::iri("http://e/A");
    let b = Term::iri("http://e/B");
    let c = Term::iri("http://e/C");
    slider.add_terms(&[
        (a.clone(), sco_t.clone(), b.clone()),
        (b.clone(), sco_t.clone(), c.clone()),
    ]);
    slider.wait_idle();
    assert_eq!(slider.store().len(), 3); // + (A sco C)
    assert_eq!(slider.remove_terms(&[(b.clone(), sco_t.clone(), c)]), 1);
    assert_eq!(slider.store().len(), 1);
    // Unknown terms never match (and are not interned).
    let before = slider.dict().len();
    assert_eq!(
        slider.remove_terms(&[(a, sco_t, Term::iri("http://e/Unknown"))]),
        0
    );
    assert_eq!(slider.dict().len(), before);
}

#[test]
fn removal_emits_trace_event_and_counters() {
    let slider = rho_slider(SliderConfig::default().with_trace(true));
    slider.materialize(&chain(10));
    let outcome = slider.remove_triples_outcome(&[sco(5, 6), ty(1, 1)]);
    assert_eq!(outcome.requested, 2);
    assert_eq!(outcome.retracted, 1);
    let events = slider.events().expect("tracing on");
    let removal = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::Removal {
                requested,
                retracted,
                overdeleted,
                rederived,
                store_size,
            } => Some((requested, retracted, overdeleted, rederived, store_size)),
            _ => None,
        })
        .expect("removal event recorded");
    assert_eq!(removal.0, 2);
    assert_eq!(removal.1, 1);
    assert_eq!(removal.2 as u64, slider.stats().overdeleted);
    assert_eq!(removal.4, slider.store().len());
    // The Display form mentions the removal line.
    assert!(slider.stats().to_string().contains("removals: 1 runs"));
}

#[test]
fn tiny_buffers_and_single_worker_still_maintain_correctly() {
    let config = SliderConfig::default()
        .with_buffer_capacity(1)
        .with_workers(1);
    let slider = rho_slider(config);
    let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
    let input = chain(12);
    slider.materialize(&input);
    oracle.add(&input);
    slider.remove_triples(&[sco(6, 7), sco(2, 3)]);
    oracle.remove(&[sco(6, 7), sco(2, 3)]);
    assert_matches_oracle(&slider, &oracle, "tiny buffers");
}

// ---------- coalesced (deferred) maintenance ---------------------------------

/// A slider whose deferred queue only flushes explicitly (no threshold, no
/// deadline) — the deterministic base for coalescing tests.
fn manual_flush_slider() -> Slider {
    rho_slider(
        SliderConfig::default()
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    )
}

#[test]
fn coalesced_flush_equals_eager_removals() {
    // The coalescing invariant: one flush over N deferred batches lands
    // exactly where N eager removals do.
    let input = chain(20);
    let removals = [vec![sco(4, 5)], vec![sco(9, 10)], vec![sco(15, 16)]];

    let eager = rho_slider(SliderConfig::default());
    eager.materialize(&input);
    for batch in &removals {
        eager.remove_triples(batch);
    }

    let deferred = manual_flush_slider();
    deferred.materialize(&input);
    for batch in &removals {
        assert_eq!(deferred.remove_deferred(batch), batch.len());
    }
    // Nothing applied yet: the full closure is still visible.
    assert_eq!(deferred.store().len(), 20 * 19 / 2);
    assert_eq!(deferred.stats().pending_removals, 3);

    let outcome = deferred.flush_maintenance();
    assert_eq!(outcome.requested, 3);
    assert_eq!(outcome.retracted, 3);
    assert_eq!(
        deferred.store().to_sorted_vec(),
        eager.store().to_sorted_vec(),
        "coalesced flush diverged from eager removals"
    );

    let stats = deferred.stats();
    assert_eq!(stats.deferred, 3);
    assert_eq!(stats.pending_removals, 0);
    assert_eq!(stats.coalesced_runs, 1);
    assert_eq!(stats.removal_runs, 1, "one DRed run covered all batches");
    assert_eq!(eager.stats().removal_runs, 3);
    // An empty flush is a no-op.
    assert_eq!(deferred.flush_maintenance(), RemovalOutcome::default());
    assert_eq!(deferred.stats().coalesced_runs, 1);
}

#[test]
fn deferred_duplicates_coalesce_in_the_queue() {
    let slider = manual_flush_slider();
    slider.materialize(&chain(6));
    assert_eq!(slider.remove_deferred(&[sco(2, 3), sco(2, 3)]), 1);
    assert_eq!(slider.remove_deferred(&[sco(2, 3), sco(4, 5)]), 1);
    assert_eq!(slider.stats().pending_removals, 2);
    let outcome = slider.flush_maintenance();
    assert_eq!(outcome.requested, 2);
    assert_eq!(outcome.retracted, 2);
    // Drained triples may be deferred (and flushed) again.
    assert_eq!(slider.remove_deferred(&[sco(2, 3)]), 1);
    assert_eq!(slider.flush_maintenance().retracted, 0, "already gone");
}

#[test]
fn threshold_triggers_coalesced_flush() {
    let slider = rho_slider(
        SliderConfig::default()
            .with_maintenance_batch(3)
            .with_maintenance_max_age(None),
    );
    slider.materialize(&chain(10));
    slider.remove_deferred(&[sco(2, 3)]);
    slider.remove_deferred(&[sco(5, 6)]);
    let stats = slider.stats();
    assert_eq!(stats.pending_removals, 2, "below threshold: still pending");
    assert_eq!(stats.coalesced_runs, 0);
    // The third distinct retraction reaches the threshold and auto-flushes.
    slider.remove_deferred(&[sco(8, 9)]);
    let stats = slider.stats();
    assert_eq!(stats.pending_removals, 0);
    assert_eq!(stats.coalesced_runs, 1);
    assert_eq!(stats.retracted, 3);
    let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
    oracle.add(&chain(10));
    oracle.remove(&[sco(2, 3), sco(5, 6), sco(8, 9)]);
    assert_matches_oracle(&slider, &oracle, "threshold-triggered flush");
}

#[test]
fn max_age_deadline_triggers_flush_from_the_flusher() {
    let slider = rho_slider(
        SliderConfig::default()
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(Some(std::time::Duration::from_millis(5))),
    );
    slider.materialize(&chain(8));
    slider.remove_deferred(&[sco(3, 4)]);
    // No explicit flush: the flusher thread must apply it via the deadline.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while slider.stats().coalesced_runs == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "deadline flush never fired"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    slider.wait_idle();
    assert_eq!(slider.stats().pending_removals, 0);
    assert!(!slider.store().contains(sco(3, 4)));
    let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
    oracle.add(&chain(8));
    oracle.remove(&[sco(3, 4)]);
    assert_matches_oracle(&slider, &oracle, "deadline-triggered flush");
}

#[test]
fn coalesced_flush_emits_trace_event() {
    let slider = rho_slider(
        SliderConfig::default()
            .with_trace(true)
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    );
    slider.materialize(&chain(10));
    slider.remove_deferred(&[sco(3, 4), sco(7, 8)]);
    slider.flush_maintenance();
    let events = slider.events().expect("tracing on");
    let (pending, retracted, store_size) = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::CoalescedRemoval {
                pending,
                retracted,
                store_size,
                ..
            } => Some((pending, retracted, store_size)),
            _ => None,
        })
        .expect("coalesced removal event recorded");
    assert_eq!(pending, 2);
    assert_eq!(retracted, 2);
    assert_eq!(store_size, slider.store().len());
    // No eager Removal event was logged for the coalesced run.
    assert!(!events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Removal { .. })));
    // The Display form mentions the deferred line.
    assert!(slider.stats().to_string().contains("deferred: 2 enqueued"));
}

/// Regression (the PR 4 headline bugfix): re-asserting a triple while its
/// deferred retraction is pending must CANCEL the retraction. The
/// previously *documented* behaviour — "a triple re-asserted while pending
/// is still retracted by the next flush" — let the store diverge from the
/// closure of the surviving explicit set; that behaviour is the bug.
#[test]
fn re_asserting_while_pending_keeps_the_assertion() {
    let slider = manual_flush_slider();
    let input = chain(12);
    slider.materialize(&input);
    let full = slider.store().to_sorted_vec();
    let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
    oracle.add(&input);

    // Defer two retractions, then re-assert one of them before any flush.
    slider.remove_deferred(&[sco(5, 6), sco(9, 10)]);
    slider.add_triples(&[sco(5, 6)]);
    slider.wait_idle();
    let stats = slider.stats();
    assert_eq!(stats.pending_removals, 1, "sco(5,6) should be cancelled");
    assert_eq!(stats.cancelled_removals, 1);

    let outcome = slider.flush_maintenance();
    assert_eq!(outcome.requested, 1, "only the surviving retraction ran");
    oracle.remove(&[sco(9, 10)]);
    assert_matches_oracle(&slider, &oracle, "flush after re-assertion");
    assert!(slider.store().contains(sco(5, 6)), "re-assertion lost");
    assert!(
        slider.store().contains(sco(1, 6)),
        "its closure survives too"
    );
    assert_ne!(slider.store().to_sorted_vec(), full, "sco(9,10) did go");

    // A cancelled triple can be retracted again later, for real.
    slider.remove_deferred(&[sco(5, 6)]);
    slider.flush_maintenance();
    oracle.remove(&[sco(5, 6)]);
    assert_matches_oracle(&slider, &oracle, "second, un-cancelled deferral");
}

/// Re-assertion of a triple that is *not* pending changes nothing about
/// the pending set (and an add racing nothing pending is free).
#[test]
fn unrelated_assertions_do_not_touch_the_pending_set() {
    let slider = manual_flush_slider();
    slider.materialize(&chain(8));
    slider.remove_deferred(&[sco(3, 4)]);
    slider.add_triples(&[ty(50, 1), sco(20, 21)]);
    slider.wait_idle();
    let stats = slider.stats();
    assert_eq!(stats.pending_removals, 1);
    assert_eq!(stats.cancelled_removals, 0);
}

#[test]
fn outcome_reports_ignored_derived_distinct_from_not_found() {
    let slider = rho_slider(SliderConfig::default());
    slider.materialize(&chain(6));
    // sco(1,3) is derived-only, ty(9,9) absent, sco(2,3) explicit.
    let outcome = slider.remove_triples_outcome(&[sco(1, 3), ty(9, 9), sco(2, 3)]);
    assert_eq!(outcome.requested, 3);
    assert_eq!(outcome.retracted, 1);
    assert_eq!(outcome.ignored_derived, 1);
    assert_eq!(outcome.not_found, 1);
}

// ---------- partitioned coalesced flushes ------------------------------------

use slider::rules::{Subsumption, Transitive};

/// Predicates of two independent rule families plus an inert one.
const TRANS_A: NodeId = NodeId(600);
const IS_A: NodeId = NodeId(601);
const TRANS_B: NodeId = NodeId(610);
const IS_B: NodeId = NodeId(611);
const INERT: NodeId = NodeId(666);

/// Two transitive-hierarchy families with disjoint vocabularies — the
/// dependency graph splits them into two maintenance partitions.
fn family_ruleset() -> Ruleset {
    Ruleset::custom("two-families")
        .with(Transitive::new("T-A", TRANS_A))
        .with(Subsumption::new("S-A", IS_A, TRANS_A))
        .with(Transitive::new("T-B", TRANS_B))
        .with(Subsumption::new("S-B", IS_B, TRANS_B))
}

fn family_slider(config: SliderConfig) -> Slider {
    Slider::new(Arc::new(Dictionary::new()), family_ruleset(), config)
}

fn family_input() -> Vec<Triple> {
    let mut input = Vec::new();
    for (trans, is) in [(TRANS_A, IS_A), (TRANS_B, IS_B)] {
        input.extend((1..8).map(|i| Triple::new(n(i), trans, n(i + 1))));
        input.push(Triple::new(n(100), is, n(1)));
        input.push(Triple::new(n(101), is, n(3)));
    }
    input.push(Triple::new(n(200), INERT, n(201)));
    input
}

/// Eager-equality for partitioned flushes: a flush whose pending set spans
/// both families (and the inert predicate) runs as parallel partition
/// passes and lands exactly where eager removals do.
#[test]
fn partitioned_flush_equals_eager_removals() {
    let input = family_input();
    let removals = [
        Triple::new(n(3), TRANS_A, n(4)),
        Triple::new(n(100), IS_B, n(1)),
        Triple::new(n(5), TRANS_B, n(6)),
        Triple::new(n(200), INERT, n(201)),
    ];

    let eager = family_slider(SliderConfig::default());
    eager.materialize(&input);
    for &t in &removals {
        eager.remove_triples(&[t]);
    }

    let deferred = family_slider(
        SliderConfig::default()
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    );
    deferred.materialize(&input);
    deferred.remove_deferred(&removals);
    let outcome = deferred.flush_maintenance();
    assert_eq!(outcome.requested, 4);
    assert_eq!(outcome.retracted, 4);

    assert_eq!(
        deferred.store().to_sorted_vec(),
        eager.store().to_sorted_vec(),
        "partitioned flush diverged from eager removals"
    );
    let stats = deferred.stats();
    assert_eq!(stats.partitioned_runs, 1, "pending set spanned partitions");
    assert_eq!(stats.coalesced_runs, 1);
    assert_eq!(
        stats.store.explicit,
        eager.stats().store.explicit,
        "provenance survived the split/absorb round trip"
    );
}

/// A single-family pending set must NOT partition (nothing to parallelise)
/// and still agrees with the oracle.
#[test]
fn single_family_pending_set_stays_single_pass() {
    let deferred = family_slider(
        SliderConfig::default()
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    );
    deferred.materialize(&family_input());
    deferred.remove_deferred(&[
        Triple::new(n(3), TRANS_A, n(4)),
        Triple::new(n(100), IS_A, n(1)),
    ]);
    deferred.flush_maintenance();
    let stats = deferred.stats();
    assert_eq!(stats.coalesced_runs, 1);
    assert_eq!(stats.partitioned_runs, 0);
    let mut oracle = RecomputeOracle::new(family_ruleset());
    oracle.add(&family_input());
    oracle.remove(&[
        Triple::new(n(3), TRANS_A, n(4)),
        Triple::new(n(100), IS_A, n(1)),
    ]);
    assert_matches_oracle(&deferred, &oracle, "single-partition flush");
}

/// ρdf's universal rules collapse to one partition: partitioned mode can
/// never trigger there, whatever the pending set.
#[test]
fn universal_rulesets_never_partition() {
    let slider = manual_flush_slider();
    slider.materialize(&chain(10));
    assert_eq!(slider.maintenance_partitions(), 1);
    slider.remove_deferred(&[sco(2, 3), sco(7, 8), ty(9, 9)]);
    slider.flush_maintenance();
    assert_eq!(slider.stats().partitioned_runs, 0);
}

// ---------- subject sub-split (two-level) flushes -----------------------------

use slider::store::subject_bucket;

/// The first subject ≥ `n(300)` whose subject-hash bucket at width `k` is
/// `want` — deterministic bucket-spread members for the sub-split tests.
fn member_in_bucket(k: usize, want: usize) -> NodeId {
    (300u64..400)
        .map(n)
        .find(|&s| subject_bucket(s, k) == want)
        .expect("a subject hashing into the bucket")
}

/// A bursty membership retraction over ONE family sub-splits by subject
/// (the pre-PR-8 planner had nothing to parallelise here) and lands
/// exactly where the single-pass baseline and the oracle do.
#[test]
fn membership_burst_subsplits_and_matches_oracle() {
    let m0 = member_in_bucket(2, 0);
    let m1 = member_in_bucket(2, 1);
    let mut input = family_input();
    input.push(Triple::new(m0, IS_A, n(1)));
    input.push(Triple::new(m1, IS_A, n(1)));
    let removals = [Triple::new(m0, IS_A, n(1)), Triple::new(m1, IS_A, n(1))];

    let split = family_slider(
        SliderConfig::default()
            .with_deletion_subsplit(2)
            .with_trace(true)
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    );
    let baseline = family_slider(
        SliderConfig::default()
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    );
    split.materialize(&input);
    baseline.materialize(&input);
    split.remove_deferred(&removals);
    baseline.remove_deferred(&removals);

    let outcome = split.flush_maintenance();
    assert_eq!(
        outcome,
        baseline.flush_maintenance(),
        "sub-split changed the removal outcome"
    );

    let mut oracle = RecomputeOracle::new(family_ruleset());
    oracle.add(&input);
    oracle.remove(&removals);
    assert_matches_oracle(&split, &oracle, "sub-split flush");
    assert_matches_oracle(&baseline, &oracle, "single-pass baseline");

    let stats = split.stats();
    assert_eq!(stats.subpartitioned_runs, 1, "the flush sub-split");
    assert_eq!(stats.partitioned_runs, 0, "one family only");
    assert!(stats.coordinator_work > 0, "{stats:?}");
    assert_eq!(
        baseline.stats().subpartitioned_runs,
        0,
        "subsplit=1 is the old single-pass behaviour"
    );

    // The trace records the two-level shape.
    let events = split.events().expect("tracing on");
    let (pending, partitions, subpartitions) = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::SubpartitionedRemoval {
                pending,
                partitions,
                subpartitions,
                ..
            } => Some((pending, partitions, subpartitions)),
            _ => None,
        })
        .expect("subpartitioned removal event recorded");
    assert_eq!(pending, 2);
    assert_eq!(partitions, 1);
    assert_eq!(subpartitions, 2);
}

/// Eager removals route through the same two-level planner: one
/// `remove_triples` call whose seeds spread over subject buckets runs as
/// parallel sub-partition units.
#[test]
fn eager_removals_route_through_the_subsplit_planner() {
    let m0 = member_in_bucket(2, 0);
    let m1 = member_in_bucket(2, 1);
    let mut input = family_input();
    input.push(Triple::new(m0, IS_A, n(1)));
    input.push(Triple::new(m1, IS_A, n(1)));
    let slider = family_slider(SliderConfig::default().with_deletion_subsplit(2));
    slider.materialize(&input);
    let mut oracle = RecomputeOracle::new(family_ruleset());
    oracle.add(&input);

    let removals = [Triple::new(m0, IS_A, n(1)), Triple::new(m1, IS_A, n(1))];
    let outcome = slider.remove_triples_outcome(&removals);
    oracle.remove(&removals);
    assert_eq!(outcome.retracted, 2);
    assert_matches_oracle(&slider, &oracle, "eager sub-split removal");

    let stats = slider.stats();
    assert_eq!(stats.removal_runs, 1);
    assert_eq!(stats.subpartitioned_runs, 1, "the eager batch sub-split");
    assert_eq!(stats.parallel_eager_runs, 1, "two units ran in one pass");
    assert_eq!(stats.coalesced_runs, 0);
}

/// A chain-link retraction disqualifies the sub-split (Transitive's join
/// is not subject-local) and silently degrades to the single pass.
#[test]
fn chain_retractions_never_subsplit() {
    let slider = family_slider(
        SliderConfig::default()
            .with_deletion_subsplit(4)
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    );
    slider.materialize(&family_input());
    let removals = [
        Triple::new(n(3), TRANS_A, n(4)),
        Triple::new(n(100), IS_A, n(1)),
    ];
    slider.remove_deferred(&removals);
    slider.flush_maintenance();
    assert_eq!(slider.stats().subpartitioned_runs, 0);
    let mut oracle = RecomputeOracle::new(family_ruleset());
    oracle.add(&family_input());
    oracle.remove(&removals);
    assert_matches_oracle(&slider, &oracle, "disqualified sub-split");
}

/// ROADMAP item 3 follow-up (a): the membership-shaped domain rule
/// declares its property subject-local (`(x P y) ⊢ (x IS c)` emits at the
/// delta's own subject), so a burst of property-assertion retractions
/// sub-splits by subject bucket — while the range rule's conclusion lands
/// on the *object* (`(x P y) ⊢ (y IS c)`, not subject-local), so a range
/// burst silently degrades to the single whole-partition pass. Both land
/// exactly on the recompute oracle.
#[test]
fn domain_burst_subsplits_and_range_burst_degrades() {
    use slider::rules::{Domain, Range};
    const WORKS: NodeId = NodeId(700);
    const IS_EMP: NodeId = NodeId(701);
    const EMPLOYEE: NodeId = NodeId(702);
    const FEEDS: NodeId = NodeId(710);
    const IS_FED: NodeId = NodeId(711);
    const FED: NodeId = NodeId(712);
    let ruleset = || {
        Ruleset::custom("domain-range")
            .with(Domain::new("DOM", WORKS, IS_EMP, EMPLOYEE))
            .with(Range::new("RNG", FEEDS, IS_FED, FED))
    };

    // Members whose subject-hash buckets differ at sub-split width 4 —
    // the domain burst's seeds are guaranteed to occupy two units.
    let m0 = member_in_bucket(4, 0);
    let m1 = member_in_bucket(4, 1);
    let input = vec![
        Triple::new(m0, WORKS, n(20)),
        Triple::new(m1, WORKS, n(21)),
        Triple::new(n(30), FEEDS, n(31)),
        Triple::new(n(32), FEEDS, n(33)),
    ];
    let slider = Slider::new(
        Arc::new(Dictionary::new()),
        ruleset(),
        SliderConfig::default()
            .with_deletion_subsplit(4)
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    );
    slider.materialize(&input);
    let mut oracle = RecomputeOracle::new(ruleset());
    oracle.add(&input);
    assert!(slider.store().contains(Triple::new(m0, IS_EMP, EMPLOYEE)));
    assert!(slider.store().contains(Triple::new(n(31), IS_FED, FED)));

    // Domain burst: two members, two subject buckets → two parallel
    // intra-partition DRed units.
    let domain_burst = [Triple::new(m0, WORKS, n(20)), Triple::new(m1, WORKS, n(21))];
    slider.remove_deferred(&domain_burst);
    slider.flush_maintenance();
    oracle.remove(&domain_burst);
    assert_matches_oracle(&slider, &oracle, "domain burst");
    assert!(!slider.store().contains(Triple::new(m0, IS_EMP, EMPLOYEE)));
    assert_eq!(
        slider.stats().subpartitioned_runs,
        1,
        "the domain burst did not sub-split"
    );

    // Range burst: same shape, but `FEEDS` crosses subjects — the planner
    // must refuse to sub-split and still match the oracle.
    let range_burst = [
        Triple::new(n(30), FEEDS, n(31)),
        Triple::new(n(32), FEEDS, n(33)),
    ];
    slider.remove_deferred(&range_burst);
    slider.flush_maintenance();
    oracle.remove(&range_burst);
    assert_matches_oracle(&slider, &oracle, "range burst");
    assert!(!slider.store().contains(Triple::new(n(31), IS_FED, FED)));
    assert_eq!(
        slider.stats().subpartitioned_runs,
        1,
        "a range burst must not sub-split (conclusions cross subjects)"
    );
}

/// The empty-maintenance fast path: a flush with nothing pending and an
/// eager removal of nothing return the zero outcome WITHOUT taking the
/// store's exclusive write gate.
#[test]
fn empty_maintenance_calls_skip_the_store_gate() {
    let slider = manual_flush_slider();
    slider.materialize(&chain(5));
    let before = slider.stats().gate_write_acquisitions;
    assert_eq!(slider.flush_maintenance(), RemovalOutcome::default());
    assert_eq!(slider.remove_triples(&[]), 0);
    let stats = slider.stats();
    assert_eq!(
        stats.gate_write_acquisitions, before,
        "empty maintenance acquired the write gate"
    );
    assert_eq!(stats.removal_runs, 0);
    assert_eq!(stats.coalesced_runs, 0);
}

// ---------- the property test -----------------------------------------------

/// A pool of triples that keeps joins frequent: schema-heavy predicates
/// over a small node universe.
fn pool_triple() -> impl Strategy<Value = Triple> {
    let node = || (0u64..10).prop_map(n);
    (
        node(),
        prop_oneof![
            3 => Just(RDFS_SUB_CLASS_OF),
            2 => Just(RDF_TYPE),
            2 => Just(RDFS_SUB_PROPERTY_OF),
            1 => Just(RDFS_DOMAIN),
            1 => Just(RDFS_RANGE),
            2 => (0u64..3).prop_map(n),
        ],
        node(),
    )
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

/// One scripted operation: `true` = add the batch, `false` = remove it.
fn op() -> impl Strategy<Value = (bool, Vec<Triple>)> {
    (
        prop_oneof![2 => Just(true), 1 => Just(false)],
        prop::collection::vec(pool_triple(), 1..8),
    )
}

/// One scripted operation of the deferred-maintenance property tests.
#[derive(Debug, Clone)]
enum DeferredOp {
    /// Feed a batch to the input manager.
    Add(Vec<Triple>),
    /// Enqueue a batch on the maintenance scheduler.
    Defer(Vec<Triple>),
    /// Coalesced flush of everything pending.
    Flush,
}

/// Bursty mix: adds and deferrals dominate, flushes are occasional — so
/// pending retractions pile up across several operations before one
/// coalesced run applies them.
fn deferred_op() -> impl Strategy<Value = DeferredOp> {
    let batch = || prop::collection::vec(pool_triple(), 1..8);
    prop_oneof![
        3 => batch().prop_map(DeferredOp::Add),
        3 => batch().prop_map(DeferredOp::Defer),
        1 => Just(DeferredOp::Flush),
    ]
}

/// Triples over the two independent families' vocabularies plus the inert
/// predicate — deferrals bucket into up to three maintenance partitions.
fn family_triple() -> impl Strategy<Value = Triple> {
    let node = || (0u64..8).prop_map(n);
    (
        node(),
        prop_oneof![
            2 => Just(TRANS_A),
            2 => Just(IS_A),
            2 => Just(TRANS_B),
            2 => Just(IS_B),
            1 => Just(INERT),
        ],
        node(),
    )
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

/// The deferred-op mix over the partitioned families' pool.
fn family_op() -> impl Strategy<Value = DeferredOp> {
    let batch = || prop::collection::vec(family_triple(), 1..8);
    prop_oneof![
        3 => batch().prop_map(DeferredOp::Add),
        3 => batch().prop_map(DeferredOp::Defer),
        1 => Just(DeferredOp::Flush),
    ]
}

/// One scripted operation of the sub-split property test — the deferred
/// mix plus *eager* removals, which route through the same planner.
#[derive(Debug, Clone)]
enum SubsplitOp {
    Add(Vec<Triple>),
    Remove(Vec<Triple>),
    Defer(Vec<Triple>),
    Flush,
}

fn subsplit_op() -> impl Strategy<Value = SubsplitOp> {
    let batch = || prop::collection::vec(family_triple(), 1..8);
    prop_oneof![
        3 => batch().prop_map(SubsplitOp::Add),
        2 => batch().prop_map(SubsplitOp::Remove),
        3 => batch().prop_map(SubsplitOp::Defer),
        1 => Just(SubsplitOp::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The acceptance property: after ANY interleaving of add/remove and
    /// `wait_idle`, the store equals the from-scratch semi-naive closure
    /// of the surviving explicit triples.
    #[test]
    fn random_interleavings_match_recompute_oracle(ops in prop::collection::vec(op(), 1..12)) {
        let slider = rho_slider(SliderConfig::default());
        let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
        for (i, (is_add, batch)) in ops.iter().enumerate() {
            if *is_add {
                slider.add_triples(batch);
                oracle.add(batch);
            } else {
                slider.remove_triples(batch);
                oracle.remove(batch);
            }
            slider.wait_idle();
            prop_assert_eq!(
                slider.store().to_sorted_vec(),
                oracle.to_sorted_vec(),
                "diverged after op {} of {:?}",
                i,
                ops
            );
        }
        // Provenance bookkeeping stayed exact as well.
        prop_assert_eq!(slider.stats().store.explicit, oracle.explicit_len());
    }

    /// The coalescing acceptance property: ANY interleaving of
    /// `add_triples`, `remove_deferred` and `flush_maintenance` (a bursty
    /// shape: deferrals pile up, then one flush applies them all) leaves
    /// the store equal to the from-scratch closure of the surviving
    /// explicit triples — where "surviving" reflects the deferred
    /// semantics: a retraction applies at its *flush*, and a triple
    /// re-added while pending **cancels** the pending retraction (the
    /// pre-PR-4 behaviour — retract it anyway — silently lost the
    /// re-assertion and diverged from the surviving explicit set).
    #[test]
    fn deferred_interleavings_match_recompute_oracle(
        ops in prop::collection::vec(deferred_op(), 1..14),
    ) {
        let slider = rho_slider(
            SliderConfig::default()
                .with_maintenance_batch(usize::MAX)
                .with_maintenance_max_age(None),
        );
        let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
        // The model of the scheduler: distinct pending retractions, FIFO,
        // with re-assertion cancelling.
        let mut pending: Vec<Triple> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                DeferredOp::Add(batch) => {
                    slider.add_triples(batch);
                    oracle.add(batch);
                    // Asserting a pending triple cancels its retraction.
                    pending.retain(|t| !batch.contains(t));
                }
                DeferredOp::Defer(batch) => {
                    slider.remove_deferred(batch);
                    for &t in batch {
                        if !pending.contains(&t) {
                            pending.push(t);
                        }
                    }
                }
                DeferredOp::Flush => {
                    let outcome = slider.flush_maintenance();
                    prop_assert_eq!(outcome.requested, pending.len(), "op {}", i);
                    oracle.remove(&pending);
                    pending.clear();
                }
            }
            slider.wait_idle();
            prop_assert_eq!(slider.stats().pending_removals, pending.len());
            prop_assert_eq!(
                slider.store().to_sorted_vec(),
                oracle.to_sorted_vec(),
                "diverged after op {} of {:?}",
                i,
                ops
            );
        }
        // Drain whatever is still pending; the end state must agree too.
        slider.flush_maintenance();
        oracle.remove(&pending);
        prop_assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
        prop_assert_eq!(slider.stats().store.explicit, oracle.explicit_len());
    }

    /// Same property with the *threshold* trigger live: the model mirrors
    /// the scheduler's rule (auto-flush once ≥ K distinct retractions are
    /// pending after an enqueue).
    #[test]
    fn deferred_threshold_interleavings_match_oracle(
        ops in prop::collection::vec(deferred_op(), 1..12),
    ) {
        const THRESHOLD: usize = 4;
        let slider = rho_slider(
            SliderConfig::default()
                .with_maintenance_batch(THRESHOLD)
                .with_maintenance_max_age(None),
        );
        let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
        let mut pending: Vec<Triple> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                DeferredOp::Add(batch) => {
                    slider.add_triples(batch);
                    oracle.add(batch);
                    // Re-assertion cancels a pending retraction.
                    pending.retain(|t| !batch.contains(t));
                }
                DeferredOp::Defer(batch) => {
                    slider.remove_deferred(batch);
                    for &t in batch {
                        if !pending.contains(&t) {
                            pending.push(t);
                        }
                    }
                    if pending.len() >= THRESHOLD {
                        oracle.remove(&pending);
                        pending.clear();
                    }
                }
                DeferredOp::Flush => {
                    slider.flush_maintenance();
                    oracle.remove(&pending);
                    pending.clear();
                }
            }
            slider.wait_idle();
            prop_assert_eq!(
                slider.store().to_sorted_vec(),
                oracle.to_sorted_vec(),
                "diverged after op {} of {:?}",
                i,
                ops
            );
        }
    }

    /// The partitioned acceptance property: over a ruleset with several
    /// maintenance partitions, ANY interleaving of adds, deferrals and
    /// flushes — including re-assertions of pending triples — leaves the
    /// store at the from-scratch closure of the surviving explicit set.
    /// The triple pool spans both families plus an inert predicate, so
    /// flushes routinely split into 2–3 parallel partition passes.
    #[test]
    fn partitioned_deferred_interleavings_match_oracle(
        ops in prop::collection::vec(family_op(), 1..14),
    ) {
        let slider = family_slider(
            SliderConfig::default()
                .with_maintenance_batch(usize::MAX)
                .with_maintenance_max_age(None),
        );
        let mut oracle = RecomputeOracle::new(family_ruleset());
        let mut pending: Vec<Triple> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                DeferredOp::Add(batch) => {
                    slider.add_triples(batch);
                    oracle.add(batch);
                    pending.retain(|t| !batch.contains(t));
                }
                DeferredOp::Defer(batch) => {
                    slider.remove_deferred(batch);
                    for &t in batch {
                        if !pending.contains(&t) {
                            pending.push(t);
                        }
                    }
                }
                DeferredOp::Flush => {
                    let outcome = slider.flush_maintenance();
                    prop_assert_eq!(outcome.requested, pending.len(), "op {}", i);
                    oracle.remove(&pending);
                    pending.clear();
                }
            }
            slider.wait_idle();
            prop_assert_eq!(
                slider.store().to_sorted_vec(),
                oracle.to_sorted_vec(),
                "diverged after op {} of {:?}",
                i,
                ops
            );
        }
        slider.flush_maintenance();
        oracle.remove(&pending);
        prop_assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
        prop_assert_eq!(slider.stats().store.explicit, oracle.explicit_len());
    }

    /// The sub-split acceptance property: ANY interleaving of adds,
    /// *eager* removals, deferrals and flushes lands at the recompute
    /// oracle's closure at EVERY sub-split width — `deletion_subsplit = 1`
    /// is the pre-sub-split behaviour, 2 and 4 exercise the two-level
    /// planner (and its degrade-to-single-pass gate) on every flush and
    /// every eager batch.
    #[test]
    fn subsplit_interleavings_match_recompute_oracle(
        subsplit_pick in 0usize..3,
        ops in prop::collection::vec(subsplit_op(), 1..12),
    ) {
        let subsplit = [1usize, 2, 4][subsplit_pick];
        let slider = family_slider(
            SliderConfig::default()
                .with_deletion_subsplit(subsplit)
                .with_maintenance_batch(usize::MAX)
                .with_maintenance_max_age(None),
        );
        let mut oracle = RecomputeOracle::new(family_ruleset());
        let mut pending: Vec<Triple> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                SubsplitOp::Add(batch) => {
                    slider.add_triples(batch);
                    oracle.add(batch);
                    pending.retain(|t| !batch.contains(t));
                }
                SubsplitOp::Remove(batch) => {
                    // Eager: applies now; a pending deferral of the same
                    // triple stays queued (and retracts nothing later).
                    slider.remove_triples(batch);
                    oracle.remove(batch);
                }
                SubsplitOp::Defer(batch) => {
                    slider.remove_deferred(batch);
                    for &t in batch {
                        if !pending.contains(&t) {
                            pending.push(t);
                        }
                    }
                }
                SubsplitOp::Flush => {
                    let outcome = slider.flush_maintenance();
                    prop_assert_eq!(outcome.requested, pending.len(), "op {}", i);
                    oracle.remove(&pending);
                    pending.clear();
                }
            }
            slider.wait_idle();
            prop_assert_eq!(slider.stats().pending_removals, pending.len());
            prop_assert_eq!(
                slider.store().to_sorted_vec(),
                oracle.to_sorted_vec(),
                "subsplit={} diverged after op {} of {:?}",
                subsplit,
                i,
                ops
            );
        }
        slider.flush_maintenance();
        oracle.remove(&pending);
        prop_assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
        prop_assert_eq!(slider.stats().store.explicit, oracle.explicit_len());
    }

    /// Same property under pathological buffering and the conservative
    /// maintenance mode.
    #[test]
    fn random_interleavings_tiny_buffers_full_rederive(ops in prop::collection::vec(op(), 1..8)) {
        let config = SliderConfig::default()
            .with_buffer_capacity(1)
            .with_workers(2)
            .with_full_rederive(true);
        let slider = rho_slider(config);
        let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
        for (is_add, batch) in &ops {
            if *is_add {
                slider.add_triples(batch);
                oracle.add(batch);
            } else {
                slider.remove_triples(batch);
                oracle.remove(batch);
            }
        }
        slider.wait_idle();
        prop_assert_eq!(
            slider.store().to_sorted_vec(),
            oracle.to_sorted_vec(),
            "diverged after {:?}",
            ops
        );
    }
}

// ---------- the sharded-store property test ----------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The two-level-locking acceptance property: random add / defer /
    /// flush interleavings over the multi-partition family workload leave
    /// a store sharded at ANY width — including the 1-shard degenerate
    /// that reproduces the old global lock — store-identical to the
    /// recompute-from-scratch oracle, with the lock-free length counter
    /// in exact agreement.
    #[test]
    fn sharded_store_interleavings_match_recompute_oracle(
        shard_pick in 0usize..4,
        ops in prop::collection::vec(family_op(), 1..12),
    ) {
        let shards = [1usize, 2, 4, 16][shard_pick];
        let slider = family_slider(
            SliderConfig::default()
                .with_store_shards(shards)
                .with_maintenance_batch(usize::MAX)
                .with_maintenance_max_age(None),
        );
        prop_assert_eq!(slider.store().shard_count(), shards);
        let mut oracle = RecomputeOracle::new(family_ruleset());
        let mut pending: Vec<Triple> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                DeferredOp::Add(batch) => {
                    slider.add_triples(batch);
                    oracle.add(batch);
                    pending.retain(|t| !batch.contains(t));
                }
                DeferredOp::Defer(batch) => {
                    slider.remove_deferred(batch);
                    for &t in batch {
                        if !pending.contains(&t) {
                            pending.push(t);
                        }
                    }
                }
                DeferredOp::Flush => {
                    slider.flush_maintenance();
                    oracle.remove(&pending);
                    pending.clear();
                }
            }
            slider.wait_idle();
            prop_assert_eq!(
                slider.store().to_sorted_vec(),
                oracle.to_sorted_vec(),
                "shards={} diverged after op {} of {:?}",
                shards,
                i,
                ops
            );
        }
        slider.flush_maintenance();
        oracle.remove(&pending);
        prop_assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
        prop_assert_eq!(slider.stats().store.explicit, oracle.explicit_len());
        // The sharded store's lock-free length counter never drifts from
        // the actual table population, whatever the interleaving.
        prop_assert_eq!(slider.store().len(), slider.store().to_sorted_vec().len());
    }
}

/// A pending deferred retraction roots its ids against dictionary
/// sweeps: sweeping between a deferral and its flush must not tombstone
/// the pending triple's ids even when the triple has already left the
/// store — a recycled id could alias the queued retraction at flush time,
/// and the re-assertion-cancels invariant depends on the pending term
/// re-interning to its pending id.
#[test]
fn sweeps_never_recycle_ids_referenced_by_pending_retractions() {
    use slider::model::vocab::ALL;
    let dict = Arc::new(Dictionary::new());
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rho_df(),
        SliderConfig::default()
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None),
    );
    let a = Term::iri("http://example.org/pending/a");
    let b = Term::iri("http://example.org/pending/b");
    let sco = Term::iri(ALL[RDFS_SUB_CLASS_OF.index()]);
    let triple = (a.clone(), sco.clone(), b.clone());
    slider.add_terms(std::slice::from_ref(&triple));
    slider.wait_idle();
    let a_id = dict.id_of(&a).expect("a interned");
    let b_id = dict.id_of(&b).expect("b interned");

    // Eagerly retract: (a sco b) leaves the store, a/b stay in the dict
    // with no store reference. Then defer a retraction of the same triple
    // — its encoding references the now store-dead ids.
    assert_eq!(slider.remove_terms(std::slice::from_ref(&triple)), 1);
    assert_eq!(
        slider.remove_terms_deferred(std::slice::from_ref(&triple)),
        1
    );
    assert_eq!(slider.stats().pending_removals, 1);

    // The sweep must treat the pending ids as live roots.
    slider.sweep_dictionary();
    assert_eq!(
        dict.lookup(a_id),
        Some(a.clone()),
        "sweep took a pending id"
    );
    assert_eq!(
        dict.lookup(b_id),
        Some(b.clone()),
        "sweep took a pending id"
    );
    assert_eq!(slider.stats().pending_removals, 1);

    // Re-asserting the pending triple cancels the retraction by encoded
    // id — sound only because the ids survived the sweep.
    slider.add_terms(std::slice::from_ref(&triple));
    slider.wait_idle();
    assert_eq!(dict.id_of(&a), Some(a_id), "re-intern changed a live id");
    assert_eq!(slider.stats().cancelled_removals, 1);
    assert_eq!(slider.stats().pending_removals, 0);
    assert_eq!(slider.flush_maintenance(), RemovalOutcome::default());
    assert!(slider
        .store()
        .contains(Triple::new(a_id, RDFS_SUB_CLASS_OF, b_id)));
}

// ---------- the dictionary-sweep property test --------------------------------

/// One scripted operation of the sweep property test: the deferred mix
/// over *decoded* (term) triples, plus explicit dictionary sweeps.
#[derive(Debug, Clone)]
enum SweepOp {
    Add(Vec<TermTriple>),
    Defer(Vec<TermTriple>),
    Flush,
    Sweep,
}

fn sweep_node(v: u64) -> Term {
    Term::iri(format!("http://example.org/sweep/n{v}"))
}

/// Decoded triples over a small term pool: schema-heavy predicates (the
/// real vocabulary IRIs, so they intern to the fixed ids the ρdf rules
/// match on) over few nodes plus the odd literal object — collisions are
/// frequent, so flushes leave dictionary garbage for sweeps to find.
fn sweep_term_triple() -> impl Strategy<Value = TermTriple> {
    use slider::model::vocab::ALL;
    let node = || (0u64..10).prop_map(sweep_node);
    let object = prop_oneof![
        4 => (0u64..10).prop_map(sweep_node),
        1 => (0u64..3).prop_map(|v| Term::literal(format!("lit{v}"))),
    ];
    (
        node(),
        prop_oneof![
            3 => Just(Term::iri(ALL[RDFS_SUB_CLASS_OF.index()])),
            2 => Just(Term::iri(ALL[RDF_TYPE.index()])),
            2 => Just(Term::iri(ALL[RDFS_SUB_PROPERTY_OF.index()])),
            2 => (0u64..3).prop_map(sweep_node),
        ],
        object,
    )
}

fn sweep_op() -> impl Strategy<Value = SweepOp> {
    let batch = || prop::collection::vec(sweep_term_triple(), 1..8);
    prop_oneof![
        3 => batch().prop_map(SweepOp::Add),
        3 => batch().prop_map(SweepOp::Defer),
        1 => Just(SweepOp::Flush),
        2 => Just(SweepOp::Sweep),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The compaction acceptance property: ANY interleaving of term-level
    /// adds, deferrals, flushes and **dictionary sweeps** ends
    /// closure-identical to the recompute oracle, and no sweep ever moves
    /// or corrupts a live id. Comparison is over *decoded* closures
    /// against an oracle with a never-swept dictionary — a term
    /// retracted, swept and later re-asserted legally returns under a
    /// fresh id, so raw id-triple equality would be the wrong invariant.
    /// Every id the store references before a sweep must resolve to the
    /// same term and kind after it (ids of live terms never move), and a
    /// sweep must not disturb the pending-retraction queue (its ids are
    /// liveness roots even when their triples already left the store).
    #[test]
    fn sweep_interleavings_match_oracle_and_keep_live_ids_stable(
        ops in prop::collection::vec(sweep_op(), 1..14),
    ) {
        let dict = Arc::new(Dictionary::new());
        let slider = Slider::new(
            Arc::clone(&dict),
            Ruleset::rho_df(),
            SliderConfig::default()
                .with_maintenance_batch(usize::MAX)
                .with_maintenance_max_age(None),
        );
        let oracle_dict = Dictionary::new();
        let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
        // Model of the scheduler in term space: distinct pending
        // retractions over terms known at defer time, re-assertion
        // cancelling (sound because pending ids are sweep roots — the
        // re-asserted term re-interns to its pending id, never a fresh
        // one).
        let mut pending: Vec<TermTriple> = Vec::new();
        let decoded = |d: &Dictionary, v: Vec<Triple>| -> Vec<TermTriple> {
            let mut out: Vec<TermTriple> = v
                .into_iter()
                .map(|t| d.decode_triple(t).expect("store references an undecodable id"))
                .collect();
            out.sort();
            out
        };
        let encode_oracle = |batch: &[TermTriple]| -> Vec<Triple> {
            batch.iter().map(|t| oracle_dict.encode_triple(t)).collect()
        };
        for (i, op) in ops.iter().enumerate() {
            match op {
                SweepOp::Add(batch) => {
                    slider.add_terms(batch);
                    oracle.add(&encode_oracle(batch));
                    pending.retain(|t| !batch.contains(t));
                }
                SweepOp::Defer(batch) => {
                    // `remove_terms_deferred` looks terms up (never
                    // interns): triples over unknown terms are skipped.
                    let known: Vec<TermTriple> = batch
                        .iter()
                        .filter(|(s, p, o)| {
                            dict.id_of(s).is_some()
                                && dict.id_of(p).is_some()
                                && dict.id_of(o).is_some()
                        })
                        .cloned()
                        .collect();
                    slider.remove_terms_deferred(batch);
                    for t in known {
                        if !pending.contains(&t) {
                            pending.push(t);
                        }
                    }
                }
                SweepOp::Flush => {
                    let outcome = slider.flush_maintenance();
                    prop_assert_eq!(outcome.requested, pending.len(), "op {}", i);
                    oracle.remove(&encode_oracle(&pending));
                    pending.clear();
                }
                SweepOp::Sweep => {
                    // Pin every store-referenced id's resolution across
                    // the sweep: live ids never move.
                    let before: Vec<(NodeId, Term)> = {
                        let mut ids: Vec<NodeId> = slider
                            .store()
                            .to_sorted_vec()
                            .into_iter()
                            .flat_map(|t| [t.s, t.p, t.o])
                            .collect();
                        ids.sort_unstable();
                        ids.dedup();
                        ids.into_iter()
                            .map(|id| (id, dict.lookup(id).expect("live id resolves")))
                            .collect()
                    };
                    slider.sweep_dictionary();
                    for (id, term) in &before {
                        let resolved = dict.lookup(*id);
                        prop_assert_eq!(
                            resolved.as_ref(),
                            Some(term),
                            "sweep moved live id {:?} (op {})",
                            id,
                            i
                        );
                        prop_assert_eq!(dict.kind(*id), Some(term.kind()), "op {}", i);
                    }
                    prop_assert_eq!(
                        slider.stats().pending_removals,
                        pending.len(),
                        "a sweep disturbed the pending queue (op {})",
                        i
                    );
                }
            }
            slider.wait_idle();
            prop_assert_eq!(
                decoded(&dict, slider.store().to_sorted_vec()),
                decoded(&oracle_dict, oracle.to_sorted_vec()),
                "decoded closure diverged after op {} of {:?}",
                i,
                ops
            );
        }
        // Drain what is still pending; the decoded end states agree too.
        slider.flush_maintenance();
        oracle.remove(&encode_oracle(&pending));
        prop_assert_eq!(
            decoded(&dict, slider.store().to_sorted_vec()),
            decoded(&oracle_dict, oracle.to_sorted_vec())
        );
        prop_assert_eq!(slider.stats().store.explicit, oracle.explicit_len());
    }
}
