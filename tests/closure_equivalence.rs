//! Cross-engine closure equivalence: Slider (all configurations) must
//! compute exactly the closure the independent batch oracles compute, on
//! every workload family and both fragments.

use slider::baseline::{NaiveReasoner, SemiNaiveReasoner};
use slider::prelude::*;
use slider::workloads::{encode_all, PaperOntology};
use std::sync::Arc;
use std::time::Duration;

fn oracle_closure(dict: &Arc<Dictionary>, fragment: Fragment, input: &[Triple]) -> Vec<Triple> {
    let mut semi = SemiNaiveReasoner::new(Ruleset::fragment(fragment, dict));
    semi.materialize_all(input);
    let mut naive = NaiveReasoner::new(Ruleset::fragment(fragment, dict));
    naive.materialize_all(input);
    let a = semi.store().to_sorted_vec();
    let b = naive.store().to_sorted_vec();
    assert_eq!(
        a, b,
        "the two oracles disagree — bug in a rule or a baseline"
    );
    a
}

fn slider_closure(
    dict: &Arc<Dictionary>,
    fragment: Fragment,
    input: &[Triple],
    config: SliderConfig,
) -> Vec<Triple> {
    let slider = Slider::new(Arc::clone(dict), Ruleset::fragment(fragment, dict), config);
    slider.add_triples(input);
    slider.wait_idle();
    slider.store().to_sorted_vec()
}

fn check_ontology(ontology: PaperOntology, scale: f64) {
    let data = ontology.generate(scale);
    for fragment in [Fragment::RhoDf, Fragment::Rdfs] {
        let dict = Arc::new(Dictionary::new());
        let input = encode_all(&data, &dict);
        let expected = oracle_closure(&dict, fragment, &input);
        let got = slider_closure(&dict, fragment, &input, SliderConfig::default());
        assert_eq!(got, expected, "{ontology} under {fragment}");
    }
}

#[test]
fn bsbm_family() {
    check_ontology(PaperOntology::Bsbm100k, 0.02);
}

#[test]
fn wikipedia_family() {
    check_ontology(PaperOntology::Wikipedia, 0.01);
}

#[test]
fn wordnet_family() {
    check_ontology(PaperOntology::Wordnet, 0.01);
}

#[test]
fn chain_family() {
    check_ontology(PaperOntology::SubClassOf50, 1.0);
}

/// Table 1's chain rows are exact: `(n−1)(n−2)/2` inferred under ρdf.
#[test]
fn chain_inferred_counts_match_table1() {
    for (ontology, n) in [
        (PaperOntology::SubClassOf10, 10usize),
        (PaperOntology::SubClassOf20, 20),
        (PaperOntology::SubClassOf50, 50),
        (PaperOntology::SubClassOf100, 100),
    ] {
        let dict = Arc::new(Dictionary::new());
        let input = encode_all(&ontology.generate(1.0), &dict);
        let slider = Slider::new(
            Arc::clone(&dict),
            Ruleset::rho_df(),
            SliderConfig::default(),
        );
        slider.add_triples(&input);
        slider.wait_idle();
        let inferred = slider.store().len() - input.len();
        assert_eq!(
            inferred,
            (n - 1) * (n - 2) / 2,
            "{ontology}: paper Table 1 count"
        );
    }
}

/// The closure must be identical across extreme reasoner configurations —
/// buffer size and pool size affect performance, never the result.
#[test]
fn configuration_independence() {
    let data = PaperOntology::Bsbm100k.generate(0.01);
    let configs = [
        SliderConfig::default(),
        SliderConfig::default().with_buffer_capacity(1),
        SliderConfig::default().with_buffer_capacity(100_000),
        SliderConfig::default().with_workers(1),
        SliderConfig::default().with_workers(16),
        SliderConfig::batch(),
        SliderConfig::default().with_timeout(Some(Duration::from_millis(1))),
        SliderConfig::default().with_object_index(false),
        SliderConfig::default().with_trace(true),
    ];
    for fragment in [Fragment::RhoDf, Fragment::Rdfs] {
        let mut closures = Vec::new();
        for config in &configs {
            let dict = Arc::new(Dictionary::new());
            let input = encode_all(&data, &dict);
            closures.push(slider_closure(&dict, fragment, &input, config.clone()));
        }
        for (i, closure) in closures.iter().enumerate() {
            assert_eq!(
                closure, &closures[0],
                "config #{i} disagrees under {fragment}"
            );
        }
    }
}

/// ρdf ⊆ RDFS: everything ρdf infers, RDFS infers too.
#[test]
fn rho_df_is_subset_of_rdfs() {
    let data = PaperOntology::Bsbm100k.generate(0.01);
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&data, &dict);
    let rho = slider_closure(&dict, Fragment::RhoDf, &input, SliderConfig::default());
    let rdfs = slider_closure(&dict, Fragment::Rdfs, &input, SliderConfig::default());
    let rdfs_set: std::collections::HashSet<Triple> = rdfs.iter().copied().collect();
    for t in rho {
        assert!(rdfs_set.contains(&t), "RDFS closure is missing {t}");
    }
}

/// Materialisation is idempotent: re-feeding the closure infers nothing.
#[test]
fn closure_is_a_fixpoint() {
    let data = PaperOntology::Wikipedia.generate(0.005);
    let dict = Arc::new(Dictionary::new());
    let input = encode_all(&data, &dict);
    let closure = slider_closure(&dict, Fragment::Rdfs, &input, SliderConfig::default());

    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rdfs(&dict),
        SliderConfig::default(),
    );
    slider.add_triples(&closure);
    slider.wait_idle();
    assert_eq!(slider.store().len(), closure.len());
}
