//! End-to-end tests for the RDFS-Plus fragment (the paper's §5 future
//! work): equality smushing, inverse/symmetric/transitive properties and
//! their composition with the RDFS core — checked against the batch
//! oracle under many reasoner configurations.

use slider::baseline::closure;
use slider::model::vocab;
use slider::prelude::*;
use std::sync::Arc;

fn e(name: &str) -> Term {
    Term::iri(format!("http://example.org/{name}"))
}

/// A cross-source data-integration scenario: two catalogues describe the
/// same book under different IRIs; a functional identifier property plus
/// sameAs reasoning merges them.
fn library_scenario(dict: &Dictionary) -> Vec<Triple> {
    let t = |s: &Term, p: NodeId, o: &Term| Triple::new(dict.intern(s), p, dict.intern(o));
    let isbn = dict.intern(&e("isbn"));
    let author_of = dict.intern(&e("authorOf"));
    let written_by = dict.intern(&e("writtenBy"));
    let part_of = dict.intern(&e("partOfSeries"));
    let mut out = vec![
        // isbn is inverse functional: same ISBN ⇒ same book.
        Triple::new(
            isbn,
            vocab::RDF_TYPE,
            vocab::OWL_INVERSE_FUNCTIONAL_PROPERTY,
        ),
        // writtenBy is the inverse of authorOf.
        Triple::new(written_by, vocab::OWL_INVERSE_OF, author_of),
        // partOfSeries is transitive.
        Triple::new(part_of, vocab::RDF_TYPE, vocab::OWL_TRANSITIVE_PROPERTY),
        // Catalogue A.
        t(&e("bookA"), isbn, &e("9780001")),
        t(&e("bookA"), written_by, &e("tolkien")),
        t(&e("bookA"), part_of, &e("lotr")),
        // Catalogue B (same ISBN, different IRI).
        t(&e("bookB"), isbn, &e("9780001")),
        // Series nesting.
        t(&e("lotr"), part_of, &e("middle-earth-canon")),
    ];
    // Some typing so the RDFS core has work too.
    let book_class = dict.intern(&e("Book"));
    let work_class = dict.intern(&e("Work"));
    out.push(Triple::new(
        book_class,
        vocab::RDFS_SUB_CLASS_OF,
        work_class,
    ));
    out.push(t(&e("bookA"), vocab::RDF_TYPE, &e("Book")));
    out
}

#[test]
fn library_scenario_merges_identities() {
    let dict = Arc::new(Dictionary::new());
    let input = library_scenario(&dict);
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rdfs_plus(&dict),
        SliderConfig::default(),
    );
    slider.add_triples(&input);
    slider.wait_idle();
    let store = slider.store();

    let id = |name: &str| dict.id_of(&e(name)).unwrap();

    // PRP-IFP: same ISBN ⇒ bookA sameAs bookB (both directions via EQ-SYM).
    assert!(store.contains(Triple::new(id("bookA"), vocab::OWL_SAME_AS, id("bookB"))));
    assert!(store.contains(Triple::new(id("bookB"), vocab::OWL_SAME_AS, id("bookA"))));

    // EQ-REP-S: bookB inherits everything known about bookA.
    assert!(store.contains(Triple::new(id("bookB"), id("writtenBy"), id("tolkien"))));
    assert!(store.contains(Triple::new(id("bookB"), vocab::RDF_TYPE, id("Book"))));

    // PRP-INV: tolkien authorOf both books.
    assert!(store.contains(Triple::new(id("tolkien"), id("authorOf"), id("bookA"))));
    assert!(store.contains(Triple::new(id("tolkien"), id("authorOf"), id("bookB"))));

    // PRP-TRP: series nesting is transitive.
    assert!(store.contains(Triple::new(
        id("bookA"),
        id("partOfSeries"),
        id("middle-earth-canon")
    )));

    // CAX-SCO composition: both books are Works.
    assert!(store.contains(Triple::new(id("bookA"), vocab::RDF_TYPE, id("Work"))));
    assert!(store.contains(Triple::new(id("bookB"), vocab::RDF_TYPE, id("Work"))));
}

#[test]
fn rdfs_plus_matches_oracle_on_scenario() {
    let dict = Arc::new(Dictionary::new());
    let input = library_scenario(&dict);
    let expected = closure(Ruleset::rdfs_plus(&dict), &input).to_sorted_vec();
    for config in [
        SliderConfig::default(),
        SliderConfig::default()
            .with_buffer_capacity(1)
            .with_workers(1),
        SliderConfig::batch(),
    ] {
        let slider = Slider::new(Arc::clone(&dict), Ruleset::rdfs_plus(&dict), config);
        slider.add_triples(&input);
        slider.wait_idle();
        assert_eq!(slider.store().to_sorted_vec(), expected);
    }
}

#[test]
fn rdfs_plus_incremental_equals_batch() {
    let dict = Arc::new(Dictionary::new());
    let input = library_scenario(&dict);
    let expected = closure(Ruleset::rdfs_plus(&dict), &input).to_sorted_vec();
    // Feed one triple at a time with quiescence in between — the hardest
    // ordering: equalities may arrive long after the facts they rewrite.
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rdfs_plus(&dict),
        SliderConfig::default(),
    );
    for &t in &input {
        slider.add_triple(t);
        slider.wait_idle();
    }
    assert_eq!(slider.store().to_sorted_vec(), expected);

    // And in reverse order.
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rdfs_plus(&dict),
        SliderConfig::default(),
    );
    for &t in input.iter().rev() {
        slider.add_triple(t);
    }
    slider.wait_idle();
    assert_eq!(slider.store().to_sorted_vec(), expected);
}

#[test]
fn same_as_clique_terminates() {
    // sameAs cliques are the worst case for equality reasoning: n members
    // ⇒ n² sameAs triples plus full fact propagation. Must terminate and
    // match the oracle.
    let dict = Arc::new(Dictionary::new());
    let members: Vec<NodeId> = (0..8)
        .map(|i| dict.intern(&e(&format!("alias{i}"))))
        .collect();
    let p = dict.intern(&e("claims"));
    let v = dict.intern(&e("value"));
    let mut input: Vec<Triple> = members
        .windows(2)
        .map(|w| Triple::new(w[0], vocab::OWL_SAME_AS, w[1]))
        .collect();
    input.push(Triple::new(members[0], p, v));

    let expected = closure(Ruleset::rdfs_plus(&dict), &input).to_sorted_vec();
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rdfs_plus(&dict),
        SliderConfig::default(),
    );
    slider.add_triples(&input);
    slider.wait_idle();
    let got = slider.store().to_sorted_vec();
    assert_eq!(got, expected);

    // Every member claims the value (EQ-REP-S over the clique)…
    let store = slider.store().read();
    for &m in &members {
        assert!(store.contains(Triple::new(m, p, v)), "{m} lost the fact");
    }
    // …and the sameAs relation is the full clique (n² incl. reflexive).
    assert_eq!(
        store.count_with_p(vocab::OWL_SAME_AS),
        members.len() * members.len()
    );
}

#[test]
fn functional_property_chain_of_equalities() {
    // b0 = b1 = … = b5 via a functional property all pointing at the same
    // subject; checks PRP-FP + EQ-TRANS together.
    let dict = Arc::new(Dictionary::new());
    let p = dict.intern(&e("primaryKey"));
    let mut input = vec![Triple::new(
        p,
        vocab::RDF_TYPE,
        vocab::OWL_FUNCTIONAL_PROPERTY,
    )];
    let subject = dict.intern(&e("row"));
    let keys: Vec<NodeId> = (0..6).map(|i| dict.intern(&e(&format!("k{i}")))).collect();
    for &k in &keys {
        input.push(Triple::new(subject, p, k));
    }
    let slider = Slider::new(
        Arc::clone(&dict),
        Ruleset::rdfs_plus(&dict),
        SliderConfig::default(),
    );
    slider.add_triples(&input);
    slider.wait_idle();
    let store = slider.store().read();
    for &a in &keys {
        for &b in &keys {
            if a != b {
                assert!(
                    store.contains(Triple::new(a, vocab::OWL_SAME_AS, b)),
                    "missing {a} sameAs {b}"
                );
            }
        }
    }
}

#[test]
fn dependency_graph_wires_equality_rules() {
    let dict = Arc::new(Dictionary::new());
    let graph = DependencyGraph::build(&Ruleset::rdfs_plus(&dict));
    // sameAs producers feed the equality machinery.
    for producer in ["PRP-FP", "PRP-IFP", "EQ-SYM", "EQ-TRANS"] {
        for consumer in ["EQ-SYM", "EQ-TRANS", "EQ-REP-S", "EQ-REP-P", "EQ-REP-O"] {
            assert!(
                graph.has_edge_named(producer, consumer),
                "{producer} → {consumer}"
            );
        }
    }
    // Equivalence desugaring feeds the RDFS core.
    assert!(graph.has_edge_named("SCM-EQC", "SCM-SCO"));
    assert!(graph.has_edge_named("SCM-EQC", "CAX-SCO"));
    assert!(graph.has_edge_named("SCM-EQP", "SCM-SPO"));
    assert!(graph.has_edge_named("SCM-EQP", "PRP-SPO1"));
    // But not vice versa: CAX-SCO emits type, not equivalence.
    assert!(!graph.has_edge_named("CAX-SCO", "SCM-EQC"));
}
