//! A reasoning *session*: input manager, rule modules, distributors —
//! everything per-tenant. The execution layer (worker pool, job queue,
//! flusher) lives in [`crate::runtime`]; a session holds a
//! [`SessionHandle`] into the runtime it registered with and submits its
//! rule instances to the shared pool.

use crate::buffer::Buffer;
use crate::config::SliderConfig;
use crate::inflight::Inflight;
use crate::maintenance::{self, RemovalOutcome};
use crate::runtime::{
    Job, JobQueue, Runtime, RuntimeConfig, RuntimeCore, RuntimeShared, SessionHandle,
};
use crate::scheduler::MaintenanceScheduler;
use crate::stats::{bump, GlobalCounters, RuleCounters, RuleStats, StatsSnapshot};
use crate::trace::{Event, EventKind, EventLog};
use crossbeam::channel::unbounded;
use parking_lot::{Mutex, RwLock};
use slider_model::{Dictionary, FxHashSet, NodeId, SweepOutcome, TermTriple, Triple};
use slider_rules::{DependencyGraph, Fragment, InputFilter, Rule, Ruleset};
use slider_store::{subject_bucket, ShardedStore, VerticalStore};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// One rule module: the rule, its buffer, its distributor's routing table
/// and its counters (paper Figure 1, one column).
pub(crate) struct Module {
    pub(crate) rule: Arc<dyn Rule>,
    filter: InputFilter,
    /// The rule's declared static read set ([`Rule::read_predicates`]),
    /// pre-planned against the store's shard layout: `Some` lets a join
    /// pin only those predicates' shards, `None` means a full snapshot.
    read_plan: Option<slider_store::ReadSet>,
    buffer: Buffer,
    /// Rules whose buffers receive this module's fresh conclusions —
    /// `successors` in the dependency graph.
    successors: Vec<usize>,
    counters: RuleCounters,
    /// Current fire threshold; fixed to the configured capacity unless the
    /// adaptive scheduler is on (then retuned after every instance).
    capacity: AtomicUsize,
}

/// Everything derived from the loaded ruleset — the **swappable half** of
/// the engine. `swap_ruleset` builds a fresh `RulesetState` and installs
/// it at its linearisation point; everything else resolves the current
/// state once per unit of work ([`Engine::rstate`]) and keeps using that
/// resolution while it holds an inflight token, which is what makes the
/// resolution stable: a swap only completes at verified quiescence
/// (inflight == 0, buffers empty), so a state resolved under a token can
/// never be retired mid-use.
pub(crate) struct RulesetState {
    /// Ruleset name ("rho-df", "RDFS", custom).
    name: String,
    pub(crate) modules: Vec<Module>,
    /// Shared with partition-pass jobs, which run DRed off-thread.
    graph: Arc<DependencyGraph>,
    /// Per rule: whether `Rule::derives` answered on an empty-store probe —
    /// a backward matcher exists. Partitioned flushes require one for every
    /// involved rule (the heuristic is conservative at worst: a partition
    /// pass that still hits `derives → None` at run time falls back to the
    /// forward pass *over its own shard*, which holds the partition's full
    /// footprint, so it stays sound either way).
    backward: Vec<bool>,
}

/// Builds the ruleset-derived state: dependency graph, modules with
/// read plans pre-planned against `store`'s shard layout, and the
/// backward-matcher probe results. For rules also present in `carried`
/// (matched by name + definition), the counters and the adaptive
/// fire-threshold plan carry over — a hot-swap keeps a kept rule's
/// history and tuning.
fn build_state(
    ruleset: &Ruleset,
    store: &ShardedStore,
    base_capacity: usize,
    carried: Option<&RulesetState>,
) -> RulesetState {
    let graph = DependencyGraph::build(ruleset);
    let modules: Vec<Module> = ruleset
        .rules()
        .iter()
        .enumerate()
        .map(|(i, rule)| {
            let kept = carried.and_then(|old| {
                old.modules.iter().find(|m| {
                    m.rule.name() == rule.name() && m.rule.definition() == rule.definition()
                })
            });
            Module {
                rule: Arc::clone(rule),
                filter: rule.input_filter(),
                read_plan: rule.read_predicates().map(|preds| store.plan_read(&preds)),
                buffer: Buffer::new(base_capacity),
                successors: graph.successors(i).to_vec(),
                counters: kept.map(|m| m.counters.carry()).unwrap_or_default(),
                capacity: AtomicUsize::new(
                    kept.map(|m| m.capacity.load(Ordering::Relaxed))
                        .unwrap_or(base_capacity),
                ),
            }
        })
        .collect();
    // Probe each rule's backward matcher once (an empty store answers
    // `Some(false)` from any implementation, `None` from the default):
    // partitioned flushes are gated on every involved rule having one.
    let probe_store = VerticalStore::new();
    let probe = Triple::new(NodeId(0), NodeId(0), NodeId(0));
    let backward: Vec<bool> = modules
        .iter()
        .map(|m| m.rule.derives(&probe_store.view(), probe).is_some())
        .collect();
    RulesetState {
        name: ruleset.name().to_owned(),
        modules,
        graph: Arc::new(graph),
        backward,
    }
}

/// Per-session state shared between the public handle, the runtime's
/// workers and its flusher.
pub(crate) struct Engine {
    dict: Arc<Dictionary>,
    store: ShardedStore,
    /// The current [`RulesetState`], replaced wholesale by `swap_ruleset`.
    /// The lock is held only for the pointer clone/swap, never across
    /// work; see [`Engine::rstate`] for the resolution discipline.
    rstate: RwLock<Arc<RulesetState>>,
    /// The shared runtime's job queue; submissions are tagged with
    /// `session` so the pool round-robins fairly across tenants.
    queue: Arc<JobQueue>,
    /// This session's runtime-unique id (its lane in the job queue).
    session: u64,
    /// Back-reference to self, so submitted jobs can carry an owning
    /// handle — worker panics and inflight tokens stay session-contained.
    self_ref: Weak<Engine>,
    /// This session's buffer-staleness deadline (`SliderConfig::timeout`);
    /// the runtime's flusher services it via
    /// [`Engine::drain_stale_buffers`].
    timeout: Option<Duration>,
    pub(crate) inflight: Inflight,
    pub(crate) globals: GlobalCounters,
    log: Option<EventLog>,
    /// Adaptive-scheduling bounds: `Some((base, max))` when enabled.
    adaptive: Option<(usize, usize)>,
    /// Serialises DRed maintenance runs (see [`Slider::remove_triples`])
    /// and ruleset swaps — a swap is a maintenance operation.
    maintenance: Mutex<()>,
    /// Conservative-maintenance switch (see `SliderConfig::full_rederive`).
    full_rederive: bool,
    /// Partitioned-flush switch (see
    /// `SliderConfig::maintenance_partitioning`).
    partitioning: bool,
    /// Intra-partition subject sub-split factor (see
    /// `SliderConfig::deletion_subsplit`); 1 disables the planner's
    /// second level.
    subsplit: usize,
    /// Eager removals waiting to be combined: a caller enqueues its batch
    /// here before blocking on the maintenance mutex, and whichever
    /// caller acquires the mutex with an unserved slot drains the queue
    /// and runs every waiting batch through one planned pass.
    eager_queue: Mutex<Vec<Arc<EagerBatch>>>,
    /// Deferred retractions awaiting a coalesced DRed run (see
    /// [`Slider::remove_deferred`]).
    pub(crate) scheduler: MaintenanceScheduler,
    /// Idle-lane parking flag: set by the runtime's flusher when this
    /// session has nothing for it to service (every buffer empty, no
    /// pending maintenance), cleared by the first producer that makes new
    /// work visible. A parked session is skipped by the flusher's
    /// rotation and contributes no tick deadline. See [`Engine::try_park`]
    /// / [`Engine::unpark`] for the handshake.
    pub(crate) parked: AtomicBool,
    /// The runtime state shared with the flusher thread, so `unpark` can
    /// nudge it awake (with every session parked it sleeps indefinitely).
    flusher: Arc<RuntimeShared>,
    /// Configured buffer capacity — the baseline for modules built by a
    /// ruleset swap (rules added mid-life start from the same plan a
    /// fresh reasoner would give them).
    base_capacity: usize,
    /// Dictionary sweep trigger ratio (see
    /// `SliderConfig::dict_sweep_ratio`); `f64::INFINITY` disables the
    /// automatic post-retraction sweep.
    dict_sweep_ratio: f64,
    /// Triples retired (retracted + overdeleted) by maintenance runs
    /// since the last dictionary sweep — the sweep trigger's numerator.
    retired_since_sweep: AtomicUsize,
}

/// Absolute floor for the automatic dictionary sweep: below this many
/// retirements since the last sweep, a sweep cannot reclaim enough to pay
/// for its liveness scan, whatever the ratio says.
const DICT_SWEEP_MIN_RETIRED: usize = 1024;

/// Pending sets below this size never sub-split: a one-seed partition has
/// nothing to parallelise by subject.
const SUBSPLIT_MIN_PENDING: usize = 2;

/// One first-level bucket of a partitioned maintenance plan: the pending
/// retractions that map to one maintenance partition, plus the predicates
/// whose tables that partition's DRed pass may touch (split off as a
/// store shard).
struct PendingGroup {
    preds: Vec<slider_model::NodeId>,
    /// The group's retractions, labelled by source batch. A coalesced
    /// flush is a single batch 0; an eager combining run keeps one batch
    /// per caller so each caller gets its own [`RemovalOutcome`].
    triples: Vec<(usize, Triple)>,
    /// `Some(closure)` when the group passes the subject-locality gate
    /// and sub-splits: the *affected predicate closure* whose tables are
    /// carved into subject-hash buckets, each maintained by its own DRed
    /// unit over a read-only overlay of the rest of the partition (the
    /// planner's second level; see
    /// [`DependencyGraph::subsplit_affected`]).
    affected: Option<Vec<slider_model::NodeId>>,
}

/// One caller's batch in a combining eager-removal run: the leader that
/// holds the maintenance mutex drains every queued batch, plans them
/// together, and deposits each batch's outcome in its slot before
/// releasing the mutex — so a blocked caller either finds its result
/// ready or becomes the next leader.
struct EagerBatch {
    triples: Vec<Triple>,
    done: Mutex<Option<RemovalOutcome>>,
}

/// Shape of an executed maintenance run, for counters and trace events:
/// how many first-level groups the plan had, how many units actually ran
/// (a sub-split group contributes one unit per occupied subject bucket),
/// and how many of those units were subject-bucket carves.
#[derive(Clone, Copy)]
struct RunShape {
    partitions: usize,
    units: usize,
    subpartitions: usize,
}

impl RunShape {
    /// The unplanned single DRed pass over the whole store.
    fn single_pass() -> Self {
        RunShape {
            partitions: 1,
            units: 1,
            subpartitions: 0,
        }
    }
}

/// Runs one unit of deletion work: the batch-labelled `seeds` grouped by
/// batch, one DRed pass per non-empty batch in batch order, each joining
/// through `ctx` (the read-only rest of the unit's partition) when the
/// unit is a subject-bucket carve. Returns one outcome per batch —
/// empty batches stay zeroed, exactly what a serial run would report.
fn run_unit(
    store: &mut VerticalStore,
    ctx: Option<&VerticalStore>,
    rules: &[Arc<dyn Rule>],
    graph: &DependencyGraph,
    seeds: &[(usize, Triple)],
    batches: usize,
) -> Vec<RemovalOutcome> {
    let mut outcomes = vec![RemovalOutcome::default(); batches];
    let mut by_batch: Vec<Vec<Triple>> = vec![Vec::new(); batches];
    for &(b, t) in seeds {
        by_batch[b].push(t);
    }
    for (b, ts) in by_batch.iter().enumerate() {
        if ts.is_empty() {
            continue;
        }
        outcomes[b] = maintenance::dred(store, ctx, rules, graph, ts, false);
    }
    outcomes
}

impl Engine {
    /// Resolves the current ruleset state. The returned `Arc` stays valid
    /// forever (a swap retires the *engine's* pointer, not the state), but
    /// it is only guaranteed to be the *current* program while the caller
    /// holds an inflight token acquired **before** the resolution: a swap
    /// linearises at inflight == 0, so a token pins the resolution. Code
    /// that resolves without a token (stats, Debug) may read a state that
    /// a concurrent swap is retiring — fine for observability, never for
    /// dispatch.
    pub(crate) fn rstate(&self) -> Arc<RulesetState> {
        Arc::clone(&self.rstate.read())
    }

    /// Queues a rule instance on the shared pool; the caller must already
    /// hold an inflight token for it (token ownership transfers to the
    /// job, which carries an owning engine handle).
    fn submit_with_token(&self, rule: usize, delta: Vec<Triple>) {
        let engine = self
            .self_ref
            .upgrade()
            .expect("a live session submitted this job");
        // Push only fails after the queue closed, i.e. during runtime
        // teardown; the token is released by the Drop path then.
        if self
            .queue
            .push(
                self.session,
                Job::Run {
                    engine,
                    rule,
                    delta,
                },
            )
            .is_err()
        {
            self.inflight.dec();
        }
    }

    /// Acquires a token and queues a rule instance.
    fn submit(&self, rule: usize, delta: Vec<Triple>) {
        self.inflight.inc();
        self.submit_with_token(rule, delta);
    }

    /// Routes `triples` to the buffers of `targets` (each module filters by
    /// predicate), firing full buffers as new rule instances. The caller
    /// resolved `state` under an inflight token it still holds.
    fn dispatch(&self, state: &RulesetState, targets: &[usize], triples: &[Triple]) {
        let mut accepted: Vec<Triple> = Vec::new();
        let mut buffered_any = false;
        for &i in targets {
            let module = &state.modules[i];
            accepted.clear();
            accepted.extend(
                triples
                    .iter()
                    .copied()
                    .filter(|&t| module.filter.accepts(t)),
            );
            if accepted.is_empty() {
                continue;
            }
            buffered_any = true;
            bump(&module.counters.buffered, accepted.len() as u64);
            let capacity = module.capacity.load(Ordering::Relaxed);
            self.fire_chunks(state, i, module.buffer.push_batch_with(&accepted, capacity));
            // A racing retune may have shrunk the threshold between the
            // load above and the push (its own chunk-firing can miss our
            // triples); the buffer lock we just released makes the new
            // capacity visible here, so fire anything now eligible rather
            // than letting it stall until the next push or timeout.
            let current = module.capacity.load(Ordering::Relaxed);
            if current < capacity {
                self.fire_chunks(state, i, module.buffer.take_full_chunks(current));
            }
        }
        if buffered_any {
            // New buffered work may need timeout service: leave the
            // flusher's parked lane (no-op while unparked).
            self.unpark();
        }
    }

    /// Submits capacity-triggered chunks as rule instances, with the
    /// full-flush accounting every such fire shares.
    fn fire_chunks(&self, state: &RulesetState, rule: usize, chunks: Vec<Vec<Triple>>) {
        let module = &state.modules[rule];
        for chunk in chunks {
            bump(&module.counters.full_flushes, 1);
            if let Some(log) = &self.log {
                log.record(EventKind::BufferFull { rule });
            }
            self.submit(rule, chunk);
        }
    }

    /// Executes one rule instance: join, distribute, route (Figure 1's
    /// rule-module → distributor path).
    pub(crate) fn run_job(&self, rule: usize, delta: Vec<Triple>) {
        // The job carries an inflight token acquired at submission, so the
        // state resolved here is the submission-time state: a swap cannot
        // have linearised in between.
        let state = self.rstate();
        let module = &state.modules[rule];
        let mut out = Vec::new();
        {
            // One **lock-free** epoch read per instance: the join runs
            // against the published immutable snapshot, scoped to the
            // rule's declared read set (the scope keeps the read-set
            // panic contract; it pins nothing). The epoch includes this
            // delta — `insert_batch` publishes before the dispatch that
            // buffered it returned — and possibly newer publications,
            // which is sound (monotone): extra visible triples only
            // produce conclusions earlier; deletion cannot interleave,
            // it requires the gate in write mode, which implies
            // quiescence — no instance like this one in flight.
            let epoch = self.store.snapshot();
            let reader = epoch.reader(module.read_plan.as_ref());
            module.rule.apply(&reader.view(), &delta, &mut out);
        }
        bump(&module.counters.fired, 1);
        bump(&module.counters.derived, out.len() as u64);

        let mut fresh = Vec::new();
        if !out.is_empty() {
            // Distributor step 1+2: add to store, keep only the new ones.
            self.store.insert_batch(&out, &mut fresh);
            bump(&module.counters.fresh, fresh.len() as u64);
        }
        if !out.is_empty() {
            self.retune(&state, rule, out.len(), fresh.len());
        }
        if let Some(log) = &self.log {
            log.record(EventKind::RuleFired {
                rule,
                delta: delta.len(),
                derived: out.len(),
                fresh: fresh.len(),
                store_size: self.store.len(),
            });
        }
        if !fresh.is_empty() {
            // Distributor step 3: dispatch to dependent buffers only.
            self.dispatch(&state, &module.successors, &fresh);
        }
    }

    /// The run-time dynamic plan (§5 future work): a rule whose conclusions
    /// are mostly duplicates gains nothing from low-latency firing — grow
    /// its batch so the join cost is amortised; a productive rule shrinks
    /// back towards the configured capacity for low inference latency.
    /// No-op unless adaptive scheduling is enabled.
    pub(crate) fn retune(&self, state: &RulesetState, rule: usize, derived: usize, fresh: usize) {
        let Some((base, max)) = self.adaptive else {
            return;
        };
        let module = &state.modules[rule];
        let ratio = fresh as f64 / derived as f64;
        let cap = module.capacity.load(Ordering::Relaxed);
        let retuned = if ratio < 0.1 {
            (cap.saturating_mul(2)).min(max)
        } else if ratio > 0.5 {
            (cap / 2).max(base)
        } else {
            cap
        };
        if retuned == cap {
            return;
        }
        module.capacity.store(retuned, Ordering::Relaxed);
        if retuned < cap {
            // Shrinking can leave the buffer already over the new fire
            // threshold; without this, those triples would stall until the
            // next push or a timeout flush (with `timeout: None`, forever).
            // Fire every now-eligible chunk immediately.
            self.fire_chunks(state, rule, module.buffer.take_full_chunks(retuned));
        }
    }

    fn buffers_empty(&self, state: &RulesetState) -> bool {
        state.modules.iter().all(|m| m.buffer.is_empty())
    }

    /// Force-flushes every buffer into rule instances.
    fn flush_all(&self) {
        // Guard token, then resolve: the token pins the resolved state, so
        // a racing swap cannot retire these modules (orphaning drained
        // batches or submitting stale rule indexes) mid-scan. Per-job
        // tokens acquired below while the guard is held chain the cover.
        self.inflight.inc();
        let state = self.rstate();
        for (i, module) in state.modules.iter().enumerate() {
            // Token first: the drained batch must never be invisible to
            // the quiescence check.
            self.inflight.inc();
            let drained = module.buffer.drain();
            if drained.is_empty() {
                self.inflight.dec();
            } else {
                bump(&module.counters.timeout_flushes, 1);
                if let Some(log) = &self.log {
                    log.record(EventKind::TimeoutFlush { rule: i });
                }
                self.submit_with_token(i, drained);
            }
        }
        self.inflight.dec();
    }

    /// Blocks until quiescent (see [`Slider::wait_idle`]).
    fn wait_idle(&self) {
        loop {
            self.flush_all();
            self.inflight.wait_zero();
            let state = self.rstate();
            if self.buffers_empty(&state) && self.inflight.current() == 0 {
                break;
            }
        }
        if let Some(log) = &self.log {
            log.record(EventKind::Idle {
                store_size: self.store.len(),
            });
        }
    }

    /// Runs `f` on the quiescent store: drains all in-flight derivations,
    /// then re-checks quiescence *under the store's maintenance gate,
    /// held in write mode* — an `add_triples` that slipped in after
    /// `wait_idle` still holds its inflight token until its routing (and
    /// pending-retraction cancellation) is done, so a clean check here
    /// means no rule instance can be holding stale premises and no
    /// assertion is midway through cancelling a pending retraction.
    /// Blocked adders (waiting on the gate in read mode) proceed after
    /// `f` and join against the post-maintenance store — sound either
    /// way. The gate is the *only* exclusive lock: normal reads and
    /// writes never take it in write mode, they serialise on per-shard
    /// locks instead ([`ShardedStore::exclusive`] merges the shards into
    /// one [`VerticalStore`] for `f` and re-scatters them on release —
    /// tables move wholesale, so both directions are O(#predicates)).
    /// This preserves PR 4's linearisation contract verbatim: `f` sees a
    /// store no concurrent operation can touch. Returns `f`'s result and
    /// the store size captured under the gate (racing adders blocked on
    /// it must not leak into "store size after maintenance" reported by
    /// the trace events).
    fn with_quiescent_store<R>(&self, f: impl FnOnce(&mut VerticalStore) -> R) -> (R, usize) {
        let mut f = Some(f);
        loop {
            self.wait_idle();
            let mut store = self.store.exclusive();
            let state = self.rstate();
            if self.inflight.current() == 0 && self.buffers_empty(&state) {
                let result = (f.take().expect("quiescence loop runs f once"))(&mut store);
                break (result, store.len());
            }
        }
    }

    /// Records a completed maintenance run in the global counters.
    fn bump_removal_counters(&self, outcome: &RemovalOutcome) {
        if outcome.retracted > 0 {
            bump(&self.globals.removal_runs, 1);
            bump(&self.globals.retracted, outcome.retracted as u64);
            bump(&self.globals.overdeleted, outcome.overdeleted as u64);
            bump(&self.globals.rederived, outcome.rederived as u64);
        }
    }

    /// Post-retraction dictionary compaction hook. Called inside a
    /// quiescent-store section (maintenance mutex held, store gate in
    /// write mode) after a DRed run that retired `retired_now` triples
    /// (retracted + overdeleted). Accumulates the retirement count and
    /// sweeps once it clears both the absolute floor
    /// ([`DICT_SWEEP_MIN_RETIRED`]) and the configured fraction of the
    /// dictionary's live-term count — large retraction bursts trigger a
    /// sweep, steady trickles never do.
    fn maybe_sweep_dict(&self, store: &VerticalStore, retired_now: usize) {
        if retired_now == 0 {
            return;
        }
        let retired = self
            .retired_since_sweep
            .fetch_add(retired_now, Ordering::Relaxed)
            + retired_now;
        if retired < DICT_SWEEP_MIN_RETIRED {
            return;
        }
        // An infinite ratio (auto-sweep disabled) makes this comparison
        // false for any finite retirement count.
        if (retired as f64) < self.dict_sweep_ratio * self.dict.len() as f64 {
            return;
        }
        self.retired_since_sweep.store(0, Ordering::Relaxed);
        self.sweep_dict_now(store);
    }

    /// Sweeps the dictionary against this session's quiescent store: every
    /// s/p/o node id the store or the pending-retraction queue references
    /// is the live root set, everything
    /// else (vocabulary excluded) is tombstoned and its id recycled. The
    /// caller holds the store exclusively, so no intern→insert window can
    /// race the liveness scan — `add_terms` keeps an inflight token across
    /// encoding, which the quiescence check waits out.
    fn sweep_dict_now(&self, store: &VerticalStore) -> SweepOutcome {
        let mut live: FxHashSet<NodeId> = FxHashSet::default();
        for t in store.iter() {
            live.insert(t.s);
            live.insert(t.p);
            live.insert(t.o);
        }
        // Pending deferred retractions are roots too: their triples may
        // already be gone from the store, but recycling their ids would
        // let a later intern alias the queued retraction at flush time.
        self.scheduler.for_each_pending(|t| {
            live.insert(t.s);
            live.insert(t.p);
            live.insert(t.o);
        });
        let outcome = self.dict.sweep(|id| live.contains(&id));
        if let Some(log) = &self.log {
            log.record(EventKind::DictSweep {
                scanned: outcome.scanned,
                swept: outcome.swept,
                live: outcome.live,
                bytes_before: outcome.bytes_before,
                bytes_after: outcome.bytes_after,
            });
        }
        outcome
    }

    /// One eager DRed run over `triples` (see [`Slider::remove_triples`]
    /// for the linearisation contract), with **combining**: callers
    /// blocked behind a running maintenance pass are drained together by
    /// whichever caller acquires the mutex next, and their batches go
    /// through the same two-level planner as a coalesced flush — eager
    /// removals whose downward closures are provably disjoint (different
    /// rule families, or different subject buckets of a subject-local
    /// family) run as concurrent units under one quiescent section.
    /// Batch boundaries are preserved: each caller's outcome counts
    /// exactly its own triples, field for field as a serial run would.
    fn remove_eager(&self, triples: &[Triple]) -> RemovalOutcome {
        // Fast path: an empty request retracts nothing by definition —
        // return without touching the maintenance mutex or the store's
        // gate (pinned by the `gate_write_acquisitions` stat).
        if triples.is_empty() {
            return RemovalOutcome::default();
        }
        let batch = Arc::new(EagerBatch {
            triples: triples.to_vec(),
            done: Mutex::new(None),
        });
        self.eager_queue.lock().push(Arc::clone(&batch));
        // One maintenance run at a time; concurrent removers queue here.
        // The maintenance mutex also excludes ruleset swaps, so the state
        // resolved below stays current for the whole run.
        let serial = self.maintenance.lock();
        if let Some(outcome) = batch.done.lock().take() {
            // A combining leader already ran this batch while we were
            // blocked; the mutex hand-off is the only synchronisation
            // needed — the leader filled the slot before releasing it.
            return outcome;
        }
        // Leader: drain every waiting batch (ours included) and run them
        // through the planner under one quiescent section.
        let batches: Vec<Arc<EagerBatch>> = std::mem::take(&mut *self.eager_queue.lock());
        let state = self.rstate();
        let rules: Vec<Arc<dyn Rule>> = state.modules.iter().map(|m| Arc::clone(&m.rule)).collect();
        let labelled: Vec<(usize, Triple)> = batches
            .iter()
            .enumerate()
            .flat_map(|(b, eb)| eb.triples.iter().map(move |&t| (b, t)))
            .collect();
        let ((outcomes, shape), store_size) = self.with_quiescent_store(|store| {
            let (outcomes, shape): (Vec<RemovalOutcome>, RunShape) = match self
                .plan_flush(&state, store, &labelled)
            {
                Some(groups) => self.run_partitions(&state, store, &rules, groups, batches.len()),
                None => {
                    bump(&self.globals.coordinator_work, store.len() as u64);
                    let outcomes = batches
                        .iter()
                        .map(|eb| {
                            maintenance::dred(
                                store,
                                None,
                                &rules,
                                &state.graph,
                                &eb.triples,
                                self.full_rederive,
                            )
                        })
                        .collect();
                    (outcomes, RunShape::single_pass())
                }
            };
            let retired: usize = outcomes.iter().map(|o| o.retracted + o.overdeleted).sum();
            self.maybe_sweep_dict(store, retired);
            (outcomes, shape)
        });
        if shape.units >= 2 {
            bump(&self.globals.parallel_eager_runs, 1);
        }
        if shape.subpartitions > 0 {
            bump(&self.globals.subpartitioned_runs, 1);
            if let Some(log) = &self.log {
                let mut total = RemovalOutcome::default();
                for o in &outcomes {
                    total.merge(*o);
                }
                log.record(EventKind::SubpartitionedRemoval {
                    pending: labelled.len(),
                    partitions: shape.partitions,
                    subpartitions: shape.subpartitions,
                    retracted: total.retracted,
                    overdeleted: total.overdeleted,
                    rederived: total.rederived,
                    store_size,
                });
            }
        }
        for (eb, outcome) in batches.iter().zip(&outcomes) {
            self.bump_removal_counters(outcome);
            if let Some(log) = &self.log {
                log.record(EventKind::Removal {
                    requested: outcome.requested,
                    retracted: outcome.retracted,
                    overdeleted: outcome.overdeleted,
                    rederived: outcome.rederived,
                    store_size,
                });
            }
            *eb.done.lock() = Some(*outcome);
        }
        drop(serial);
        let own = batch
            .done
            .lock()
            .take()
            .expect("the leader serves every batch it drained, its own included");
        own
    }

    /// Drains the deferred-retraction queue and applies it: one DRed pass
    /// over the union, or — when the pending set spans several independent
    /// maintenance partitions — one pass per partition, in parallel on the
    /// worker pool (see [`Slider::flush_maintenance`]).
    fn flush_maintenance(&self) -> RemovalOutcome {
        self.flush_maintenance_slice(usize::MAX).0
    }

    /// One budget slice of the coalesced flush: drains and applies **up
    /// to `limit`** pending retractions (oldest first), returning the
    /// outcome and how many retractions remain pending afterwards.
    ///
    /// With `limit == usize::MAX` this *is* the classic coalesced flush —
    /// one pass over the whole pending set. Smaller limits are sound
    /// because DRed composes over sub-batches: retracting S₁ then S₂
    /// leaves the same closure as retracting S₁ ∪ S₂ at once (each pass
    /// ends at the closure of its surviving explicit set), so a sliced
    /// flush converges to exactly the unsliced store — it just releases
    /// the store (and the quiescence gate) between slices, bounding how
    /// long one tenant's maintenance can hold a shared runtime tick.
    fn flush_maintenance_slice(&self, limit: usize) -> (RemovalOutcome, usize) {
        // Fast path: nothing pending means nothing to retract — return
        // the zeroed outcome without taking the maintenance mutex or the
        // store's gate in write mode (pinned by the
        // `gate_write_acquisitions` stat). A retraction enqueued between
        // this check and the caller observing the return was concurrent
        // with the flush and may legitimately land after it.
        if self.scheduler.pending() == 0 {
            return (RemovalOutcome::default(), 0);
        }
        // One maintenance run at a time, so two racing flushes (threshold
        // vs deadline vs explicit) cannot split one pending generation
        // across two runs.
        let _serial = self.maintenance.lock();
        if self.scheduler.pending() == 0 {
            return (RemovalOutcome::default(), 0);
        }
        let state = self.rstate();
        let rules: Vec<Arc<dyn Rule>> = state.modules.iter().map(|m| Arc::clone(&m.rule)).collect();
        let ((outcome, pending_len, shape, remaining), store_size) =
            self.with_quiescent_store(|store| {
                // Drain *under the maintenance gate (write mode), after the quiescence
                // re-check*: this is the flush's linearisation point. Any
                // assertion either completed earlier (its re-assertion
                // already cancelled the matching pending retraction) or is
                // blocked on the gate and lands after the flush —
                // a pending retraction can never be applied over a
                // concurrent re-assertion it should have cancelled.
                let pending = self.scheduler.drain_up_to(limit);
                let remaining = self.scheduler.pending();
                if pending.is_empty() {
                    return (
                        RemovalOutcome::default(),
                        0,
                        RunShape::single_pass(),
                        remaining,
                    );
                }
                // A coalesced flush is one source batch (label 0): the
                // planner's batch labels only matter to eager combining.
                let labelled: Vec<(usize, Triple)> = pending.iter().map(|&t| (0, t)).collect();
                let (outcome, shape) = match self.plan_flush(&state, store, &labelled) {
                    Some(groups) => {
                        let (outcomes, shape) =
                            self.run_partitions(&state, store, &rules, groups, 1);
                        (outcomes[0], shape)
                    }
                    None => {
                        bump(&self.globals.coordinator_work, store.len() as u64);
                        (
                            maintenance::dred(
                                store,
                                None,
                                &rules,
                                &state.graph,
                                &pending,
                                self.full_rederive,
                            ),
                            RunShape::single_pass(),
                        )
                    }
                };
                self.maybe_sweep_dict(store, outcome.retracted + outcome.overdeleted);
                (outcome, pending.len(), shape, remaining)
            });
        if pending_len == 0 {
            return (outcome, remaining);
        }
        self.bump_removal_counters(&outcome);
        bump(&self.globals.coalesced_runs, 1);
        if shape.partitions > 1 {
            bump(&self.globals.partitioned_runs, 1);
        }
        if shape.subpartitions > 0 {
            bump(&self.globals.subpartitioned_runs, 1);
        }
        if let Some(log) = &self.log {
            if shape.subpartitions > 0 {
                log.record(EventKind::SubpartitionedRemoval {
                    pending: pending_len,
                    partitions: shape.partitions,
                    subpartitions: shape.subpartitions,
                    retracted: outcome.retracted,
                    overdeleted: outcome.overdeleted,
                    rederived: outcome.rederived,
                    store_size,
                });
            } else if shape.partitions > 1 {
                log.record(EventKind::PartitionedRemoval {
                    pending: pending_len,
                    partitions: shape.partitions,
                    retracted: outcome.retracted,
                    overdeleted: outcome.overdeleted,
                    rederived: outcome.rederived,
                    store_size,
                });
            } else {
                log.record(EventKind::CoalescedRemoval {
                    pending: pending_len,
                    retracted: outcome.retracted,
                    overdeleted: outcome.overdeleted,
                    rederived: outcome.rederived,
                    store_size,
                });
            }
        }
        (outcome, remaining)
    }

    /// The runtime flusher's entry point for deadline-due maintenance:
    /// applies this session's pending retractions in
    /// [`crate::runtime::MAINTENANCE_SLICE`]-sized slices until done or
    /// `deadline` passes. The **first slice always runs** — even with the
    /// tick's budget already spent — so a session with pending work is
    /// never starved outright (the reserve slot); when the deadline then
    /// cuts the flush short, the remainder stays queued for later ticks
    /// and the deferral is counted
    /// ([`StatsSnapshot::budget_deferrals`](crate::StatsSnapshot::budget_deferrals))
    /// and traced ([`EventKind::BudgetSlice`]).
    ///
    /// `deadline: None` (no budget configured) is the classic unsliced
    /// flush, bit-identical to the single-tenant behaviour.
    pub(crate) fn flush_maintenance_budgeted(&self, deadline: Option<Instant>) -> RemovalOutcome {
        let Some(deadline) = deadline else {
            return self.flush_maintenance();
        };
        let mut total = RemovalOutcome::default();
        let mut applied = 0usize;
        loop {
            let (outcome, remaining) =
                self.flush_maintenance_slice(crate::runtime::MAINTENANCE_SLICE);
            applied += outcome.requested;
            total.merge(outcome);
            if remaining == 0 {
                break;
            }
            if Instant::now() >= deadline {
                bump(&self.globals.budget_deferrals, 1);
                if let Some(log) = &self.log {
                    log.record(EventKind::BudgetSlice { applied, remaining });
                }
                break;
            }
        }
        total
    }

    /// The runtime flusher's entry point for buffer-timeout service:
    /// drains every buffer stale past this session's configured timeout
    /// into rule instances. A no-op for sessions without a timeout.
    pub(crate) fn drain_stale_buffers(&self) {
        let Some(timeout) = self.timeout else {
            return;
        };
        // Guard token before resolving the state (see
        // `Engine::flush_all`): without it, a swap could linearise
        // between the resolve and the drains below, and this scan would
        // drain retired buffers into jobs whose rule indexes the new
        // state interprets differently.
        self.inflight.inc();
        let state = self.rstate();
        for (i, module) in state.modules.iter().enumerate() {
            self.inflight.inc();
            match module.buffer.drain_if_stale(timeout) {
                Some(delta) => {
                    bump(&module.counters.timeout_flushes, 1);
                    if let Some(log) = &self.log {
                        log.record(EventKind::TimeoutFlush { rule: i });
                    }
                    self.submit_with_token(i, delta);
                }
                None => self.inflight.dec(),
            }
        }
        self.inflight.dec();
    }

    /// True when the runtime's flusher currently has something to service
    /// here: a non-empty buffer (timeout drains) or a pending deferred
    /// retraction (deadline flushes). Queued pool jobs don't count — the
    /// workers consume those without flusher help, and any conclusions
    /// they buffer re-arm the flag through [`Engine::unpark`].
    fn needs_deadline_service(&self) -> bool {
        self.scheduler.pending() > 0 || !self.buffers_empty(&self.rstate())
    }

    /// Flusher-side half of the idle-lane parking handshake (Dekker
    /// style): publish the parked flag first, then re-check for work. A
    /// producer that made work visible before the re-check is observed
    /// here (the session stays in rotation); one that raced later
    /// observes the flag and nudges ([`Engine::unpark`]) — under the
    /// `SeqCst` pairing at least one side always sees the other, so
    /// parked-with-work cannot happen. Returns `true` when the session
    /// is (or stays) parked and the flusher should skip it this tick.
    pub(crate) fn try_park(&self) -> bool {
        if self.parked.load(Ordering::SeqCst) {
            return true;
        }
        self.parked.store(true, Ordering::SeqCst);
        if self.needs_deadline_service() {
            self.parked.store(false, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Producer-side half of the parking handshake: call **after** making
    /// new flusher-serviced work visible (triples buffered, a retraction
    /// enqueued). Re-enters the flusher's rotation and wakes it — a cheap
    /// no-op (one relaxed-failure swap) while the session is unparked.
    fn unpark(&self) {
        if self.parked.swap(false, Ordering::SeqCst) {
            self.flusher.nudge();
        }
    }

    /// The smallest deadline the runtime's flusher services for this
    /// session — buffer timeout or deferred-retraction max age — or
    /// `None` for a pure batch-mode session (no flusher attention needed).
    pub(crate) fn deadline_base(&self) -> Option<Duration> {
        match (self.timeout, self.scheduler.max_age()) {
            (Some(t), Some(a)) => Some(t.min(a)),
            (Some(t), None) => Some(t),
            (None, age) => age,
        }
    }

    /// The two-level maintenance planner. **First level**: buckets
    /// `pending` by maintenance partition
    /// ([`DependencyGraph::component_of_predicate`]). **Second level**:
    /// a bucket whose partition passes the subject-locality gate
    /// ([`DependencyGraph::subsplit_affected`]) with
    /// [`SliderConfig::deletion_subsplit`] ≥ 2 and seeds in at least two
    /// subject-hash buckets gets `affected: Some(closure)` — its affected
    /// tables will be carved by subject so each carve runs its own DRed
    /// unit. Returns `None` when the flush must stay single-pass:
    /// partitioning disabled, conservative (`full_rederive`) mode, fewer
    /// than two buckets with nothing to sub-split, a bucket whose
    /// partition owns every predicate (universal rules), or an involved
    /// rule without a backward matcher.
    ///
    /// The returned groups are **size-ordered, largest footprint first**
    /// (a bucket's footprint is the store population of the predicates
    /// its DRed pass owns): [`Engine::run_partitions`] keeps the largest
    /// unit on the coordinator thread while the rest execute on the
    /// pool, so the group most likely to dominate the flush's critical
    /// path never waits behind a busy worker queue. Ties break on
    /// component id, the inert bucket last, keeping the plan
    /// deterministic.
    fn plan_flush(
        &self,
        state: &RulesetState,
        store: &VerticalStore,
        pending: &[(usize, Triple)],
    ) -> Option<Vec<PendingGroup>> {
        use slider_model::FxHashMap;
        if !self.partitioning || self.full_rederive {
            return None;
        }
        let mut pred_comp: FxHashMap<NodeId, Option<usize>> = FxHashMap::default();
        let mut by_comp: FxHashMap<Option<usize>, Vec<(usize, Triple)>> = FxHashMap::default();
        for &(b, t) in pending {
            let comp = *pred_comp
                .entry(t.p)
                .or_insert_with(|| state.graph.component_of_predicate(t.p));
            by_comp.entry(comp).or_default().push((b, t));
        }
        if by_comp.len() < 2 && self.subsplit < 2 {
            return None;
        }
        let mut buckets: Vec<_> = by_comp.into_iter().collect();
        // Pre-sort for determinism before weighing (hash-map order is
        // arbitrary); the weight sort below is stable.
        buckets.sort_by_key(|(comp, _)| (comp.is_none(), comp.unwrap_or(0)));
        let mut groups = Vec::with_capacity(buckets.len());
        let mut any_subsplit = false;
        for (comp, triples) in buckets {
            let preds = match comp {
                Some(c) => {
                    if (0..state.graph.len())
                        .any(|i| state.graph.component_of(i) == c && !state.backward[i])
                    {
                        return None;
                    }
                    state.graph.component_predicates(c)?.to_vec()
                }
                None => {
                    let mut preds: Vec<NodeId> = triples.iter().map(|&(_, t)| t.p).collect();
                    preds.sort_unstable();
                    preds.dedup();
                    preds
                }
            };
            // Second level: sub-split only when the affected closure is
            // provably subject-local *and* the seeds actually spread over
            // at least two subject-hash buckets (one bucket would just be
            // the whole-partition pass with extra carving).
            let affected = match comp {
                Some(c) if self.subsplit > 1 && triples.len() >= SUBSPLIT_MIN_PENDING => {
                    let mut seed_preds: Vec<NodeId> = triples.iter().map(|&(_, t)| t.p).collect();
                    seed_preds.sort_unstable();
                    seed_preds.dedup();
                    state.graph.subsplit_affected(c, &seed_preds).filter(|_| {
                        let spread: std::collections::BTreeSet<usize> = triples
                            .iter()
                            .map(|&(_, t)| subject_bucket(t.s, self.subsplit))
                            .collect();
                        spread.len() >= 2
                    })
                }
                _ => None,
            };
            any_subsplit |= affected.is_some();
            let weight: usize = preds.iter().map(|&p| store.count_with_p(p)).sum();
            groups.push((
                weight,
                PendingGroup {
                    preds,
                    triples,
                    affected,
                },
            ));
        }
        if groups.len() < 2 && !any_subsplit {
            return None;
        }
        groups.sort_by_key(|&(weight, _)| std::cmp::Reverse(weight));
        Some(groups.into_iter().map(|(_, g)| g).collect())
    }

    /// Executes one planned maintenance run. The plan's groups become
    /// **units** of deletion work:
    ///
    /// * A non-sub-split group is one unit. The largest such group (the
    ///   plan's head, when it exists) runs directly on the main store —
    ///   its pass only touches its own partition's tables; the rest have
    ///   their footprints split off as self-contained shards (tables move
    ///   wholesale, provenance flags included).
    /// * A sub-split group (`affected: Some`) becomes one unit per
    ///   occupied subject-hash bucket: its affected tables are carved by
    ///   subject range, and each carve's DRed pass joins through a
    ///   read-only [`Overlay`](slider_store::Overlay) of the partition's
    ///   non-affected remainder (shared `Arc` context).
    ///
    /// The calling thread runs the heaviest unit itself (recorded in
    /// [`StatsSnapshot::coordinator_work`](crate::StatsSnapshot::coordinator_work));
    /// every other unit executes as a [`Job::Partition`] on the worker
    /// pool, and the shards are absorbed back as they complete. Sound
    /// because the units' *mutable* footprints are disjoint by
    /// construction — no unit writes a triple another unit reads: the
    /// first level is disjoint by maintenance partition, the second by
    /// the planner's subject-locality gate. The caller holds the store's
    /// maintenance gate in write mode and the maintenance mutex; the pool
    /// is quiescent, so partition jobs are the only work.
    ///
    /// Seeds are labelled by source batch (`batches` of them): within a
    /// unit, batches run as sequential DRed passes in batch order, so the
    /// returned per-batch outcomes match a serial run field for field.
    fn run_partitions(
        &self,
        state: &RulesetState,
        store: &mut VerticalStore,
        rules: &[Arc<dyn Rule>],
        groups: Vec<PendingGroup>,
        batches: usize,
    ) -> (Vec<RemovalOutcome>, RunShape) {
        struct Unit {
            /// `None` = run on the main store (largest non-sub-split
            /// group only).
            carve: Option<VerticalStore>,
            context: Option<Arc<VerticalStore>>,
            seeds: Vec<(usize, Triple)>,
            weight: usize,
        }
        let shape_partitions = groups.len();
        let mut units: Vec<Unit> = Vec::new();
        // Sub-split leftovers to restore after the run: each sub-split
        // group's seedless affected residual and its shared context.
        let mut residuals: Vec<VerticalStore> = Vec::new();
        let mut contexts: Vec<Arc<VerticalStore>> = Vec::new();
        let mut subpartitions = 0usize;
        for (gi, group) in groups.into_iter().enumerate() {
            match group.affected {
                Some(affected) => {
                    // Carve the family, then the affected closure out of
                    // it; what remains of the family is the read-only
                    // context every bucket joins through.
                    let mut family = store.split_off(&group.preds);
                    let mut affected_store = family.split_off(&affected);
                    let ctx = Arc::new(family);
                    let mut by_bucket: BTreeMap<usize, Vec<(usize, Triple)>> = BTreeMap::new();
                    for &(b, t) in &group.triples {
                        by_bucket
                            .entry(subject_bucket(t.s, self.subsplit))
                            .or_default()
                            .push((b, t));
                    }
                    for (bk, seeds) in by_bucket {
                        let carve = affected_store
                            .split_off_subjects(|s| subject_bucket(s, self.subsplit) == bk);
                        subpartitions += 1;
                        units.push(Unit {
                            weight: carve.len(),
                            carve: Some(carve),
                            context: Some(Arc::clone(&ctx)),
                            seeds,
                        });
                    }
                    residuals.push(affected_store);
                    contexts.push(ctx);
                }
                None if gi == 0 => units.push(Unit {
                    weight: group.preds.iter().map(|&p| store.count_with_p(p)).sum(),
                    carve: None,
                    context: None,
                    seeds: group.triples,
                }),
                None => {
                    let carve = store.split_off(&group.preds);
                    units.push(Unit {
                        weight: carve.len(),
                        carve: Some(carve),
                        context: None,
                        seeds: group.triples,
                    });
                }
            }
        }
        let shape = RunShape {
            partitions: shape_partitions,
            units: units.len(),
            subpartitions,
        };
        // The coordinator takes the main-store unit when one exists (it
        // cannot be dispatched — it *is* the store), otherwise the
        // heaviest carve; everything else goes to the pool.
        let coord = units
            .iter()
            .position(|u| u.carve.is_none())
            .unwrap_or_else(|| {
                let mut best = 0;
                for (i, u) in units.iter().enumerate() {
                    if u.weight > units[best].weight {
                        best = i;
                    }
                }
                best
            });
        let coordinator = units.swap_remove(coord);
        let (tx, rx) = unbounded();
        let mut expected = 0usize;
        for unit in units {
            let carve = unit
                .carve
                .expect("only the coordinator unit runs on the main store");
            let ctx = unit.context;
            let seeds = unit.seeds;
            let rules = rules.to_vec();
            let graph = Arc::clone(&state.graph);
            let tx = tx.clone();
            let task: Box<dyn FnOnce() + Send> = Box::new(move || {
                let mut carve = carve;
                let outcomes =
                    run_unit(&mut carve, ctx.as_deref(), &rules, &graph, &seeds, batches);
                // Drop the context handle *before* sending: the channel's
                // release/acquire pairing then guarantees the coordinator
                // (which receives every result before reclaiming the
                // contexts) sees a sole-owner `Arc`.
                drop(ctx);
                // Receiver outliving the flush is guaranteed: the
                // coordinator below collects exactly this many results.
                let _ = tx.send((carve, outcomes));
            });
            expected += 1;
            if let Err(job) = self.queue.push(self.session, Job::Partition(task)) {
                // A closed queue means teardown stopped the runtime —
                // unreachable from the public API (Drop flushes before
                // the core's teardown closes it), but never lose a
                // shard: run inline.
                match job {
                    Job::Partition(task) => task(),
                    Job::Run { .. } => unreachable!("the failed push returns the partition job"),
                }
            }
        }
        // Drop the coordinator's sender: once every dispatched pass has
        // either sent or been dropped (a worker panic drops its clone
        // without sending), the channel disconnects — so a lost shard
        // surfaces as the `expect` below instead of a recv() that blocks
        // forever while holding the store exclusively.
        drop(tx);
        bump(&self.globals.coordinator_work, coordinator.weight as u64);
        let Unit {
            carve,
            context,
            seeds,
            ..
        } = coordinator;
        let mut merged = match carve {
            None => run_unit(store, None, rules, &state.graph, &seeds, batches),
            Some(mut carve) => {
                let outcomes = run_unit(
                    &mut carve,
                    context.as_deref(),
                    rules,
                    &state.graph,
                    &seeds,
                    batches,
                );
                store.absorb(carve);
                outcomes
            }
        };
        drop(context);
        for _ in 0..expected {
            let (carve, outcomes) = rx
                .recv()
                .expect("partition shard lost — a worker panicked mid-pass");
            store.absorb(carve);
            for (m, o) in merged.iter_mut().zip(&outcomes) {
                m.merge(*o);
            }
        }
        // Restore what the sub-split carving displaced: seedless affected
        // residuals and the shared contexts (sole-owned again now that
        // every unit has reported — see the `drop(ctx)` ordering above).
        for residual in residuals {
            store.absorb(residual);
        }
        for ctx in contexts {
            store.absorb(Arc::try_unwrap(ctx).unwrap_or_else(|arc| (*arc).clone()));
        }
        (merged, shape)
    }

    /// Replaces the ruleset on the live engine (see
    /// [`Slider::swap_ruleset`] for the public contract).
    fn swap_ruleset(&self, ruleset: Ruleset) -> SwapOutcome {
        // A swap is a maintenance operation: serialise it against DRed
        // runs (and other swaps) on the same mutex, so the state resolved
        // below cannot be replaced under us.
        let _serial = self.maintenance.lock();
        let old_state = self.rstate();
        let old_rules: Vec<Arc<dyn Rule>> = old_state
            .modules
            .iter()
            .map(|m| Arc::clone(&m.rule))
            .collect();
        let new_rules: Vec<Arc<dyn Rule>> = ruleset.rules().to_vec();
        // Rule identity is (name, definition): same-named rules with a
        // different definition count as drop + add.
        let key = |r: &Arc<dyn Rule>| (r.name(), r.definition());
        let dropped: Vec<Arc<dyn Rule>> = old_rules
            .iter()
            .filter(|r| !new_rules.iter().any(|s| key(s) == key(r)))
            .cloned()
            .collect();
        let added: Vec<Arc<dyn Rule>> = new_rules
            .iter()
            .filter(|r| !old_rules.iter().any(|s| key(s) == key(r)))
            .cloned()
            .collect();
        let surviving: Vec<Arc<dyn Rule>> = old_rules
            .iter()
            .filter(|r| new_rules.iter().any(|s| key(s) == key(r)))
            .cloned()
            .collect();
        let kept = surviving.len();
        // Even an identical-ruleset swap goes through the quiescent
        // section: the fresh state (rebuilt read plans, graph, partitions)
        // must install at a point where no in-flight instance holds the
        // old one — only the store-delta work is skipped.
        let ((overdeleted, rederived, inferred), store_size) = self.with_quiescent_store(|store| {
            let (overdeleted, rederived) = if dropped.is_empty() {
                (0, 0)
            } else {
                maintenance::retract_rules(
                    store,
                    &old_rules,
                    &dropped,
                    &surviving,
                    self.full_rederive,
                )
            };
            let inferred = if added.is_empty() {
                0
            } else {
                maintenance::evaluate_added(store, &new_rules, &added)
            };
            // Linearisation point: with the store held exclusively and
            // already at the new program's closure, the new state —
            // program, dependency graph, maintenance partitions, read
            // plans — becomes what every subsequent resolution sees.
            // Operations blocked on the gate resume against the new
            // program; operations that completed earlier ran entirely
            // under the old one. Nothing observes a mix.
            *self.rstate.write() = Arc::new(build_state(
                &ruleset,
                &self.store,
                self.base_capacity,
                Some(&old_state),
            ));
            (overdeleted, rederived, inferred)
        });
        bump(&self.globals.ruleset_swaps, 1);
        if let Some(log) = &self.log {
            log.record(EventKind::RulesetSwap {
                dropped: dropped.len(),
                added: added.len(),
                kept,
                overdeleted,
                rederived,
                inferred,
                store_size,
            });
        }
        SwapOutcome {
            dropped: dropped.len(),
            added: added.len(),
            kept,
            overdeleted,
            rederived,
            inferred,
        }
    }
}

/// What a [`Slider::swap_ruleset`] did, phase by phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapOutcome {
    /// Rules removed by the swap.
    pub dropped: usize,
    /// Rules introduced by the swap.
    pub added: usize,
    /// Rules present in both programs (matched by name + definition;
    /// their counters and adaptive plans carried over).
    pub kept: usize,
    /// Derived triples deleted while retracting dropped-rule support
    /// (including the seeds — every deletion the swap performed).
    pub overdeleted: usize,
    /// Overdeleted triples restored because they still have a derivation
    /// under the surviving rules.
    pub rederived: usize,
    /// Triples newly inferred by the added rules (fixpoint included).
    pub inferred: usize,
}

/// The Slider incremental reasoner (see the crate docs for the
/// architecture walkthrough).
///
/// All methods take `&self`: the reasoner is internally synchronised and
/// can be fed from several threads at once (the paper's multi-source input
/// manager). Typical batch use:
///
/// ```
/// use slider_core::{Slider, SliderConfig};
/// use slider_rules::{Fragment, Ruleset};
/// use slider_model::{Dictionary, Term};
/// use std::sync::Arc;
///
/// let slider = Slider::fragment(Fragment::RhoDf, SliderConfig::default());
/// let triples: Vec<_> = vec![
///     (Term::iri("http://e/Cat"),
///      Term::iri("http://www.w3.org/2000/01/rdf-schema#subClassOf"),
///      Term::iri("http://e/Animal")),
///     (Term::iri("http://e/felix"),
///      Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
///      Term::iri("http://e/Cat")),
/// ];
/// slider.add_terms(&triples);
/// slider.wait_idle();
/// assert_eq!(slider.store().len(), 3); // felix is an Animal now
/// ```
///
/// A `Slider` built with [`Slider::new`] owns a private single-session
/// [`Runtime`](crate::Runtime); to multiplex several reasoners over one
/// worker pool, build the runtime explicitly and attach sessions with
/// [`Runtime::session`](crate::Runtime::session) — each gets its own
/// store, ruleset, scheduler and stats, with the execution threads shared.
pub struct Slider {
    // Field order is drop order: the engine's strong reference goes
    // before the session handle detaches from (and possibly tears down)
    // the runtime core.
    engine: Arc<Engine>,
    session: SessionHandle,
}

impl Slider {
    /// Creates a reasoner over an existing dictionary and ruleset, with a
    /// private single-session runtime sized by
    /// [`SliderConfig::workers`](crate::SliderConfig::workers).
    pub fn new(dict: Arc<Dictionary>, ruleset: Ruleset, config: SliderConfig) -> Self {
        let runtime = Runtime::new(RuntimeConfig {
            workers: config.workers.max(1),
            maintenance_budget: None,
        });
        runtime.session(dict, ruleset, config)
    }

    /// Builds a session on `core` — the engine, its registration with the
    /// runtime's flusher, and the public handle (the implementation behind
    /// [`Runtime::session`](crate::Runtime::session)).
    pub(crate) fn attach(
        core: Arc<RuntimeCore>,
        dict: Arc<Dictionary>,
        ruleset: Ruleset,
        config: SliderConfig,
    ) -> Self {
        let base_capacity = config.buffer_capacity.max(1);
        // The store comes first: each module's declared read set is
        // planned against its shard layout once, not per rule instance.
        let store = ShardedStore::from_store_sharded(
            if config.object_index {
                VerticalStore::new()
            } else {
                VerticalStore::without_object_index()
            },
            config.store_shards,
        );
        let state = build_state(&ruleset, &store, base_capacity, None);
        let id = core.allocate_id();
        let engine = Arc::new_cyclic(|self_ref| Engine {
            dict,
            store,
            rstate: RwLock::new(Arc::new(state)),
            queue: Arc::clone(&core.queue),
            session: id,
            self_ref: self_ref.clone(),
            timeout: config.timeout,
            inflight: Inflight::new(),
            globals: GlobalCounters::default(),
            log: config.trace.then(EventLog::new),
            adaptive: config
                .adaptive_buffers
                .then(|| (base_capacity, base_capacity.saturating_mul(64))),
            maintenance: Mutex::new(()),
            full_rederive: config.full_rederive,
            partitioning: config.maintenance_partitioning,
            subsplit: config.deletion_subsplit.max(1),
            eager_queue: Mutex::new(Vec::new()),
            scheduler: MaintenanceScheduler::new(
                config.maintenance_batch,
                config.maintenance_max_age,
            ),
            parked: AtomicBool::new(false),
            flusher: Arc::clone(core.shared()),
            base_capacity,
            dict_sweep_ratio: config.dict_sweep_ratio,
            retired_since_sweep: AtomicUsize::new(0),
        });
        core.register(id, &engine);
        Slider {
            engine,
            session: SessionHandle::new(core, id),
        }
    }

    /// This session's handle into its runtime (id, co-tenant count).
    pub fn session_handle(&self) -> &SessionHandle {
        &self.session
    }

    /// White-box access to the engine for sibling modules' tests.
    #[cfg(test)]
    pub(crate) fn engine_for_tests(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Creates a reasoner for a native fragment with a fresh dictionary.
    pub fn fragment(fragment: Fragment, config: SliderConfig) -> Self {
        let dict = Arc::new(Dictionary::new());
        let ruleset = Ruleset::fragment(fragment, &dict);
        Slider::new(dict, ruleset, config)
    }

    /// Feeds encoded triples to the input manager. Duplicates are dropped;
    /// the new triples enter the store immediately (marked **explicit** —
    /// asserted, as opposed to rule-derived) and are routed to the rule
    /// buffers. Returns how many were new.
    ///
    /// Asserting a triple whose **deferred retraction is still pending**
    /// ([`Slider::remove_deferred`]) cancels that retraction: the
    /// assertion is the newer fact, so the next coalesced flush leaves it
    /// (and its consequences) in place. Without the cancellation the flush
    /// would silently retract a fact the caller just asserted — the store
    /// would diverge from the closure of the surviving explicit set.
    pub fn add_triples(&self, triples: &[Triple]) -> usize {
        let engine = &self.engine;
        // Token covers the push-cancel-route window so `wait_idle` on
        // another thread cannot observe a false quiescence mid-call — and
        // so a coalesced flush (which drains the pending set only at
        // verified quiescence, with the store held exclusively) can never
        // interleave between this call's insert and its cancellation.
        engine.inflight.inc();
        let mut fresh = Vec::with_capacity(triples.len());
        engine.store.insert_batch_explicit(triples, &mut fresh);
        bump(&engine.globals.input_received, triples.len() as u64);
        bump(&engine.globals.input_fresh, fresh.len() as u64);
        // Re-assertion cancels a pending retraction (lock-free no-op when
        // nothing is pending — the hot additive path stays hot).
        let cancelled = engine.scheduler.cancel(triples);
        if cancelled > 0 {
            bump(&engine.globals.cancelled, cancelled as u64);
        }
        if let Some(log) = &engine.log {
            log.record(EventKind::Input {
                received: triples.len(),
                fresh: fresh.len(),
            });
        }
        if !fresh.is_empty() {
            // Resolved inside the token window above, so the state is
            // current: a swap cannot linearise while we hold the token.
            let state = engine.rstate();
            let all: Vec<usize> = (0..state.modules.len()).collect();
            engine.dispatch(&state, &all, &fresh);
        }
        engine.inflight.dec();
        fresh.len()
    }

    /// Feeds one encoded triple.
    pub fn add_triple(&self, triple: Triple) -> bool {
        self.add_triples(std::slice::from_ref(&triple)) == 1
    }

    /// Encodes and feeds decoded triples (the full input-manager path).
    ///
    /// The inflight token taken here covers the **intern → insert**
    /// window: a post-retraction dictionary sweep scans liveness only at
    /// verified quiescence, so a term interned by this call can never be
    /// tombstoned before its triple lands in the store.
    pub fn add_terms(&self, triples: &[TermTriple]) -> usize {
        let engine = &self.engine;
        engine.inflight.inc();
        let encoded: Vec<Triple> = triples
            .iter()
            .map(|t| engine.dict.encode_triple(t))
            .collect();
        let fresh = self.add_triples(&encoded);
        engine.inflight.dec();
        fresh
    }

    /// [`Slider::add_terms`] over owned triples: encoding moves each
    /// first-seen term into the dictionary instead of cloning it — the
    /// zero-copy loading path (see
    /// [`Dictionary::encode_triple_owned`]). Same sweep-safety token as
    /// [`Slider::add_terms`].
    pub fn add_terms_owned(&self, triples: Vec<TermTriple>) -> usize {
        let engine = &self.engine;
        engine.inflight.inc();
        let encoded: Vec<Triple> = triples
            .into_iter()
            .map(|t| engine.dict.encode_triple_owned(t))
            .collect();
        let fresh = self.add_triples(&encoded);
        engine.inflight.dec();
        fresh
    }

    /// Retracts encoded triples and runs DRed truth maintenance (see the
    /// [`maintenance`](crate::maintenance) module): the retracted facts and
    /// every conclusion that depended on them are deleted, then conclusions
    /// with an alternative derivation from surviving facts are restored.
    /// Afterwards the store equals the closure of the surviving explicit
    /// triples.
    ///
    /// Only **explicit** (asserted) triples can be retracted; offering a
    /// derived-only or absent triple is a no-op — a derived fact is not an
    /// assertion, and deleting it would be futile (it is rederivable by
    /// definition). Returns how many explicit triples were retracted;
    /// [`Slider::remove_triples_outcome`] additionally reports the
    /// derived-only and not-found no-ops separately.
    ///
    /// Removal is linearised against additions: the call waits for
    /// quiescence (in-flight work from earlier `add_*` calls completes
    /// first), and additions racing this call land either entirely before
    /// or entirely after the maintenance run.
    ///
    /// For high-churn streams (a window retracting a batch per arrival),
    /// prefer [`Slider::remove_deferred`]: it coalesces several retraction
    /// batches into one DRed run.
    pub fn remove_triples(&self, triples: &[Triple]) -> usize {
        self.remove_triples_outcome(triples).retracted
    }

    /// [`Slider::remove_triples`], returning the full per-phase counters —
    /// including how many offered triples were ignored because they were
    /// **derived-only** ([`RemovalOutcome::ignored_derived`] — present but
    /// not asserted, so there was nothing to retract) as opposed to absent
    /// from the store altogether ([`RemovalOutcome::not_found`]).
    pub fn remove_triples_outcome(&self, triples: &[Triple]) -> RemovalOutcome {
        self.engine.remove_eager(triples)
    }

    /// Defers retraction of `triples`: they are enqueued on the
    /// maintenance scheduler instead of being retracted now, and a single
    /// **coalesced** DRed run over the whole pending set fires when the
    /// distinct-pending count reaches
    /// [`SliderConfig::maintenance_batch`](crate::SliderConfig::maintenance_batch),
    /// when the oldest pending retraction outlives
    /// [`SliderConfig::maintenance_max_age`](crate::SliderConfig::maintenance_max_age)
    /// (serviced by the flusher thread), or when
    /// [`Slider::flush_maintenance`] is called. Returns how many triples
    /// were newly enqueued (already-pending duplicates are dropped).
    ///
    /// The coalescing invariant: a flush leaves the store exactly at the
    /// closure of the explicit set that survived the interleaving — as if
    /// the surviving retractions had been applied eagerly — while paying
    /// the overdelete/rederive machinery once instead of N times. A triple
    /// **re-asserted while its retraction is pending** is *not* retracted:
    /// the assertion cancels the pending retraction (see
    /// [`Slider::add_triples`]; [`StatsSnapshot::cancelled_removals`]
    /// counts these).
    ///
    /// The trade-off is staleness: until a trigger fires, queries still
    /// see the pre-retraction closure. [`Slider::pending_staleness`]
    /// bounds how stale — the age of the oldest pending retraction. Use
    /// the eager [`Slider::remove_triples`] when retractions must be
    /// visible immediately. On drop, pending retractions are flushed (one
    /// final coalesced run), mirroring how buffered triples drain.
    ///
    /// When the pending set spans several independent partitions of the
    /// rules dependency graph, the flush runs one DRed pass per partition
    /// in parallel on the worker pool (see
    /// [`SliderConfig::maintenance_partitioning`](crate::SliderConfig::maintenance_partitioning)).
    ///
    /// [`StatsSnapshot::cancelled_removals`]: crate::StatsSnapshot::cancelled_removals
    pub fn remove_deferred(&self, triples: &[Triple]) -> usize {
        let engine = &self.engine;
        let (fresh, threshold_hit) = engine.scheduler.enqueue(triples);
        bump(&engine.globals.deferred, fresh as u64);
        if fresh > 0 {
            // A pending retraction needs the flusher's deadline service:
            // leave the parked lane (no-op while unparked).
            engine.unpark();
        }
        if threshold_hit {
            engine.flush_maintenance();
        }
        fresh
    }

    /// [`Slider::remove_deferred`] over decoded triples; terms are looked
    /// up (never interned), and triples over unknown terms are skipped, as
    /// in [`Slider::remove_terms`].
    pub fn remove_terms_deferred(&self, triples: &[TermTriple]) -> usize {
        self.remove_deferred(&self.encode_known(triples))
    }

    /// Flushes the deferred-retraction queue now: drains every pending
    /// retraction and runs one coalesced DRed pass over the union — or,
    /// when the pending set spans several independent dependency-graph
    /// partitions, one pass per partition in parallel on the worker pool
    /// (see [`Slider::remove_deferred`]). A no-op returning an empty
    /// outcome when nothing is pending. The outcome's
    /// [`requested`](RemovalOutcome::requested) equals the number of
    /// distinct pending retractions drained.
    pub fn flush_maintenance(&self) -> RemovalOutcome {
        self.engine.flush_maintenance()
    }

    /// The staleness bound of deferred maintenance: the age of the oldest
    /// pending retraction ([`Slider::remove_deferred`]), or `None` when
    /// nothing is pending. Every query answered now reflects a closure at
    /// most this much behind the retraction stream; with
    /// [`SliderConfig::maintenance_max_age`](crate::SliderConfig::maintenance_max_age)
    /// configured, the bound itself is bounded by roughly 1.5 × that
    /// deadline (the flusher's scan granularity).
    pub fn pending_staleness(&self) -> Option<Duration> {
        self.engine.scheduler.oldest_age()
    }

    /// Retracts one encoded triple; returns `true` if it was an explicit
    /// assertion (and was retracted).
    pub fn remove_triple(&self, triple: Triple) -> bool {
        self.remove_triples(std::slice::from_ref(&triple)) == 1
    }

    /// Retracts decoded triples. Terms are looked up (never interned): a
    /// triple mentioning a term the dictionary has never seen cannot be in
    /// the store and is skipped. Returns how many explicit triples were
    /// retracted.
    pub fn remove_terms(&self, triples: &[TermTriple]) -> usize {
        self.remove_triples(&self.encode_known(triples))
    }

    /// Encodes decoded triples by dictionary lookup only, skipping triples
    /// over unknown terms (the `remove_*` path: never interns).
    fn encode_known(&self, triples: &[TermTriple]) -> Vec<Triple> {
        let dict = &self.engine.dict;
        triples
            .iter()
            .filter_map(|(s, p, o)| {
                Some(Triple::new(dict.id_of(s)?, dict.id_of(p)?, dict.id_of(o)?))
            })
            .collect()
    }

    /// Force-flushes all buffers without waiting.
    pub fn flush(&self) {
        self.engine.flush_all();
    }

    /// Blocks until the reasoner is quiescent: every buffer empty and no
    /// rule instance queued or running. Buffers are force-flushed as needed
    /// (so this works with `timeout: None` too).
    ///
    /// Quiescence is relative to inputs already fed; a concurrent
    /// `add_triples` extends the work and the method keeps waiting for it.
    /// Deferred retractions ([`Slider::remove_deferred`]) are *not* work in
    /// this sense — they stay pending until their own trigger fires.
    pub fn wait_idle(&self) {
        self.engine.wait_idle();
    }

    /// Convenience: feed a batch and wait for its closure. Returns the
    /// store growth (input + inferred).
    pub fn materialize(&self, triples: &[Triple]) -> usize {
        let before = self.engine.store.len();
        self.add_triples(triples);
        self.wait_idle();
        self.engine.store.len() - before
    }

    /// The shared term dictionary.
    pub fn dict(&self) -> &Arc<Dictionary> {
        &self.engine.dict
    }

    /// The triple store (explicit + inferred triples).
    pub fn store(&self) -> &ShardedStore {
        &self.engine.store
    }

    /// The rules dependency graph the distributors route with. Returned
    /// by shared handle because the graph is swappable state: after a
    /// [`Slider::swap_ruleset`] the engine routes with a rebuilt graph,
    /// while handles returned earlier stay valid (describing the program
    /// they were taken under).
    pub fn dependency_graph(&self) -> Arc<DependencyGraph> {
        Arc::clone(&self.engine.rstate().graph)
    }

    /// Number of independent maintenance partitions of the loaded ruleset
    /// (see [`DependencyGraph::partition_count`]): an upper bound on how
    /// many parallel DRed passes one coalesced flush can split into.
    pub fn maintenance_partitions(&self) -> usize {
        self.engine.rstate().graph.partition_count()
    }

    /// Name of the loaded ruleset ("rho-df", "RDFS", custom). Owned
    /// because the ruleset is swappable ([`Slider::swap_ruleset`]) — a
    /// borrow could outlive the program it names.
    pub fn ruleset_name(&self) -> String {
        self.engine.rstate().name.clone()
    }

    /// Replaces the loaded ruleset on the live reasoner — **zero
    /// downtime**, no rebuild: the store's materialisation is repaired
    /// incrementally instead of recomputed.
    ///
    /// The swap diffs the programs by rule identity (name + definition):
    ///
    /// * **Dropped** rules: derivations supported only by them are
    ///   retracted with the DRed machinery (overdelete the one-step
    ///   support seeds through the old program, rederive with the
    ///   survivors).
    /// * **Added** rules: evaluated semi-naively with the whole store as
    ///   their first delta, then the usual fixpoint.
    /// * **Kept** rules: untouched — their counters and adaptive buffer
    ///   plans carry over.
    ///
    /// Afterwards the store equals the closure of its explicit triples
    /// under the new program, exactly as if the reasoner had been built
    /// with it from the start. The dependency graph, maintenance
    /// partitions and per-rule read plans are rebuilt and installed
    /// **atomically at the swap's linearisation point**: a quiescent
    /// instant (no rule instance in flight, all buffers empty) with the
    /// store held exclusively. Concurrent `add_triples`/queries are safe
    /// throughout — they either complete entirely under the old program
    /// or run entirely under the new one; lock-free readers keep
    /// answering from the last published epoch during the swap and
    /// observe the new closure as one atomic publication. Pending
    /// deferred retractions survive the swap and apply under the new
    /// program at their next flush.
    ///
    /// Swapping to an identical ruleset is a store-level no-op (nothing
    /// retracted, nothing inferred) but still reinstalls fresh state.
    ///
    /// ```
    /// use slider_core::{Slider, SliderConfig};
    /// use slider_model::{Dictionary, NodeId, Triple};
    /// use slider_rules::{Ruleset, Transitive};
    /// use std::sync::Arc;
    ///
    /// let dict = Arc::new(Dictionary::new());
    /// let p = NodeId(7);
    /// let slider = Slider::new(
    ///     Arc::clone(&dict),
    ///     Ruleset::custom("trans").with(Transitive::new("T", p)),
    ///     SliderConfig::default(),
    /// );
    /// slider.materialize(&[
    ///     Triple::new(NodeId(1), p, NodeId(2)),
    ///     Triple::new(NodeId(2), p, NodeId(3)),
    /// ]);
    /// assert!(slider.store().contains(Triple::new(NodeId(1), p, NodeId(3))));
    ///
    /// // Drop the transitivity rule: its derivations retract incrementally.
    /// let outcome = slider.swap_ruleset(Ruleset::custom("empty"));
    /// assert_eq!((outcome.dropped, outcome.added), (1, 0));
    /// assert!(!slider.store().contains(Triple::new(NodeId(1), p, NodeId(3))));
    ///
    /// // Add it back: the closure reappears without re-feeding the input.
    /// slider.swap_ruleset(Ruleset::custom("trans").with(Transitive::new("T", p)));
    /// assert!(slider.store().contains(Triple::new(NodeId(1), p, NodeId(3))));
    /// ```
    pub fn swap_ruleset(&self, ruleset: Ruleset) -> SwapOutcome {
        self.engine.swap_ruleset(ruleset)
    }

    /// Compacts the term dictionary now: tombstones every non-vocabulary
    /// term **this session's store** no longer references and recycles
    /// the freed ids through the interner's free-list. Ids of live terms
    /// never move — an id held by a caller stays valid as long as its
    /// triple is in the store. Runs under the maintenance mutex and the
    /// store's exclusive gate, like a DRed pass; the automatic equivalent
    /// fires after large retraction flushes (see
    /// [`SliderConfig::dict_sweep_ratio`](crate::SliderConfig::dict_sweep_ratio)).
    ///
    /// **Shared-dictionary caveat**: the live root set is this session's
    /// store (plus the built-in vocabulary, which is never swept). A
    /// dictionary shared with other sessions, or holding ids referenced
    /// only outside the store (custom rules with non-vocabulary constant
    /// ids, ids cached by the application), must disable automatic
    /// sweeping (`with_dict_sweep_ratio(f64::INFINITY)`) and only call
    /// this when every such external id is also present in the store.
    pub fn sweep_dictionary(&self) -> SweepOutcome {
        let engine = &self.engine;
        let _serial = engine.maintenance.lock();
        engine.retired_since_sweep.store(0, Ordering::Relaxed);
        let (outcome, _) = engine.with_quiescent_store(|store| engine.sweep_dict_now(store));
        outcome
    }

    /// Total triples inferred so far (fresh rule conclusions).
    pub fn inferred_count(&self) -> u64 {
        self.stats().total_inferred()
    }

    /// Snapshot of all module counters.
    pub fn stats(&self) -> StatsSnapshot {
        let engine = &self.engine;
        let state = engine.rstate();
        let rules = state
            .modules
            .iter()
            .map(|m| RuleStats {
                name: m.rule.name(),
                fired: m.counters.fired.load(Ordering::Relaxed),
                full_flushes: m.counters.full_flushes.load(Ordering::Relaxed),
                timeout_flushes: m.counters.timeout_flushes.load(Ordering::Relaxed),
                buffered: m.counters.buffered.load(Ordering::Relaxed),
                derived: m.counters.derived.load(Ordering::Relaxed),
                fresh: m.counters.fresh.load(Ordering::Relaxed),
                buffer_capacity: m.capacity.load(Ordering::Relaxed),
            })
            .collect();
        let store = engine.store.stats();
        let dict_stats = engine.dict.stats();
        StatsSnapshot {
            rules,
            input_received: engine.globals.input_received.load(Ordering::Relaxed),
            input_fresh: engine.globals.input_fresh.load(Ordering::Relaxed),
            store_size: store.triples,
            store,
            removal_runs: engine.globals.removal_runs.load(Ordering::Relaxed),
            retracted: engine.globals.retracted.load(Ordering::Relaxed),
            overdeleted: engine.globals.overdeleted.load(Ordering::Relaxed),
            rederived: engine.globals.rederived.load(Ordering::Relaxed),
            deferred: engine.globals.deferred.load(Ordering::Relaxed),
            cancelled_removals: engine.globals.cancelled.load(Ordering::Relaxed),
            pending_removals: engine.scheduler.pending(),
            coalesced_runs: engine.globals.coalesced_runs.load(Ordering::Relaxed),
            partitioned_runs: engine.globals.partitioned_runs.load(Ordering::Relaxed),
            subpartitioned_runs: engine.globals.subpartitioned_runs.load(Ordering::Relaxed),
            parallel_eager_runs: engine.globals.parallel_eager_runs.load(Ordering::Relaxed),
            coordinator_work: engine.globals.coordinator_work.load(Ordering::Relaxed),
            oldest_pending_age: engine.scheduler.oldest_age(),
            gate_write_acquisitions: engine.store.gate_write_acquisitions(),
            shard_write_conflicts: engine.store.shard_write_conflicts(),
            snapshot_generation: engine.store.snapshot_generation(),
            ruleset_swaps: engine.globals.ruleset_swaps.load(Ordering::Relaxed),
            budget_deferrals: engine.globals.budget_deferrals.load(Ordering::Relaxed),
            runtime_sessions: self.session.session_count(),
            dict_terms: dict_stats.terms,
            dict_tombstones: dict_stats.tombstones,
            dict_bytes_estimate: dict_stats.bytes_estimate,
            dict_shard_conflicts: dict_stats.shard_conflicts,
            dict_sweeps: dict_stats.sweeps,
        }
    }

    /// The recorded event log, if tracing was enabled.
    pub fn events(&self) -> Option<Vec<Event>> {
        self.engine.log.as_ref().map(EventLog::events)
    }
}

impl Drop for Slider {
    fn drop(&mut self) {
        // Pending deferred retractions must not be silently discarded:
        // apply them in one final coalesced flush, mirroring how buffered
        // triples drain at quiescence. This must happen while the shared
        // pool is still running — the flush waits for quiescence (and may
        // farm partition passes out to the pool) — which is guaranteed:
        // this session's handle still holds the runtime core alive.
        if self.engine.scheduler.pending() > 0 {
            self.engine.flush_maintenance();
        }
        // The fields then drop in order: the engine's strong reference
        // first (queued jobs may briefly keep it alive), the session
        // handle last — detaching from the runtime's flusher service.
        // Co-tenants are untouched; only when this was the runtime's last
        // reference does the core's own Drop join the pool and flusher.
    }
}

impl std::fmt::Debug for Slider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.engine.rstate();
        f.debug_struct("Slider")
            .field("ruleset", &state.name)
            .field("rules", &state.modules.len())
            .field("store_size", &self.engine.store.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_baseline::closure;
    use slider_model::vocab::{RDFS_DOMAIN, RDFS_SUB_CLASS_OF, RDFS_SUB_PROPERTY_OF, RDF_TYPE};
    use slider_model::NodeId;

    fn n(v: u64) -> NodeId {
        NodeId(1000 + v)
    }
    fn sco(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDFS_SUB_CLASS_OF, n(b))
    }
    fn ty(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDF_TYPE, n(b))
    }

    fn chain(k: u64) -> Vec<Triple> {
        (1..k).map(|i| sco(i, i + 1)).collect()
    }

    fn rho_slider(config: SliderConfig) -> Slider {
        let dict = Arc::new(Dictionary::new());
        Slider::new(dict, Ruleset::rho_df(), config)
    }

    #[test]
    fn closure_matches_oracle_on_chain() {
        let input = chain(30);
        let slider = rho_slider(SliderConfig::default());
        slider.materialize(&input);
        let oracle = closure(Ruleset::rho_df(), &input);
        assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
    }

    #[test]
    fn closure_matches_oracle_mixed_schema() {
        let input = vec![
            sco(1, 2),
            sco(2, 3),
            ty(9, 1),
            Triple::new(n(5), RDFS_SUB_PROPERTY_OF, n(6)),
            Triple::new(n(6), RDFS_DOMAIN, n(2)),
            Triple::new(n(7), n(5), n(8)),
        ];
        let slider = rho_slider(SliderConfig::default());
        slider.materialize(&input);
        let oracle = closure(Ruleset::rho_df(), &input);
        assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
        assert!(slider.store().contains(ty(7, 3)));
    }

    #[test]
    fn rdfs_fragment_closure_matches_oracle() {
        let dict = Arc::new(Dictionary::new());
        let input = vec![sco(1, 2), ty(9, 1), Triple::new(n(1), RDF_TYPE, NodeId(7))];
        let slider = Slider::new(
            Arc::clone(&dict),
            Ruleset::rdfs(&dict),
            SliderConfig::default(),
        );
        slider.materialize(&input);
        let oracle = closure(Ruleset::rdfs(&dict), &input);
        assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
    }

    #[test]
    fn incremental_equals_batch() {
        let input = chain(40);
        let batch = rho_slider(SliderConfig::default());
        batch.materialize(&input);

        let inc = rho_slider(SliderConfig::default());
        for chunk in input.chunks(3) {
            inc.add_triples(chunk);
        }
        inc.wait_idle();
        assert_eq!(batch.store().to_sorted_vec(), inc.store().to_sorted_vec());
    }

    #[test]
    fn tiny_buffers_and_single_worker() {
        let input = chain(25);
        let config = SliderConfig::default()
            .with_buffer_capacity(1)
            .with_workers(1);
        let slider = rho_slider(config);
        slider.materialize(&input);
        let oracle = closure(Ruleset::rho_df(), &input);
        assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
    }

    #[test]
    fn huge_buffers_rely_on_wait_idle_flush() {
        let input = chain(25);
        let config = SliderConfig::batch().with_buffer_capacity(1_000_000); // never fills
        let slider = rho_slider(config);
        slider.materialize(&input);
        let oracle = closure(Ruleset::rho_df(), &input);
        assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
    }

    #[test]
    fn timeout_drives_progress_without_explicit_flush() {
        let config = SliderConfig::default()
            .with_buffer_capacity(1_000_000) // full-flush can never trigger
            .with_timeout(Some(Duration::from_millis(2)));
        let slider = rho_slider(config);
        slider.add_triples(&[sco(1, 2), sco(2, 3)]);
        // Poll: the timeout flusher must eventually produce (1 sco 3).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !slider.store().contains(sco(1, 3)) {
            assert!(
                std::time::Instant::now() < deadline,
                "timeout flush never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = slider.stats();
        assert!(stats.rules.iter().any(|r| r.timeout_flushes > 0));
    }

    #[test]
    fn duplicate_input_is_dropped() {
        let slider = rho_slider(SliderConfig::default());
        assert_eq!(slider.add_triples(&[sco(1, 2), sco(1, 2)]), 1);
        assert_eq!(slider.add_triples(&[sco(1, 2)]), 0);
        slider.wait_idle();
        let stats = slider.stats();
        assert_eq!(stats.input_received, 3);
        assert_eq!(stats.input_fresh, 1);
    }

    #[test]
    fn stats_are_consistent_with_store() {
        let input = chain(20);
        let slider = rho_slider(SliderConfig::default());
        slider.materialize(&input);
        let stats = slider.stats();
        assert_eq!(
            stats.store_size as u64,
            stats.input_fresh + stats.total_inferred(),
            "store = input + inferred\n{stats}"
        );
        // Chain closure: 19 explicit + 171 inferred = C(20,2).
        assert_eq!(stats.total_inferred(), 171);
        assert!(stats.total_fired() > 0);
    }

    #[test]
    fn trace_records_lifecycle() {
        let input = chain(10);
        let slider = rho_slider(SliderConfig::default().with_trace(true));
        slider.materialize(&input);
        let events = slider.events().expect("tracing enabled");
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Input { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RuleFired { .. })));
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::Idle { .. }
        ));
        // Times are monotone.
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn no_trace_by_default() {
        let slider = rho_slider(SliderConfig::default());
        assert!(slider.events().is_none());
    }

    #[test]
    fn concurrent_ingestion() {
        let input = chain(60);
        let slider = Arc::new(rho_slider(SliderConfig::default()));
        let mut handles = Vec::new();
        for chunk in input.chunks(10) {
            let slider = Arc::clone(&slider);
            let chunk = chunk.to_vec();
            handles.push(std::thread::spawn(move || {
                slider.add_triples(&chunk);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        slider.wait_idle();
        let oracle = closure(Ruleset::rho_df(), &input);
        assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
    }

    #[test]
    fn add_terms_encodes_through_dictionary() {
        use slider_model::Term;
        let slider = Slider::fragment(Fragment::RhoDf, SliderConfig::default());
        let sub = Term::iri("http://e/Cat");
        let sup = Term::iri("http://e/Animal");
        let sco_term = Term::iri("http://www.w3.org/2000/01/rdf-schema#subClassOf");
        let type_term = Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
        let inst = Term::iri("http://e/felix");
        slider.add_terms(&[
            (sub.clone(), sco_term, sup.clone()),
            (inst.clone(), type_term.clone(), sub),
        ]);
        slider.wait_idle();
        let felix = slider.dict().id_of(&inst).unwrap();
        let animal = slider.dict().id_of(&sup).unwrap();
        assert!(slider
            .store()
            .contains(Triple::new(felix, RDF_TYPE, animal)));
    }

    #[test]
    fn repeated_wait_idle_is_stable() {
        let slider = rho_slider(SliderConfig::default());
        slider.materialize(&chain(10));
        let len = slider.store().len();
        slider.wait_idle();
        slider.wait_idle();
        assert_eq!(slider.store().len(), len);
    }

    #[test]
    fn drop_mid_work_does_not_hang() {
        let slider = rho_slider(SliderConfig::default().with_buffer_capacity(2));
        slider.add_triples(&chain(200));
        drop(slider); // must join cleanly with jobs still queued
    }

    #[test]
    fn empty_ruleset_is_a_plain_store() {
        let dict = Arc::new(Dictionary::new());
        let slider = Slider::new(dict, Ruleset::custom("none"), SliderConfig::default());
        slider.materialize(&chain(5));
        assert_eq!(slider.store().len(), 4);
        assert_eq!(slider.inferred_count(), 0);
    }

    #[test]
    fn object_index_ablation_same_closure() {
        let input = chain(20);
        let slider = rho_slider(SliderConfig::default().with_object_index(false));
        slider.materialize(&input);
        let oracle = closure(Ruleset::rho_df(), &input);
        assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
    }

    #[test]
    fn dependency_graph_accessible() {
        let slider = rho_slider(SliderConfig::default());
        assert_eq!(slider.dependency_graph().len(), 8);
        assert_eq!(slider.ruleset_name(), "rho-df");
    }

    #[test]
    fn remove_triples_runs_dred_end_to_end() {
        let slider = rho_slider(SliderConfig::default());
        slider.materialize(&chain(10));
        assert_eq!(slider.remove_triples(&[sco(5, 6)]), 1);
        let survivors: Vec<Triple> = chain(10).into_iter().filter(|&t| t != sco(5, 6)).collect();
        let oracle = closure(Ruleset::rho_df(), &survivors);
        assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
        let stats = slider.stats();
        assert_eq!(stats.store.explicit, survivors.len());
        assert_eq!(stats.removal_runs, 1);
        assert_eq!(stats.retracted, 1);
        assert!(stats.overdeleted > 0);
        // Removing it again (or a derived fact) is a no-op.
        assert_eq!(slider.remove_triples(&[sco(5, 6), sco(1, 3)]), 0);
        assert_eq!(slider.stats().removal_runs, 1);
    }

    #[test]
    fn removal_then_re_add_round_trips() {
        let input = chain(12);
        let slider = rho_slider(SliderConfig::default());
        slider.materialize(&input);
        let full = slider.store().to_sorted_vec();
        assert!(slider.remove_triple(sco(4, 5)));
        assert_ne!(slider.store().to_sorted_vec(), full);
        slider.materialize(&[sco(4, 5)]);
        assert_eq!(slider.store().to_sorted_vec(), full);
    }

    #[test]
    fn remove_terms_skips_unknown_terms() {
        use slider_model::Term;
        let slider = Slider::fragment(Fragment::RhoDf, SliderConfig::default());
        let sco_term = Term::iri("http://www.w3.org/2000/01/rdf-schema#subClassOf");
        let cat = Term::iri("http://e/Cat");
        let animal = Term::iri("http://e/Animal");
        slider.add_terms(&[(cat.clone(), sco_term.clone(), animal.clone())]);
        slider.wait_idle();
        let interned = slider.dict().len();
        // Unknown term: skipped without interning anything.
        assert_eq!(
            slider.remove_terms(&[(Term::iri("http://e/Nope"), sco_term.clone(), animal.clone())]),
            0
        );
        assert_eq!(slider.dict().len(), interned);
        assert_eq!(slider.remove_terms(&[(cat, sco_term, animal)]), 1);
        assert!(slider.store().is_empty());
    }

    #[test]
    fn adaptive_scheduling_same_closure() {
        let input = chain(60);
        let oracle = closure(Ruleset::rho_df(), &input);
        let slider = rho_slider(
            SliderConfig::default()
                .with_buffer_capacity(16)
                .with_adaptive_buffers(true),
        );
        slider.materialize(&input);
        assert_eq!(slider.store().to_sorted_vec(), oracle.to_sorted_vec());
    }

    #[test]
    fn adaptive_scheduling_retunes_capacities() {
        // CAX-SCO on a chain derives only duplicates (the type triples all
        // target rdfs:Class, which has no superclasses), so its instances
        // have fresh/derived = 0 — the adaptive plan must grow its batch.
        let input = chain(120);
        let base = 8;
        let slider = rho_slider(
            SliderConfig::default()
                .with_buffer_capacity(base)
                .with_adaptive_buffers(true),
        );
        slider.materialize(&input);
        let stats = slider.stats();
        let grown = stats
            .rules
            .iter()
            .filter(|r| r.fired > 0 && r.buffer_capacity > base)
            .count();
        assert!(grown > 0, "no rule's plan was retuned\n{stats}");
        // Bounds are respected.
        for r in &stats.rules {
            assert!(
                r.buffer_capacity >= base && r.buffer_capacity <= base * 64,
                "{}",
                r.name
            );
        }
    }

    #[test]
    fn static_plans_keep_configured_capacity() {
        let slider = rho_slider(SliderConfig::default().with_buffer_capacity(77));
        slider.materialize(&chain(40));
        for r in &slider.stats().rules {
            assert_eq!(r.buffer_capacity, 77, "{}", r.name);
        }
    }

    /// Regression (silently discarded retractions): dropping a `Slider`
    /// with a non-empty pending set must flush it — pending retractions
    /// apply on teardown, mirroring the buffer drain — not discard it.
    #[test]
    fn drop_flushes_pending_retractions() {
        // Batch mode: no flusher thread, threshold unreachable — nothing
        // but the drop path can apply the deferral.
        let slider = rho_slider(SliderConfig::batch().with_maintenance_batch(usize::MAX));
        slider.materialize(&chain(10));
        slider.remove_deferred(&[sco(5, 6)]);
        assert_eq!(slider.stats().pending_removals, 1);
        let engine = Arc::clone(&slider.engine);
        drop(slider);
        let survivors: Vec<Triple> = chain(10).into_iter().filter(|&t| t != sco(5, 6)).collect();
        assert_eq!(
            engine.store.to_sorted_vec(),
            closure(Ruleset::rho_df(), &survivors).to_sorted_vec(),
            "pending retraction was discarded on drop"
        );
        assert_eq!(engine.globals.coalesced_runs.load(Ordering::Relaxed), 1);
    }

    /// Regression (lost re-assertion): a triple re-asserted while its
    /// deferred retraction is pending must survive the next flush — the
    /// assertion cancels the retraction.
    #[test]
    fn re_assertion_cancels_pending_retraction() {
        let slider = rho_slider(
            SliderConfig::batch()
                .with_maintenance_batch(usize::MAX)
                .with_trace(true),
        );
        let input = chain(10);
        slider.materialize(&input);
        let full = slider.store().to_sorted_vec();
        slider.remove_deferred(&[sco(4, 5), sco(7, 8)]);
        // Re-assert one of the two while both are pending.
        slider.add_triples(&[sco(4, 5)]);
        assert_eq!(slider.stats().pending_removals, 1, "one cancelled");
        assert_eq!(slider.stats().cancelled_removals, 1);
        let outcome = slider.flush_maintenance();
        slider.wait_idle();
        // Only the surviving retraction applied.
        assert_eq!(outcome.requested, 1);
        assert!(slider.store().contains(sco(4, 5)), "re-assertion lost");
        assert!(!slider.store().contains(sco(7, 8)));
        let survivors: Vec<Triple> = input.into_iter().filter(|&t| t != sco(7, 8)).collect();
        assert_eq!(
            slider.store().to_sorted_vec(),
            closure(Ruleset::rho_df(), &survivors).to_sorted_vec()
        );
        assert_ne!(slider.store().to_sorted_vec(), full);
    }

    /// A pending set spanning two independent rule families splits into a
    /// partitioned flush: parallel DRed passes, same final store.
    #[test]
    fn partitioned_flush_runs_independent_partitions() {
        use slider_rules::{Subsumption, Transitive};
        let p = |v: u64| NodeId(5_000 + v);
        let ruleset = Ruleset::custom("two-families")
            .with(Transitive::new("T-A", p(0)))
            .with(Subsumption::new("S-A", p(1), p(0)))
            .with(Transitive::new("T-B", p(10)))
            .with(Subsumption::new("S-B", p(11), p(10)));
        let config = SliderConfig::batch()
            .with_maintenance_batch(usize::MAX)
            .with_trace(true);
        let slider = Slider::new(Arc::new(Dictionary::new()), ruleset.clone(), config);
        assert_eq!(slider.maintenance_partitions(), 2);

        // Two chains, one per family, plus memberships at the chain heads;
        // an inert (rule-free) predicate rides along as a third bucket.
        let chain_a: Vec<Triple> = (1..6).map(|i| Triple::new(n(i), p(0), n(i + 1))).collect();
        let chain_b: Vec<Triple> = (1..6).map(|i| Triple::new(n(i), p(10), n(i + 1))).collect();
        let members = [
            Triple::new(n(100), p(1), n(1)),
            Triple::new(n(100), p(11), n(1)),
        ];
        let inert = Triple::new(n(200), NodeId(9_999), n(201));
        slider.materialize(&chain_a);
        slider.materialize(&chain_b);
        slider.materialize(&members);
        slider.materialize(&[inert]);

        // Defer one link from each family plus the inert triple, flush.
        slider.remove_deferred(&[chain_a[2], chain_b[2], inert]);
        let outcome = slider.flush_maintenance();
        assert_eq!(outcome.requested, 3);
        assert_eq!(outcome.retracted, 3);

        let stats = slider.stats();
        assert_eq!(stats.partitioned_runs, 1, "flush did not partition");
        assert_eq!(stats.coalesced_runs, 1);
        let events = slider.events().expect("tracing on");
        let partitions = events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::PartitionedRemoval { partitions, .. } => Some(partitions),
                _ => None,
            })
            .expect("partitioned removal event");
        assert_eq!(partitions, 3, "family A + family B + inert bucket");

        // The store equals the closure of the surviving explicit set.
        let survivors: Vec<Triple> = chain_a
            .iter()
            .chain(chain_b.iter())
            .chain(members.iter())
            .copied()
            .filter(|&t| t != chain_a[2] && t != chain_b[2])
            .collect();
        assert_eq!(
            slider.store().to_sorted_vec(),
            closure(ruleset, &survivors).to_sorted_vec()
        );
    }

    /// The partitioning ablation switch forces the single-pass path; both
    /// modes land on the same store.
    #[test]
    fn partitioning_ablation_agrees_with_single_pass() {
        use slider_rules::Transitive;
        let p = |v: u64| NodeId(5_000 + v);
        let build = |partitioning: bool| {
            let ruleset = Ruleset::custom("two-chains")
                .with(Transitive::new("T-A", p(0)))
                .with(Transitive::new("T-B", p(10)));
            let config = SliderConfig::batch()
                .with_maintenance_batch(usize::MAX)
                .with_maintenance_partitioning(partitioning);
            let slider = Slider::new(Arc::new(Dictionary::new()), ruleset, config);
            for base in [0, 10] {
                let links: Vec<Triple> = (1..8)
                    .map(|i| Triple::new(n(i), p(base), n(i + 1)))
                    .collect();
                slider.materialize(&links);
            }
            slider.remove_deferred(&[
                Triple::new(n(3), p(0), n(4)),
                Triple::new(n(5), p(10), n(6)),
            ]);
            slider.flush_maintenance();
            slider
        };
        let partitioned = build(true);
        let single = build(false);
        assert_eq!(
            partitioned.store().to_sorted_vec(),
            single.store().to_sorted_vec()
        );
        assert_eq!(partitioned.stats().partitioned_runs, 1);
        assert_eq!(single.stats().partitioned_runs, 0);
        assert_eq!(single.stats().coalesced_runs, 1);
    }

    /// Size-aware bucket ordering: the bucket with the largest store
    /// footprint must come first in the plan — it runs on the flush
    /// coordinator while the rest are dispatched to the pool.
    #[test]
    fn plan_flush_puts_largest_bucket_on_the_coordinator() {
        use slider_rules::Transitive;
        let p = |v: u64| NodeId(5_000 + v);
        let links = |base: u64, count: u64| -> Vec<Triple> {
            (1..=count)
                .map(|i| Triple::new(n(100 * base + i), p(base), n(100 * base + i + 1)))
                .collect()
        };
        for (small, big) in [(0u64, 10u64), (10, 0)] {
            let ruleset = Ruleset::custom("two-sizes")
                .with(Transitive::new("T-A", p(0)))
                .with(Transitive::new("T-B", p(10)));
            let slider = Slider::new(
                Arc::new(Dictionary::new()),
                ruleset,
                SliderConfig::batch().with_maintenance_batch(usize::MAX),
            );
            // One family dwarfs the other; which one varies per iteration,
            // so the assertion cannot pass by accident of component ids.
            slider.materialize(&links(small, 3));
            slider.materialize(&links(big, 14));
            let pending = vec![(0, links(small, 3)[0]), (0, links(big, 14)[0])];
            let engine = &slider.engine;
            let state = engine.rstate();
            let store = engine.store.exclusive();
            let groups = engine
                .plan_flush(&state, &store, &pending)
                .expect("two buckets");
            assert_eq!(groups.len(), 2);
            let weight = |g: &PendingGroup| -> usize {
                g.preds.iter().map(|&q| store.count_with_p(q)).sum()
            };
            assert!(
                groups[0].preds.contains(&p(big)),
                "largest family must be first (coordinator-run)"
            );
            assert!(weight(&groups[0]) > weight(&groups[1]));
        }
    }

    /// Satellite check for partitioned-flush accounting: the merged
    /// [`RemovalOutcome`] of a partitioned flush must equal, counter for
    /// counter, the single-pass outcome on the same workload — including
    /// the no-op classifications.
    #[test]
    fn partitioned_outcome_counters_match_single_pass() {
        use slider_rules::Transitive;
        let p = |v: u64| NodeId(5_000 + v);
        let build = |partitioning: bool| -> (Slider, RemovalOutcome) {
            let ruleset = Ruleset::custom("two-chains")
                .with(Transitive::new("T-A", p(0)))
                .with(Transitive::new("T-B", p(10)));
            let config = SliderConfig::batch()
                .with_maintenance_batch(usize::MAX)
                .with_maintenance_partitioning(partitioning);
            let slider = Slider::new(Arc::new(Dictionary::new()), ruleset, config);
            for base in [0, 10] {
                let links: Vec<Triple> = (1..8)
                    .map(|i| Triple::new(n(i), p(base), n(i + 1)))
                    .collect();
                slider.materialize(&links);
            }
            // Mix genuine retractions with the two no-op flavours (a
            // derived-only triple and an absent one) across both
            // partitions, so every counter is exercised per bucket.
            slider.remove_deferred(&[
                Triple::new(n(3), p(0), n(4)),
                Triple::new(n(5), p(10), n(6)),
                Triple::new(n(1), p(0), n(3)), // derived-only (chain hop)
                Triple::new(n(90), p(10), n(91)), // absent
            ]);
            let outcome = slider.flush_maintenance();
            (slider, outcome)
        };
        let (partitioned, merged) = build(true);
        let (single, single_pass) = build(false);
        assert_eq!(partitioned.stats().partitioned_runs, 1);
        assert_eq!(single.stats().partitioned_runs, 0);
        assert_eq!(
            partitioned.store().to_sorted_vec(),
            single.store().to_sorted_vec()
        );
        // Counter-for-counter equality: requested, retracted,
        // ignored_derived, not_found, overdeleted, rederived.
        assert_eq!(merged, single_pass, "partitioned outcome merge drifted");
        assert_eq!(merged.retracted, 2);
        assert_eq!(merged.ignored_derived, 1);
        assert_eq!(merged.not_found, 1);
    }

    /// The two-level locking pin at the engine level: while one predicate
    /// family's shard is write-locked, ingest into a different family
    /// completes — writes on disjoint shards no longer serialise on a
    /// store-wide writer lock.
    #[test]
    fn ingest_proceeds_while_another_shard_is_write_locked() {
        // Empty ruleset: no rule instances, so the test isolates the
        // input-manager write path.
        let slider = Arc::new(Slider::new(
            Arc::new(Dictionary::new()),
            Ruleset::custom("none"),
            SliderConfig::batch(),
        ));
        let store = slider.store();
        let p1 = NodeId(10);
        let p2 = (11..200)
            .map(NodeId)
            .find(|&q| store.shard_of(q) != store.shard_of(p1))
            .expect("another shard exists");

        let guard = store.write_shard(p1);
        let slider2 = Arc::clone(&slider);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let added = slider2.add_triples(&[Triple::new(n(1), p2, n(2))]);
            let _ = tx.send(added);
        });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)),
            Ok(1),
            "ingest into a disjoint shard serialised on the held shard lock"
        );
        drop(guard);
        slider.wait_idle();
        assert!(slider.store().contains(Triple::new(n(1), p2, n(2))));
    }

    /// A custom rule whose `apply` violates its declared read set must
    /// fail loudly — the instance panics and its conclusions are lost —
    /// without wedging the engine: the worker releases the inflight
    /// token either way, so `wait_idle` returns and the reasoner keeps
    /// serving.
    #[test]
    fn read_set_violation_fails_loudly_without_wedging_the_engine() {
        use slider_rules::OutputSignature;
        use slider_store::StoreView;
        struct Lying;
        impl Rule for Lying {
            fn name(&self) -> &'static str {
                "LIAR"
            }
            fn definition(&self) -> &'static str {
                "declares an empty read set, then reads the store"
            }
            fn input_filter(&self) -> InputFilter {
                InputFilter::Universal
            }
            fn output_signature(&self) -> OutputSignature {
                OutputSignature::Predicates(Vec::new())
            }
            fn read_predicates(&self) -> Option<Vec<NodeId>> {
                Some(Vec::new())
            }
            fn apply(&self, store: &StoreView, delta: &[Triple], _out: &mut Vec<Triple>) {
                for &t in delta {
                    let _ = store.contains(t); // outside the declared set
                }
            }
        }
        let ruleset = Ruleset::custom("liar").with(Lying);
        let slider = Slider::new(
            Arc::new(Dictionary::new()),
            ruleset,
            SliderConfig::batch().with_workers(1),
        );
        slider.add_triples(&[sco(1, 2)]);
        slider.wait_idle(); // must return despite the panicking instance
        assert!(slider.store().contains(sco(1, 2)));
        // The engine still ingests and settles afterwards.
        slider.add_triples(&[sco(2, 3)]);
        slider.wait_idle();
        assert_eq!(slider.store().len(), 2);
    }

    #[test]
    fn pending_staleness_reports_oldest_age() {
        let slider = rho_slider(SliderConfig::batch().with_maintenance_batch(usize::MAX));
        slider.materialize(&chain(5));
        assert_eq!(slider.pending_staleness(), None);
        slider.remove_deferred(&[sco(2, 3)]);
        std::thread::sleep(Duration::from_millis(2));
        let age = slider.pending_staleness().expect("one pending");
        assert!(age >= Duration::from_millis(2));
        assert!(slider.stats().oldest_pending_age.is_some());
        slider.flush_maintenance();
        assert_eq!(slider.pending_staleness(), None);
    }

    /// Regression (adaptive shrink stall): when a retune lowers a module's
    /// capacity below its current queue length, the now-eligible chunks
    /// must fire *at retune time* — with no timeout flusher and no further
    /// pushes, they previously stalled until an explicit flush.
    #[test]
    fn adaptive_shrink_fires_already_buffered_chunks() {
        // No buffer timeout and no maintenance deadline: nothing but the
        // retune itself can flush a stalled buffer.
        let config = SliderConfig::batch()
            .with_buffer_capacity(4)
            .with_adaptive_buffers(true)
            .with_maintenance_max_age(None);
        let slider = rho_slider(config);
        let engine = &slider.engine;

        // Find the subClassOf-transitivity module and simulate a grown
        // plan: capacity 16 with 8 triples sitting in its buffer (inserted
        // into the store first, as the real dispatch path does).
        let input = chain(9); // 8 sco links
        let state = engine.rstate();
        let rule = state
            .modules
            .iter()
            .position(|m| m.rule.name() == "SCM-SCO")
            .expect("the subClassOf-transitivity module");
        let module = &state.modules[rule];
        module.capacity.store(16, Ordering::Relaxed);
        let mut fresh = Vec::new();
        engine.store.insert_batch_explicit(&input, &mut fresh);
        assert!(module.buffer.push_batch_with(&input, 16).is_empty());
        assert_eq!(module.buffer.len(), 8);

        // A productive instance (fresh/derived > 0.5) shrinks 16 → 8: the
        // 8 buffered triples are exactly one now-eligible chunk.
        engine.retune(&state, rule, 10, 9);
        assert_eq!(module.capacity.load(Ordering::Relaxed), 8);
        engine.inflight.wait_zero();
        // The fired instance really ran: the chain's 2-step closure exists.
        // (The buffer need not be empty — the instance's own conclusions
        // legitimately re-buffer, SCM-SCO being its own successor.)
        assert!(
            slider.store().contains(sco(1, 3)),
            "buffered chunk stalled through the shrink"
        );
        let stats = slider.stats();
        assert!(stats.rules[rule].full_flushes >= 1);
    }

    #[test]
    fn large_retraction_burst_triggers_an_automatic_dict_sweep() {
        use slider_model::Term;
        let dict = Arc::new(Dictionary::new());
        let slider = Slider::new(
            Arc::clone(&dict),
            Ruleset::custom("empty"),
            SliderConfig::batch().with_trace(true),
        );
        let keep = (
            Term::iri("http://e/keep"),
            Term::iri("http://e/p"),
            Term::iri("http://e/kept-object"),
        );
        slider.add_terms(std::slice::from_ref(&keep));
        // One shared object keeps the term count close to the burst size,
        // so the default ratio (retired ≥ 0.5 × live terms) is what this
        // test actually exercises — not a rigged knob.
        let burst: Vec<TermTriple> = (0..1500)
            .map(|i| {
                (
                    Term::iri(format!("http://e/s{i}")),
                    Term::iri("http://e/p"),
                    Term::iri("http://e/shared-object"),
                )
            })
            .collect();
        slider.add_terms_owned(burst.clone());
        slider.wait_idle();
        let keep_id = dict.id_of(&keep.0).expect("kept term interned");
        let bytes_before = dict.stats().bytes_estimate;
        assert_eq!(slider.remove_terms(&burst), 1500);
        let stats = slider.stats();
        assert!(stats.dict_sweeps >= 1, "burst should have auto-swept");
        assert!(stats.dict_tombstones > 0);
        assert!(stats.dict_bytes_estimate < bytes_before);
        // Ids of live terms never move across a sweep.
        assert_eq!(dict.id_of(&keep.0), Some(keep_id));
        assert_eq!(dict.lookup(keep_id).as_ref(), Some(&keep.0));
        assert!(
            slider
                .events()
                .expect("tracing enabled")
                .iter()
                .any(|e| matches!(e.kind, EventKind::DictSweep { .. })),
            "the sweep must leave a trace event"
        );
    }

    #[test]
    fn explicit_dictionary_sweep_reclaims_and_reports() {
        use slider_model::Term;
        let dict = Arc::new(Dictionary::new());
        let slider = Slider::new(
            Arc::clone(&dict),
            Ruleset::custom("empty"),
            // Auto-sweep disabled: only the explicit call below may sweep.
            SliderConfig::batch().with_dict_sweep_ratio(f64::INFINITY),
        );
        let triples: Vec<TermTriple> = (0..2000)
            .map(|i| {
                (
                    Term::iri(format!("http://e/s{i}")),
                    Term::iri("http://e/p"),
                    Term::iri("http://e/o"),
                )
            })
            .collect();
        slider.add_terms(&triples);
        slider.wait_idle();
        assert_eq!(slider.remove_terms(&triples), 2000);
        assert_eq!(slider.stats().dict_sweeps, 0, "auto-sweep was disabled");
        let outcome = slider.sweep_dictionary();
        assert_eq!(outcome.swept, 2002); // 2000 subjects + p + o
        assert!(outcome.bytes_after < outcome.bytes_before);
        assert_eq!(slider.stats().dict_sweeps, 1);
    }
}
