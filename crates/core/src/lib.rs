//! **Slider** — the incremental reasoner (the paper's primary contribution).
//!
//! The architecture is a faithful Rust realisation of the paper's Figure 1,
//! extended with a retraction path (DRed truth maintenance):
//!
//! ```text
//!             ┌────────────────────────────────────────────────┐
//!  evolving   │   TRIPLE STORE (gate + per-predicate shards)   │
//!  data ──►   └─▲──▲──────────────▲──────────────▲─────────────┘
//!   input       │  │ read         │ read         │ write (dedup)
//!  manager ──► [Buffer R1] ─► (rule instance on thread pool) ─► [Distributor R1]
//!          └─► [Buffer R2] ─► (rule instance on thread pool) ─► [Distributor R2]
//!          └─► [Buffer R3] ─►            …                         │
//!               │  ▲───────────── fresh triples routed ◄───────────┘
//!               │        (rules dependency graph, Figure 2)
//!  retractions ─┴─► [DRed maintenance: overdelete ▸ rederive]
//!               (gate-exclusive; explicit/derived provenance flags)
//! ```
//!
//! * The **input manager** ([`Slider::add_triples`], [`Slider::add_terms`])
//!   dictionary-encodes incoming triples, inserts them into the store
//!   (duplicates are dropped here — first dedup layer; inputs are flagged
//!   **explicit**) and routes the new ones to the buffers of every rule
//!   whose [`InputFilter`] accepts them.
//! * Each rule module owns a **buffer**; when it reaches
//!   [`SliderConfig::buffer_capacity`] triples — or sits idle longer than
//!   [`SliderConfig::timeout`] — its content becomes a *rule instance*: a
//!   job on the **thread pool** that joins the batch against the store's
//!   published **epoch snapshot** — lock-free, scoped to the rule's
//!   declared read set (see `slider_store::EpochSnapshot`) — per paper
//!   Algorithm 1.
//! * The rule instance's **distributor** inserts the conclusions into the
//!   store, locking one predicate shard at a time (writes on disjoint
//!   shards run concurrently); only the triples that were *actually new*
//!   are dispatched onward, to the buffers selected by the **rules
//!   dependency graph** — the paper's duplicate-limitation mechanism.
//! * [`Slider::wait_idle`] detects quiescence (all buffers empty, no
//!   in-flight work): the closure is complete. Streaming callers instead
//!   just keep feeding triples; timeouts keep buffers moving.
//! * **Retractions** ([`Slider::remove_triples`], [`Slider::remove_terms`])
//!   run the [`maintenance`] module's DRed algorithm with the store held
//!   exclusively (the maintenance gate in write mode): overdelete the
//!   downward closure of the retracted facts
//!   through the dependency graph, then rederive the survivors via the
//!   same rule modules. Afterwards the store equals the closure of the
//!   surviving explicit triples — sliding-window streams retract expiring
//!   batches instead of rebuilding.
//! * **Deferred retractions** ([`Slider::remove_deferred`],
//!   [`Slider::flush_maintenance`]) enqueue on the [`scheduler`] module's
//!   maintenance scheduler instead; one *coalesced* DRed run over the
//!   whole pending set fires on a pending-count threshold, a max-age
//!   deadline (serviced by the flusher thread), or an explicit flush —
//!   amortising maintenance for high-churn windows. Re-asserting a triple
//!   while its retraction is pending **cancels** the retraction, so a
//!   flush always lands on the closure of the surviving explicit set;
//!   [`Slider::pending_staleness`] bounds how stale pre-flush queries may
//!   be. A flush whose pending set spans several independent
//!   dependency-graph partitions splits the store into shards and runs
//!   one DRed pass per partition **in parallel on the worker pool**.
//!
//! Termination is guaranteed because every dispatched triple was new to the
//! store and rules never invent new term ids, so the reachable closure is
//! finite and monotone between maintenance runs.
//!
//! The execution layer — worker pool, session-fair job queue, and the
//! flusher that services buffer timeouts and maintenance deadlines — is a
//! shared [`Runtime`] (see the [`runtime`] module): a standalone `Slider`
//! owns a private one, while [`Runtime::session`] multiplexes many
//! independent reasoner sessions over a single pool, with per-tick
//! maintenance slicing ([`RuntimeConfig::maintenance_budget`]) keeping one
//! tenant's coalesced DRed out of another's ingest latency.
//!
//! [`InputFilter`]: slider_rules::InputFilter

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod config;
mod inflight;
pub mod maintenance;
pub mod runtime;
pub mod scheduler;
mod session;
mod stats;
pub mod trace;

pub use buffer::Buffer;
pub use config::SliderConfig;
pub use maintenance::RemovalOutcome;
pub use runtime::{Runtime, RuntimeConfig, SessionHandle};
pub use session::{Slider, SwapOutcome};
pub use stats::{RuleStats, StatsSnapshot};
pub use trace::{events_to_json, Event, EventKind, EventLog};
