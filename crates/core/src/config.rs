//! Reasoner configuration — the knobs of the paper's demo (§4).

use std::time::Duration;

/// Configuration of a [`Slider`](crate::Slider) instance.
///
/// These are exactly the parameters the paper's demonstration exposes:
/// buffer size, buffer timeout and the fragment (the fragment is passed
/// separately as a [`Ruleset`](slider_rules::Ruleset)); plus the pool size
/// and instrumentation switches this reproduction adds.
#[derive(Debug, Clone)]
pub struct SliderConfig {
    /// How many triples a buffer holds before it "fires a new rule
    /// execution" (§4). Default: 1024.
    pub buffer_capacity: usize,
    /// "After how long an inactive buffer is forced to flush" (§4).
    /// `None` disables timeout flushing (batch mode — callers must use
    /// [`Slider::wait_idle`](crate::Slider::wait_idle), which force-flushes).
    /// Default: 20 ms.
    pub timeout: Option<Duration>,
    /// Worker threads in the pool. Default: available parallelism.
    pub workers: usize,
    /// Record an [`EventLog`](crate::EventLog) of module activity (the demo
    /// player's data source). Off by default: tracing serialises events.
    pub trace: bool,
    /// Maintain the per-predicate object index (paper §2.2 "multiple
    /// indexing"). Disabled only by the ablation benchmark.
    pub object_index: bool,
    /// Run-time dynamic scheduling (the paper's §5 future work: "migrating
    /// from 'static' plans … to run-time dynamic plans"): each rule's fire
    /// threshold is retuned after every instance based on its observed
    /// duplicate ratio — duplicate-heavy rules get larger batches (fewer,
    /// cheaper instances), productive rules smaller ones (lower latency).
    /// Off by default.
    pub adaptive_buffers: bool,
    /// Conservative truth maintenance: when `true`, DRed retraction
    /// (see [`Slider::remove_triples`](crate::Slider::remove_triples)) runs
    /// **every** rule in both the overdeletion and rederivation phases,
    /// instead of restricting overdeletion to the dependency-graph
    /// downward closure of the retracted predicates and rederivation to
    /// the rules whose output signature can emit an overdeleted predicate.
    /// The two modes compute the same store; the restricted default just
    /// does less work. Off by default; useful as a cross-check/ablation.
    pub full_rederive: bool,
    /// Coalesced-maintenance threshold: how many *distinct* pending
    /// retractions [`Slider::remove_deferred`](crate::Slider::remove_deferred)
    /// accumulates before it triggers one coalesced DRed run over the whole
    /// pending set (the retraction analogue of `buffer_capacity`). See the
    /// [`scheduler`](crate::scheduler) module docs for the trigger
    /// semantics. Default: 1024.
    pub maintenance_batch: usize,
    /// Coalesced-maintenance deadline: how long the *oldest* deferred
    /// retraction may stay pending before the flusher thread forces a
    /// coalesced run (the retraction analogue of `timeout`). `None`
    /// disables the deadline — pending retractions then wait for the
    /// threshold or an explicit
    /// [`Slider::flush_maintenance`](crate::Slider::flush_maintenance).
    /// Default: 100 ms.
    pub maintenance_max_age: Option<Duration>,
    /// Partitioned coalesced flushes: when a coalesced run's pending
    /// retractions fall into several independent maintenance partitions of
    /// the rules dependency graph (disjoint
    /// overdeletion/rederivation footprints — see
    /// [`DependencyGraph::component_of`](slider_rules::DependencyGraph::component_of)),
    /// run one DRed pass per partition **in parallel on the worker pool**
    /// instead of a single sequential pass. Falls back to the single pass
    /// automatically when the pending set maps to one partition, a
    /// partition owns every predicate (universal rules — ρdf/RDFS always
    /// do), a rule involved lacks a backward matcher, or
    /// [`full_rederive`](SliderConfig::full_rederive) is set. The two
    /// modes land on the same store. On by default; the switch exists as
    /// an ablation/cross-check.
    pub maintenance_partitioning: bool,
    /// Intra-partition deletion sub-split factor: when a single
    /// maintenance partition's pending retractions pass the planner's
    /// subject-locality gate (every rule the deletion's affected
    /// predicate closure touches declares those predicates
    /// [`subject_local_inputs`](slider_rules::Rule::subject_local_inputs)),
    /// the partition's affected predicates are carved into up to this
    /// many subject-hash buckets whose downward closures are provably
    /// disjoint, and each bucket runs its own DRed pass in parallel —
    /// joining against the rest of the partition through a read-only
    /// overlay. `1` (the default and the ablation baseline) disables
    /// sub-splitting: the unit of deletion work stays the rule family,
    /// exactly the previous behaviour. Requires
    /// [`maintenance_partitioning`](SliderConfig::maintenance_partitioning).
    pub deletion_subsplit: usize,
    /// Shards of the two-level-locked store (rounded up to a power of two,
    /// minimum 1): rule joins and distributor writes touching disjoint
    /// predicate families lock disjoint shards and run concurrently, while
    /// maintenance still gets full exclusivity through the store's global
    /// gate. `1` degenerates to the paper's single global readers-writer
    /// lock (the `ingest` benchmark's baseline). Default:
    /// [`DEFAULT_SHARDS`](slider_store::DEFAULT_SHARDS).
    pub store_shards: usize,
    /// Dictionary sweep trigger ratio: after a coalesced DRed flush or an
    /// eager removal, the engine sweeps the term dictionary
    /// ([`Dictionary::sweep`](slider_model::Dictionary::sweep)) once the
    /// number of node ids retired since the last sweep exceeds this
    /// fraction of the dictionary's live-term count (and an absolute floor
    /// of 1024 retirements, so small workloads never pay for a sweep).
    /// The sweep runs under the store's exclusive gate, tombstones
    /// unreferenced non-vocabulary terms and recycles their ids through a
    /// free-list; ids of live terms never move. `f64::INFINITY` disables
    /// automatic sweeping (explicit
    /// [`Slider::sweep_dictionary`](crate::Slider::sweep_dictionary) still
    /// works). Default: 0.5.
    pub dict_sweep_ratio: f64,
}

impl Default for SliderConfig {
    fn default() -> Self {
        SliderConfig {
            buffer_capacity: 1024,
            timeout: Some(Duration::from_millis(20)),
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            trace: false,
            object_index: true,
            adaptive_buffers: false,
            full_rederive: false,
            maintenance_batch: 1024,
            maintenance_max_age: Some(Duration::from_millis(100)),
            maintenance_partitioning: true,
            deletion_subsplit: 1,
            store_shards: slider_store::DEFAULT_SHARDS,
            dict_sweep_ratio: 0.5,
        }
    }
}

impl SliderConfig {
    /// Batch-friendly configuration: no timeouts, default buffers, and no
    /// maintenance deadline — no flusher thread at all. Batch callers
    /// drive everything explicitly
    /// ([`Slider::wait_idle`](crate::Slider::wait_idle),
    /// [`Slider::flush_maintenance`](crate::Slider::flush_maintenance));
    /// deferred retractions flush on the pending-count threshold or an
    /// explicit flush only.
    pub fn batch() -> Self {
        SliderConfig {
            timeout: None,
            maintenance_max_age: None,
            ..SliderConfig::default()
        }
    }

    /// Builder-style buffer capacity.
    pub fn with_buffer_capacity(mut self, capacity: usize) -> Self {
        self.buffer_capacity = capacity.max(1);
        self
    }

    /// Builder-style timeout.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Builder-style worker count (min 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style tracing switch.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Builder-style object-index switch (ablation only).
    pub fn with_object_index(mut self, object_index: bool) -> Self {
        self.object_index = object_index;
        self
    }

    /// Builder-style adaptive-scheduling switch.
    pub fn with_adaptive_buffers(mut self, adaptive: bool) -> Self {
        self.adaptive_buffers = adaptive;
        self
    }

    /// Builder-style conservative-maintenance switch.
    pub fn with_full_rederive(mut self, full: bool) -> Self {
        self.full_rederive = full;
        self
    }

    /// Builder-style coalesced-maintenance threshold (min 1).
    pub fn with_maintenance_batch(mut self, batch: usize) -> Self {
        self.maintenance_batch = batch.max(1);
        self
    }

    /// Builder-style coalesced-maintenance deadline.
    pub fn with_maintenance_max_age(mut self, max_age: Option<Duration>) -> Self {
        self.maintenance_max_age = max_age;
        self
    }

    /// Builder-style partitioned-flush switch (ablation/cross-check).
    pub fn with_maintenance_partitioning(mut self, partitioning: bool) -> Self {
        self.maintenance_partitioning = partitioning;
        self
    }

    /// Builder-style deletion sub-split factor (min 1; `1` = no
    /// sub-splitting, the ablation baseline).
    pub fn with_deletion_subsplit(mut self, subsplit: usize) -> Self {
        self.deletion_subsplit = subsplit.max(1);
        self
    }

    /// Builder-style store shard count (min 1, rounded up to a power of
    /// two by the store; `1` = the global-lock baseline).
    pub fn with_store_shards(mut self, shards: usize) -> Self {
        self.store_shards = shards.max(1);
        self
    }

    /// Builder-style dictionary sweep ratio (clamped to be non-negative;
    /// `f64::INFINITY` disables automatic sweeping).
    pub fn with_dict_sweep_ratio(mut self, ratio: f64) -> Self {
        self.dict_sweep_ratio = if ratio.is_nan() { 0.5 } else { ratio.max(0.0) };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SliderConfig::default();
        assert!(c.buffer_capacity >= 1);
        assert!(c.workers >= 1);
        assert!(c.timeout.is_some());
        assert!(!c.trace);
        assert!(c.object_index);
        assert!(!c.adaptive_buffers);
        assert!(!c.full_rederive);
        assert!(c.maintenance_batch >= 1);
        assert!(c.maintenance_max_age.is_some());
        assert!(c.maintenance_partitioning);
        assert_eq!(c.deletion_subsplit, 1);
        assert_eq!(c.store_shards, slider_store::DEFAULT_SHARDS);
        assert_eq!(c.dict_sweep_ratio, 0.5);
    }

    #[test]
    fn dict_sweep_ratio_builder_clamps() {
        let c = SliderConfig::default();
        assert_eq!(c.clone().with_dict_sweep_ratio(-1.0).dict_sweep_ratio, 0.0);
        assert_eq!(c.clone().with_dict_sweep_ratio(2.0).dict_sweep_ratio, 2.0);
        assert_eq!(
            c.clone().with_dict_sweep_ratio(f64::NAN).dict_sweep_ratio,
            0.5
        );
        assert!(c
            .with_dict_sweep_ratio(f64::INFINITY)
            .dict_sweep_ratio
            .is_infinite());
    }

    #[test]
    fn store_shards_builder_clamps() {
        assert_eq!(SliderConfig::default().with_store_shards(0).store_shards, 1);
        assert_eq!(SliderConfig::default().with_store_shards(8).store_shards, 8);
    }

    #[test]
    fn deletion_subsplit_builder_clamps() {
        let c = SliderConfig::default();
        assert_eq!(c.clone().with_deletion_subsplit(0).deletion_subsplit, 1);
        assert_eq!(c.with_deletion_subsplit(4).deletion_subsplit, 4);
    }

    #[test]
    fn full_rederive_builder() {
        assert!(
            SliderConfig::default()
                .with_full_rederive(true)
                .full_rederive
        );
    }

    #[test]
    fn adaptive_builder() {
        assert!(
            SliderConfig::default()
                .with_adaptive_buffers(true)
                .adaptive_buffers
        );
    }

    #[test]
    fn builders_clamp() {
        let c = SliderConfig::default()
            .with_buffer_capacity(0)
            .with_workers(0)
            .with_maintenance_batch(0);
        assert_eq!(c.buffer_capacity, 1);
        assert_eq!(c.workers, 1);
        assert_eq!(c.maintenance_batch, 1);
    }

    #[test]
    fn maintenance_builders() {
        let c = SliderConfig::default()
            .with_maintenance_batch(7)
            .with_maintenance_max_age(None)
            .with_maintenance_partitioning(false);
        assert_eq!(c.maintenance_batch, 7);
        assert!(c.maintenance_max_age.is_none());
        assert!(!c.maintenance_partitioning);
    }

    #[test]
    fn batch_mode_has_no_timeout() {
        assert!(SliderConfig::batch().timeout.is_none());
        // …and no maintenance deadline: no flusher thread in batch mode.
        assert!(SliderConfig::batch().maintenance_max_age.is_none());
    }
}
