//! Per-rule triple buffers (paper §2, "Buffers").
//!
//! > "Each rule module is assigned with a buffer that is in-charge of
//! > collecting triples … Once the buffer is full or in-case of timeouts,
//! > it triggers a new instance of rule module."

use parking_lot::Mutex;
use slider_model::Triple;
use std::time::{Duration, Instant};

struct Inner {
    queue: Vec<Triple>,
    /// Last time the buffer transitioned or received triples; the timeout
    /// flusher fires when this goes stale.
    last_activity: Instant,
}

impl Inner {
    /// Splits every complete `capacity`-sized chunk off the front of the
    /// queue (FIFO), leaving the remainder buffered.
    fn split_full_chunks(&mut self, capacity: usize) -> Vec<Vec<Triple>> {
        let mut chunks = Vec::new();
        while self.queue.len() >= capacity {
            let rest = self.queue.split_off(capacity);
            let chunk = std::mem::replace(&mut self.queue, rest);
            chunks.push(chunk);
        }
        chunks
    }
}

/// A bounded triple buffer with full- and timeout-flush semantics.
///
/// `push_batch` appends and drains complete capacity-sized chunks — each
/// chunk is one *rule instance* (a job for the pool), so a large input
/// batch becomes several parallelisable instances, exactly the paper's
/// "multiple instances of same rule … run in parallel".
pub struct Buffer {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Buffer {
    /// An empty buffer firing every `capacity` triples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer capacity must be at least 1");
        Buffer {
            capacity,
            inner: Mutex::new(Inner {
                queue: Vec::new(),
                last_activity: Instant::now(),
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends `triples`; returns the full chunks to execute (empty vec if
    /// the buffer has not filled).
    pub fn push_batch(&self, triples: &[Triple]) -> Vec<Vec<Triple>> {
        self.push_batch_with(triples, self.capacity)
    }

    /// Like [`Buffer::push_batch`] with an explicit fire threshold — used
    /// by the adaptive scheduler, which retunes per-rule capacities at run
    /// time (see `SliderConfig::adaptive_buffers`).
    pub fn push_batch_with(&self, triples: &[Triple], capacity: usize) -> Vec<Vec<Triple>> {
        let capacity = capacity.max(1);
        if triples.is_empty() {
            return Vec::new();
        }
        let mut inner = self.inner.lock();
        inner.queue.extend_from_slice(triples);
        inner.last_activity = Instant::now();
        inner.split_full_chunks(capacity)
    }

    /// Drains every complete `capacity`-sized chunk already buffered,
    /// without adding anything — used when the adaptive scheduler lowers a
    /// module's fire threshold below its current queue length, so the
    /// now-eligible triples fire immediately instead of stalling until the
    /// next push or a timeout flush.
    pub fn take_full_chunks(&self, capacity: usize) -> Vec<Vec<Triple>> {
        let capacity = capacity.max(1);
        let mut inner = self.inner.lock();
        let chunks = inner.split_full_chunks(capacity);
        if !chunks.is_empty() {
            inner.last_activity = Instant::now();
        }
        chunks
    }

    /// Drains everything buffered (force flush / timeout flush).
    pub fn drain(&self) -> Vec<Triple> {
        let mut inner = self.inner.lock();
        inner.last_activity = Instant::now();
        std::mem::take(&mut inner.queue)
    }

    /// Drains only if the buffer is non-empty *and* stale for `timeout`.
    pub fn drain_if_stale(&self, timeout: Duration) -> Option<Vec<Triple>> {
        let mut inner = self.inner.lock();
        if inner.queue.is_empty() || inner.last_activity.elapsed() < timeout {
            return None;
        }
        inner.last_activity = Instant::now();
        Some(std::mem::take(&mut inner.queue))
    }

    /// Number of buffered triples.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Buffer")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::NodeId;

    fn t(v: u64) -> Triple {
        Triple::new(NodeId(v), NodeId(0), NodeId(v))
    }

    #[test]
    fn fills_and_chunks() {
        let b = Buffer::new(3);
        assert!(b.push_batch(&[t(1), t(2)]).is_empty());
        assert_eq!(b.len(), 2);
        let chunks = b.push_batch(&[t(3), t(4)]);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0], vec![t(1), t(2), t(3)]);
        assert_eq!(b.len(), 1); // t(4) remains
    }

    #[test]
    fn large_batch_multiple_chunks() {
        let b = Buffer::new(2);
        let batch: Vec<Triple> = (0..7).map(t).collect();
        let chunks = b.push_batch(&batch);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() == 2));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn capacity_one_fires_immediately() {
        let b = Buffer::new(1);
        let chunks = b.push_batch(&[t(1), t(2)]);
        assert_eq!(chunks.len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn drain_takes_everything() {
        let b = Buffer::new(10);
        b.push_batch(&[t(1), t(2)]);
        assert_eq!(b.drain(), vec![t(1), t(2)]);
        assert!(b.is_empty());
        assert!(b.drain().is_empty());
    }

    #[test]
    fn stale_drain_respects_activity() {
        let b = Buffer::new(10);
        b.push_batch(&[t(1)]);
        // Not stale yet.
        assert!(b.drain_if_stale(Duration::from_secs(60)).is_none());
        // Stale with zero timeout.
        assert_eq!(b.drain_if_stale(Duration::ZERO), Some(vec![t(1)]));
        // Empty buffer never drains.
        assert!(b.drain_if_stale(Duration::ZERO).is_none());
    }

    #[test]
    fn empty_push_is_noop() {
        let b = Buffer::new(1);
        assert!(b.push_batch(&[]).is_empty());
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Buffer::new(0);
    }

    #[test]
    fn explicit_capacity_overrides_default() {
        let b = Buffer::new(100);
        let chunks = b.push_batch_with(&[t(1), t(2), t(3)], 2);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(b.len(), 1);
        // Zero is clamped to 1 rather than panicking (adaptive path).
        let chunks = b.push_batch_with(&[t(4)], 0);
        assert_eq!(chunks.len(), 2); // drains t(3) then t(4)
    }

    #[test]
    fn take_full_chunks_fires_eligible_without_pushing() {
        let b = Buffer::new(100);
        b.push_batch(&[t(1), t(2), t(3), t(4), t(5)]);
        // Nothing eligible at a threshold above the queue length.
        assert!(b.take_full_chunks(6).is_empty());
        assert_eq!(b.len(), 5);
        // Lowering the threshold fires the complete chunks, keeps the rest.
        let chunks = b.take_full_chunks(2);
        assert_eq!(chunks, vec![vec![t(1), t(2)], vec![t(3), t(4)]]);
        assert_eq!(b.drain(), vec![t(5)]);
        // Empty buffer yields nothing (and zero is clamped, not a panic).
        assert!(b.take_full_chunks(0).is_empty());
    }

    #[test]
    fn preserves_fifo_order() {
        let b = Buffer::new(4);
        b.push_batch(&[t(1), t(2)]);
        let chunks = b.push_batch(&[t(3), t(4), t(5)]);
        assert_eq!(chunks[0], vec![t(1), t(2), t(3), t(4)]);
        assert_eq!(b.drain(), vec![t(5)]);
    }
}
