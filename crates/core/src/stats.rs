//! Per-module counters — the numbers the paper's demo GUI displays (§4):
//! buffer-full fires, timeout fires, and triples inferred per rule.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters for one rule module.
#[derive(Debug, Default)]
pub(crate) struct RuleCounters {
    /// Rule instances executed.
    pub fired: AtomicU64,
    /// Instances triggered by a full buffer.
    pub full_flushes: AtomicU64,
    /// Instances triggered by a buffer timeout.
    pub timeout_flushes: AtomicU64,
    /// Triples routed into this rule's buffer.
    pub buffered: AtomicU64,
    /// Conclusions derived (including duplicates).
    pub derived: AtomicU64,
    /// Conclusions that were new to the store (dispatched onward).
    pub fresh: AtomicU64,
}

impl RuleCounters {
    /// A fresh set of counters initialised to this set's current values —
    /// used by ruleset hot-swap to carry a kept rule's history into the
    /// new [`RulesetState`](crate::session) generation.
    pub fn carry(&self) -> RuleCounters {
        RuleCounters {
            fired: AtomicU64::new(self.fired.load(Ordering::Relaxed)),
            full_flushes: AtomicU64::new(self.full_flushes.load(Ordering::Relaxed)),
            timeout_flushes: AtomicU64::new(self.timeout_flushes.load(Ordering::Relaxed)),
            buffered: AtomicU64::new(self.buffered.load(Ordering::Relaxed)),
            derived: AtomicU64::new(self.derived.load(Ordering::Relaxed)),
            fresh: AtomicU64::new(self.fresh.load(Ordering::Relaxed)),
        }
    }
}

/// Global counters.
#[derive(Debug, Default)]
pub(crate) struct GlobalCounters {
    /// Triples offered to the input manager.
    pub input_received: AtomicU64,
    /// Input triples that were new to the store.
    pub input_fresh: AtomicU64,
    /// Maintenance (DRed) runs that retracted at least one triple.
    pub removal_runs: AtomicU64,
    /// Explicit triples retracted by `remove_*` calls.
    pub retracted: AtomicU64,
    /// Derived triples deleted during DRed overdeletion (beyond the
    /// retracted assertions themselves).
    pub overdeleted: AtomicU64,
    /// Overdeleted triples restored by the rederivation phase (they had an
    /// alternative derivation from surviving facts).
    pub rederived: AtomicU64,
    /// Distinct retractions enqueued by `remove_deferred` (whether or not
    /// they have been flushed yet).
    pub deferred: AtomicU64,
    /// Pending retractions cancelled because the triple was re-asserted
    /// while its retraction was still pending.
    pub cancelled: AtomicU64,
    /// Coalesced maintenance runs: flushes of the deferred queue that
    /// drained at least one pending retraction (single-pass or
    /// partitioned).
    pub coalesced_runs: AtomicU64,
    /// Coalesced runs that split into ≥ 2 parallel partition passes.
    pub partitioned_runs: AtomicU64,
    /// Maintenance runs (coalesced or eager) in which at least one
    /// partition's pass was further carved into subject-hash sub-buckets.
    pub subpartitioned_runs: AtomicU64,
    /// Eager removal passes that dispatched ≥ 2 concurrent DRed units
    /// (independent eager callers combined under one quiescent section).
    pub parallel_eager_runs: AtomicU64,
    /// Cumulative store-population weight of the DRed units run on the
    /// coordinator thread — the deletion path's critical-path metric.
    pub coordinator_work: AtomicU64,
    /// Live ruleset replacements completed by `swap_ruleset`.
    pub ruleset_swaps: AtomicU64,
    /// Deadline-triggered flushes cut short by the runtime's per-tick
    /// maintenance budget (the remainder stayed pending for later ticks).
    pub budget_deferrals: AtomicU64,
}

#[inline]
pub(crate) fn bump(counter: &AtomicU64, by: u64) {
    counter.fetch_add(by, Ordering::Relaxed);
}

/// A point-in-time copy of one rule module's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleStats {
    /// Rule name (paper naming, e.g. `"CAX-SCO"`).
    pub name: &'static str,
    /// Rule instances executed.
    pub fired: u64,
    /// Instances triggered by a full buffer.
    pub full_flushes: u64,
    /// Instances triggered by a buffer timeout.
    pub timeout_flushes: u64,
    /// Triples routed into this rule's buffer.
    pub buffered: u64,
    /// Conclusions derived (including duplicates).
    pub derived: u64,
    /// Conclusions new to the store.
    pub fresh: u64,
    /// The module's current fire threshold (differs from the configured
    /// capacity only under adaptive scheduling).
    pub buffer_capacity: usize,
}

impl RuleStats {
    /// Duplicates dropped by this rule's distributor.
    pub fn duplicates(&self) -> u64 {
        self.derived - self.fresh
    }
}

/// A point-in-time copy of all reasoner counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Per-rule counters, in ruleset order.
    pub rules: Vec<RuleStats>,
    /// Triples offered to the input manager.
    pub input_received: u64,
    /// Input triples that were new to the store.
    pub input_fresh: u64,
    /// Store size at snapshot time.
    pub store_size: usize,
    /// Store composition at snapshot time, including the explicit/derived
    /// provenance split (`store.triples == store_size`).
    pub store: slider_store::StoreStats,
    /// Maintenance (DRed) runs that retracted at least one triple.
    pub removal_runs: u64,
    /// Explicit triples retracted by `remove_*` calls.
    pub retracted: u64,
    /// Derived triples deleted during DRed overdeletion (beyond the
    /// retracted assertions themselves).
    pub overdeleted: u64,
    /// Overdeleted triples restored by rederivation.
    pub rederived: u64,
    /// Distinct retractions ever enqueued by `remove_deferred`.
    pub deferred: u64,
    /// Pending retractions cancelled by re-assertion: the triple was
    /// `add_*`ed again while its deferred retraction was still pending, so
    /// the retraction was dropped instead of applied at the next flush.
    pub cancelled_removals: u64,
    /// Deferred retractions still pending (enqueued, not yet flushed).
    pub pending_removals: usize,
    /// Coalesced maintenance runs (non-empty `flush_maintenance` passes,
    /// whether explicit, threshold- or deadline-triggered). Each coalesced
    /// run also counts towards [`StatsSnapshot::removal_runs`] when it
    /// retracted at least one explicit triple.
    pub coalesced_runs: u64,
    /// Coalesced runs that split into ≥ 2 independent partition passes
    /// executed in parallel on the worker pool (see
    /// [`SliderConfig::maintenance_partitioning`](crate::SliderConfig::maintenance_partitioning)).
    pub partitioned_runs: u64,
    /// Maintenance runs (coalesced or eager) in which at least one
    /// partition's DRed pass was further carved into subject-hash
    /// sub-buckets maintained in parallel (see
    /// [`SliderConfig::deletion_subsplit`](crate::SliderConfig::deletion_subsplit)).
    pub subpartitioned_runs: u64,
    /// Eager removal passes that dispatched ≥ 2 concurrent DRed units:
    /// independent `remove_triples` callers whose closures proved
    /// disjoint were combined by one leader and maintained in parallel
    /// under a single quiescent section.
    pub parallel_eager_runs: u64,
    /// Cumulative store-population weight of the DRed units run on the
    /// coordinator thread (an unsplit pass weighs the whole store it
    /// walks; a partition or sub-bucket unit weighs its carve). The
    /// deletion path's critical-path metric: sub-splitting shrinks it
    /// even on one core, and on multi-core it tracks flush wall-clock.
    pub coordinator_work: u64,
    /// Age of the oldest pending retraction at snapshot time — the
    /// **staleness bound**: every query answered now reflects a closure at
    /// most this much older than the retraction stream. `None` when
    /// nothing is pending. Also available without a full snapshot as
    /// [`Slider::pending_staleness`](crate::Slider::pending_staleness).
    pub oldest_pending_age: Option<std::time::Duration>,
    /// Times the store's maintenance gate was taken in write mode — every
    /// DRed run / quiescent-store section is one acquisition. Normal
    /// reads and writes only ever hold the gate in read mode (see
    /// [`ShardedStore`](slider_store::ShardedStore)).
    pub gate_write_acquisitions: u64,
    /// Times a shard write lock was contended: a distributor or input
    /// write found its predicate shard held by another writer or a
    /// snapshot. High values relative to write volume mean hot predicate
    /// families are colliding — more shards or predicate renumbering would
    /// help; zero under multi-worker load means the sharding is doing its
    /// job.
    pub shard_write_conflicts: u64,
    /// Generation of the published epoch snapshot at snapshot time. Bumps
    /// once per shard-write release or exclusive-section publication; a
    /// reader holding an [`EpochSnapshot`](slider_store::EpochSnapshot)
    /// with a lower generation sees an older — but internally consistent —
    /// cut of the store.
    pub snapshot_generation: u64,
    /// Live ruleset replacements completed by
    /// [`Slider::swap_ruleset`](crate::Slider::swap_ruleset).
    pub ruleset_swaps: u64,
    /// Deadline-triggered maintenance flushes of **this session** cut
    /// short by the shared runtime's per-tick latency budget
    /// ([`RuntimeConfig::maintenance_budget`](crate::RuntimeConfig::maintenance_budget)):
    /// the flush applied at least one slice (the starvation-governor
    /// reserve slot) and left the remainder pending for later ticks. Zero
    /// whenever no budget is configured — a budget-free flush always runs
    /// to completion.
    pub budget_deferrals: u64,
    /// Sessions attached to this reasoner's runtime at snapshot time
    /// (1 for a standalone [`Slider`](crate::Slider); the co-tenant count
    /// under [`Runtime::session`](crate::Runtime::session)).
    pub runtime_sessions: usize,
    /// Live terms in the shared dictionary at snapshot time (vocabulary
    /// included, tombstoned slots excluded).
    pub dict_terms: usize,
    /// Tombstoned dictionary slots: ids retired by a sweep and waiting on
    /// the free-list for reuse by a future intern.
    pub dict_tombstones: usize,
    /// Estimated resident bytes of the dictionary: term string heap plus
    /// per-term index/slot overhead. Each term's payload is counted once —
    /// the id→term slot and the term→id index key share one allocation.
    pub dict_bytes_estimate: usize,
    /// Times an interning write found its dictionary shard's write lock
    /// contended. High values relative to intern volume mean concurrent
    /// loaders are colliding on shards — more
    /// [`DictConfig::shards`](slider_model::DictConfig::shards) would help.
    pub dict_shard_conflicts: u64,
    /// Dictionary compaction sweeps completed (automatic post-retraction
    /// sweeps and explicit
    /// [`Slider::sweep_dictionary`](crate::Slider::sweep_dictionary) calls).
    pub dict_sweeps: u64,
}

impl StatsSnapshot {
    /// Total triples inferred (fresh conclusions across all rules).
    pub fn total_inferred(&self) -> u64 {
        self.rules.iter().map(|r| r.fresh).sum()
    }

    /// Total conclusions derived, including duplicates.
    pub fn total_derived(&self) -> u64 {
        self.rules.iter().map(|r| r.derived).sum()
    }

    /// Total rule instances executed.
    pub fn total_fired(&self) -> u64 {
        self.rules.iter().map(|r| r.fired).sum()
    }

    /// Fraction of derivations that were duplicates.
    pub fn duplicate_ratio(&self) -> f64 {
        let derived = self.total_derived();
        if derived == 0 {
            0.0
        } else {
            1.0 - self.total_inferred() as f64 / derived as f64
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "input: {} received, {} fresh; store: {} triples ({} explicit, {} derived)",
            self.input_received,
            self.input_fresh,
            self.store_size,
            self.store.explicit,
            self.store.derived
        )?;
        if self.removal_runs > 0 {
            writeln!(
                f,
                "removals: {} runs, {} retracted, {} overdeleted, {} rederived",
                self.removal_runs, self.retracted, self.overdeleted, self.rederived
            )?;
        }
        if self.deferred > 0 {
            write!(
                f,
                "deferred: {} enqueued, {} pending, {} coalesced runs, {} partitioned, \
                 {} cancelled",
                self.deferred,
                self.pending_removals,
                self.coalesced_runs,
                self.partitioned_runs,
                self.cancelled_removals
            )?;
            if let Some(age) = self.oldest_pending_age {
                write!(f, ", oldest pending {:.1} ms", age.as_secs_f64() * 1e3)?;
            }
            writeln!(f)?;
        }
        if self.subpartitioned_runs > 0 || self.parallel_eager_runs > 0 {
            writeln!(
                f,
                "subsplit: {} subpartitioned runs, {} parallel eager runs, \
                 {} coordinator work",
                self.subpartitioned_runs, self.parallel_eager_runs, self.coordinator_work
            )?;
        }
        writeln!(
            f,
            "locking: {} gate write acquisitions, {} shard write conflicts",
            self.gate_write_acquisitions, self.shard_write_conflicts
        )?;
        writeln!(
            f,
            "epochs: generation {}, {} ruleset swaps",
            self.snapshot_generation, self.ruleset_swaps
        )?;
        writeln!(
            f,
            "runtime: {} sessions, {} budget deferrals",
            self.runtime_sessions, self.budget_deferrals
        )?;
        writeln!(
            f,
            "dict: {} terms, {} tombstones, {} bytes, {} shard conflicts, {} sweeps",
            self.dict_terms,
            self.dict_tombstones,
            self.dict_bytes_estimate,
            self.dict_shard_conflicts,
            self.dict_sweeps
        )?;
        writeln!(
            f,
            "{:<10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10}",
            "rule", "fired", "full", "timeout", "buffered", "derived", "fresh"
        )?;
        for r in &self.rules {
            writeln!(
                f,
                "{:<10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10}",
                r.name, r.fired, r.full_flushes, r.timeout_flushes, r.buffered, r.derived, r.fresh
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(name: &'static str, derived: u64, fresh: u64) -> RuleStats {
        RuleStats {
            name,
            fired: 1,
            full_flushes: 1,
            timeout_flushes: 0,
            buffered: 10,
            derived,
            fresh,
            buffer_capacity: 1024,
        }
    }

    fn snap(rules: Vec<RuleStats>, input_received: u64, input_fresh: u64) -> StatsSnapshot {
        StatsSnapshot {
            rules,
            input_received,
            input_fresh,
            store_size: 0,
            store: slider_store::StoreStats::default(),
            removal_runs: 0,
            retracted: 0,
            overdeleted: 0,
            rederived: 0,
            deferred: 0,
            cancelled_removals: 0,
            pending_removals: 0,
            coalesced_runs: 0,
            partitioned_runs: 0,
            subpartitioned_runs: 0,
            parallel_eager_runs: 0,
            coordinator_work: 0,
            oldest_pending_age: None,
            gate_write_acquisitions: 0,
            shard_write_conflicts: 0,
            snapshot_generation: 0,
            ruleset_swaps: 0,
            budget_deferrals: 0,
            runtime_sessions: 1,
            dict_terms: 0,
            dict_tombstones: 0,
            dict_bytes_estimate: 0,
            dict_shard_conflicts: 0,
            dict_sweeps: 0,
        }
    }

    #[test]
    fn aggregation() {
        let snap = snap(vec![rs("A", 10, 4), rs("B", 6, 6)], 100, 90);
        assert_eq!(snap.total_inferred(), 10);
        assert_eq!(snap.total_derived(), 16);
        assert_eq!(snap.total_fired(), 2);
        assert!((snap.duplicate_ratio() - 0.375).abs() < 1e-9);
        assert_eq!(snap.rules[0].duplicates(), 6);
    }

    #[test]
    fn display_renders_table() {
        let snap = snap(vec![rs("CAX-SCO", 5, 5)], 1, 1);
        let text = snap.to_string();
        assert!(text.contains("CAX-SCO"));
        assert!(text.contains("fresh"));
        // Removal line only appears once a removal ran.
        assert!(!text.contains("removals:"));
        let mut with_removals = snap.clone();
        with_removals.removal_runs = 1;
        with_removals.retracted = 2;
        with_removals.overdeleted = 3;
        with_removals.rederived = 1;
        let text = with_removals.to_string();
        assert!(text.contains("removals: 1 runs, 2 retracted, 3 overdeleted, 1 rederived"));
        // Deferred line only appears once something was deferred.
        assert!(!text.contains("deferred:"));
        with_removals.deferred = 5;
        with_removals.pending_removals = 2;
        with_removals.coalesced_runs = 1;
        with_removals.partitioned_runs = 1;
        with_removals.cancelled_removals = 3;
        let text = with_removals.to_string();
        assert!(text.contains(
            "deferred: 5 enqueued, 2 pending, 1 coalesced runs, 1 partitioned, 3 cancelled"
        ));
        // The sub-split line only appears once a run actually sub-split
        // (or combined eager callers).
        assert!(!text.contains("subsplit:"));
        with_removals.subpartitioned_runs = 2;
        with_removals.parallel_eager_runs = 1;
        with_removals.coordinator_work = 40;
        assert!(with_removals.to_string().contains(
            "subsplit: 2 subpartitioned runs, 1 parallel eager runs, 40 coordinator work"
        ));
        // The staleness bound only renders while something is pending.
        assert!(!text.contains("oldest pending"));
        with_removals.oldest_pending_age = Some(std::time::Duration::from_millis(4));
        assert!(with_removals.to_string().contains("oldest pending 4.0 ms"));
        // The lock-contention line always renders.
        with_removals.gate_write_acquisitions = 6;
        with_removals.shard_write_conflicts = 2;
        assert!(with_removals
            .to_string()
            .contains("locking: 6 gate write acquisitions, 2 shard write conflicts"));
        // So does the epoch line.
        with_removals.snapshot_generation = 9;
        with_removals.ruleset_swaps = 1;
        assert!(with_removals
            .to_string()
            .contains("epochs: generation 9, 1 ruleset swaps"));
        // And the shared-runtime line.
        with_removals.runtime_sessions = 3;
        with_removals.budget_deferrals = 7;
        assert!(with_removals
            .to_string()
            .contains("runtime: 3 sessions, 7 budget deferrals"));
        // And the dictionary footprint line.
        with_removals.dict_terms = 120;
        with_removals.dict_tombstones = 8;
        with_removals.dict_bytes_estimate = 4096;
        with_removals.dict_shard_conflicts = 2;
        with_removals.dict_sweeps = 1;
        assert!(with_removals
            .to_string()
            .contains("dict: 120 terms, 8 tombstones, 4096 bytes, 2 shard conflicts, 1 sweeps"));
    }

    #[test]
    fn zero_derivations_ratio() {
        let snap = snap(vec![], 0, 0);
        assert_eq!(snap.duplicate_ratio(), 0.0);
    }
}
