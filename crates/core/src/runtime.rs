//! The shared execution runtime: one worker pool + one deadline/flusher
//! thread serving **many sessions**.
//!
//! Historically every [`Slider`] spawned its own
//! `slider-worker-{i}` threads and a private `slider-flusher` — N tenant
//! streams meant N thread pools. This module extracts the execution layer
//! into a [`Runtime`] that sessions register with:
//!
//! ```text
//!                         ┌───────────────── Runtime ─────────────────┐
//!  session A (store,      │  [fair job queue]──► worker-0             │
//!  ruleset, scheduler) ──►│       ▲      └─────► worker-1 … worker-W  │
//!  session B ────────────►│       │                                   │
//!  session C ────────────►│  [flusher: buffer timeouts + maintenance  │
//!                         │   deadlines for every session, sliced     │
//!                         │   under `maintenance_budget`]             │
//!                         └───────────────────────────────────────────┘
//! ```
//!
//! * The **job queue** is round-robin fair across sessions: each session
//!   owns a FIFO lane, and workers take one job per lane per turn, so a
//!   bursty tenant cannot starve its neighbours' rule instances.
//! * The **flusher** services every session's buffer timeout and
//!   deferred-retraction deadline from one thread, waking at half the
//!   shortest registered deadline. Registering a session with a *shorter*
//!   deadline nudges it awake immediately (no waiting out a stale tick).
//! * [`RuntimeConfig::maintenance_budget`] bounds how long one flusher
//!   tick may spend applying deferred retractions: a tenant with a huge
//!   pending DRed gets its flush **sliced**, and the slices it could not
//!   run are deferred to later ticks
//!   ([`StatsSnapshot::budget_deferrals`](crate::StatsSnapshot::budget_deferrals)).
//!   A starvation governor guarantees every stale session at least one
//!   slice per tick regardless of what the budget has left.
//!
//! [`Slider::new`](crate::Slider::new) remains a facade: it builds a
//! private single-session runtime, so existing code is unchanged. The
//! multi-tenant API is [`Runtime::new`] + [`Runtime::session`].

use crate::session::{Engine, Slider};
use crate::SliderConfig;
use slider_model::{FxHashMap, Triple};
use slider_rules::{Fragment, Ruleset};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many pending retractions one budget slice drains: small enough that
/// the between-slice deadline check keeps a budgeted flush near its bound,
/// large enough that the per-slice overhead (quiescence wait, gate
/// acquisition) amortises.
pub(crate) const MAINTENANCE_SLICE: usize = 128;

/// Configuration of a shared [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads in the shared pool, serving **all** sessions.
    /// Default: available parallelism.
    pub workers: usize,
    /// Per-tick latency budget for deadline-triggered maintenance: one
    /// flusher tick spends at most this long applying deferred retractions
    /// across all sessions, slicing an oversized flush and deferring the
    /// remainder to later ticks. Every stale session is still guaranteed
    /// one slice per tick (the starvation floor). `None` (the default)
    /// disables slicing: a deadline flush runs to completion, as a
    /// single-tenant `Slider` always has.
    pub maintenance_budget: Option<Duration>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            maintenance_budget: None,
        }
    }
}

impl RuntimeConfig {
    /// Builder-style worker count (min 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style maintenance latency budget.
    pub fn with_maintenance_budget(mut self, budget: Option<Duration>) -> Self {
        self.maintenance_budget = budget;
        self
    }
}

/// A unit of pool work. Each job carries its session's engine, so worker
/// panics and inflight tokens stay session-contained: a poisoned rule in
/// one tenant releases that tenant's token and nothing else.
pub(crate) enum Job {
    /// One rule instance over one buffered batch.
    Run {
        engine: Arc<Engine>,
        rule: usize,
        delta: Vec<Triple>,
    },
    /// A self-contained DRed pass over a split-off store shard (see
    /// `Engine::run_partitions`); the closure owns the shard and reports
    /// it back on a per-flush channel.
    Partition(Box<dyn FnOnce() + Send>),
}

/// Per-session FIFO lanes with round-robin service order.
struct QueueState {
    /// One lane per session with queued work. Invariant: a session id is
    /// in `rotation` exactly once iff its lane here is non-empty.
    lanes: FxHashMap<u64, VecDeque<Job>>,
    /// Service order: workers take one job from the front lane, then move
    /// it to the back (if it still has work) — one job per session per
    /// turn.
    rotation: VecDeque<u64>,
    /// Set at teardown: pushes are refused, pops drain what is left.
    closed: bool,
}

/// The session-fair job queue the worker pool consumes.
///
/// Built on `std::sync` (not the vendored `parking_lot` shim) because the
/// workers need a real `Condvar` park/unpark.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                lanes: FxHashMap::default(),
                rotation: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `job` on `session`'s lane. Fails (returning the job) only
    /// after [`JobQueue::close`] — i.e. during runtime teardown.
    pub(crate) fn push(&self, session: u64, job: Job) -> Result<(), Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(job);
        }
        let lane = state.lanes.entry(session).or_default();
        let was_empty = lane.is_empty();
        lane.push_back(job);
        if was_empty {
            state.rotation.push_back(session);
        }
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Takes the next job in round-robin order, blocking while the queue
    /// is empty. Returns `None` once the queue is closed **and** drained —
    /// queued jobs always run before the workers exit.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(&session) = state.rotation.front() {
                state.rotation.pop_front();
                let lane = state
                    .lanes
                    .get_mut(&session)
                    .expect("rotation entries have lanes");
                let job = lane.pop_front().expect("rotation lanes are non-empty");
                if lane.is_empty() {
                    state.lanes.remove(&session);
                } else {
                    state.rotation.push_back(session);
                }
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Refuses further pushes and wakes every worker; queued jobs drain
    /// first, then `pop` returns `None`.
    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.available.notify_all();
    }
}

/// Wakes the flusher out of its tick sleep: on session register/detach
/// (the deadline set changed — satellite of the shorter-deadline bug) and
/// on shutdown. A generation counter under the same mutex rules out lost
/// wakeups: a nudge during servicing is seen before the next wait.
struct FlusherSignal {
    state: Mutex<SignalState>,
    wake: Condvar,
}

struct SignalState {
    generation: u64,
    shutdown: bool,
}

impl FlusherSignal {
    fn new() -> Self {
        FlusherSignal {
            state: Mutex::new(SignalState {
                generation: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
        }
    }

    fn nudge(&self) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .generation += 1;
        self.wake.notify_all();
    }

    fn shutdown(&self) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.wake.notify_all();
    }

    /// Sleeps until `tick` elapses (if `Some`), a nudge arrives, or
    /// shutdown; `seen` tracks the last observed nudge generation so a
    /// nudge sent while the flusher was servicing is never lost. Returns
    /// `true` on shutdown.
    fn wait(&self, tick: Option<Duration>, seen: &mut u64) -> bool {
        let deadline = tick.map(|t| Instant::now() + t);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.shutdown {
                return true;
            }
            if state.generation != *seen {
                *seen = state.generation;
                return false;
            }
            match deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    state = self
                        .wake
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
                None => {
                    state = self.wake.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

/// The session registry plus the flusher's service cursor.
struct Registry {
    /// Registered sessions, in registration order. Weak: the registry must
    /// not keep a dropped session's engine (and its store) alive.
    sessions: Vec<(u64, Weak<Engine>)>,
    /// Starvation-governor cursor: each tick starts servicing at a
    /// different session, so leftover-budget position rotates and no
    /// session is systematically last.
    cursor: usize,
    next_id: u64,
}

/// State shared between the runtime handle and the flusher thread. The
/// flusher holds only this (never the core), so the core's `Drop` — which
/// joins the flusher — can never run on the flusher thread.
pub(crate) struct RuntimeShared {
    registry: Mutex<Registry>,
    signal: FlusherSignal,
    budget: Option<Duration>,
}

impl RuntimeShared {
    /// Wakes the flusher out of its tick sleep. Producers call this (via
    /// `Engine::unpark`) after making new work visible to a session the
    /// flusher had parked as idle — with every session parked the flusher
    /// sleeps indefinitely, and this is what ends that sleep.
    pub(crate) fn nudge(&self) {
        self.signal.nudge();
    }

    /// Live engines in service order for this tick: registration order
    /// rotated by the governor cursor (which advances once per call).
    /// Dead weak entries are pruned in passing.
    fn live_rotated(&self) -> Vec<Arc<Engine>> {
        let mut registry = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        registry
            .sessions
            .retain(|(_, weak)| weak.strong_count() > 0);
        let live: Vec<Arc<Engine>> = registry
            .sessions
            .iter()
            .filter_map(|(_, weak)| weak.upgrade())
            .collect();
        if live.is_empty() {
            return live;
        }
        let start = registry.cursor % live.len();
        registry.cursor = registry.cursor.wrapping_add(1);
        let mut rotated = Vec::with_capacity(live.len());
        rotated.extend_from_slice(&live[start..]);
        rotated.extend_from_slice(&live[..start]);
        rotated
    }
}

/// The runtime's owning core: pool, queue, flusher. Dropped when the last
/// [`Runtime`] clone **and** the last attached session are gone — workers
/// hold only the queue and the flusher only [`RuntimeShared`], so the
/// joins below always run on a user thread.
pub(crate) struct RuntimeCore {
    pub(crate) queue: Arc<JobQueue>,
    shared: Arc<RuntimeShared>,
    worker_count: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Spawned lazily, on the first registration of a session with a
    /// buffer timeout or a maintenance deadline — a runtime serving only
    /// batch-mode sessions runs no flusher at all.
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl RuntimeCore {
    fn new(config: &RuntimeConfig) -> Arc<RuntimeCore> {
        let queue = Arc::new(JobQueue::new());
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("slider-worker-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn worker thread")
            })
            .collect();
        Arc::new(RuntimeCore {
            queue,
            shared: Arc::new(RuntimeShared {
                registry: Mutex::new(Registry {
                    sessions: Vec::new(),
                    cursor: 0,
                    next_id: 0,
                }),
                signal: FlusherSignal::new(),
                budget: config.maintenance_budget,
            }),
            worker_count: config.workers.max(1),
            workers: Mutex::new(workers),
            flusher: Mutex::new(None),
        })
    }

    pub(crate) fn allocate_id(&self) -> u64 {
        let mut registry = self
            .shared
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        registry.next_id += 1;
        registry.next_id
    }

    /// Registers a session with the flusher's deadline service. The nudge
    /// makes a shorter deadline effective immediately: the flusher
    /// recomputes its tick on wake instead of sleeping out the old one.
    pub(crate) fn register(&self, id: u64, engine: &Arc<Engine>) {
        let needs_flusher = engine.deadline_base().is_some();
        {
            let mut registry = self
                .shared
                .registry
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            registry.sessions.push((id, Arc::downgrade(engine)));
        }
        if needs_flusher {
            self.ensure_flusher();
        }
        self.shared.signal.nudge();
    }

    /// Detaches a session from the deadline service; its queued jobs still
    /// drain on the pool. Only the drop of the **last** core reference
    /// (runtime handles + session handles) joins any threads.
    pub(crate) fn detach(&self, id: u64) {
        {
            let mut registry = self
                .shared
                .registry
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            registry.sessions.retain(|(sid, _)| *sid != id);
        }
        self.shared.signal.nudge();
    }

    pub(crate) fn session_count(&self) -> usize {
        let mut registry = self
            .shared
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        registry
            .sessions
            .retain(|(_, weak)| weak.strong_count() > 0);
        registry.sessions.len()
    }

    pub(crate) fn thread_count(&self) -> usize {
        let flusher = self
            .flusher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some();
        self.worker_count + usize::from(flusher)
    }

    /// The state shared with the flusher thread — sessions hold a clone
    /// so their producers can nudge the flusher awake after unparking.
    pub(crate) fn shared(&self) -> &Arc<RuntimeShared> {
        &self.shared
    }

    fn ensure_flusher(&self) {
        let mut flusher = self.flusher.lock().unwrap_or_else(|e| e.into_inner());
        if flusher.is_none() {
            let shared = Arc::clone(&self.shared);
            *flusher = Some(
                std::thread::Builder::new()
                    .name("slider-flusher".to_owned())
                    .spawn(move || flusher_loop(&shared))
                    .expect("spawn flusher thread"),
            );
        }
    }
}

impl Drop for RuntimeCore {
    fn drop(&mut self) {
        // Stop the flusher first: a deadline-triggered flush may be
        // waiting for quiescence, which only the still-running workers can
        // provide — closing the queue first could strand it forever.
        self.shared.signal.shutdown();
        if let Some(handle) = self
            .flusher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = handle.join();
        }
        // Queued jobs drain, then the workers exit.
        self.queue.close();
        for handle in self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

fn worker_loop(queue: &JobQueue) {
    while let Some(job) = queue.pop() {
        match job {
            Job::Run {
                engine,
                rule,
                delta,
            } => {
                // A panicking rule instance (e.g. a custom rule violating
                // its declared read set) must not wedge its session — the
                // inflight token is released either way, or every
                // wait_idle/flush/Drop on that session would hang — and
                // must not touch any *other* session: the job carries its
                // own engine, so the token and the error stay
                // session-contained, and the worker survives to run the
                // remaining jobs. The panic itself already printed via the
                // default hook; add which rule died.
                let instance = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    engine.run_job(rule, delta);
                }));
                if instance.is_err() {
                    // Resolve the name *before* releasing the token: the
                    // token still pins the submission-time state, so the
                    // index is in bounds; after dec() a swap could install
                    // a smaller ruleset.
                    let state = engine.rstate();
                    eprintln!(
                        "slider: rule instance for {:?} panicked; its conclusions are lost",
                        state.modules[rule].rule.name()
                    );
                }
                engine.inflight.dec();
            }
            // Partition passes carry no inflight token: they only exist
            // while their flush coordinator holds its store exclusively,
            // and it collects every pass before releasing it.
            Job::Partition(task) => task(),
        }
    }
}

/// One flusher serves every session: each tick drains stale buffers and
/// runs deadline-due maintenance for all of them, then sleeps until half
/// the shortest registered deadline (clamped to [1, 10] ms) — or
/// indefinitely when no live session has one — or until nudged by a
/// register/detach.
fn flusher_loop(shared: &RuntimeShared) {
    let mut seen_generation = 0u64;
    loop {
        // Idle-lane parking: a session with every buffer empty and no
        // pending maintenance releases its lane in this rotation — it is
        // skipped and contributes no tick deadline until a producer makes
        // new work visible and nudges the flusher (`Engine::try_park`
        // documents the handshake that makes the skip race-free). With
        // every session parked the tick below is `None` and the flusher
        // sleeps until nudged, instead of spinning its shortest deadline.
        let engines: Vec<Arc<Engine>> = shared
            .live_rotated()
            .into_iter()
            .filter(|engine| !engine.try_park())
            .collect();
        for engine in &engines {
            engine.drain_stale_buffers();
        }
        // One budget deadline for the whole tick: sessions share it in
        // cursor-rotated order, and `flush_maintenance_budgeted` always
        // runs at least one slice even with the budget exhausted — the
        // starvation floor.
        let budget_deadline = shared.budget.map(|b| Instant::now() + b);
        for engine in &engines {
            if engine.scheduler.is_stale() {
                engine.flush_maintenance_budgeted(budget_deadline);
            }
        }
        let tick = engines
            .iter()
            .filter_map(|e| e.deadline_base())
            .min()
            .map(|base| (base / 2).clamp(Duration::from_millis(1), Duration::from_millis(10)));
        if shared.signal.wait(tick, &mut seen_generation) {
            return;
        }
    }
}

/// A shared execution runtime hosting many reasoner sessions on one worker
/// pool and one flusher thread.
///
/// Cloning is cheap (a handle); the underlying pool lives until the last
/// handle **and** the last attached session are gone. See the
/// [module docs](crate::runtime) for the architecture and
/// [`Runtime::session`] for attaching tenants.
///
/// ```
/// use slider_core::{Runtime, RuntimeConfig, SliderConfig};
/// use slider_rules::Ruleset;
/// use slider_model::Dictionary;
/// use std::sync::Arc;
///
/// let runtime = Runtime::new(RuntimeConfig::default().with_workers(2));
/// let a = runtime.session(Arc::new(Dictionary::new()), Ruleset::rho_df(),
///                         SliderConfig::default());
/// let b = runtime.session(Arc::new(Dictionary::new()), Ruleset::rho_df(),
///                         SliderConfig::default());
/// // Two sessions, one pool: workers + flusher, not 2 × (workers + 1).
/// assert_eq!(runtime.session_count(), 2);
/// assert_eq!(runtime.thread_count(), 3);
/// drop((a, b));
/// ```
#[derive(Clone)]
pub struct Runtime {
    core: Arc<RuntimeCore>,
}

impl Runtime {
    /// Builds a runtime: spawns `config.workers` pool threads now; the
    /// flusher starts with the first session that needs deadline service.
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime {
            core: RuntimeCore::new(&config),
        }
    }

    /// Attaches a new session — an independent store, ruleset, scheduler
    /// and stats block — executing on this runtime's shared pool. The
    /// returned [`Slider`] has the exact same API as a standalone one.
    /// [`SliderConfig::workers`] is ignored: the pool is shared and its
    /// size fixed at [`RuntimeConfig::workers`].
    ///
    /// Dropping the returned session detaches it without disturbing its
    /// co-tenants; the pool joins only when the last session and the last
    /// `Runtime` handle are gone.
    pub fn session(
        &self,
        dict: Arc<slider_model::Dictionary>,
        ruleset: Ruleset,
        config: SliderConfig,
    ) -> Slider {
        Slider::attach(Arc::clone(&self.core), dict, ruleset, config)
    }

    /// [`Runtime::session`] for a native fragment with a fresh dictionary.
    pub fn session_fragment(&self, fragment: Fragment, config: SliderConfig) -> Slider {
        let dict = Arc::new(slider_model::Dictionary::new());
        let ruleset = Ruleset::fragment(fragment, &dict);
        self.session(dict, ruleset, config)
    }

    /// Sessions currently attached.
    pub fn session_count(&self) -> usize {
        self.core.session_count()
    }

    /// Threads this runtime owns: the worker pool plus the flusher if it
    /// has started. Independent of how many sessions are attached — that
    /// is the point.
    pub fn thread_count(&self) -> usize {
        self.core.thread_count()
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.core.worker_count)
            .field("sessions", &self.core.session_count())
            .field("budget", &self.core.shared.budget)
            .finish()
    }
}

impl Slider {
    /// The runtime this session executes on — handy for attaching a
    /// sibling session to the same pool.
    pub fn runtime(&self) -> Runtime {
        Runtime {
            core: Arc::clone(self.session_handle().core()),
        }
    }
}

/// A registered session's link to its runtime (held by [`Slider`]; see
/// [`Slider::session_handle`]). Dropping it detaches the session from the
/// flusher's deadline service; the shared pool and flusher keep running
/// for the remaining sessions, and only the last reference to the runtime
/// core joins any threads.
pub struct SessionHandle {
    core: Arc<RuntimeCore>,
    id: u64,
}

impl SessionHandle {
    pub(crate) fn new(core: Arc<RuntimeCore>, id: u64) -> Self {
        SessionHandle { core, id }
    }

    /// The session's runtime-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Sessions currently attached to the same runtime (including this
    /// one).
    pub fn session_count(&self) -> usize {
        self.core.session_count()
    }

    pub(crate) fn core(&self) -> &Arc<RuntimeCore> {
        &self.core
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        self.core.detach(self.id);
    }
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("id", &self.id)
            .field("sessions", &self.core.session_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn marker(hits: &Arc<AtomicUsize>) -> Job {
        let hits = Arc::clone(hits);
        Job::Partition(Box::new(move || {
            hits.fetch_add(1, Ordering::Relaxed);
        }))
    }

    #[test]
    fn queue_round_robins_across_sessions() {
        let queue = JobQueue::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let tagged = |tag: u64| -> Job {
            let order = Arc::clone(&order);
            Job::Partition(Box::new(move || {
                order.lock().unwrap().push(tag);
            }))
        };
        // Session 1 floods three jobs before session 2 submits one.
        queue.push(1, tagged(10)).ok().unwrap();
        queue.push(1, tagged(11)).ok().unwrap();
        queue.push(1, tagged(12)).ok().unwrap();
        queue.push(2, tagged(20)).ok().unwrap();
        queue.close(); // queued jobs drain in service order
        while let Some(job) = queue.pop() {
            match job {
                Job::Partition(task) => task(),
                Job::Run { .. } => unreachable!("test enqueues only Partition jobs"),
            }
        }
        // Fair service: session 2's job runs second, not last.
        assert_eq!(*order.lock().unwrap(), vec![10, 20, 11, 12]);
    }

    #[test]
    fn closed_queue_refuses_pushes_and_drains() {
        let queue = Arc::new(JobQueue::new());
        let hits = Arc::new(AtomicUsize::new(0));
        queue.push(1, marker(&hits)).ok().unwrap();
        queue.push(2, marker(&hits)).ok().unwrap();
        queue.close();
        assert!(queue.push(1, marker(&hits)).is_err(), "closed queue");
        let worker = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || worker_loop(&queue))
        };
        worker.join().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2, "queued jobs drained");
    }

    #[test]
    fn signal_nudge_wakes_indefinite_wait() {
        let signal = Arc::new(FlusherSignal::new());
        let waiter = {
            let signal = Arc::clone(&signal);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                signal.wait(None, &mut seen) // would sleep forever un-nudged
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        signal.nudge();
        assert!(!waiter.join().unwrap(), "nudge is not shutdown");

        // A nudge sent before the wait is observed immediately (no lost
        // wakeup), and shutdown wins over everything.
        let mut seen = 0u64;
        assert!(!signal.wait(None, &mut seen));
        signal.shutdown();
        assert!(signal.wait(None, &mut seen));
        assert!(signal.wait(Some(Duration::from_secs(60)), &mut seen));
    }

    #[test]
    fn signal_timeout_elapses_without_nudge() {
        let signal = FlusherSignal::new();
        let mut seen = 0u64;
        let start = Instant::now();
        assert!(!signal.wait(Some(Duration::from_millis(5)), &mut seen));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn runtime_is_cloneable_and_debuggable() {
        let runtime = Runtime::new(RuntimeConfig::default().with_workers(1));
        let clone = runtime.clone();
        assert_eq!(clone.thread_count(), 1, "no flusher before any session");
        assert_eq!(clone.session_count(), 0);
        assert!(format!("{runtime:?}").contains("workers: 1"));
    }

    /// Idle-lane parking: a session with empty buffers and no pending
    /// maintenance leaves the flusher's rotation; new input re-enters it
    /// and timeout service still fires — nothing else can here, the
    /// buffer is far below capacity and the test never flushes
    /// explicitly, so a stuck-parked lane would fail the closure poll.
    #[test]
    fn idle_session_parks_and_new_work_unparks() {
        use slider_model::{vocab::RDFS_SUB_CLASS_OF, NodeId};
        use std::sync::atomic::Ordering;
        let runtime = Runtime::new(RuntimeConfig::default().with_workers(1));
        let slider = runtime.session_fragment(
            Fragment::RhoDf,
            SliderConfig::default()
                .with_buffer_capacity(1_000_000) // only timeout service fires
                .with_timeout(Some(Duration::from_millis(1))),
        );
        let engine = Arc::clone(slider.engine_for_tests());
        let deadline = Instant::now() + Duration::from_secs(10);
        while !engine.parked.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "idle session never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
        let sco = |a: u64, b: u64| Triple::new(NodeId(a), RDFS_SUB_CLASS_OF, NodeId(b));
        slider.add_triples(&[sco(1, 2), sco(2, 3)]);
        while !slider.store().contains(sco(1, 3)) {
            assert!(Instant::now() < deadline, "parked lane missed new work");
            std::thread::sleep(Duration::from_millis(1));
        }
        slider.wait_idle();
        while !engine.parked.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "session never re-parked");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn config_builders_clamp() {
        let config = RuntimeConfig::default()
            .with_workers(0)
            .with_maintenance_budget(Some(Duration::from_millis(3)));
        assert_eq!(config.workers, 1);
        assert_eq!(config.maintenance_budget, Some(Duration::from_millis(3)));
    }
}
