//! Truth maintenance under retraction: the DRed algorithm.
//!
//! The seed engine is monotone-additive — the paper's Slider only ever
//! *adds* triples, so expiring facts (sensor windows, revoked assertions)
//! would force a full rebuild. This module adds the standard incremental
//! answer, **delete-and-rederive** (DRed, Gupta–Mumick–Subrahmanian):
//!
//! 1. **Overdeletion** — starting from the retracted assertions, delete the
//!    *downward closure* through the rules: every derived triple with at
//!    least one derivation step using a deleted triple as a premise. The
//!    existing semi-naive [`Rule::apply`] does the premise matching: a
//!    round's deletion delta is joined against the store (delta still
//!    present, satisfying the `delta ⊆ store` contract), its conclusions
//!    become the next round's delta, and only *then* is the delta removed.
//!    Explicit triples are never overdeleted — they hold on their own
//!    authority.
//! 2. **Rederivation** — overdeletion overshoots: a deleted triple may have
//!    an alternative derivation from surviving facts. The fast path asks
//!    each rule's backward matcher ([`Rule::derives`]) whether a deleted
//!    triple is one-step derivable from the surviving store, re-inserting
//!    and re-checking until fixpoint — cost proportional to the *deleted*
//!    set, not the store. If any in-scope rule has no backward matcher
//!    (`derives` returns `None` — e.g. the RDFS-Plus extension rules), the
//!    phase falls back to a forward full pass: one semi-naive round with
//!    the surviving store as the delta, then the usual fixpoint on fresh
//!    conclusions. Both paths restore exactly the same triples.
//!
//! Both phases restrict the rules they run (unless
//! [`SliderConfig::full_rederive`](crate::SliderConfig::full_rederive) asks
//! for the conservative mode): overdeletion to the dependency graph's
//! [`reachable`](slider_rules::DependencyGraph::reachable) set of the rules
//! consuming a retracted predicate — no other rule can have consumed a
//! deleted triple — and rederivation to the rules whose
//! [`OutputSignature`] can emit a deleted predicate — no other rule can
//! rederive a deleted triple. The conservative mode always uses the
//! forward-pass rederivation.
//!
//! The result invariant, asserted by `tests/retraction.rs` against the
//! recompute-from-scratch oracle: after maintenance the store equals the
//! semi-naive closure of the surviving explicit triples.

use slider_model::{FxHashSet, NodeId, Triple};
use slider_rules::{DependencyGraph, OutputSignature, Rule};
use slider_store::{Overlay, StoreView, VerticalStore};
use std::sync::Arc;

/// Runs `f` against a read view of `store`, overlaid on `context` when a
/// maintenance pass is scoped to a carve of a larger store (the
/// intra-partition subject sub-split: the pass mutates its own bucket
/// while joining against the rest of the partition read-only).
fn with_view<R>(
    store: &VerticalStore,
    context: Option<&VerticalStore>,
    f: impl FnOnce(&StoreView) -> R,
) -> R {
    match context {
        Some(ctx) => {
            let overlay = Overlay::new(store, ctx);
            f(&overlay.view())
        }
        None => f(&store.view()),
    }
}

/// Counters of one maintenance (retraction) run.
///
/// Every *distinct* offered triple lands in exactly one of
/// [`retracted`](RemovalOutcome::retracted),
/// [`ignored_derived`](RemovalOutcome::ignored_derived) or
/// [`not_found`](RemovalOutcome::not_found); duplicate offers within one
/// call only inflate [`requested`](RemovalOutcome::requested).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemovalOutcome {
    /// Triples offered for removal (including duplicates within the call).
    pub requested: usize,
    /// Explicit triples actually retracted (present + asserted). Offering a
    /// derived or absent triple is a no-op and does not count.
    pub retracted: usize,
    /// Offered triples that were present but **derived-only**: not
    /// assertions, so there was nothing to retract — the no-op the facade
    /// documents (a derived fact would be rederived anyway). Distinct from
    /// [`not_found`](RemovalOutcome::not_found).
    pub ignored_derived: usize,
    /// Offered triples absent from the store altogether.
    pub not_found: usize,
    /// Derived triples deleted during overdeletion, beyond the retracted
    /// assertions themselves. Some may have been restored again — see
    /// [`RemovalOutcome::rederived`].
    pub overdeleted: usize,
    /// Overdeleted triples restored by rederivation (they had a derivation
    /// from surviving facts).
    pub rederived: usize,
}

impl RemovalOutcome {
    /// Net store shrinkage caused by this run.
    pub fn net_deleted(&self) -> usize {
        self.retracted + self.overdeleted - self.rederived
    }

    /// Accumulates `other` into `self` — used to combine the per-partition
    /// outcomes of one partitioned coalesced flush into the run's total.
    pub fn merge(&mut self, other: RemovalOutcome) {
        self.requested += other.requested;
        self.retracted += other.retracted;
        self.ignored_derived += other.ignored_derived;
        self.not_found += other.not_found;
        self.overdeleted += other.overdeleted;
        self.rederived += other.rederived;
    }
}

/// Runs DRed on `store`: retracts `retracted`, overdeletes the downward
/// closure, rederives survivors. The caller must hold exclusive access
/// (the reasoner passes the store behind its write lock) and guarantee the
/// store is a closed state (quiescent — no in-flight rule instances).
///
/// When `context` is `Some`, `store` is a *carve* of a larger store (a
/// subject bucket of the affected predicates) and joins read through an
/// [`Overlay`] over the untouched remainder; mutations still land only in
/// `store`. Soundness of restricting mutation to the carve is the
/// caller's obligation (the planner's subject-locality gate).
pub(crate) fn dred(
    store: &mut VerticalStore,
    context: Option<&VerticalStore>,
    rules: &[Arc<dyn Rule>],
    graph: &DependencyGraph,
    retracted: &[Triple],
    full_rederive: bool,
) -> RemovalOutcome {
    let mut outcome = RemovalOutcome {
        requested: retracted.len(),
        ..RemovalOutcome::default()
    };

    // Only triples that are present *and* explicit are genuine
    // retractions; demote them to derived so the deletion loop below may
    // take them, and seed the first deletion round. The no-ops are
    // reported distinctly: present-but-derived-only vs absent.
    let mut scheduled: FxHashSet<Triple> = FxHashSet::default();
    let mut offered: FxHashSet<Triple> = FxHashSet::default();
    let mut delta: Vec<Triple> = Vec::new();
    for &t in retracted {
        if !offered.insert(t) {
            continue; // duplicate within this request: already classified
        }
        if store.is_explicit(t) {
            scheduled.insert(t);
            store.unmark_explicit(t);
            delta.push(t);
        } else if store.contains(t) {
            outcome.ignored_derived += 1;
        } else {
            outcome.not_found += 1;
        }
    }
    outcome.retracted = delta.len();
    if delta.is_empty() {
        return outcome;
    }

    // Overdeletion scope: only rules transitively reachable from the rules
    // that consume a retracted predicate can have used a deleted triple.
    let over_rules: Vec<usize> = if full_rederive {
        (0..rules.len()).collect()
    } else {
        let seeds: Vec<usize> = delta.iter().flat_map(|t| graph.entry_routes(t.p)).collect();
        graph.reachable(seeds)
    };

    // Phase 1: overdelete. Each round joins the deletion delta against the
    // store *before* removing it (the rules' `delta ⊆ store` contract also
    // covers conclusions of two same-round deletions), then deletes the
    // delta and schedules every conclusion that is still present and not
    // explicit. Termination: each round deletes ≥1 triple from a finite
    // store.
    let mut deleted_preds: FxHashSet<NodeId> = FxHashSet::default();
    let mut out: Vec<Triple> = Vec::new();
    while !delta.is_empty() {
        out.clear();
        with_view(store, context, |view| {
            for &i in &over_rules {
                rules[i].apply(view, &delta, &mut out);
            }
        });
        for &t in &delta {
            store.remove(t);
            deleted_preds.insert(t.p);
        }
        delta = out
            .iter()
            .copied()
            .filter(|&t| store.contains(t) && !store.is_explicit(t) && scheduled.insert(t))
            .collect();
    }
    outcome.overdeleted = scheduled.len() - outcome.retracted;

    // Rederivation scope: a deleted triple can only be rederived by a rule
    // whose output signature may emit its predicate.
    let rederive_rules: Vec<usize> = if full_rederive {
        (0..rules.len()).collect()
    } else {
        (0..rules.len())
            .filter(|&i| match rules[i].output_signature() {
                OutputSignature::Universal => true,
                OutputSignature::Predicates(ps) => ps.iter().any(|p| deleted_preds.contains(p)),
            })
            .collect()
    };

    // Phase 2: rederive (shared with ruleset-swap retraction).
    outcome.rederived = rederive(
        store,
        context,
        rules,
        &rederive_rules,
        &scheduled,
        full_rederive,
    );
    outcome
}

/// DRed phase 2, shared between [`dred`] and [`retract_rules`]: restores
/// every triple in `scheduled` (the overdeleted set) that still has a
/// derivation from the surviving store, using `rule_indices` into
/// `rules`. `force_forward` skips the backward fast path (the
/// conservative mode). Returns how many triples were restored.
fn rederive(
    store: &mut VerticalStore,
    context: Option<&VerticalStore>,
    rules: &[Arc<dyn Rule>],
    rule_indices: &[usize],
    scheduled: &FxHashSet<Triple>,
    force_forward: bool,
) -> usize {
    // An empty bucket can still rederive from its context overlay, so the
    // emptiness shortcut must consider both layers.
    if rule_indices.is_empty() || (store.is_empty() && context.is_none_or(|c| c.is_empty())) {
        return 0;
    }
    let mut rederived = 0;
    // Fast path: backward support checks over the deleted set only.
    // A deleted triple with one-step support from the current store is
    // restored; restorations can support further restorations, so
    // passes repeat until nothing changes. If any in-scope rule lacks
    // a backward matcher (`derives` → None) the answer is unknown and
    // we fall back to the forward pass below.
    let mut candidates: Vec<Triple> = scheduled.iter().copied().collect();
    candidates.sort_unstable(); // deterministic restoration order
    let mut need_forward = force_forward;
    while !need_forward {
        let mut restored: Vec<Triple> = Vec::new();
        with_view(store, context, |view| {
            candidates.retain(|&t| {
                for &i in rule_indices {
                    match rules[i].derives(view, t) {
                        Some(true) => {
                            restored.push(t);
                            return false;
                        }
                        Some(false) => {}
                        None => need_forward = true,
                    }
                }
                true
            });
        });
        rederived += restored.len();
        for &t in &restored {
            store.insert(t);
        }
        if restored.is_empty() {
            break;
        }
    }
    // Forward fallback: one pass with the whole surviving store as the
    // delta — every one-step-from-survivors conclusion that went
    // missing was overdeleted and comes back — then the usual
    // semi-naive fixpoint on fresh conclusions.
    if need_forward {
        let mut out: Vec<Triple> = Vec::new();
        // Round 0 feeds every survivor — both layers when overlaid — so
        // any one-step-from-survivors conclusion that went missing comes
        // back; conclusions already present in the (immutable) context
        // must not be duplicated into the carve.
        let mut delta: Vec<Triple> = match context {
            Some(ctx) => store.iter().chain(ctx.iter()).collect(),
            None => store.iter().collect(),
        };
        let mut fresh: Vec<Triple> = Vec::new();
        loop {
            out.clear();
            with_view(store, context, |view| {
                for &i in rule_indices {
                    rules[i].apply(view, &delta, &mut out);
                }
            });
            if let Some(ctx) = context {
                out.retain(|&t| !ctx.contains(t));
            }
            fresh.clear();
            store.insert_batch(&out, &mut fresh);
            if fresh.is_empty() {
                break;
            }
            rederived += fresh.len();
            std::mem::swap(&mut delta, &mut fresh);
        }
    }
    rederived
}

/// Ruleset-swap retraction: removes every derivation supported only by
/// the `dropped` rules, leaving the store at the closure of its explicit
/// triples under the `surviving` rules.
///
/// Seeding is backward: in a **closed** store every derived triple has a
/// one-step derivation from facts in the closure, so the derived triples
/// a dropped rule one-step supports *right now* ([`Rule::derives`] →
/// `Some(true)`) are exactly the ones that may owe their presence to it.
/// A dropped rule without a backward matcher (`derives` → `None`) seeds
/// conservatively by output signature — over-seeding is repaired by
/// rederivation, under-seeding never happens. The seeds' downward
/// closure through **all** old rules is then overdeleted (a deletion can
/// undercut conclusions of kept rules too), and the overdeleted set is
/// rederived with the surviving rules only. Returns
/// `(overdeleted, rederived)` — `overdeleted` includes the seeds.
///
/// The caller holds the store exclusively and guarantees quiescence,
/// exactly as for [`dred`].
pub(crate) fn retract_rules(
    store: &mut VerticalStore,
    old_rules: &[Arc<dyn Rule>],
    dropped: &[Arc<dyn Rule>],
    surviving: &[Arc<dyn Rule>],
    full_rederive: bool,
) -> (usize, usize) {
    // Seed: derived triples a dropped rule one-step supports from the
    // current closure (or might emit, absent a backward matcher).
    let derived: Vec<Triple> = store.iter().filter(|&t| !store.is_explicit(t)).collect();
    let mut scheduled: FxHashSet<Triple> = FxHashSet::default();
    let mut delta: Vec<Triple> = Vec::new();
    for &t in &derived {
        let mut seed = false;
        for rule in dropped {
            match rule.derives(&store.view(), t) {
                Some(true) => {
                    seed = true;
                    break;
                }
                Some(false) => {}
                None => {
                    let may_emit = match rule.output_signature() {
                        OutputSignature::Universal => true,
                        OutputSignature::Predicates(ps) => ps.contains(&t.p),
                    };
                    if may_emit {
                        seed = true;
                        break;
                    }
                }
            }
        }
        if seed && scheduled.insert(t) {
            delta.push(t);
        }
    }
    delta.sort_unstable(); // deterministic rounds
    if delta.is_empty() {
        return (0, 0);
    }

    // Overdelete the seeds' downward closure through all old rules, as in
    // [`dred`] phase 1.
    let mut out: Vec<Triple> = Vec::new();
    while !delta.is_empty() {
        out.clear();
        for rule in old_rules {
            rule.apply(&store.view(), &delta, &mut out);
        }
        for &t in &delta {
            store.remove(t);
        }
        delta = out
            .iter()
            .copied()
            .filter(|&t| store.contains(t) && !store.is_explicit(t) && scheduled.insert(t))
            .collect();
    }
    let overdeleted = scheduled.len();

    // Rederive with the surviving rules: whatever still has a derivation
    // under the new program comes back.
    let indices: Vec<usize> = (0..surviving.len()).collect();
    let rederived = rederive(store, None, surviving, &indices, &scheduled, full_rederive);
    (overdeleted, rederived)
}

/// Ruleset-swap evaluation of newly `added` rules over a closed store:
/// round 0 feeds the whole store as the added rules' delta (everything is
/// "new input" to a rule that has never run), then the usual semi-naive
/// fixpoint over **all** rules on fresh conclusions — a new conclusion
/// can trigger kept rules too. Returns how many triples were inferred.
///
/// The caller holds the store exclusively and guarantees quiescence.
pub(crate) fn evaluate_added(
    store: &mut VerticalStore,
    all_rules: &[Arc<dyn Rule>],
    added: &[Arc<dyn Rule>],
) -> usize {
    let mut inferred = 0;
    let mut out: Vec<Triple> = Vec::new();
    let mut fresh: Vec<Triple> = Vec::new();
    let delta0: Vec<Triple> = store.iter().collect();
    for rule in added {
        rule.apply(&store.view(), &delta0, &mut out);
    }
    store.insert_batch(&out, &mut fresh);
    inferred += fresh.len();
    let mut delta = std::mem::take(&mut fresh);
    while !delta.is_empty() {
        out.clear();
        for rule in all_rules {
            rule.apply(&store.view(), &delta, &mut out);
        }
        fresh.clear();
        store.insert_batch(&out, &mut fresh);
        inferred += fresh.len();
        std::mem::swap(&mut delta, &mut fresh);
    }
    inferred
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_baseline::closure;
    use slider_model::vocab::{RDFS_DOMAIN, RDFS_SUB_CLASS_OF, RDFS_SUB_PROPERTY_OF, RDF_TYPE};
    use slider_model::NodeId;
    use slider_rules::Ruleset;

    fn n(v: u64) -> NodeId {
        NodeId(1000 + v)
    }
    fn sco(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDFS_SUB_CLASS_OF, n(b))
    }
    fn ty(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDF_TYPE, n(b))
    }

    /// Loads `explicit` into a closed store (explicit flags set, closure
    /// materialised as derived triples), mirroring the engine's state.
    fn closed_store(ruleset: &Ruleset, explicit: &[Triple]) -> VerticalStore {
        let mut store = closure(ruleset.clone(), explicit);
        for &t in explicit {
            store.insert_explicit(t);
        }
        store
    }

    fn run(
        ruleset: &Ruleset,
        explicit: &[Triple],
        retract: &[Triple],
        full: bool,
    ) -> (VerticalStore, RemovalOutcome) {
        let mut store = closed_store(ruleset, explicit);
        let graph = DependencyGraph::build(ruleset);
        let outcome = dred(&mut store, None, ruleset.rules(), &graph, retract, full);
        (store, outcome)
    }

    /// The oracle: closure of the surviving explicit triples.
    fn surviving_closure(
        ruleset: &Ruleset,
        explicit: &[Triple],
        retract: &[Triple],
    ) -> Vec<Triple> {
        let survivors: Vec<Triple> = explicit
            .iter()
            .copied()
            .filter(|t| !retract.contains(t))
            .collect();
        closure(ruleset.clone(), &survivors).to_sorted_vec()
    }

    #[test]
    fn chain_link_removal_drops_exactly_the_lost_paths() {
        let rs = Ruleset::rho_df();
        let explicit: Vec<Triple> = (1..6).map(|i| sco(i, i + 1)).collect();
        for full in [false, true] {
            let (store, outcome) = run(&rs, &explicit, &[sco(3, 4)], full);
            assert_eq!(
                store.to_sorted_vec(),
                surviving_closure(&rs, &explicit, &[sco(3, 4)]),
                "full_rederive={full}"
            );
            assert_eq!(outcome.retracted, 1);
            assert!(outcome.overdeleted > 0);
            // A broken chain has no alternative derivations.
            assert_eq!(outcome.rederived, 0);
        }
    }

    #[test]
    fn alternative_derivation_survives_via_rederivation() {
        // Two parallel paths 1→2→4 and 1→3→4: deleting sco(2,4) overdeletes
        // sco(1,4), which the 1→3→4 path rederives.
        let rs = Ruleset::rho_df();
        let explicit = [sco(1, 2), sco(2, 4), sco(1, 3), sco(3, 4)];
        let (store, outcome) = run(&rs, &explicit, &[sco(2, 4)], false);
        assert_eq!(
            store.to_sorted_vec(),
            surviving_closure(&rs, &explicit, &[sco(2, 4)])
        );
        assert!(store.contains(sco(1, 4)), "1→3→4 still derives (1 sco 4)");
        assert!(outcome.rederived > 0);
    }

    #[test]
    fn retracting_an_explicit_fact_that_is_also_derivable_demotes_it() {
        let rs = Ruleset::rho_df();
        // sco(1,3) asserted AND derivable from the chain.
        let explicit = [sco(1, 2), sco(2, 3), sco(1, 3)];
        let (store, outcome) = run(&rs, &explicit, &[sco(1, 3)], false);
        assert!(store.contains(sco(1, 3)), "still derivable");
        assert!(!store.is_explicit(sco(1, 3)), "no longer asserted");
        assert_eq!(outcome.retracted, 1);
        assert_eq!(
            store.to_sorted_vec(),
            surviving_closure(&rs, &explicit, &[sco(1, 3)])
        );
    }

    #[test]
    fn removing_derived_or_absent_facts_is_a_noop() {
        let rs = Ruleset::rho_df();
        let explicit = [sco(1, 2), sco(2, 3)];
        let before = closed_store(&rs, &explicit).to_sorted_vec();
        // sco(1,3) is derived-only; ty(9,9) is absent.
        let (store, outcome) = run(&rs, &explicit, &[sco(1, 3), ty(9, 9)], false);
        assert_eq!(store.to_sorted_vec(), before);
        assert_eq!(outcome.requested, 2);
        assert_eq!(outcome.retracted, 0);
        assert_eq!(outcome.overdeleted, 0);
        // The two no-op flavours are reported distinctly.
        assert_eq!(
            outcome.ignored_derived, 1,
            "sco(1,3) is present but derived"
        );
        assert_eq!(outcome.not_found, 1, "ty(9,9) is absent");
    }

    #[test]
    fn duplicate_offers_classify_once() {
        let rs = Ruleset::rho_df();
        let explicit = [sco(1, 2), sco(2, 3)];
        let retract = [
            sco(1, 2),
            sco(1, 2),
            sco(1, 3),
            sco(1, 3),
            ty(9, 9),
            ty(9, 9),
        ];
        let (_, outcome) = run(&rs, &explicit, &retract, false);
        assert_eq!(outcome.requested, 6);
        assert_eq!(outcome.retracted, 1);
        assert_eq!(outcome.ignored_derived, 1);
        assert_eq!(outcome.not_found, 1);
    }

    #[test]
    fn cycles_do_not_leave_self_supporting_garbage() {
        let rs = Ruleset::rho_df();
        // a ⊑ b ⊑ a derives the reflexive edges; retracting one direction
        // must tear the whole cycle's derived closure down.
        let explicit = [sco(1, 2), sco(2, 1)];
        let (store, _) = run(&rs, &explicit, &[sco(1, 2)], false);
        assert_eq!(
            store.to_sorted_vec(),
            surviving_closure(&rs, &explicit, &[sco(1, 2)])
        );
        assert_eq!(store.to_sorted_vec(), vec![sco(2, 1)]);
    }

    #[test]
    fn mixed_schema_retraction_matches_oracle() {
        let rs = Ruleset::rho_df();
        let spo = |a: u64, b: u64| Triple::new(n(a), RDFS_SUB_PROPERTY_OF, n(b));
        let dom = |a: u64, b: u64| Triple::new(n(a), RDFS_DOMAIN, n(b));
        let explicit = [
            sco(1, 2),
            sco(2, 3),
            ty(9, 1),
            spo(5, 6),
            dom(6, 2),
            Triple::new(n(7), n(5), n(8)),
        ];
        for retract in [
            vec![spo(5, 6)],
            vec![dom(6, 2)],
            vec![ty(9, 1), sco(1, 2)],
            vec![Triple::new(n(7), n(5), n(8))],
        ] {
            for full in [false, true] {
                let (store, _) = run(&rs, &explicit, &retract, full);
                assert_eq!(
                    store.to_sorted_vec(),
                    surviving_closure(&rs, &explicit, &retract),
                    "retract {retract:?} full_rederive={full}"
                );
            }
        }
    }

    /// Subject-bucketed DRed over a context overlay reaches the same
    /// store and the same merged counters as one whole-store pass — the
    /// invariant the two-level flush planner relies on.
    #[test]
    fn bucketed_dred_with_context_matches_whole_store() {
        use slider_rules::Subsumption;
        use slider_store::subject_bucket;

        const IS: NodeId = NodeId(70);
        const SUB: NodeId = NodeId(71);
        let rs = Ruleset::custom("membership").with(Subsumption::new("SUB", IS, SUB));
        let graph = DependencyGraph::build(&rs);
        let class = |c: u64| Triple::new(n(100 + c), SUB, n(101 + c));
        let is = |x: u64, c: u64| Triple::new(n(x), IS, n(100 + c));
        let mut explicit: Vec<Triple> = (0..4).map(class).collect();
        for x in 0..24 {
            explicit.push(is(x, x % 3));
        }
        let retract: Vec<Triple> = (0..24).step_by(2).map(|x| is(x, x % 3)).collect();

        let mut whole = closed_store(&rs, &explicit);
        let whole_outcome = dred(&mut whole, None, rs.rules(), &graph, &retract, false);

        const K: usize = 3;
        let mut ctx = closed_store(&rs, &explicit);
        let mut affected = ctx.split_off(&[IS]);
        let mut merged = RemovalOutcome::default();
        let mut rejoined = ctx.clone();
        for k in 0..K {
            let mut bucket = affected.split_off_subjects(|s| subject_bucket(s, K) == k);
            let seeds: Vec<Triple> = retract
                .iter()
                .copied()
                .filter(|t| subject_bucket(t.s, K) == k)
                .collect();
            merged.merge(dred(
                &mut bucket,
                Some(&ctx),
                rs.rules(),
                &graph,
                &seeds,
                false,
            ));
            rejoined.absorb(bucket);
        }
        assert!(affected.is_empty(), "every subject landed in some bucket");
        assert_eq!(rejoined.to_sorted_vec(), whole.to_sorted_vec());
        assert_eq!(merged, whole_outcome);
    }

    #[test]
    fn empty_ruleset_just_deletes() {
        let rs = Ruleset::custom("none");
        let explicit = [ty(1, 2), ty(3, 4)];
        let (store, outcome) = run(&rs, &explicit, &[ty(1, 2)], false);
        assert_eq!(store.to_sorted_vec(), vec![ty(3, 4)]);
        assert_eq!(outcome.retracted, 1);
        assert_eq!(outcome.net_deleted(), 1);
    }
}
