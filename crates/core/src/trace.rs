//! Event tracing — the data source for the demo's "inference player" (§4).
//!
//! The paper's web demo records "the state of all the modules of Slider at
//! each step of the process", letting users pause, step and replay an
//! inference. With [`SliderConfig::trace`](crate::SliderConfig::trace)
//! enabled, the reasoner appends an [`Event`] per module transition;
//! `examples/inference_player.rs` replays them in a terminal.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A batch arrived at the input manager.
    Input {
        /// Triples offered.
        received: usize,
        /// Triples that were new to the store.
        fresh: usize,
    },
    /// A buffer reached capacity and fired an instance.
    BufferFull {
        /// Rule index in the ruleset.
        rule: usize,
    },
    /// A stale buffer was force-flushed by the timeout thread.
    TimeoutFlush {
        /// Rule index in the ruleset.
        rule: usize,
    },
    /// A rule instance finished.
    RuleFired {
        /// Rule index in the ruleset.
        rule: usize,
        /// Size of the input batch (delta).
        delta: usize,
        /// Conclusions derived (incl. duplicates).
        derived: usize,
        /// Conclusions new to the store (dispatched).
        fresh: usize,
        /// Store size after the distributor ran.
        store_size: usize,
    },
    /// A DRed maintenance run (retraction) completed.
    Removal {
        /// Triples offered to `remove_*`.
        requested: usize,
        /// Explicit triples actually retracted.
        retracted: usize,
        /// Derived triples deleted during overdeletion.
        overdeleted: usize,
        /// Overdeleted triples restored by rederivation.
        rederived: usize,
        /// Store size after maintenance.
        store_size: usize,
    },
    /// A coalesced maintenance run: deferred retractions flushed as one
    /// DRed pass (threshold-, deadline- or explicitly triggered).
    CoalescedRemoval {
        /// Distinct pending retractions drained into this run.
        pending: usize,
        /// Explicit triples actually retracted.
        retracted: usize,
        /// Derived triples deleted during overdeletion.
        overdeleted: usize,
        /// Overdeleted triples restored by rederivation.
        rederived: usize,
        /// Store size after maintenance.
        store_size: usize,
    },
    /// A coalesced maintenance run that split into independent partition
    /// passes executed in parallel on the worker pool (pending retractions
    /// fell into ≥ 2 disjoint dependency-graph partitions).
    PartitionedRemoval {
        /// Distinct pending retractions drained into this run.
        pending: usize,
        /// Independent DRed passes the run split into.
        partitions: usize,
        /// Explicit triples actually retracted (all partitions).
        retracted: usize,
        /// Derived triples deleted during overdeletion (all partitions).
        overdeleted: usize,
        /// Overdeleted triples restored by rederivation (all partitions).
        rederived: usize,
        /// Store size after maintenance.
        store_size: usize,
    },
    /// A maintenance run in which at least one partition's DRed pass was
    /// further carved into subject-hash sub-buckets maintained in
    /// parallel — the two-level deletion planner's second level (see
    /// [`SliderConfig::deletion_subsplit`](crate::SliderConfig::deletion_subsplit)).
    /// Emitted *instead of* [`EventKind::PartitionedRemoval`] /
    /// [`EventKind::CoalescedRemoval`] when a flush sub-split, and
    /// alongside the per-batch [`EventKind::Removal`] events when an
    /// eager combining run did.
    SubpartitionedRemoval {
        /// Distinct pending retractions drained into this run.
        pending: usize,
        /// First-level buckets (dependency-graph partitions) of the plan.
        partitions: usize,
        /// Subject sub-buckets carved across all sub-split partitions.
        subpartitions: usize,
        /// Explicit triples actually retracted (all units).
        retracted: usize,
        /// Derived triples deleted during overdeletion (all units).
        overdeleted: usize,
        /// Overdeleted triples restored by rederivation (all units).
        rederived: usize,
        /// Store size after maintenance.
        store_size: usize,
    },
    /// A live ruleset replacement completed (`swap_ruleset`): the program
    /// was diffed against the running one, derivations supported only by
    /// dropped rules were retracted (DRed), added rules were evaluated
    /// semi-naively, and the dependency graph / read plans were rebuilt at
    /// the swap's linearisation point.
    RulesetSwap {
        /// Rules removed by the swap.
        dropped: usize,
        /// Rules introduced by the swap.
        added: usize,
        /// Rules present in both programs (counters carried over).
        kept: usize,
        /// Derived triples deleted during dropped-rule overdeletion.
        overdeleted: usize,
        /// Overdeleted triples restored (they survived under kept rules).
        rederived: usize,
        /// Triples newly inferred by the added rules.
        inferred: usize,
        /// Store size after the swap.
        store_size: usize,
    },
    /// A deadline-triggered maintenance flush hit the runtime's per-tick
    /// latency budget and deferred the rest of its pending set: the slices
    /// applied so far are durable (each ended at the closure of its
    /// surviving explicit set), and the remainder stays scheduled for the
    /// next flusher tick.
    BudgetSlice {
        /// Pending retractions applied before the budget ran out.
        applied: usize,
        /// Pending retractions deferred to later ticks.
        remaining: usize,
    },
    /// A dictionary compaction sweep completed (automatic after a large
    /// retraction flush, or an explicit
    /// [`Slider::sweep_dictionary`](crate::Slider::sweep_dictionary)):
    /// terms no longer referenced by the store were tombstoned and their
    /// ids pushed onto the interner's free-list. Ids of live terms never
    /// move.
    DictSweep {
        /// Non-vocabulary slots examined.
        scanned: usize,
        /// Slots tombstoned by this sweep.
        swept: usize,
        /// Live terms remaining after the sweep (vocabulary included).
        live: usize,
        /// Dictionary bytes estimate before the sweep.
        bytes_before: usize,
        /// Dictionary bytes estimate after the sweep.
        bytes_after: usize,
    },
    /// The reasoner reached quiescence.
    Idle {
        /// Store size at quiescence.
        store_size: usize,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Time since the reasoner was created.
    pub at: Duration,
    /// What happened.
    pub kind: EventKind,
}

/// An append-only, thread-safe event log.
#[derive(Debug)]
pub struct EventLog {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl EventLog {
    /// An empty log whose clock starts now.
    pub fn new() -> Self {
        EventLog {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Appends an event stamped with the current time.
    pub fn record(&self, kind: EventKind) {
        let at = self.epoch.elapsed();
        self.events.lock().push(Event { at, kind });
    }

    /// Copies out all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

/// Serialises events as a JSON array — the wire format a web front end
/// (like the paper's demo GUI) would consume. Hand-rolled; the event
/// payloads are numbers and static strings, so no escaping is needed.
pub fn events_to_json(events: &[Event]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let us = event.at.as_micros();
        match &event.kind {
            EventKind::Input { received, fresh } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"input","received":{received},"fresh":{fresh}}}"#
                );
            }
            EventKind::BufferFull { rule } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"buffer_full","rule":{rule}}}"#
                );
            }
            EventKind::TimeoutFlush { rule } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"timeout_flush","rule":{rule}}}"#
                );
            }
            EventKind::RuleFired {
                rule,
                delta,
                derived,
                fresh,
                store_size,
            } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"rule_fired","rule":{rule},"delta":{delta},"derived":{derived},"fresh":{fresh},"store_size":{store_size}}}"#
                );
            }
            EventKind::Removal {
                requested,
                retracted,
                overdeleted,
                rederived,
                store_size,
            } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"removal","requested":{requested},"retracted":{retracted},"overdeleted":{overdeleted},"rederived":{rederived},"store_size":{store_size}}}"#
                );
            }
            EventKind::CoalescedRemoval {
                pending,
                retracted,
                overdeleted,
                rederived,
                store_size,
            } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"coalesced_removal","pending":{pending},"retracted":{retracted},"overdeleted":{overdeleted},"rederived":{rederived},"store_size":{store_size}}}"#
                );
            }
            EventKind::PartitionedRemoval {
                pending,
                partitions,
                retracted,
                overdeleted,
                rederived,
                store_size,
            } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"partitioned_removal","pending":{pending},"partitions":{partitions},"retracted":{retracted},"overdeleted":{overdeleted},"rederived":{rederived},"store_size":{store_size}}}"#
                );
            }
            EventKind::SubpartitionedRemoval {
                pending,
                partitions,
                subpartitions,
                retracted,
                overdeleted,
                rederived,
                store_size,
            } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"subpartitioned_removal","pending":{pending},"partitions":{partitions},"subpartitions":{subpartitions},"retracted":{retracted},"overdeleted":{overdeleted},"rederived":{rederived},"store_size":{store_size}}}"#
                );
            }
            EventKind::RulesetSwap {
                dropped,
                added,
                kept,
                overdeleted,
                rederived,
                inferred,
                store_size,
            } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"ruleset_swap","dropped":{dropped},"added":{added},"kept":{kept},"overdeleted":{overdeleted},"rederived":{rederived},"inferred":{inferred},"store_size":{store_size}}}"#
                );
            }
            EventKind::BudgetSlice { applied, remaining } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"budget_slice","applied":{applied},"remaining":{remaining}}}"#
                );
            }
            EventKind::DictSweep {
                scanned,
                swept,
                live,
                bytes_before,
                bytes_after,
            } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"dict_sweep","scanned":{scanned},"swept":{swept},"live":{live},"bytes_before":{bytes_before},"bytes_after":{bytes_after}}}"#
                );
            }
            EventKind::Idle { store_size } => {
                let _ = write!(
                    out,
                    r#"{{"at_us":{us},"type":"idle","store_size":{store_size}}}"#
                );
            }
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotonic_time() {
        let log = EventLog::new();
        log.record(EventKind::Input {
            received: 5,
            fresh: 5,
        });
        log.record(EventKind::BufferFull { rule: 0 });
        log.record(EventKind::RuleFired {
            rule: 0,
            delta: 5,
            derived: 3,
            fresh: 2,
            store_size: 7,
        });
        let events = log.events();
        assert_eq!(events.len(), 3);
        assert!(events[0].at <= events[1].at);
        assert!(events[1].at <= events[2].at);
        assert!(matches!(
            events[2].kind,
            EventKind::RuleFired { fresh: 2, .. }
        ));
    }

    #[test]
    fn concurrent_recording() {
        let log = std::sync::Arc::new(EventLog::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    log.record(EventKind::BufferFull { rule: 1 });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 400);
        assert!(!log.is_empty());
    }

    #[test]
    fn json_export_covers_every_event_kind() {
        let log = EventLog::new();
        log.record(EventKind::Input {
            received: 5,
            fresh: 4,
        });
        log.record(EventKind::BufferFull { rule: 2 });
        log.record(EventKind::TimeoutFlush { rule: 3 });
        log.record(EventKind::RuleFired {
            rule: 2,
            delta: 4,
            derived: 6,
            fresh: 1,
            store_size: 5,
        });
        log.record(EventKind::Removal {
            requested: 3,
            retracted: 2,
            overdeleted: 4,
            rederived: 1,
            store_size: 2,
        });
        log.record(EventKind::CoalescedRemoval {
            pending: 7,
            retracted: 6,
            overdeleted: 9,
            rederived: 2,
            store_size: 4,
        });
        log.record(EventKind::PartitionedRemoval {
            pending: 8,
            partitions: 3,
            retracted: 7,
            overdeleted: 5,
            rederived: 1,
            store_size: 9,
        });
        log.record(EventKind::SubpartitionedRemoval {
            pending: 6,
            partitions: 1,
            subpartitions: 4,
            retracted: 6,
            overdeleted: 3,
            rederived: 2,
            store_size: 7,
        });
        log.record(EventKind::RulesetSwap {
            dropped: 1,
            added: 2,
            kept: 6,
            overdeleted: 4,
            rederived: 1,
            inferred: 3,
            store_size: 8,
        });
        log.record(EventKind::BudgetSlice {
            applied: 128,
            remaining: 72,
        });
        log.record(EventKind::DictSweep {
            scanned: 50,
            swept: 30,
            live: 20,
            bytes_before: 9000,
            bytes_after: 4000,
        });
        log.record(EventKind::Idle { store_size: 5 });
        let json = events_to_json(&log.events());
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        for needle in [
            r#""type":"input","received":5,"fresh":4"#,
            r#""type":"buffer_full","rule":2"#,
            r#""type":"timeout_flush","rule":3"#,
            r#""type":"rule_fired","rule":2,"delta":4,"derived":6,"fresh":1,"store_size":5"#,
            r#""type":"removal","requested":3,"retracted":2,"overdeleted":4,"rederived":1,"store_size":2"#,
            r#""type":"coalesced_removal","pending":7,"retracted":6,"overdeleted":9,"rederived":2,"store_size":4"#,
            r#""type":"partitioned_removal","pending":8,"partitions":3,"retracted":7,"overdeleted":5,"rederived":1,"store_size":9"#,
            r#""type":"subpartitioned_removal","pending":6,"partitions":1,"subpartitions":4,"retracted":6,"overdeleted":3,"rederived":2,"store_size":7"#,
            r#""type":"ruleset_swap","dropped":1,"added":2,"kept":6,"overdeleted":4,"rederived":1,"inferred":3,"store_size":8"#,
            r#""type":"budget_slice","applied":128,"remaining":72"#,
            r#""type":"dict_sweep","scanned":50,"swept":30,"live":20,"bytes_before":9000,"bytes_after":4000"#,
            r#""type":"idle","store_size":5"#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // 11 separators for 12 events.
        assert_eq!(json.matches("},{").count(), 11);
    }

    #[test]
    fn json_export_empty() {
        assert_eq!(events_to_json(&[]), "[]");
    }
}
