//! In-flight work accounting — the quiescence detector.

use parking_lot::{Condvar, Mutex};

/// Counts units of "moving" work (queued jobs, running jobs, and transfers
/// between buffers and the queue).
///
/// The invariant the reasoner maintains is: **any triple that is neither
/// settled in the store-only state nor waiting in a buffer is covered by a
/// token**. Tokens are acquired *before* work becomes invisible (e.g.
/// before draining a buffer into a job) and released only after all
/// consequences (inserts + dispatches) are done. Quiescence is then simply
/// `count == 0 ∧ all buffers empty`.
#[derive(Debug, Default)]
pub struct Inflight {
    count: Mutex<usize>,
    zero: Condvar,
}

impl Inflight {
    /// A tracker with no outstanding work.
    pub fn new() -> Self {
        Inflight::default()
    }

    /// Acquires a token.
    pub fn inc(&self) {
        *self.count.lock() += 1;
    }

    /// Releases a token, waking waiters when the count reaches zero.
    pub fn dec(&self) {
        let mut count = self.count.lock();
        debug_assert!(*count > 0, "inflight underflow");
        *count -= 1;
        if *count == 0 {
            self.zero.notify_all();
        }
    }

    /// Current token count.
    pub fn current(&self) -> usize {
        *self.count.lock()
    }

    /// Blocks until the count is zero.
    pub fn wait_zero(&self) {
        let mut count = self.count.lock();
        while *count != 0 {
            self.zero.wait(&mut count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn starts_at_zero() {
        let f = Inflight::new();
        assert_eq!(f.current(), 0);
        f.wait_zero(); // must not block
    }

    #[test]
    fn inc_dec_roundtrip() {
        let f = Inflight::new();
        f.inc();
        f.inc();
        assert_eq!(f.current(), 2);
        f.dec();
        f.dec();
        assert_eq!(f.current(), 0);
    }

    #[test]
    fn wait_zero_blocks_until_released() {
        let f = Arc::new(Inflight::new());
        f.inc();
        let f2 = Arc::clone(&f);
        let waiter = std::thread::spawn(move || {
            f2.wait_zero();
        });
        // Give the waiter a moment to block.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "waiter must block while count > 0");
        f.dec();
        waiter.join().unwrap();
    }

    #[test]
    fn many_threads() {
        let f = Arc::new(Inflight::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let f = Arc::clone(&f);
            f.inc();
            handles.push(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                f.dec();
            }));
        }
        f.wait_zero();
        assert_eq!(f.current(), 0);
        for h in handles {
            h.join().unwrap();
        }
    }
}
