//! Coalesced maintenance scheduling — batching DRed runs for high churn.
//!
//! A sliding window over a fast stream retracts a batch per arrival; paying
//! a full overdelete/rederive cycle for each one (the eager
//! [`Slider::remove_triples`](crate::Slider::remove_triples) path) wastes
//! most of its time on per-run overhead: waiting for quiescence, taking the
//! write lock, scoping the rules, and re-scanning the deleted set during
//! rederivation. One DRed pass over the *union* of several expiring batches
//! does the same downward-closure walk once — the classic amortisation of
//! tick-based incremental window maintenance.
//!
//! `MaintenanceScheduler` (crate-private; driven through the
//! [`Slider`](crate::Slider) methods below) is the pending set behind
//! [`Slider::remove_deferred`](crate::Slider::remove_deferred): retractions
//! are enqueued (deduplicated, FIFO) instead of applied, and a single
//! coalesced run fires on any of three triggers:
//!
//! 1. **pending-count threshold** — the distinct pending set reaches
//!    [`SliderConfig::maintenance_batch`](crate::SliderConfig::maintenance_batch);
//! 2. **max-age deadline** — the oldest pending retraction has waited
//!    [`SliderConfig::maintenance_max_age`](crate::SliderConfig::maintenance_max_age),
//!    serviced by the reasoner's flusher thread;
//! 3. **explicit flush** —
//!    [`Slider::flush_maintenance`](crate::Slider::flush_maintenance).
//!
//! The coalescing invariant (pinned against the recompute oracle in
//! `tests/retraction.rs`): a coalesced flush leaves the store exactly where
//! retracting the *surviving* pending set eagerly would have — the closure
//! of the surviving explicit triples. Between enqueue and flush the
//! retractions are simply *not applied yet*: queries see the
//! pre-retraction closure (bounded by
//! [`Slider::pending_staleness`](crate::Slider::pending_staleness)), and a
//! triple **re-asserted while its retraction is pending cancels the
//! retraction** (`MaintenanceScheduler::cancel`, driven by the add
//! path) — the flush must land on the closure of the explicit set that
//! actually survived the interleaving.

use parking_lot::Mutex;
use slider_model::{FxHashSet, Triple};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The deferred-retraction queue: distinct pending triples in FIFO order,
/// each stamped with its enqueue time.
struct Pending {
    /// Distinct pending retractions with enqueue times, in first-enqueue
    /// order (the head is the oldest).
    queue: Vec<(Triple, Instant)>,
    /// Dedup set mirroring `queue`.
    seen: FxHashSet<Triple>,
}

/// Pending retractions awaiting a coalesced DRed run (see the module docs
/// for the trigger semantics).
pub(crate) struct MaintenanceScheduler {
    inner: Mutex<Pending>,
    /// Mirror of `queue.len()`, maintained under the lock — the add path's
    /// lock-free fast check that there is nothing to cancel.
    count: AtomicUsize,
    /// Distinct-pending threshold that requests a coalesced run.
    batch: usize,
    /// Age of the oldest pending retraction after which the flusher thread
    /// forces a run; `None` disables the deadline.
    max_age: Option<Duration>,
}

impl MaintenanceScheduler {
    /// An empty scheduler firing at `batch` distinct pending retractions
    /// (clamped to ≥ 1) or after `max_age`.
    pub(crate) fn new(batch: usize, max_age: Option<Duration>) -> Self {
        MaintenanceScheduler {
            inner: Mutex::new(Pending {
                queue: Vec::new(),
                seen: FxHashSet::default(),
            }),
            count: AtomicUsize::new(0),
            batch: batch.max(1),
            max_age,
        }
    }

    /// Enqueues `triples` (duplicates of already-pending triples are
    /// dropped). Returns `(newly_enqueued, threshold_reached)`; the caller
    /// is responsible for flushing when the threshold is reported.
    pub(crate) fn enqueue(&self, triples: &[Triple]) -> (usize, bool) {
        let mut inner = self.inner.lock();
        let before = inner.queue.len();
        let now = Instant::now();
        for &t in triples {
            if inner.seen.insert(t) {
                inner.queue.push((t, now));
            }
        }
        let after = inner.queue.len();
        self.count.store(after, Ordering::Relaxed);
        (after - before, after >= self.batch)
    }

    /// Cancels the pending retraction of every triple in `triples` that is
    /// pending (the rest are ignored); returns how many were cancelled.
    /// The add path calls this on every asserted batch, restoring the
    /// invariant that a flush lands on the closure of the explicit set
    /// that survived the add/remove interleaving.
    pub(crate) fn cancel(&self, triples: &[Triple]) -> usize {
        // Lock-free fast path: with nothing pending (the common case for
        // the hot additive path) there is nothing to cancel.
        if self.count.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let mut inner = self.inner.lock();
        let before = inner.queue.len();
        let mut hit = false;
        for t in triples {
            hit |= inner.seen.remove(t);
        }
        if !hit {
            return 0;
        }
        // `seen` mirrors `queue`; dropping the no-longer-seen entries keeps
        // FIFO order (and the head as the oldest survivor).
        let seen = std::mem::take(&mut inner.seen);
        inner.queue.retain(|(t, _)| seen.contains(t));
        inner.seen = seen;
        let after = inner.queue.len();
        self.count.store(after, Ordering::Relaxed);
        before - after
    }

    /// Takes the whole pending set (FIFO order), resetting the age clock.
    #[cfg(test)]
    pub(crate) fn drain(&self) -> Vec<Triple> {
        self.drain_up_to(usize::MAX)
    }

    /// Takes up to `limit` pending retractions, oldest first — one budget
    /// slice of the pending set. The remainder keeps its enqueue
    /// timestamps, so the staleness clock ([`Self::oldest_age`]) stays
    /// honest across slices: a retraction deferred by the latency budget
    /// keeps ageing from its original enqueue.
    pub(crate) fn drain_up_to(&self, limit: usize) -> Vec<Triple> {
        let mut inner = self.inner.lock();
        if limit >= inner.queue.len() {
            inner.seen.clear();
            self.count.store(0, Ordering::Relaxed);
            return std::mem::take(&mut inner.queue)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
        }
        let rest = inner.queue.split_off(limit);
        let drained = std::mem::replace(&mut inner.queue, rest);
        for (t, _) in &drained {
            inner.seen.remove(t);
        }
        self.count.store(inner.queue.len(), Ordering::Relaxed);
        drained.into_iter().map(|(t, _)| t).collect()
    }

    /// Number of distinct retractions currently pending.
    pub(crate) fn pending(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Visits every pending retraction without draining. The dictionary
    /// sweep uses this to root its liveness scan: a pending triple's ids
    /// must survive the sweep even when the triple has already left the
    /// store, or a recycled id would alias the retraction at flush time.
    pub(crate) fn for_each_pending(&self, mut f: impl FnMut(Triple)) {
        for (t, _) in self.inner.lock().queue.iter() {
            f(*t);
        }
    }

    /// Age of the oldest pending retraction — the staleness bound: every
    /// pending retraction has been invisible to queries for at most this
    /// long. `None` when nothing is pending.
    pub(crate) fn oldest_age(&self) -> Option<Duration> {
        self.inner.lock().queue.first().map(|(_, at)| at.elapsed())
    }

    /// True if a max-age deadline is configured and the oldest pending
    /// retraction has outlived it — the flusher thread's trigger.
    pub(crate) fn is_stale(&self) -> bool {
        let Some(max_age) = self.max_age else {
            return false;
        };
        self.oldest_age().is_some_and(|age| age >= max_age)
    }

    /// The configured max-age deadline, if any — the runtime's flusher
    /// derives its scan tick from the smallest deadline it services.
    pub(crate) fn max_age(&self) -> Option<Duration> {
        self.max_age
    }
}

impl std::fmt::Debug for MaintenanceScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceScheduler")
            .field("pending", &self.pending())
            .field("batch", &self.batch)
            .field("max_age", &self.max_age)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::NodeId;

    fn t(v: u64) -> Triple {
        Triple::new(NodeId(v), NodeId(0), NodeId(v))
    }

    #[test]
    fn enqueue_dedups_and_reports_threshold() {
        let s = MaintenanceScheduler::new(3, None);
        assert_eq!(s.enqueue(&[t(1), t(2), t(1)]), (2, false));
        assert_eq!(s.pending(), 2);
        // Already-pending triples do not re-enqueue…
        assert_eq!(s.enqueue(&[t(2)]), (0, false));
        // …and the threshold counts distinct triples.
        assert_eq!(s.enqueue(&[t(3)]), (1, true));
        assert_eq!(s.pending(), 3);
    }

    #[test]
    fn drain_preserves_fifo_and_resets() {
        let s = MaintenanceScheduler::new(100, None);
        s.enqueue(&[t(2), t(1)]);
        s.enqueue(&[t(3), t(2)]);
        assert_eq!(s.drain(), vec![t(2), t(1), t(3)]);
        assert_eq!(s.pending(), 0);
        assert!(s.drain().is_empty());
        // A drained triple may be deferred again.
        assert_eq!(s.enqueue(&[t(1)]), (1, false));
    }

    #[test]
    fn drain_up_to_slices_oldest_first_and_keeps_remainder_ageing() {
        let s = MaintenanceScheduler::new(100, None);
        s.enqueue(&[t(1), t(2)]);
        std::thread::sleep(Duration::from_millis(25));
        s.enqueue(&[t(3)]);
        let oldest_before = s.oldest_age().unwrap(); // t(1)'s age, ≥ 25 ms
                                                     // The slice takes the oldest entries; the remainder stays pending…
        assert_eq!(s.drain_up_to(2), vec![t(1), t(2)]);
        assert_eq!(s.pending(), 1);
        // …with its original timestamp (t(3) is 25 ms younger than t(1)).
        assert!(s.oldest_age().unwrap() < oldest_before);
        // A sliced-out triple may be re-deferred; the survivor may not.
        assert_eq!(s.enqueue(&[t(1), t(3)]), (1, false));
        assert_eq!(s.drain_up_to(usize::MAX), vec![t(3), t(1)]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn cancel_removes_pending_retractions() {
        let s = MaintenanceScheduler::new(100, None);
        s.enqueue(&[t(1), t(2), t(3)]);
        // Cancelling a mix of pending and unknown triples counts the hits.
        assert_eq!(s.cancel(&[t(2), t(9), t(2)]), 1);
        assert_eq!(s.pending(), 2);
        assert_eq!(s.cancel(&[t(9)]), 0, "nothing pending matches");
        // FIFO order of the survivors is preserved.
        assert_eq!(s.drain(), vec![t(1), t(3)]);
        // Cancel on an empty queue takes the lock-free fast path.
        assert_eq!(s.cancel(&[t(1)]), 0);
        // A cancelled triple can be deferred again later.
        s.enqueue(&[t(2)]);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn staleness_tracks_oldest_enqueue() {
        let s = MaintenanceScheduler::new(100, Some(Duration::ZERO));
        assert_eq!(s.max_age(), Some(Duration::ZERO));
        assert!(!s.is_stale(), "empty queue is never stale");
        assert_eq!(s.oldest_age(), None);
        s.enqueue(&[t(1)]);
        assert!(s.is_stale(), "zero max-age is immediately stale");
        assert!(s.oldest_age().is_some());
        s.drain();
        assert!(!s.is_stale(), "drain resets the age clock");
        assert_eq!(s.oldest_age(), None);
    }

    #[test]
    fn cancel_of_oldest_advances_the_age_clock() {
        let s = MaintenanceScheduler::new(100, None);
        s.enqueue(&[t(1)]);
        std::thread::sleep(Duration::from_millis(5));
        s.enqueue(&[t(2)]);
        let oldest = s.oldest_age().unwrap();
        assert!(oldest >= Duration::from_millis(5));
        // Cancelling the head makes the younger survivor the oldest.
        s.cancel(&[t(1)]);
        assert!(s.oldest_age().unwrap() < oldest);
    }

    #[test]
    fn no_deadline_is_never_stale() {
        let s = MaintenanceScheduler::new(1, None);
        assert_eq!(s.max_age(), None);
        s.enqueue(&[t(1)]);
        assert!(!s.is_stale());
    }

    #[test]
    fn zero_batch_clamped_to_one() {
        let s = MaintenanceScheduler::new(0, None);
        assert_eq!(s.enqueue(&[t(1)]), (1, true));
    }
}
