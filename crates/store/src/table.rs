//! The per-predicate table: (subject, object) pairs indexed both ways.

use slider_model::{FxHashMap, FxHashSet, NodeId};

/// All triples sharing one predicate, as a bidirectional adjacency index.
///
/// This is the unit of vertical partitioning: `by_s` answers `(p, s, ?)`,
/// `by_o` answers `(p, ?, o)`. Both indexes are kept in lock-step by
/// [`PropertyTable::add`].
///
/// The object index can be disabled
/// ([`PropertyTable::without_object_index`]) to measure the value of the
/// paper's "multiple indexing (on predicates, subjects and objects)"
/// claim — `subjects` then degrades to a partition scan. Used by the
/// ablation benchmark only.
#[derive(Debug, Clone)]
pub struct PropertyTable {
    by_s: FxHashMap<NodeId, FxHashSet<NodeId>>,
    /// `None` when the object index is disabled.
    by_o: Option<FxHashMap<NodeId, FxHashSet<NodeId>>>,
    len: usize,
    /// The explicitly asserted subset of this partition (`explicit ⊆
    /// pairs`; [`PropertyTable::remove`] clears the flag). Keeping the
    /// provenance flag *inside* the partition makes a table a
    /// self-contained shard: moving it between stores (see
    /// `VerticalStore::split_off`) carries the flags along for free.
    explicit: FxHashSet<(NodeId, NodeId)>,
}

impl Default for PropertyTable {
    fn default() -> Self {
        PropertyTable::new()
    }
}

impl PropertyTable {
    /// An empty table with both indexes.
    pub fn new() -> Self {
        PropertyTable {
            by_s: FxHashMap::default(),
            by_o: Some(FxHashMap::default()),
            len: 0,
            explicit: FxHashSet::default(),
        }
    }

    /// An empty table with the object index disabled (ablation mode).
    pub fn without_object_index() -> Self {
        PropertyTable {
            by_s: FxHashMap::default(),
            by_o: None,
            len: 0,
            explicit: FxHashSet::default(),
        }
    }

    /// Inserts the pair; returns `true` if it was not present.
    pub fn add(&mut self, s: NodeId, o: NodeId) -> bool {
        let inserted = self.by_s.entry(s).or_default().insert(o);
        if inserted {
            if let Some(by_o) = &mut self.by_o {
                by_o.entry(o).or_default().insert(s);
            }
            self.len += 1;
        }
        inserted
    }

    /// Removes the pair; returns `true` if it was present.
    ///
    /// Both indexes stay in lock-step, and emptied leaf sets are dropped so
    /// `subject_keys`/`object_keys` never report stale keys.
    pub fn remove(&mut self, s: NodeId, o: NodeId) -> bool {
        let Some(objs) = self.by_s.get_mut(&s) else {
            return false;
        };
        if !objs.remove(&o) {
            return false;
        }
        if objs.is_empty() {
            self.by_s.remove(&s);
        }
        if let Some(by_o) = &mut self.by_o {
            if let Some(subs) = by_o.get_mut(&o) {
                subs.remove(&s);
                if subs.is_empty() {
                    by_o.remove(&o);
                }
            }
        }
        self.explicit.remove(&(s, o));
        self.len -= 1;
        true
    }

    /// Flags a *present* pair as explicitly asserted; returns `true` if the
    /// flag was newly set. Callers must only mark pairs they have
    /// [`add`](PropertyTable::add)ed — the `explicit ⊆ pairs` invariant is
    /// theirs to keep.
    pub fn mark_explicit(&mut self, s: NodeId, o: NodeId) -> bool {
        debug_assert!(self.contains(s, o), "marking an absent pair explicit");
        self.explicit.insert((s, o))
    }

    /// Clears the explicit flag without removing the pair; returns `true`
    /// if the flag was set.
    pub fn unmark_explicit(&mut self, s: NodeId, o: NodeId) -> bool {
        self.explicit.remove(&(s, o))
    }

    /// True if the pair is present and explicitly asserted.
    pub fn is_explicit(&self, s: NodeId, o: NodeId) -> bool {
        self.explicit.contains(&(s, o))
    }

    /// Number of explicitly asserted pairs.
    pub fn explicit_len(&self) -> usize {
        self.explicit.len()
    }

    /// The explicitly asserted `(s, o)` pairs (no ordering guarantee).
    pub fn explicit_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.explicit.iter().copied()
    }

    /// True if the pair is present.
    pub fn contains(&self, s: NodeId, o: NodeId) -> bool {
        self.by_s.get(&s).is_some_and(|set| set.contains(&o))
    }

    /// Objects `o` with `(s, o)` in the table.
    pub fn objects(&self, s: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.by_s.get(&s).into_iter().flatten().copied()
    }

    /// Subjects `s` with `(s, o)` in the table.
    ///
    /// Indexed lookup normally; a partition scan when the object index is
    /// disabled.
    pub fn subjects(&self, o: NodeId) -> Box<dyn Iterator<Item = NodeId> + '_> {
        match &self.by_o {
            Some(by_o) => Box::new(by_o.get(&o).into_iter().flatten().copied()),
            None => Box::new(
                self.by_s
                    .iter()
                    .filter(move |(_, objs)| objs.contains(&o))
                    .map(|(&s, _)| s),
            ),
        }
    }

    /// All `(s, o)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.by_s
            .iter()
            .flat_map(|(&s, objs)| objs.iter().map(move |&o| (s, o)))
    }

    /// Distinct subjects.
    pub fn subject_keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.by_s.keys().copied()
    }

    /// Distinct objects (computed by scan when the object index is off).
    pub fn object_keys(&self) -> Vec<NodeId> {
        match &self.by_o {
            Some(by_o) => by_o.keys().copied().collect(),
            None => {
                let mut all: Vec<NodeId> = self.by_s.values().flatten().copied().collect();
                all.sort_unstable();
                all.dedup();
                all
            }
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Moves every pair whose **subject** satisfies `take` into a new
    /// table, preserving explicit flags. The new table inherits this
    /// table's index mode. This is the subject-range carving primitive
    /// behind `VerticalStore::split_off_subjects`: a predicate partition
    /// stops being the finest grain a shard can move at.
    pub fn split_off_subjects(&mut self, take: impl Fn(NodeId) -> bool) -> PropertyTable {
        let mut carved = if self.by_o.is_some() {
            PropertyTable::new()
        } else {
            PropertyTable::without_object_index()
        };
        let doomed: Vec<NodeId> = self.by_s.keys().copied().filter(|&s| take(s)).collect();
        for s in doomed {
            let objs = self.by_s.remove(&s).expect("key just enumerated");
            for &o in &objs {
                if let Some(by_o) = &mut self.by_o {
                    if let Some(subs) = by_o.get_mut(&o) {
                        subs.remove(&s);
                        if subs.is_empty() {
                            by_o.remove(&o);
                        }
                    }
                }
                self.len -= 1;
                carved.add(s, o);
                if self.explicit.remove(&(s, o)) {
                    carved.mark_explicit(s, o);
                }
            }
        }
        carved
    }

    /// Merges another table of the **same predicate** into this one,
    /// preserving explicit flags. Panics if the two tables share a pair —
    /// merge partners must be disjoint carvings (subject ranges), so a
    /// collision means a carve invariant broke upstream.
    pub fn merge(&mut self, other: PropertyTable) {
        for (s, o) in other.pairs() {
            assert!(
                self.add(s, o),
                "merge: pair ({s:?}, {o:?}) present in both tables"
            );
        }
        for (s, o) in other.explicit_pairs() {
            self.mark_explicit(s, o);
        }
    }

    /// Fan-out of subject `s` (number of objects), 0 if absent.
    pub fn out_degree(&self, s: NodeId) -> usize {
        self.by_s.get(&s).map_or(0, FxHashSet::len)
    }

    /// Fan-in of object `o` (number of subjects), 0 if absent.
    pub fn in_degree(&self, o: NodeId) -> usize {
        match &self.by_o {
            Some(by_o) => by_o.get(&o).map_or(0, FxHashSet::len),
            None => self.subjects(o).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn add_and_contains() {
        let mut t = PropertyTable::new();
        assert!(t.add(n(1), n(2)));
        assert!(t.contains(n(1), n(2)));
        assert!(!t.contains(n(2), n(1)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn add_is_idempotent() {
        let mut t = PropertyTable::new();
        assert!(t.add(n(1), n(2)));
        assert!(!t.add(n(1), n(2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn both_indexes_stay_consistent() {
        let mut t = PropertyTable::new();
        t.add(n(1), n(2));
        t.add(n(1), n(3));
        t.add(n(4), n(2));
        let mut objs: Vec<_> = t.objects(n(1)).collect();
        objs.sort();
        assert_eq!(objs, vec![n(2), n(3)]);
        let mut subs: Vec<_> = t.subjects(n(2)).collect();
        subs.sort();
        assert_eq!(subs, vec![n(1), n(4)]);
        assert_eq!(t.out_degree(n(1)), 2);
        assert_eq!(t.in_degree(n(2)), 2);
        assert_eq!(t.out_degree(n(99)), 0);
    }

    #[test]
    fn pairs_enumerates_everything() {
        let mut t = PropertyTable::new();
        t.add(n(1), n(2));
        t.add(n(3), n(4));
        let mut pairs: Vec<_> = t.pairs().collect();
        pairs.sort();
        assert_eq!(pairs, vec![(n(1), n(2)), (n(3), n(4))]);
    }

    #[test]
    fn missing_keys_iterate_empty() {
        let t = PropertyTable::new();
        assert_eq!(t.objects(n(1)).count(), 0);
        assert_eq!(t.subjects(n(1)).count(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn keys() {
        let mut t = PropertyTable::new();
        t.add(n(1), n(2));
        t.add(n(1), n(3));
        assert_eq!(t.subject_keys().count(), 1);
        assert_eq!(t.object_keys().len(), 2);
    }

    #[test]
    fn remove_keeps_indexes_in_lock_step() {
        let mut t = PropertyTable::new();
        t.add(n(1), n(2));
        t.add(n(1), n(3));
        t.add(n(4), n(2));
        assert!(t.remove(n(1), n(2)));
        assert!(!t.remove(n(1), n(2)), "double remove reports absent");
        assert!(!t.contains(n(1), n(2)));
        assert_eq!(t.len(), 2);
        // The other direction survived.
        assert_eq!(t.objects(n(1)).collect::<Vec<_>>(), vec![n(3)]);
        assert_eq!(t.subjects(n(2)).collect::<Vec<_>>(), vec![n(4)]);
        // Emptied keys disappear from both key sets.
        assert!(t.remove(n(1), n(3)));
        assert!(!t.subject_keys().any(|s| s == n(1)));
        assert!(!t.object_keys().contains(&n(3)));
        assert!(t.remove(n(4), n(2)));
        assert!(t.is_empty());
        assert_eq!(t.subject_keys().count(), 0);
        assert!(t.object_keys().is_empty());
    }

    #[test]
    fn explicit_flags_live_with_the_pair() {
        let mut t = PropertyTable::new();
        t.add(n(1), n(2));
        t.add(n(3), n(4));
        assert!(t.mark_explicit(n(1), n(2)));
        assert!(!t.mark_explicit(n(1), n(2)), "already flagged");
        assert!(t.is_explicit(n(1), n(2)));
        assert!(!t.is_explicit(n(3), n(4)));
        assert_eq!(t.explicit_len(), 1);
        assert_eq!(t.explicit_pairs().collect::<Vec<_>>(), vec![(n(1), n(2))]);
        // Unmark demotes without removing.
        assert!(t.unmark_explicit(n(1), n(2)));
        assert!(!t.unmark_explicit(n(1), n(2)));
        assert!(t.contains(n(1), n(2)));
        // Removal clears the flag.
        t.mark_explicit(n(1), n(2));
        assert!(t.remove(n(1), n(2)));
        assert_eq!(t.explicit_len(), 0);
    }

    #[test]
    fn split_off_subjects_carves_pairs_and_flags() {
        let mut t = PropertyTable::new();
        for (s, o) in [(1, 2), (1, 3), (4, 2), (5, 6)] {
            t.add(n(s), n(o));
        }
        t.mark_explicit(n(1), n(2));
        t.mark_explicit(n(4), n(2));
        let carved = t.split_off_subjects(|s| s.0 % 2 == 0); // subject 4 only
        assert_eq!(carved.len(), 1);
        assert!(carved.contains(n(4), n(2)));
        assert!(carved.is_explicit(n(4), n(2)));
        assert_eq!(t.len(), 3);
        assert!(!t.contains(n(4), n(2)));
        assert!(t.is_explicit(n(1), n(2)));
        // The object index forgot the carved subject.
        assert_eq!(t.subjects(n(2)).collect::<Vec<_>>(), vec![n(1)]);
        assert_eq!(t.in_degree(n(2)), 1);
        // Merge restores the original table exactly.
        t.merge(carved);
        assert_eq!(t.len(), 4);
        assert!(t.is_explicit(n(4), n(2)));
        let mut subs: Vec<_> = t.subjects(n(2)).collect();
        subs.sort();
        assert_eq!(subs, vec![n(1), n(4)]);
    }

    #[test]
    #[should_panic(expected = "present in both tables")]
    fn merge_rejects_overlapping_tables() {
        let mut a = PropertyTable::new();
        a.add(n(1), n(2));
        let mut b = PropertyTable::new();
        b.add(n(1), n(2));
        a.merge(b);
    }

    #[test]
    fn split_off_subjects_in_scan_mode_matches_indexed_mode() {
        let mut indexed = PropertyTable::new();
        let mut scan = PropertyTable::without_object_index();
        for (s, o) in [(1, 2), (2, 2), (3, 4), (4, 6)] {
            indexed.add(n(s), n(o));
            scan.add(n(s), n(o));
        }
        let ci = indexed.split_off_subjects(|s| s.0 <= 2);
        let cs = scan.split_off_subjects(|s| s.0 <= 2);
        let sorted = |t: &PropertyTable| {
            let mut v: Vec<_> = t.pairs().collect();
            v.sort();
            v
        };
        assert_eq!(sorted(&ci), sorted(&cs));
        assert_eq!(sorted(&indexed), sorted(&scan));
        for o in [2, 4, 6] {
            assert_eq!(indexed.in_degree(n(o)), scan.in_degree(n(o)), "object {o}");
        }
    }

    #[test]
    fn remove_in_scan_mode_matches_indexed_mode() {
        let mut indexed = PropertyTable::new();
        let mut scan = PropertyTable::without_object_index();
        for (s, o) in [(1, 2), (1, 3), (4, 2), (5, 6)] {
            indexed.add(n(s), n(o));
            scan.add(n(s), n(o));
        }
        for (s, o) in [(1, 2), (9, 9), (5, 6)] {
            assert_eq!(indexed.remove(n(s), n(o)), scan.remove(n(s), n(o)));
        }
        assert_eq!(indexed.len(), scan.len());
        for o in [2, 3, 6] {
            let mut a: Vec<_> = indexed.subjects(n(o)).collect();
            let mut b: Vec<_> = scan.subjects(n(o)).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "object {o}");
        }
    }

    #[test]
    fn scan_mode_matches_indexed_mode() {
        let mut indexed = PropertyTable::new();
        let mut scan = PropertyTable::without_object_index();
        for (s, o) in [(1, 2), (1, 3), (4, 2), (5, 6), (7, 2)] {
            assert_eq!(indexed.add(n(s), n(o)), scan.add(n(s), n(o)));
        }
        for o in [2, 3, 6, 99] {
            let mut a: Vec<_> = indexed.subjects(n(o)).collect();
            let mut b: Vec<_> = scan.subjects(n(o)).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "object {o}");
            assert_eq!(indexed.in_degree(n(o)), scan.in_degree(n(o)));
        }
        let mut a = indexed.object_keys();
        let mut b = scan.object_keys();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(indexed.len(), scan.len());
    }
}
