//! [`StoreView`] — the uniform read interface over a plain store or a
//! multi-shard snapshot.
//!
//! Rules (and every other reader of triple data) are written against this
//! view instead of a concrete store, so the same join code runs against:
//!
//! * a plain [`VerticalStore`] borrowed whole (`StoreView::Store`) — the
//!   single-threaded baselines, the maintenance subsystem (which holds the
//!   store exclusively), and unit tests; or
//! * a [`StoreSnapshot`](crate::StoreSnapshot) of a [`ShardedStore`](crate::ShardedStore)
//!   (`StoreView::Snapshot`) — the concurrent reasoner's rule instances,
//!   reading a consistent multi-shard snapshot under per-shard read locks.
//!
//! Every predicate-bound access (`objects_with`, `subjects_with`, `pairs`,
//! `contains`, `table` …) routes to the one sub-store owning that
//! predicate — a shard lookup plus the usual hash lookups, no boxing on
//! the hot join paths. Only the full-walk accessors (`iter`,
//! `predicates`, unbound-predicate `matches`) traverse all shards.

use crate::pattern::TriplePattern;
use crate::table::PropertyTable;
use crate::vertical::VerticalStore;
use slider_model::{NodeId, Triple};

/// The object-safe shard-read interface [`StoreView::Snapshot`] builds
/// on: route a predicate to its owning sub-store, or walk every
/// sub-store. [`StoreSnapshot`](crate::StoreSnapshot) implements it over
/// the shard read guards pinned at snapshot construction.
pub trait ShardRead {
    /// The sub-store owning predicate `p`.
    fn store_for(&self, p: NodeId) -> &VerticalStore;
    /// Every sub-store (pinning them all first).
    fn sub_stores(&self) -> Box<dyn Iterator<Item = &VerticalStore> + '_>;
}

/// A borrowed, read-only view of triple data — see the module docs.
///
/// Obtained from [`VerticalStore::view`] or [`StoreSnapshot::view`](crate::StoreSnapshot::view).
/// `Copy`, so it can be passed around freely during one join.
#[derive(Clone, Copy)]
pub enum StoreView<'a> {
    /// A plain store borrowed whole.
    Store(&'a VerticalStore),
    /// A multi-shard read snapshot of a sharded store (all of the
    /// declared read set's shards pinned at construction — see
    /// `ShardedStore::read_for`).
    Snapshot(&'a (dyn ShardRead + 'a)),
}

impl std::fmt::Debug for StoreView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreView::Store(_) => f.write_str("StoreView::Store"),
            StoreView::Snapshot(_) => f.write_str("StoreView::Snapshot"),
        }
    }
}

/// Iterator over the sub-stores a view is composed of (1 for
/// `StoreView::Store`, one per shard for `StoreView::Snapshot`).
enum SubStores<'a> {
    One(std::iter::Once<&'a VerticalStore>),
    Shards(Box<dyn Iterator<Item = &'a VerticalStore> + 'a>),
}

impl<'a> Iterator for SubStores<'a> {
    type Item = &'a VerticalStore;
    fn next(&mut self) -> Option<&'a VerticalStore> {
        match self {
            SubStores::One(it) => it.next(),
            SubStores::Shards(it) => it.next(),
        }
    }
}

impl<'a> StoreView<'a> {
    /// The sub-store owning predicate `p` (the whole store, or `p`'s
    /// shard). Every predicate-bound accessor routes through here.
    #[inline]
    fn store_for(&self, p: NodeId) -> &'a VerticalStore {
        match self {
            StoreView::Store(store) => store,
            StoreView::Snapshot(snap) => snap.store_for(p),
        }
    }

    /// All sub-stores, for the full-walk accessors (pins every shard of a
    /// snapshot view first).
    fn stores(&self) -> impl Iterator<Item = &'a VerticalStore> {
        match self {
            StoreView::Store(store) => SubStores::One(std::iter::once(store)),
            StoreView::Snapshot(snap) => SubStores::Shards(snap.sub_stores()),
        }
    }

    /// The partition for predicate `p`, if any triple uses it.
    #[inline]
    pub fn table(&self, p: NodeId) -> Option<&'a PropertyTable> {
        self.store_for(p).table(p)
    }

    /// True if `t` is present.
    #[inline]
    pub fn contains(&self, t: Triple) -> bool {
        self.store_for(t.p).contains(t)
    }

    /// True if `t` is present *and* explicitly asserted.
    #[inline]
    pub fn is_explicit(&self, t: Triple) -> bool {
        self.store_for(t.p).is_explicit(t)
    }

    /// Objects `o` such that `(s, p, o)` holds — the `(p, s, ?)` pattern.
    #[inline]
    pub fn objects_with(&self, p: NodeId, s: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.store_for(p).objects_with(p, s)
    }

    /// Subjects `s` such that `(s, p, o)` holds — the `(p, ?, o)` pattern.
    #[inline]
    pub fn subjects_with(&self, p: NodeId, o: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.store_for(p).subjects_with(p, o)
    }

    /// All `(s, o)` pairs for predicate `p` — the `(p, ?, ?)` pattern.
    #[inline]
    pub fn pairs(&self, p: NodeId) -> impl Iterator<Item = (NodeId, NodeId)> + 'a {
        self.store_for(p).pairs(p)
    }

    /// Number of triples with predicate `p`.
    #[inline]
    pub fn count_with_p(&self, p: NodeId) -> usize {
        self.store_for(p).count_with_p(p)
    }

    /// Distinct predicates in use (across all shards).
    pub fn predicates(&self) -> impl Iterator<Item = NodeId> + 'a {
        self.stores().flat_map(VerticalStore::predicates)
    }

    /// Iterates over every triple (no ordering guarantee).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + 'a {
        self.stores().flat_map(VerticalStore::iter)
    }

    /// Total number of triples.
    pub fn len(&self) -> usize {
        self.stores().map(VerticalStore::len).sum()
    }

    /// True if the view holds no triples.
    pub fn is_empty(&self) -> bool {
        self.stores().all(VerticalStore::is_empty)
    }

    /// All triples matching `pattern`, routed through the best index: a
    /// bound predicate resolves inside its owning sub-store, an unbound
    /// predicate walks every shard.
    pub fn matches(&self, pattern: TriplePattern) -> Vec<Triple> {
        match pattern.p {
            Some(p) => self.store_for(p).matches(pattern),
            None => self.iter().filter(|&t| pattern.matches(t)).collect(),
        }
    }

    /// All triples, sorted — for deterministic comparisons in tests.
    pub fn to_sorted_vec(&self) -> Vec<Triple> {
        let mut v: Vec<Triple> = self.iter().collect();
        v.sort_unstable();
        v
    }
}

impl<'a> From<&'a VerticalStore> for StoreView<'a> {
    fn from(store: &'a VerticalStore) -> Self {
        StoreView::Store(store)
    }
}

/// A two-layer [`ShardRead`]: a **primary** store carved out for mutation
/// (e.g. one subject sub-bucket of a maintenance partition) overlaid on a
/// read-only **context** store (the rest of the partition's triples).
///
/// Predicate-bound reads route to the primary when it owns a partition
/// for that predicate, falling back to the context otherwise; full walks
/// traverse both. The two layers must hold **disjoint predicate sets**
/// (the carve guarantees it: the affected predicates move to the primary,
/// the remainder stays behind as context) — a predicate present in both
/// would shadow the context's half.
///
/// This is what lets an intra-partition DRed worker mutate its own
/// subject bucket while joining against the *whole* partition: the
/// sub-split plan only qualifies rules whose touched inputs are
/// subject-local, so cross-bucket reads can only hit context predicates —
/// which no worker mutates.
pub struct Overlay<'a> {
    primary: &'a VerticalStore,
    context: &'a VerticalStore,
}

impl<'a> Overlay<'a> {
    /// Overlays `primary` (the mutable carve, borrowed for this read) on
    /// `context` (the read-only remainder).
    pub fn new(primary: &'a VerticalStore, context: &'a VerticalStore) -> Self {
        Overlay { primary, context }
    }

    /// A [`StoreView`] over this overlay.
    pub fn view(&'a self) -> StoreView<'a> {
        StoreView::Snapshot(self)
    }
}

impl ShardRead for Overlay<'_> {
    fn store_for(&self, p: NodeId) -> &VerticalStore {
        if self.primary.table(p).is_some() {
            self.primary
        } else {
            self.context
        }
    }
    fn sub_stores(&self) -> Box<dyn Iterator<Item = &VerticalStore> + '_> {
        Box::new([self.primary, self.context].into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardedStore;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    fn sample() -> Vec<Triple> {
        vec![
            t(1, 10, 2),
            t(1, 10, 3),
            t(4, 10, 2),
            t(1, 20, 2),
            t(5, 30, 6),
        ]
    }

    /// Whole-store and snapshot views must answer identically on every
    /// accessor, for any shard count.
    #[test]
    fn snapshot_view_agrees_with_whole_store_view() {
        let plain: VerticalStore = sample().into_iter().collect();
        for shards in [1, 2, 16] {
            let sharded = ShardedStore::from_store_sharded(plain.clone(), shards);
            let snap = sharded.read();
            let a = plain.view();
            let b = snap.view();
            assert_eq!(a.len(), b.len());
            assert_eq!(a.is_empty(), b.is_empty());
            assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
            let mut pa: Vec<NodeId> = a.predicates().collect();
            let mut pb: Vec<NodeId> = b.predicates().collect();
            pa.sort();
            pb.sort();
            assert_eq!(pa, pb, "shards={shards}");
            for p in [10, 20, 30, 99] {
                let p = NodeId(p);
                assert_eq!(a.count_with_p(p), b.count_with_p(p));
                assert_eq!(a.table(p).is_some(), b.table(p).is_some());
                let mut qa: Vec<_> = a.pairs(p).collect();
                let mut qb: Vec<_> = b.pairs(p).collect();
                qa.sort();
                qb.sort();
                assert_eq!(qa, qb);
            }
            for &tr in &sample() {
                assert!(b.contains(tr));
                assert_eq!(
                    a.objects_with(tr.p, tr.s).count(),
                    b.objects_with(tr.p, tr.s).count()
                );
                assert_eq!(
                    a.subjects_with(tr.p, tr.o).count(),
                    b.subjects_with(tr.p, tr.o).count()
                );
            }
            assert!(!b.contains(t(9, 9, 9)));
        }
    }

    /// `matches` on a snapshot view agrees with a brute-force scan for
    /// every pattern shape, including the unbound-predicate full walk.
    #[test]
    fn snapshot_matches_agrees_with_reference() {
        let triples = sample();
        let sharded = ShardedStore::from_store_sharded(triples.iter().copied().collect(), 4);
        let snap = sharded.read();
        let view = snap.view();
        let ids: Vec<Option<NodeId>> = vec![
            None,
            Some(NodeId(1)),
            Some(NodeId(10)),
            Some(NodeId(2)),
            Some(NodeId(99)),
        ];
        for &s in &ids {
            for &p in &ids {
                for &o in &ids {
                    let pat = TriplePattern::new(s, p, o);
                    let mut got = view.matches(pat);
                    got.sort_unstable();
                    let mut want: Vec<Triple> = triples
                        .iter()
                        .copied()
                        .filter(|&x| pat.matches(x))
                        .collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "pattern {pat:?}");
                }
            }
        }
    }

    /// An overlay view must answer exactly like the union store, for
    /// every accessor, as long as the layers' predicate sets are disjoint.
    #[test]
    fn overlay_view_agrees_with_the_union_store() {
        let mut primary = VerticalStore::new();
        primary.insert_explicit(t(1, 10, 2));
        primary.insert(t(4, 10, 2));
        let mut context = VerticalStore::new();
        context.insert(t(1, 20, 2));
        context.insert_explicit(t(5, 30, 6));
        let union: VerticalStore = primary.iter().chain(context.iter()).collect();

        let overlay = Overlay::new(&primary, &context);
        let view = overlay.view();
        assert_eq!(view.len(), union.len());
        assert_eq!(view.to_sorted_vec(), union.to_sorted_vec());
        for p in [10, 20, 30, 99] {
            let p = NodeId(p);
            assert_eq!(view.count_with_p(p), union.count_with_p(p));
            let mut got: Vec<_> = view.pairs(p).collect();
            let mut want: Vec<_> = union.pairs(p).collect();
            got.sort();
            want.sort();
            assert_eq!(got, want, "predicate {p:?}");
        }
        assert!(view.contains(t(1, 20, 2)));
        assert!(view.is_explicit(t(1, 10, 2)));
        assert!(view.is_explicit(t(5, 30, 6)));
        assert!(!view.is_explicit(t(4, 10, 2)));
        assert!(!view.contains(t(9, 9, 9)));
        let mut preds: Vec<_> = view.predicates().collect();
        preds.sort();
        assert_eq!(preds, vec![NodeId(10), NodeId(20), NodeId(30)]);
        assert_eq!(
            view.matches(TriplePattern::with_p(NodeId(20))),
            vec![t(1, 20, 2)]
        );
    }

    #[test]
    fn explicit_flags_visible_through_view() {
        let mut plain = VerticalStore::new();
        plain.insert_explicit(t(1, 10, 2));
        plain.insert(t(3, 10, 4));
        assert!(plain.view().is_explicit(t(1, 10, 2)));
        assert!(!plain.view().is_explicit(t(3, 10, 4)));
        let sharded = ShardedStore::from_store_sharded(plain, 8);
        let snap = sharded.read();
        assert!(snap.view().is_explicit(t(1, 10, 2)));
        assert!(!snap.view().is_explicit(t(3, 10, 4)));
    }
}
