//! Triple patterns: triples with optional wildcard positions.

use slider_model::{NodeId, Triple};

/// A triple pattern; `None` positions are wildcards.
///
/// Used by [`VerticalStore::matches`](crate::VerticalStore::matches) and in
/// tests as a declarative query form. The reasoner's hot paths use the
/// specialised accessors instead (they avoid the per-position branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TriplePattern {
    /// Subject, or wildcard.
    pub s: Option<NodeId>,
    /// Predicate, or wildcard.
    pub p: Option<NodeId>,
    /// Object, or wildcard.
    pub o: Option<NodeId>,
}

impl TriplePattern {
    /// The all-wildcard pattern.
    pub const ANY: TriplePattern = TriplePattern {
        s: None,
        p: None,
        o: None,
    };

    /// Builds a pattern from optional positions.
    pub fn new(s: Option<NodeId>, p: Option<NodeId>, o: Option<NodeId>) -> Self {
        TriplePattern { s, p, o }
    }

    /// Pattern with only the predicate bound.
    pub fn with_p(p: NodeId) -> Self {
        TriplePattern {
            s: None,
            p: Some(p),
            o: None,
        }
    }

    /// Pattern with predicate and subject bound.
    pub fn with_ps(p: NodeId, s: NodeId) -> Self {
        TriplePattern {
            s: Some(s),
            p: Some(p),
            o: None,
        }
    }

    /// Pattern with predicate and object bound.
    pub fn with_po(p: NodeId, o: NodeId) -> Self {
        TriplePattern {
            s: None,
            p: Some(p),
            o: Some(o),
        }
    }

    /// True if `t` matches this pattern.
    #[inline]
    pub fn matches(&self, t: Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }

    /// Number of bound positions (0–3); a selectivity proxy.
    pub fn bound_positions(&self) -> usize {
        usize::from(self.s.is_some())
            + usize::from(self.p.is_some())
            + usize::from(self.o.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn any_matches_everything() {
        assert!(TriplePattern::ANY.matches(t(1, 2, 3)));
        assert_eq!(TriplePattern::ANY.bound_positions(), 0);
    }

    #[test]
    fn bound_positions_filter() {
        let pat = TriplePattern::with_p(NodeId(2));
        assert!(pat.matches(t(1, 2, 3)));
        assert!(!pat.matches(t(1, 9, 3)));

        let pat = TriplePattern::with_ps(NodeId(2), NodeId(1));
        assert!(pat.matches(t(1, 2, 3)));
        assert!(!pat.matches(t(5, 2, 3)));

        let pat = TriplePattern::with_po(NodeId(2), NodeId(3));
        assert!(pat.matches(t(1, 2, 3)));
        assert!(!pat.matches(t(1, 2, 4)));
    }

    #[test]
    fn fully_bound() {
        let pat = TriplePattern::new(Some(NodeId(1)), Some(NodeId(2)), Some(NodeId(3)));
        assert!(pat.matches(t(1, 2, 3)));
        assert!(!pat.matches(t(1, 2, 9)));
        assert_eq!(pat.bound_positions(), 3);
    }
}
