//! The single-threaded vertically partitioned store.

use crate::pattern::TriplePattern;
use crate::table::PropertyTable;
use crate::view::StoreView;
use slider_model::{FxHashMap, NodeId, Triple};
use std::sync::Arc;

/// The deterministic subject → bucket map used by subject-range carving.
///
/// Every layer that reasons about subject sub-partitions (the store's
/// [`VerticalStore::split_off_subjects`], the maintenance planner's
/// sub-split plan, the tests that construct provably-disjoint subject
/// ranges) must agree on this function, so it lives here and is `pub`.
/// `k = 1` maps everything to bucket 0 (the "no sub-split" identity);
/// the hash is the same Fibonacci multiplier the sharded store uses for
/// predicates, so consecutive subject ids spread evenly.
pub fn subject_bucket(s: NodeId, k: usize) -> usize {
    if k <= 1 {
        return 0;
    }
    (s.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % k
}

/// An in-memory triple store, vertically partitioned by predicate.
///
/// Insertion is idempotent (duplicate triples are detected and rejected),
/// and every rule-relevant access pattern is a hash lookup — see the crate
/// docs for the index rationale.
///
/// ## Provenance
///
/// The store tracks a per-triple provenance flag: a triple is **explicit**
/// if it was asserted through one of the `*_explicit` insertion paths (the
/// reasoner's input manager uses these for raw input), and **derived**
/// otherwise (rule conclusions use plain [`VerticalStore::insert`]). The
/// flag is what truth maintenance needs: retracting an assertion may only
/// delete derived consequences — explicit facts survive on their own
/// authority and are only deleted when themselves retracted.
///
/// ## Copy-on-write tables
///
/// Each partition lives behind an [`Arc`], so **`Clone` is O(#predicates)**
/// (reference bumps, no triple copies). A mutation on a shared table
/// ([`Arc::make_mut`]) deep-clones that one table first — the mechanism the
/// concurrent store's epoch snapshots are built on: publishing a snapshot
/// clones the store cheaply, and only the tables touched afterwards pay a
/// copy, once per publish cycle.
#[derive(Debug, Clone)]
pub struct VerticalStore {
    tables: FxHashMap<NodeId, Arc<PropertyTable>>,
    len: usize,
    object_index: bool,
    /// Number of explicitly asserted triples. The flags themselves live in
    /// the per-predicate tables (`explicit ⊆ store` always holds: removal
    /// clears the flag, and marking inserts the triple), so moving a table
    /// between stores — [`VerticalStore::split_off`] /
    /// [`VerticalStore::absorb`] — carries provenance with it.
    explicit_len: usize,
}

impl Default for VerticalStore {
    fn default() -> Self {
        VerticalStore::new()
    }
}

/// Summary statistics of a store (used by the demo player and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total number of distinct triples (`explicit + derived`).
    pub triples: usize,
    /// Triples asserted through the explicit insertion paths
    /// ([`VerticalStore::insert_explicit`] and friends) and not since
    /// retracted. Stores fed only through plain [`VerticalStore::insert`]
    /// (e.g. the batch baselines) report 0 here.
    pub explicit: usize,
    /// Triples present but not explicit — rule conclusions (or plain
    /// inserts). Always `triples - explicit`.
    pub derived: usize,
    /// Number of distinct predicates (= vertical partitions).
    pub predicates: usize,
    /// Size of the largest partition.
    pub largest_partition: usize,
}

impl VerticalStore {
    /// An empty store with full indexing.
    pub fn new() -> Self {
        VerticalStore {
            tables: FxHashMap::default(),
            len: 0,
            object_index: true,
            explicit_len: 0,
        }
    }

    /// An empty store without the per-predicate object index — the
    /// "predicate + subject only" indexing ablation (see `PropertyTable`).
    pub fn without_object_index() -> Self {
        VerticalStore {
            tables: FxHashMap::default(),
            len: 0,
            object_index: false,
            explicit_len: 0,
        }
    }

    /// Inserts `t`; returns `true` if it was new.
    pub fn insert(&mut self, t: Triple) -> bool {
        let object_index = self.object_index;
        let tab = self.tables.entry(t.p).or_insert_with(|| {
            Arc::new(if object_index {
                PropertyTable::new()
            } else {
                PropertyTable::without_object_index()
            })
        });
        // Duplicate check before `make_mut`: a no-op insert must not force
        // a copy-on-write clone of a snapshot-shared table.
        if tab.contains(t.s, t.o) {
            return false;
        }
        Arc::make_mut(tab).add(t.s, t.o);
        self.len += 1;
        true
    }

    /// Inserts a batch, appending the *new* triples to `fresh`.
    /// Returns how many were new.
    pub fn insert_batch(&mut self, triples: &[Triple], fresh: &mut Vec<Triple>) -> usize {
        let before = fresh.len();
        for &t in triples {
            if self.insert(t) {
                fresh.push(t);
            }
        }
        fresh.len() - before
    }

    /// Inserts `t` and marks it **explicit** (asserted). Returns `true` if
    /// the triple was new to the store — a triple already present as
    /// derived is *not* new (it changes provenance only).
    pub fn insert_explicit(&mut self, t: Triple) -> bool {
        let inserted = self.insert(t);
        // The table exists after `insert` even when the triple was a
        // duplicate. Flag check before `make_mut`, as in `insert`.
        let tab = self
            .tables
            .get_mut(&t.p)
            .expect("insert created the partition");
        if !tab.is_explicit(t.s, t.o) {
            Arc::make_mut(tab).mark_explicit(t.s, t.o);
            self.explicit_len += 1;
        }
        inserted
    }

    /// Explicit-marking [`VerticalStore::insert_batch`]: inserts a batch as
    /// asserted facts, appending the *new* triples to `fresh`.
    pub fn insert_batch_explicit(&mut self, triples: &[Triple], fresh: &mut Vec<Triple>) -> usize {
        let before = fresh.len();
        for &t in triples {
            if self.insert_explicit(t) {
                fresh.push(t);
            }
        }
        fresh.len() - before
    }

    /// Removes `t` (and its explicit flag, if any); returns `true` if it
    /// was present. Emptied partitions are dropped so `predicates()` never
    /// reports a predicate with zero triples.
    pub fn remove(&mut self, t: Triple) -> bool {
        let Some(tab) = self.tables.get_mut(&t.p) else {
            return false;
        };
        // Presence check before `make_mut`: an absent triple must not force
        // a copy-on-write clone of a snapshot-shared table.
        if !tab.contains(t.s, t.o) {
            return false;
        }
        let was_explicit = tab.is_explicit(t.s, t.o);
        Arc::make_mut(tab).remove(t.s, t.o);
        if tab.is_empty() {
            self.tables.remove(&t.p);
        }
        self.len -= 1;
        if was_explicit {
            self.explicit_len -= 1;
        }
        true
    }

    /// Removes a batch, appending the triples that were actually present
    /// to `removed`. Returns how many were present.
    pub fn remove_batch(&mut self, triples: &[Triple], removed: &mut Vec<Triple>) -> usize {
        let before = removed.len();
        for &t in triples {
            if self.remove(t) {
                removed.push(t);
            }
        }
        removed.len() - before
    }

    /// True if `t` is present *and* explicitly asserted.
    pub fn is_explicit(&self, t: Triple) -> bool {
        self.tables
            .get(&t.p)
            .is_some_and(|tab| tab.is_explicit(t.s, t.o))
    }

    /// Clears the explicit flag of `t` without removing the triple
    /// (demotes an assertion to a derived fact). Returns `true` if the
    /// flag was set. Truth maintenance uses this as the first step of a
    /// retraction: the triple then lives or dies by rederivability alone.
    pub fn unmark_explicit(&mut self, t: Triple) -> bool {
        let Some(tab) = self.tables.get_mut(&t.p) else {
            return false;
        };
        if !tab.is_explicit(t.s, t.o) {
            return false;
        }
        Arc::make_mut(tab).unmark_explicit(t.s, t.o);
        self.explicit_len -= 1;
        true
    }

    /// Number of explicitly asserted triples.
    pub fn explicit_count(&self) -> usize {
        self.explicit_len
    }

    /// Number of derived (non-explicit) triples.
    pub fn derived_count(&self) -> usize {
        self.len - self.explicit_len
    }

    /// Iterates over the explicitly asserted triples (no ordering
    /// guarantee).
    pub fn explicit_iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.tables
            .iter()
            .flat_map(|(&p, tab)| tab.explicit_pairs().map(move |(s, o)| Triple::new(s, p, o)))
    }

    /// Moves the partitions of `preds` out into a new store (same indexing
    /// mode), per-triple explicit flags included. Predicates with no
    /// triples are skipped. O(#preds) — the tables move wholesale, which
    /// is what lets a partitioned maintenance pass hand disjoint shards of
    /// one store to parallel workers and [`absorb`](VerticalStore::absorb)
    /// them back.
    pub fn split_off(&mut self, preds: &[NodeId]) -> VerticalStore {
        let mut split = if self.object_index {
            VerticalStore::new()
        } else {
            VerticalStore::without_object_index()
        };
        for &p in preds {
            let Some(tab) = self.tables.remove(&p) else {
                continue;
            };
            self.len -= tab.len();
            self.explicit_len -= tab.explicit_len();
            split.len += tab.len();
            split.explicit_len += tab.explicit_len();
            split.tables.insert(p, tab);
        }
        split
    }

    /// Moves every pair whose **subject** satisfies `take` into a new
    /// store (same indexing mode), per-triple explicit flags included —
    /// the subject-range analogue of [`VerticalStore::split_off`].
    /// Partitions emptied by the carve are dropped; untouched partitions
    /// stay `Arc`-shared (a table with no taken subject pays no
    /// copy-on-write clone). This is what lets an intra-partition
    /// maintenance pass hand *subject sub-buckets of one rule family* to
    /// parallel workers and [`absorb`](VerticalStore::absorb) them back.
    pub fn split_off_subjects(&mut self, take: impl Fn(NodeId) -> bool) -> VerticalStore {
        let mut split = if self.object_index {
            VerticalStore::new()
        } else {
            VerticalStore::without_object_index()
        };
        let mut emptied = Vec::new();
        for (&p, tab) in &mut self.tables {
            // Copy-on-write discipline: never `make_mut` a table the carve
            // would not touch.
            if !tab.subject_keys().any(&take) {
                continue;
            }
            let carved = Arc::make_mut(tab).split_off_subjects(&take);
            self.len -= carved.len();
            self.explicit_len -= carved.explicit_len();
            split.len += carved.len();
            split.explicit_len += carved.explicit_len();
            split.tables.insert(p, Arc::new(carved));
            if tab.is_empty() {
                emptied.push(p);
            }
        }
        for p in emptied {
            self.tables.remove(&p);
        }
        split
    }

    /// Moves every partition of `other` into this store — the inverse of
    /// [`VerticalStore::split_off`] *and* of
    /// [`VerticalStore::split_off_subjects`]. A predicate present in both
    /// stores is **merged** pair-by-pair (explicit flags preserved) — the
    /// case where `other` is a subject sub-bucket of a partition this
    /// store kept the rest of.
    ///
    /// # Panics
    ///
    /// Panics if the two stores share a *triple*: absorb re-attaches
    /// disjoint carvings (by predicate or by subject range); an
    /// overlapping triple means a carve invariant broke upstream.
    pub fn absorb(&mut self, other: VerticalStore) {
        for (p, tab) in other.tables {
            self.len += tab.len();
            self.explicit_len += tab.explicit_len();
            match self.tables.entry(p) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(tab);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let mine = Arc::make_mut(slot.get_mut());
                    let theirs = Arc::try_unwrap(tab).unwrap_or_else(|arc| (*arc).clone());
                    mine.merge(theirs);
                }
            }
        }
    }

    /// True if `t` is present.
    pub fn contains(&self, t: Triple) -> bool {
        self.tables
            .get(&t.p)
            .is_some_and(|tab| tab.contains(t.s, t.o))
    }

    /// Total number of triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The partition for predicate `p`, if any triple uses it.
    pub fn table(&self, p: NodeId) -> Option<&PropertyTable> {
        self.tables.get(&p).map(|tab| &**tab)
    }

    /// Iterates over every partition as a `(predicate, table)` pair (no
    /// ordering guarantee) — the per-shard walk the multi-shard
    /// [`StoreView`] composes across sub-stores.
    pub fn tables(&self) -> impl Iterator<Item = (NodeId, &PropertyTable)> + '_ {
        self.tables.iter().map(|(&p, tab)| (p, &**tab))
    }

    /// True if this store maintains the per-predicate object index (see
    /// [`VerticalStore::without_object_index`]). Sharded wrappers use this
    /// to build shards in the matching indexing mode.
    pub fn has_object_index(&self) -> bool {
        self.object_index
    }

    /// A [`StoreView`] borrowing this store whole — the read interface
    /// rules are written against, so the same rule code joins against a
    /// plain store or a multi-shard snapshot.
    pub fn view(&self) -> StoreView<'_> {
        StoreView::Store(self)
    }

    /// Objects `o` such that `(s, p, o)` holds — the `(p, s, ?)` pattern.
    pub fn objects_with(&self, p: NodeId, s: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.tables
            .get(&p)
            .into_iter()
            .flat_map(move |t| t.objects(s))
    }

    /// Subjects `s` such that `(s, p, o)` holds — the `(p, ?, o)` pattern.
    pub fn subjects_with(&self, p: NodeId, o: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.tables
            .get(&p)
            .into_iter()
            .flat_map(move |t| t.subjects(o))
    }

    /// All `(s, o)` pairs for predicate `p` — the `(p, ?, ?)` pattern.
    pub fn pairs(&self, p: NodeId) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.tables.get(&p).into_iter().flat_map(|tab| tab.pairs())
    }

    /// Distinct predicates in use.
    pub fn predicates(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.tables.keys().copied()
    }

    /// Iterates over every triple (no ordering guarantee).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.tables
            .iter()
            .flat_map(|(&p, tab)| tab.pairs().map(move |(s, o)| Triple::new(s, p, o)))
    }

    /// All triples matching `pattern`, routed through the best index.
    pub fn matches(&self, pattern: TriplePattern) -> Vec<Triple> {
        match (pattern.s, pattern.p, pattern.o) {
            (_, Some(p), _) => self.matches_with_p(p, pattern),
            // Unbound predicate: walk every partition (the paper notes some
            // OWL rules need the full walk; ρdf/RDFS never take this path in
            // hot loops).
            _ => self.iter().filter(|&t| pattern.matches(t)).collect(),
        }
    }

    fn matches_with_p(&self, p: NodeId, pattern: TriplePattern) -> Vec<Triple> {
        let Some(tab) = self.tables.get(&p) else {
            return Vec::new();
        };
        match (pattern.s, pattern.o) {
            (Some(s), Some(o)) => {
                if tab.contains(s, o) {
                    vec![Triple::new(s, p, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), None) => tab.objects(s).map(|o| Triple::new(s, p, o)).collect(),
            (None, Some(o)) => tab.subjects(o).map(|s| Triple::new(s, p, o)).collect(),
            (None, None) => tab.pairs().map(|(s, o)| Triple::new(s, p, o)).collect(),
        }
    }

    /// Number of triples with predicate `p`.
    pub fn count_with_p(&self, p: NodeId) -> usize {
        self.tables.get(&p).map_or(0, |tab| tab.len())
    }

    /// Store statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            triples: self.len,
            explicit: self.explicit_len,
            derived: self.len - self.explicit_len,
            predicates: self.tables.len(),
            largest_partition: self.tables.values().map(|tab| tab.len()).max().unwrap_or(0),
        }
    }

    /// All triples, sorted — for deterministic comparisons in tests.
    pub fn to_sorted_vec(&self) -> Vec<Triple> {
        let mut v: Vec<Triple> = self.iter().collect();
        v.sort_unstable();
        v
    }
}

impl FromIterator<Triple> for VerticalStore {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut store = VerticalStore::new();
        for t in iter {
            store.insert(t);
        }
        store
    }
}

impl Extend<Triple> for VerticalStore {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn insert_and_contains() {
        let mut st = VerticalStore::new();
        assert!(st.insert(t(1, 2, 3)));
        assert!(st.contains(t(1, 2, 3)));
        assert!(!st.contains(t(3, 2, 1)));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut st = VerticalStore::new();
        assert!(st.insert(t(1, 2, 3)));
        assert!(!st.insert(t(1, 2, 3)));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn insert_batch_reports_fresh_only() {
        let mut st = VerticalStore::new();
        st.insert(t(1, 2, 3));
        let mut fresh = Vec::new();
        let n = st.insert_batch(
            &[t(1, 2, 3), t(4, 2, 3), t(4, 2, 3), t(5, 6, 7)],
            &mut fresh,
        );
        assert_eq!(n, 2);
        assert_eq!(fresh, vec![t(4, 2, 3), t(5, 6, 7)]);
        assert_eq!(st.len(), 3);
    }

    #[test]
    fn indexed_accessors() {
        let mut st = VerticalStore::new();
        st.insert(t(1, 10, 2));
        st.insert(t(1, 10, 3));
        st.insert(t(4, 10, 2));
        st.insert(t(1, 20, 2));
        let mut objs: Vec<_> = st.objects_with(NodeId(10), NodeId(1)).collect();
        objs.sort();
        assert_eq!(objs, vec![NodeId(2), NodeId(3)]);
        let mut subs: Vec<_> = st.subjects_with(NodeId(10), NodeId(2)).collect();
        subs.sort();
        assert_eq!(subs, vec![NodeId(1), NodeId(4)]);
        assert_eq!(st.pairs(NodeId(10)).count(), 3);
        assert_eq!(st.pairs(NodeId(99)).count(), 0);
        assert_eq!(st.count_with_p(NodeId(20)), 1);
    }

    #[test]
    fn iter_covers_all_partitions() {
        let mut st = VerticalStore::new();
        st.insert(t(1, 10, 2));
        st.insert(t(1, 20, 2));
        st.insert(t(3, 30, 4));
        assert_eq!(st.iter().count(), 3);
        assert_eq!(st.predicates().count(), 3);
    }

    /// `matches` must agree with a brute-force scan for every pattern shape.
    #[test]
    fn matches_agrees_with_reference() {
        let triples = [
            t(1, 10, 2),
            t(1, 10, 3),
            t(4, 10, 2),
            t(1, 20, 2),
            t(5, 20, 6),
        ];
        let st: VerticalStore = triples.iter().copied().collect();
        let ids: Vec<Option<NodeId>> = vec![
            None,
            Some(NodeId(1)),
            Some(NodeId(10)),
            Some(NodeId(2)),
            Some(NodeId(99)),
        ];
        for &s in &ids {
            for &p in &ids {
                for &o in &ids {
                    let pat = TriplePattern::new(s, p, o);
                    let mut got = st.matches(pat);
                    got.sort_unstable();
                    let mut want: Vec<Triple> = triples
                        .iter()
                        .copied()
                        .filter(|&x| pat.matches(x))
                        .collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "pattern {pat:?}");
                }
            }
        }
    }

    #[test]
    fn stats() {
        let mut st = VerticalStore::new();
        st.insert_explicit(t(1, 10, 2));
        st.insert(t(2, 10, 3));
        st.insert(t(1, 20, 2));
        let s = st.stats();
        assert_eq!(s.triples, 3);
        assert_eq!(s.explicit, 1);
        assert_eq!(s.derived, 2);
        assert_eq!(s.predicates, 2);
        assert_eq!(s.largest_partition, 2);
    }

    #[test]
    fn remove_and_repartition() {
        let mut st = VerticalStore::new();
        st.insert(t(1, 10, 2));
        st.insert(t(1, 10, 3));
        st.insert(t(4, 20, 5));
        assert!(st.remove(t(1, 10, 2)));
        assert!(!st.remove(t(1, 10, 2)), "double remove reports absent");
        assert!(!st.remove(t(9, 99, 9)), "unknown predicate is a no-op");
        assert_eq!(st.len(), 2);
        assert!(!st.contains(t(1, 10, 2)));
        assert!(st.contains(t(1, 10, 3)));
        // Removing the last triple of a partition drops the partition.
        assert!(st.remove(t(4, 20, 5)));
        assert_eq!(st.predicates().count(), 1);
        assert_eq!(st.count_with_p(NodeId(20)), 0);
        // Re-insert after removal works.
        assert!(st.insert(t(4, 20, 5)));
        assert_eq!(st.predicates().count(), 2);
    }

    #[test]
    fn remove_batch_reports_present_only() {
        let mut st = VerticalStore::new();
        st.insert(t(1, 2, 3));
        st.insert(t(4, 2, 3));
        let mut removed = Vec::new();
        let n = st.remove_batch(&[t(1, 2, 3), t(9, 9, 9), t(1, 2, 3)], &mut removed);
        assert_eq!(n, 1);
        assert_eq!(removed, vec![t(1, 2, 3)]);
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn provenance_flags() {
        let mut st = VerticalStore::new();
        // Derived first, then asserted: not "new", but flagged.
        assert!(st.insert(t(1, 2, 3)));
        assert!(!st.is_explicit(t(1, 2, 3)));
        assert!(!st.insert_explicit(t(1, 2, 3)));
        assert!(st.is_explicit(t(1, 2, 3)));
        assert_eq!(st.explicit_count(), 1);
        assert_eq!(st.derived_count(), 0);
        // Unmarking demotes without removing.
        assert!(st.unmark_explicit(t(1, 2, 3)));
        assert!(!st.unmark_explicit(t(1, 2, 3)));
        assert!(st.contains(t(1, 2, 3)));
        assert_eq!(st.derived_count(), 1);
        // Removal clears the flag too.
        let mut fresh = Vec::new();
        st.insert_batch_explicit(&[t(4, 5, 6)], &mut fresh);
        assert_eq!(fresh, vec![t(4, 5, 6)]);
        assert!(st.remove(t(4, 5, 6)));
        assert!(!st.is_explicit(t(4, 5, 6)));
        assert_eq!(st.explicit_iter().count(), 0);
    }

    #[test]
    fn split_off_and_absorb_round_trip_with_provenance() {
        let mut st = VerticalStore::new();
        st.insert_explicit(t(1, 10, 2));
        st.insert(t(3, 10, 4));
        st.insert_explicit(t(5, 20, 6));
        st.insert(t(7, 30, 8));
        let before = st.to_sorted_vec();

        // Split two of the three partitions (plus an absent predicate).
        let split = st.split_off(&[NodeId(10), NodeId(30), NodeId(99)]);
        assert_eq!(split.len(), 3);
        assert_eq!(split.explicit_count(), 1);
        assert!(split.is_explicit(t(1, 10, 2)));
        assert!(!split.is_explicit(t(3, 10, 4)));
        assert_eq!(st.len(), 1);
        assert_eq!(st.explicit_count(), 1);
        assert!(!st.contains(t(1, 10, 2)));
        assert!(st.is_explicit(t(5, 20, 6)));
        assert_eq!(st.predicates().count(), 1);

        // The shard is a fully functional store.
        let mut split = split;
        assert!(split.remove(t(3, 10, 4)));
        assert!(split.insert(t(3, 10, 4)));

        st.absorb(split);
        assert_eq!(st.to_sorted_vec(), before);
        assert_eq!(st.explicit_count(), 2);
        assert!(st.is_explicit(t(1, 10, 2)));
        assert_eq!(st.stats().predicates, 3);
    }

    #[test]
    fn split_off_preserves_indexing_mode() {
        let mut st = VerticalStore::without_object_index();
        st.insert(t(1, 10, 2));
        let split = st.split_off(&[NodeId(10)]);
        // A store without the object index splits into one without it too:
        // subjects() falls back to the scan path, which still answers.
        assert_eq!(
            split
                .subjects_with(NodeId(10), NodeId(2))
                .collect::<Vec<_>>(),
            vec![NodeId(1)]
        );
    }

    #[test]
    fn absorb_merges_same_predicate_disjoint_subjects() {
        let mut a = VerticalStore::new();
        a.insert_explicit(t(1, 10, 2));
        a.insert(t(3, 10, 4));
        let mut b = VerticalStore::new();
        b.insert_explicit(t(5, 10, 6));
        b.insert(t(7, 20, 8));
        a.absorb(b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.explicit_count(), 2);
        assert!(a.is_explicit(t(5, 10, 6)));
        assert!(a.contains(t(3, 10, 4)));
        // The merged partition's object index answers across both halves.
        assert_eq!(
            a.subjects_with(NodeId(10), NodeId(6)).collect::<Vec<_>>(),
            vec![NodeId(5)]
        );
    }

    #[test]
    #[should_panic(expected = "present in both tables")]
    fn absorb_rejects_overlapping_triples() {
        let mut a = VerticalStore::new();
        a.insert(t(1, 10, 2));
        let mut b = VerticalStore::new();
        b.insert(t(1, 10, 2));
        a.absorb(b);
    }

    #[test]
    fn split_off_subjects_round_trips_with_provenance() {
        let mut st = VerticalStore::new();
        st.insert_explicit(t(1, 10, 2));
        st.insert(t(2, 10, 3));
        st.insert_explicit(t(2, 20, 4));
        st.insert(t(5, 30, 6));
        let before = st.to_sorted_vec();

        let split = st.split_off_subjects(|s| s.0 == 2);
        assert_eq!(split.len(), 2);
        assert_eq!(split.explicit_count(), 1);
        assert!(split.contains(t(2, 10, 3)));
        assert!(split.is_explicit(t(2, 20, 4)));
        assert_eq!(st.len(), 2);
        assert_eq!(st.explicit_count(), 1);
        assert!(st.is_explicit(t(1, 10, 2)));
        assert!(!st.contains(t(2, 10, 3)));
        // Partition 20 was emptied by the carve and dropped.
        assert_eq!(st.count_with_p(NodeId(20)), 0);
        assert!(!st.predicates().any(|p| p == NodeId(20)));

        st.absorb(split);
        assert_eq!(st.to_sorted_vec(), before);
        assert_eq!(st.explicit_count(), 2);
    }

    #[test]
    fn split_off_subjects_leaves_untouched_tables_shared() {
        let mut st = VerticalStore::new();
        st.insert(t(1, 10, 2));
        st.insert(t(3, 20, 4));
        let snap = st.clone(); // shares both tables
        let split = st.split_off_subjects(|s| s.0 == 1);
        // Partition 20 had no taken subject: still Arc-shared with the
        // snapshot (no copy-on-write clone was forced).
        assert!(Arc::ptr_eq(
            st.tables.get(&NodeId(20)).unwrap(),
            snap.tables.get(&NodeId(20)).unwrap()
        ));
        assert_eq!(split.len(), 1);
        assert!(snap.contains(t(1, 10, 2)), "snapshot must be immutable");
    }

    #[test]
    fn subject_bucket_is_deterministic_and_total() {
        for s in 0..1_000u64 {
            assert_eq!(subject_bucket(NodeId(s), 1), 0);
            for k in [2usize, 4, 8] {
                let b = subject_bucket(NodeId(s), k);
                assert!(b < k);
                assert_eq!(b, subject_bucket(NodeId(s), k));
            }
        }
        // The hash actually spreads: 4 buckets all hit over 1k subjects.
        let mut hit = [false; 4];
        for s in 0..1_000u64 {
            hit[subject_bucket(NodeId(s), 4)] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn sorted_vec_is_deterministic() {
        let st1: VerticalStore = [t(3, 1, 1), t(1, 1, 1), t(2, 1, 1)].into_iter().collect();
        let st2: VerticalStore = [t(1, 1, 1), t(2, 1, 1), t(3, 1, 1)].into_iter().collect();
        assert_eq!(st1.to_sorted_vec(), st2.to_sorted_vec());
    }

    #[test]
    fn extend_trait() {
        let mut st = VerticalStore::new();
        st.extend([t(1, 2, 3), t(4, 5, 6)]);
        assert_eq!(st.len(), 2);
    }

    /// The copy-on-write contract behind epoch snapshots: a clone is an
    /// immutable image — every later mutation of the original (insert,
    /// remove, provenance demotion) is invisible to it.
    #[test]
    fn clone_is_an_isolated_snapshot() {
        let mut st = VerticalStore::new();
        st.insert_explicit(t(1, 10, 2));
        st.insert(t(3, 20, 4));
        let snap = st.clone();
        st.insert(t(5, 10, 6));
        st.remove(t(3, 20, 4));
        st.unmark_explicit(t(1, 10, 2));
        assert!(snap.contains(t(3, 20, 4)));
        assert!(!snap.contains(t(5, 10, 6)));
        assert!(snap.is_explicit(t(1, 10, 2)));
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.explicit_count(), 1);
        // And mutations of the clone do not leak back.
        let mut snap = snap;
        snap.remove(t(1, 10, 2));
        assert!(st.contains(t(1, 10, 2)));
    }
}
