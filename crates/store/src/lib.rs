//! The vertically partitioned triple store (paper §2.2).
//!
//! > "In order to achieve high performance Slider uses a vertical
//! > partitioning approach … where triples are first indexed by predicates,
//! > later by subjects and finally by objects."
//!
//! [`VerticalStore`] keeps one [`PropertyTable`] per predicate; each table
//! indexes its (subject, object) pairs both ways. Every pattern the ρdf and
//! RDFS rules need resolves to one hash lookup plus an iteration:
//!
//! * `(p, s, ?)` → `objects_with`
//! * `(p, ?, o)` → `subjects_with`
//! * `(p, ?, ?)` → `pairs`
//! * `(?, ?, ?)` → `iter` (full walk, needed by the universal-input rules)
//!
//! The hash-set leaves make insertion idempotent, which is the paper's
//! "duplicate management in triple store": `insert` reports whether the
//! triple was new, and the distributor uses exactly that signal to stop
//! duplicates from re-entering the rule pipeline.
//!
//! The store also supports **retraction**: `remove`/`remove_batch` delete
//! triples with both indexes kept in lock-step, and a per-triple provenance
//! flag distinguishes **explicit** (asserted via the `*_explicit` insertion
//! paths) from **derived** triples. The reasoner's DRed maintenance
//! subsystem builds on exactly these two primitives — see
//! `slider-core`'s `maintenance` module.
//!
//! [`ShardedStore`] shares the store across threads with **two-level
//! locking** (the paper uses a single `ReentrantReadWriteLock`; we keep
//! its semantics but not its bottleneck): a global *maintenance gate*
//! held in read mode by every normal operation and in write mode only by
//! exclusive (DRed/quiescent) sections, plus per-predicate-shard
//! readers-writer locks so writers touching disjoint predicate families
//! run concurrently. Readers join against a [`StoreView`] — either a
//! plain store borrowed whole or a consistent multi-shard
//! [`StoreSnapshot`] — so the same rule code serves both worlds. See the
//! `concurrent` module docs for the lock-order discipline.
//!
//! The **query path is lock-free**: every write-release publishes an
//! immutable, generation-stamped [`EpochSnapshot`] (copy-on-write over
//! the shard tables), and `matches`/`stats`/`to_sorted_vec`/`contains`
//! answer from the published epoch without taking the gate or any shard
//! lock. Rule joins with a declared read set run against an
//! [`EpochReader`], which keeps the exact-membership panic contract of
//! the pinned snapshots while pinning nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod concurrent;
mod pattern;
mod table;
mod vertical;
mod view;

pub use concurrent::{
    EpochReader, EpochSnapshot, ExclusiveStore, ReadSet, ShardWriteGuard, ShardedStore,
    StoreSnapshot, DEFAULT_SHARDS,
};
pub use pattern::TriplePattern;
pub use table::PropertyTable;
pub use vertical::{subject_bucket, StoreStats, VerticalStore};
pub use view::{Overlay, ShardRead, StoreView};
