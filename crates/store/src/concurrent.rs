//! The shared, two-level-locked store used by the concurrent reasoner.
//!
//! The paper's concurrency story (§2.2) is a single
//! `ReentrantReadWriteLock` over the whole triple store. This module keeps
//! the paper's *semantics* but drops the single lock: the store is already
//! vertically partitioned into self-contained per-predicate
//! [`PropertyTable`](crate::PropertyTable)s, so [`ShardedStore`] guards
//! them with **two levels of locking**:
//!
//! 1. a global **maintenance gate** (`RwLock<()>`): every *monotone*
//!    operation (insert, query, snapshot) holds it in *read* mode; the
//!    exclusive paths — [`ShardedStore::exclusive`] (DRed maintenance
//!    runs and quiescent-store sections) and the deleting
//!    [`ShardedStore::remove`]/[`ShardedStore::remove_batch`] — take it
//!    in *write* mode, getting the store to themselves exactly as the old
//!    global write lock did. While any snapshot is live the store can
//!    only grow, which is what makes per-shard (rather than one-big-lock)
//!    reads sound;
//! 2. a fixed power-of-two array of **shard locks**
//!    (`RwLock<VerticalStore>`), each shard owning the property tables of
//!    the predicates that hash to it. Writers touching disjoint predicate
//!    families lock disjoint shards and run concurrently instead of
//!    serialising on one writer, and a read snapshot scoped to a declared
//!    read set ([`ShardedStore::read_for`]) only blocks writers on the
//!    shards it pins.
//!
//! ## Lock-order discipline
//!
//! * The gate is always acquired **before** any shard lock, never while a
//!   shard lock is held.
//! * Multi-shard *read* acquisition ([`ShardedStore::read`] /
//!   [`ShardedStore::read_for`]) pins its shards eagerly at construction,
//!   in ascending index order; no shard lock is ever acquired while a
//!   snapshot's guards are held.
//! * No thread ever holds more than one shard **write** lock at a time —
//!   the batched write paths release shard *i* before acquiring shard *j*
//!   (a batch is therefore atomic with respect to maintenance, which
//!   excludes it wholly via the gate, but not with respect to readers of
//!   other shards — exactly the per-shard granularity the fresh-subset
//!   contract needs, since that contract is per triple).
//!
//! Writers never wait while holding a shard lock and readers acquire in a
//! fixed order at a single point in time, so no cycle — and therefore no
//! deadlock — is possible.
//!
//! ## Epoch snapshots — the lock-free read path
//!
//! On top of the two lock levels the store keeps one **published epoch**:
//! an immutable, generation-stamped [`EpochSnapshot`] holding an
//! `Arc<VerticalStore>` per shard. Every writer publishes a fresh epoch
//! at the moment it releases a shard — while still holding that shard's
//! write lock, so publications of a shard serialise and each epoch is a
//! prefix-consistent cut of the store's history (a batch's triples appear
//! shard-release by shard-release, never torn inside one shard). The
//! clone taken at publication is copy-on-write
//! ([`VerticalStore`]'s tables are `Arc`-shared), so publishing costs
//! O(#predicates touched) `Arc` bumps plus one deep table copy per
//! *mutated* table per publish cycle — not a store copy.
//!
//! Readers ([`ShardedStore::snapshot`], and through it
//! [`ShardedStore::matches`] / [`ShardedStore::stats`] /
//! [`ShardedStore::to_sorted_vec`] / [`ShardedStore::contains`]) clone
//! the published `Arc` and answer from the immutable epoch: **zero gate
//! or shard locks**, so reads never block writers, shard guards, DRed
//! flushes, or [`ShardedStore::exclusive`] sections — and never observe
//! their intermediate states. Deletions happen only under the gate's
//! write mode (the single remaining exclusion point) and become visible
//! atomically when the new epoch is published; an epoch acquired before
//! a maintenance run keeps answering from the pre-maintenance state
//! (generation monotonicity).

use crate::pattern::TriplePattern;
use crate::vertical::{StoreStats, VerticalStore};
use crate::view::{ShardRead, StoreView};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use slider_model::{NodeId, Triple};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default number of shards — enough to make collisions between a handful
/// of hot predicate families unlikely, small enough that a full snapshot
/// (one read lock per shard) stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// A [`VerticalStore`] split into per-predicate shards behind two-level
/// locking — see the module docs for the design and the lock-order rules.
///
/// Writes return the subset of triples that were actually new, which is
/// what gets dispatched onward — the duplicate-limitation mechanism. The
/// contract is per triple (and therefore per shard): a triple is reported
/// fresh by exactly one writer, no matter how writes interleave.
pub struct ShardedStore {
    /// Level 1: the maintenance gate. Read = normal operation, write =
    /// exclusive (quiescent) access.
    gate: RwLock<()>,
    /// Level 2: the shards. `shards.len()` is a power of two.
    shards: Box<[RwLock<VerticalStore>]>,
    /// Indexing mode shards are (re)built with.
    object_index: bool,
    /// Total triples, maintained alongside the per-shard mutations so
    /// `len()` needs no locks.
    len: AtomicUsize,
    /// Times the gate was taken in write mode ([`ShardedStore::exclusive`]).
    gate_writes: AtomicU64,
    /// Times a shard write lock was contended (the uncontended fast path
    /// is a `try_write`).
    shard_conflicts: AtomicU64,
    /// The published epoch: the immutable snapshot lock-free readers
    /// answer from. The mutex is held only for the pointer clone/swap —
    /// never across any other lock (order: gate → shard → publish).
    published: Mutex<Arc<EpochSnapshot>>,
    /// Monotone epoch counter; bumped at every publication.
    generation: AtomicU64,
}

impl Default for ShardedStore {
    fn default() -> Self {
        ShardedStore::new()
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl ShardedStore {
    /// An empty store with [`DEFAULT_SHARDS`] shards and full indexing.
    pub fn new() -> Self {
        ShardedStore::with_shards(DEFAULT_SHARDS)
    }

    /// An empty store with `shards` shards (rounded up to a power of two,
    /// minimum 1 — `with_shards(1)` degenerates to the paper's single
    /// global readers-writer lock, kept as the baseline for the `ingest`
    /// benchmark).
    pub fn with_shards(shards: usize) -> Self {
        ShardedStore::from_store_sharded(VerticalStore::new(), shards)
    }

    /// Wraps an existing store with [`DEFAULT_SHARDS`] shards, preserving
    /// its indexing mode.
    pub fn from_store(store: VerticalStore) -> Self {
        ShardedStore::from_store_sharded(store, DEFAULT_SHARDS)
    }

    /// Wraps an existing store, distributing its property tables over
    /// `shards` shards (rounded up to a power of two, minimum 1). The
    /// store's indexing mode carries over to all shards.
    pub fn from_store_sharded(store: VerticalStore, shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let object_index = store.has_object_index();
        let empty = || {
            if object_index {
                VerticalStore::new()
            } else {
                VerticalStore::without_object_index()
            }
        };
        let this = ShardedStore {
            gate: RwLock::new(()),
            shards: (0..count).map(|_| RwLock::new(empty())).collect(),
            object_index,
            len: AtomicUsize::new(0),
            gate_writes: AtomicU64::new(0),
            shard_conflicts: AtomicU64::new(0),
            published: Mutex::new(Arc::new(EpochSnapshot {
                generation: 0,
                shards: (0..count).map(|_| Arc::new(empty())).collect(),
                len: 0,
            })),
            generation: AtomicU64::new(0),
        };
        this.scatter(store);
        this
    }

    /// The shard index predicate `p` hashes to.
    #[inline]
    pub fn shard_of(&self, p: NodeId) -> usize {
        // Fibonacci multiply-shift; the high bits mix well for the dense
        // dictionary ids NodeId uses.
        ((p.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (self.shards.len() - 1)
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// An empty store in this store's indexing mode.
    fn empty_shard(&self) -> VerticalStore {
        if self.object_index {
            VerticalStore::new()
        } else {
            VerticalStore::without_object_index()
        }
    }

    /// Locks shard `idx` for writing, counting contention: the fast path
    /// is an uncontended `try_write`.
    fn lock_shard(&self, idx: usize) -> RwLockWriteGuard<'_, VerticalStore> {
        match self.shards[idx].try_write() {
            Some(guard) => guard,
            None => {
                self.shard_conflicts.fetch_add(1, Ordering::Relaxed);
                self.shards[idx].write()
            }
        }
    }

    /// Distributes `store`'s tables over the shards (assumes the shards'
    /// current contents are to be replaced — callers hold the gate in
    /// write mode or own `self` exclusively) and refreshes the length
    /// counter.
    fn scatter(&self, mut store: VerticalStore) {
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); self.shards.len()];
        for p in store.predicates().collect::<Vec<_>>() {
            groups[self.shard_of(p)].push(p);
        }
        let mut total = 0;
        let mut snaps = Vec::with_capacity(self.shards.len());
        for (idx, preds) in groups.iter().enumerate() {
            let sub = store.split_off(preds);
            total += sub.len();
            // Copy-on-write clone: the epoch shares the tables the live
            // shard starts from; future mutations un-share lazily.
            snaps.push(Arc::new(sub.clone()));
            *self.shards[idx].write() = sub;
        }
        debug_assert!(store.is_empty(), "scatter covered every predicate");
        self.len.store(total, Ordering::Relaxed);
        self.publish_full(snaps);
    }

    /// Publishes a fresh epoch with shard `idx` replaced by a
    /// copy-on-write clone of `shard`. Callers invoke this **while still
    /// holding the shard's write lock** (or the gate in write mode), so
    /// publications of the same shard serialise in mutation order and
    /// every epoch is a prefix-consistent cut.
    fn publish_shard(&self, idx: usize, shard: &VerticalStore) {
        let mut published = self.published.lock();
        let mut shards = published.shards.to_vec();
        shards[idx] = Arc::new(shard.clone());
        let len: usize = shards.iter().map(|s| s.len()).sum();
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        *published = Arc::new(EpochSnapshot {
            generation,
            shards: shards.into_boxed_slice(),
            len,
        });
    }

    /// Publishes a fresh epoch covering every shard at once (the scatter
    /// paths: construction and the end of an exclusive section, both of
    /// which rebuild all shards under exclusion).
    fn publish_full(&self, shards: Vec<Arc<VerticalStore>>) {
        let len: usize = shards.iter().map(|s| s.len()).sum();
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        *self.published.lock() = Arc::new(EpochSnapshot {
            generation,
            shards: shards.into_boxed_slice(),
            len,
        });
    }

    /// The current published epoch — the lock-free read path. One mutex
    /// lock for the pointer clone; the returned snapshot is immutable and
    /// shared, so it never blocks (and is never blocked by) writers,
    /// shard guards, or maintenance.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.published.lock())
    }

    /// Generation stamp of the most recently published epoch (monotone).
    pub fn snapshot_generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Drains every shard into one merged store (callers hold the gate in
    /// write mode, so the shard locks are uncontended).
    fn gather(&self) -> VerticalStore {
        let mut merged = self.empty_shard();
        for shard in self.shards.iter() {
            let mut guard = shard.write();
            let sub = std::mem::replace(&mut *guard, self.empty_shard());
            merged.absorb(sub);
        }
        merged
    }

    /// Inserts a batch; appends the *new* triples to `fresh` (in input
    /// order) and returns how many were new. Holds the gate in read mode
    /// for the whole batch and each shard's write lock only for that
    /// shard's run of triples — at most one shard lock at a time.
    pub fn insert_batch(&self, triples: &[Triple], fresh: &mut Vec<Triple>) -> usize {
        if triples.is_empty() {
            return 0;
        }
        let _gate = self.gate.read();
        self.write_batch(
            triples,
            fresh,
            |shard, t| {
                let new = shard.insert(t);
                (new, new)
            },
            1,
        )
    }

    /// Inserts a batch as **explicit** (asserted) facts; appends the *new*
    /// triples to `fresh` and returns how many were new. The input manager
    /// uses this path; rule distributors use the plain
    /// [`ShardedStore::insert_batch`], so the explicit flag separates
    /// assertions from conclusions for truth maintenance.
    pub fn insert_batch_explicit(&self, triples: &[Triple], fresh: &mut Vec<Triple>) -> usize {
        if triples.is_empty() {
            return 0;
        }
        let _gate = self.gate.read();
        self.write_batch(
            triples,
            fresh,
            |shard, t| {
                // Re-asserting a triple already present as *derived* is not
                // fresh, but it does flip the explicit flag — a mutation the
                // epoch must republish or `stats()`/`is_explicit` on the
                // lock-free path would keep serving stale provenance.
                let was_explicit = shard.is_explicit(t);
                let new = shard.insert_explicit(t);
                (new, new || !was_explicit)
            },
            1,
        )
    }

    /// Removes a batch; appends the triples that were actually present to
    /// `removed` and returns how many were present.
    ///
    /// Removal takes the **gate in write mode**: read snapshots assume
    /// the store only grows while they are live (they pin shards in a
    /// fixed order, not as one atomic cut), so deletion must exclude them
    /// wholly — a remover racing a half-built snapshot could otherwise
    /// expose a cross-shard state no serial order explains. Blocks until
    /// every snapshot, write and shard guard has released; never called
    /// from the engine's hot paths (DRed deletes on the merged store via
    /// [`ShardedStore::exclusive`]).
    pub fn remove_batch(&self, triples: &[Triple], removed: &mut Vec<Triple>) -> usize {
        if triples.is_empty() {
            return 0;
        }
        let _gate = self.gate.write();
        self.gate_writes.fetch_add(1, Ordering::Relaxed);
        self.write_batch(
            triples,
            removed,
            |shard, t| {
                let hit = shard.remove(t);
                (hit, hit)
            },
            -1,
        )
    }

    /// The shared shard-walking write loop: applies `op` per triple.
    /// `op` returns `(hit, mutated)` — `hit` collects the triple and
    /// adjusts the length counter by `delta`, `mutated` marks the shard
    /// for epoch republication (a provenance-only flip mutates without a
    /// hit). The caller holds the gate (read mode for monotone inserts,
    /// write mode for removal).
    fn write_batch(
        &self,
        triples: &[Triple],
        hits: &mut Vec<Triple>,
        op: impl Fn(&mut VerticalStore, Triple) -> (bool, bool),
        delta: isize,
    ) -> usize {
        let before = hits.len();
        let mut current: Option<(usize, RwLockWriteGuard<'_, VerticalStore>, bool)> = None;
        for &t in triples {
            let idx = self.shard_of(t.p);
            match &current {
                Some((held, _, _)) if *held == idx => {}
                _ => {
                    // Publish, then release the held shard *before*
                    // acquiring the next: never hold two shard write locks
                    // (see the lock-order discipline in the module docs).
                    if let Some((held, guard, dirty)) = current.take() {
                        if dirty {
                            self.publish_shard(held, &guard);
                        }
                        drop(guard);
                    }
                    current = Some((idx, self.lock_shard(idx), false));
                }
            }
            let (_, shard, dirty) = current.as_mut().expect("shard guard just ensured");
            let (hit, mutated) = op(shard, t);
            if hit {
                if delta > 0 {
                    self.len.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.len.fetch_sub(1, Ordering::Relaxed);
                }
                hits.push(t);
            }
            *dirty |= mutated;
        }
        if let Some((held, guard, dirty)) = current.take() {
            if dirty {
                self.publish_shard(held, &guard);
            }
            drop(guard);
        }
        hits.len() - before
    }

    /// Inserts one triple; returns `true` if new. One gate-read plus one
    /// shard write lock; publishes a fresh epoch before returning, so the
    /// caller (and anything it signals) observes its own write on the
    /// lock-free read path.
    pub fn insert(&self, t: Triple) -> bool {
        let _gate = self.gate.read();
        let idx = self.shard_of(t.p);
        let mut guard = self.lock_shard(idx);
        let inserted = guard.insert(t);
        if inserted {
            self.len.fetch_add(1, Ordering::Relaxed);
            self.publish_shard(idx, &guard);
        }
        inserted
    }

    /// Removes one triple; returns `true` if it was present. Takes the
    /// gate in write mode, like [`ShardedStore::remove_batch`]; the
    /// deletion becomes visible to lock-free readers atomically with the
    /// epoch published before the gate releases.
    pub fn remove(&self, t: Triple) -> bool {
        let _gate = self.gate.write();
        self.gate_writes.fetch_add(1, Ordering::Relaxed);
        let idx = self.shard_of(t.p);
        let mut guard = self.shards[idx].write();
        let removed = guard.remove(t);
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
            self.publish_shard(idx, &guard);
        }
        removed
    }

    /// True if `t` is present — answered from the published epoch, no
    /// gate or shard lock.
    pub fn contains(&self, t: Triple) -> bool {
        self.snapshot().contains(t)
    }

    /// True if `t` is present and explicitly asserted — answered from
    /// the published epoch, no gate or shard lock.
    pub fn is_explicit(&self, t: Triple) -> bool {
        self.snapshot().is_explicit(t)
    }

    /// Acquires a **full** multi-shard read snapshot: the gate in read
    /// mode plus every shard's read lock, in ascending index order — the
    /// consistent cross-shard cut `stats`, `to_sorted_vec`, `matches` and
    /// external queries want. Equivalent to `read_for(None)`.
    pub fn read(&self) -> StoreSnapshot<'_> {
        self.read_for(None)
    }

    /// Precomputes the snapshot scope for a declared predicate read set:
    /// the predicates plus the sorted, deduplicated indices of the shards
    /// owning them. Callers that take many scoped snapshots (the engine
    /// plans one per rule module at startup) reuse the plan instead of
    /// re-hashing and re-sorting per snapshot. A plan is only valid for
    /// the store that built it (shard indices depend on the shard count).
    pub fn plan_read(&self, preds: &[NodeId]) -> ReadSet {
        let mut shards: Vec<usize> = preds.iter().map(|&p| self.shard_of(p)).collect();
        shards.sort_unstable();
        shards.dedup();
        ReadSet {
            preds: preds.to_vec(),
            shards,
        }
    }

    /// Acquires a read snapshot scoped to a **declared read set**
    /// ([`ShardedStore::plan_read`]): the gate in read mode, plus the
    /// read locks of exactly the shards owning the set's predicates —
    /// acquired eagerly, in ascending shard-index order, so the
    /// fixed-order deadlock-freedom argument in the module docs covers
    /// every snapshot. `None` pins all shards (= [`ShardedStore::read`]).
    ///
    /// One snapshot per rule application, not per lookup — the sharded
    /// analogue of the paper's "read lock for the duration of one join
    /// batch", except that a join with a declared read set
    /// (`Rule::read_predicates` in `slider-rules`) only blocks writers on
    /// the shards it actually reads; writers everywhere else keep
    /// flowing, and an empty read set locks no shard at all.
    ///
    /// The scope is a **contract**: querying a predicate outside the
    /// declared set panics — by exact membership, not merely by shard,
    /// so a wrong declaration fails on the first test that exercises it
    /// instead of depending on whether the stray predicate happens to
    /// hash to a pinned shard. The full-walk accessors (`iter`, `len`,
    /// `predicates`, unbound-predicate `matches`) panic on a partial
    /// snapshot too.
    pub fn read_for<'a>(&'a self, read_set: Option<&'a ReadSet>) -> StoreSnapshot<'a> {
        let gate = self.gate.read();
        let mut guards: Vec<Option<RwLockReadGuard<'_, VerticalStore>>> =
            (0..self.shards.len()).map(|_| None).collect();
        match read_set {
            None => {
                for (idx, slot) in guards.iter_mut().enumerate() {
                    *slot = Some(self.shards[idx].read());
                }
            }
            Some(set) => {
                for &idx in &set.shards {
                    guards[idx] = Some(self.shards[idx].read());
                }
            }
        }
        StoreSnapshot {
            owner: self,
            _gate: gate,
            read_set,
            shards: guards,
        }
    }

    /// Acquires the **maintenance gate in write mode** and returns the
    /// whole store, merged, for compound mutation. This is the only way to
    /// get `&mut VerticalStore` access: the DRed maintenance subsystem
    /// holds it across a whole run so overdeletion and rederivation are
    /// atomic with respect to every reader and writer (they all hold the
    /// gate in read mode). The merge and the re-scatter on drop move
    /// property tables wholesale — O(#predicates), no triple is copied.
    pub fn exclusive(&self) -> ExclusiveStore<'_> {
        let gate = self.gate.write();
        self.gate_writes.fetch_add(1, Ordering::Relaxed);
        let merged = self.gather();
        ExclusiveStore {
            owner: self,
            _gate: gate,
            merged,
        }
    }

    /// Locks the single shard owning predicate `p` for writing (gate held
    /// in read mode), for callers that want to pin or batch mutations on
    /// one predicate family. Writes to *other* shards proceed concurrently
    /// while this guard is held; [`ShardedStore::exclusive`] and full
    /// snapshots block until it is released.
    pub fn write_shard(&self, p: NodeId) -> ShardWriteGuard<'_> {
        let gate = self.gate.read();
        let idx = self.shard_of(p);
        let guard = self.lock_shard(idx);
        let len_at_acquire = guard.len();
        ShardWriteGuard {
            owner: self,
            _gate: gate,
            idx,
            len_at_acquire,
            guard,
        }
    }

    /// Total number of triples (lock-free).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Times the maintenance gate was acquired in write mode (DRed runs,
    /// quiescent-store sections, and direct `remove`/`remove_batch`
    /// calls).
    pub fn gate_write_acquisitions(&self) -> u64 {
        self.gate_writes.load(Ordering::Relaxed)
    }

    /// Times a shard write lock was contended (another writer or a
    /// snapshot held the shard when a write arrived).
    pub fn shard_write_conflicts(&self) -> u64 {
        self.shard_conflicts.load(Ordering::Relaxed)
    }

    /// Store statistics, merged across the published epoch's shards — no
    /// gate or shard lock.
    pub fn stats(&self) -> StoreStats {
        self.snapshot().stats()
    }

    /// Sorted snapshot of all triples (deterministic; for tests/reports).
    /// Answered from the published epoch — no gate or shard lock.
    pub fn to_sorted_vec(&self) -> Vec<Triple> {
        self.snapshot().to_sorted_vec()
    }

    /// All triples matching `pattern`, answered from the published epoch
    /// — one consistent cut, no gate or shard lock.
    pub fn matches(&self, pattern: TriplePattern) -> Vec<Triple> {
        self.snapshot().matches(pattern)
    }

    /// Consumes the wrapper, merging the shards back into one store.
    pub fn into_inner(self) -> VerticalStore {
        let mut merged = self.empty_shard();
        for shard in self.shards.into_vec() {
            merged.absorb(shard.into_inner());
        }
        merged
    }
}

/// A read snapshot of a [`ShardedStore`]: the gate in read mode, plus the
/// read locks of every shard ([`ShardedStore::read`]) or of a declared
/// read set's shards only ([`ShardedStore::read_for`]) — all acquired at
/// construction, in ascending shard-index order. Queries answer directly
/// (the usual store API) or through [`StoreSnapshot::view`] for code
/// written against [`StoreView`]; querying a predicate outside a partial
/// snapshot's declared read set panics.
pub struct StoreSnapshot<'a> {
    owner: &'a ShardedStore,
    _gate: RwLockReadGuard<'a, ()>,
    /// The declared scope (`None` = full snapshot); queries are checked
    /// against it by exact predicate membership.
    read_set: Option<&'a ReadSet>,
    /// The pinned shard read guards, indexed by shard (`None` = outside
    /// the read set).
    shards: Vec<Option<RwLockReadGuard<'a, VerticalStore>>>,
}

/// A precomputed snapshot scope — see [`ShardedStore::plan_read`].
#[derive(Debug, Clone)]
pub struct ReadSet {
    /// The declared predicates (exact membership check per query).
    preds: Vec<NodeId>,
    /// Sorted, deduplicated indices of the shards owning `preds`.
    shards: Vec<usize>,
}

impl<'a> StoreSnapshot<'a> {
    /// The sub-store of shard `idx` (pinned by construction for every
    /// in-scope query; see [`StoreSnapshot::store_for`]).
    #[inline]
    fn shard(&self, idx: usize) -> &VerticalStore {
        self.shards[idx]
            .as_deref()
            .unwrap_or_else(|| panic!("shard {idx} is outside this snapshot's declared read set"))
    }

    /// The shard sub-store owning predicate `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside a partial snapshot's declared read set —
    /// checked by **exact membership**, not by shard, so a
    /// `Rule::read_predicates` declaration missing a predicate its join
    /// touches fails deterministically (a shard-level check would let the
    /// stray predicate slip through whenever it happens to hash to a
    /// pinned shard).
    #[inline]
    fn store_for(&self, p: NodeId) -> &VerticalStore {
        if let Some(set) = self.read_set {
            assert!(
                set.preds.contains(&p),
                "predicate {p:?} is outside this snapshot's declared read set"
            );
        }
        self.shard(self.owner.shard_of(p))
    }

    /// A [`StoreView`] over this snapshot — what rule joins run against.
    pub fn view(&self) -> StoreView<'_> {
        StoreView::Snapshot(self)
    }

    /// True if `t` is present.
    pub fn contains(&self, t: Triple) -> bool {
        self.store_for(t.p).contains(t)
    }

    /// True if `t` is present and explicitly asserted.
    pub fn is_explicit(&self, t: Triple) -> bool {
        self.store_for(t.p).is_explicit(t)
    }

    /// Objects `o` such that `(s, p, o)` holds.
    pub fn objects_with(&self, p: NodeId, s: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.store_for(p).objects_with(p, s)
    }

    /// Subjects `s` such that `(s, p, o)` holds.
    pub fn subjects_with(&self, p: NodeId, o: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.store_for(p).subjects_with(p, o)
    }

    /// All `(s, o)` pairs for predicate `p`.
    pub fn pairs(&self, p: NodeId) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.store_for(p).pairs(p)
    }

    /// Number of triples with predicate `p`.
    pub fn count_with_p(&self, p: NodeId) -> usize {
        self.store_for(p).count_with_p(p)
    }

    /// Iterates over every triple in the snapshot (no ordering
    /// guarantee; full snapshots only — panics on a partial one).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.sub_stores().flat_map(VerticalStore::iter)
    }

    /// Total number of triples in the snapshot (full snapshots only —
    /// panics on a partial one).
    pub fn len(&self) -> usize {
        self.sub_stores().map(VerticalStore::len).sum()
    }

    /// True if the snapshot holds no triples (full snapshots only —
    /// panics on a partial one).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All triples matching `pattern`.
    pub fn matches(&self, pattern: TriplePattern) -> Vec<Triple> {
        self.view().matches(pattern)
    }
}

impl ShardRead for StoreSnapshot<'_> {
    fn store_for(&self, p: NodeId) -> &VerticalStore {
        StoreSnapshot::store_for(self, p)
    }

    fn sub_stores(&self) -> Box<dyn Iterator<Item = &VerticalStore> + '_> {
        assert!(
            self.read_set.is_none(),
            "full-store walk on a partial snapshot — the rule's declared \
             read set does not license iter()/len()/predicates()/unbound \
             matches()"
        );
        Box::new(self.shards.iter().map(|guard| {
            &**guard
                .as_ref()
                .expect("a non-partial snapshot pinned every shard")
        }))
    }
}

impl std::fmt::Debug for StoreSnapshot<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSnapshot")
            .field("shards", &self.shards.len())
            .field(
                "pinned",
                &self.shards.iter().filter(|g| g.is_some()).count(),
            )
            .finish()
    }
}

/// Exclusive, merged access to a [`ShardedStore`] (the maintenance gate
/// held in write mode). Dereferences to the whole store as one
/// [`VerticalStore`]; dropping the guard re-scatters the tables to their
/// shards and refreshes the length counter.
pub struct ExclusiveStore<'a> {
    owner: &'a ShardedStore,
    _gate: RwLockWriteGuard<'a, ()>,
    merged: VerticalStore,
}

impl std::ops::Deref for ExclusiveStore<'_> {
    type Target = VerticalStore;
    fn deref(&self) -> &VerticalStore {
        &self.merged
    }
}

impl std::ops::DerefMut for ExclusiveStore<'_> {
    fn deref_mut(&mut self) -> &mut VerticalStore {
        &mut self.merged
    }
}

impl Drop for ExclusiveStore<'_> {
    fn drop(&mut self) {
        // The gate (a field, dropped after this body) is still held while
        // the tables scatter back, so no reader can observe a half-filled
        // shard array.
        let merged = std::mem::take(&mut self.merged);
        self.owner.scatter(merged);
    }
}

impl std::fmt::Debug for ExclusiveStore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExclusiveStore")
            .field("len", &self.merged.len())
            .finish()
    }
}

/// Write access to the single shard owning one predicate family (gate held
/// in read mode) — see [`ShardedStore::write_shard`]. On drop, the
/// store-wide length counter is adjusted by however much the shard grew or
/// shrank through this guard, and a fresh epoch is published — mutations
/// made through the guard become visible to lock-free readers atomically
/// at release, never mid-edit.
pub struct ShardWriteGuard<'a> {
    owner: &'a ShardedStore,
    _gate: RwLockReadGuard<'a, ()>,
    idx: usize,
    len_at_acquire: usize,
    guard: RwLockWriteGuard<'a, VerticalStore>,
}

impl std::ops::Deref for ShardWriteGuard<'_> {
    type Target = VerticalStore;
    fn deref(&self) -> &VerticalStore {
        &self.guard
    }
}

impl std::ops::DerefMut for ShardWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut VerticalStore {
        &mut self.guard
    }
}

impl Drop for ShardWriteGuard<'_> {
    fn drop(&mut self) {
        let now = self.guard.len();
        if now >= self.len_at_acquire {
            self.owner
                .len
                .fetch_add(now - self.len_at_acquire, Ordering::Relaxed);
        } else {
            self.owner
                .len
                .fetch_sub(self.len_at_acquire - now, Ordering::Relaxed);
        }
        // Published while the shard write lock (a field, dropped after
        // this body) is still held — release-time atomic visibility.
        self.owner.publish_shard(self.idx, &self.guard);
    }
}

impl std::fmt::Debug for ShardWriteGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardWriteGuard")
            .field("len", &self.guard.len())
            .finish()
    }
}

/// An immutable, generation-stamped epoch of the whole store — the
/// lock-free read path ([`ShardedStore::snapshot`]).
///
/// A snapshot holds one `Arc<VerticalStore>` per shard, shared
/// copy-on-write with the live shards at publication time. It is never
/// mutated after publication: queries against it take **no locks at
/// all**, complete in bounded time regardless of concurrent writers,
/// shard guards, or maintenance runs, and always describe one
/// prefix-consistent cut of the store's history. A snapshot acquired
/// before a maintenance flush keeps answering from the pre-flush state
/// even after the flush retracts triples (generation monotonicity).
pub struct EpochSnapshot {
    /// Monotone publication stamp (see
    /// [`ShardedStore::snapshot_generation`]).
    generation: u64,
    /// One copy-on-write sub-store per shard; indexed by the same
    /// Fibonacci hash as the live store.
    shards: Box<[Arc<VerticalStore>]>,
    /// Total triples across the shards, fixed at publication.
    len: usize,
}

impl EpochSnapshot {
    /// The publication stamp: strictly increases with every published
    /// epoch of the owning store.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total number of triples in this epoch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the epoch holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shard index predicate `p` hashes to (same function as the
    /// owning [`ShardedStore`]; `shards.len()` is a power of two).
    #[inline]
    fn shard_of(&self, p: NodeId) -> usize {
        ((p.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (self.shards.len() - 1)
    }

    /// The sub-store owning predicate `p`.
    #[inline]
    fn shard_store(&self, p: NodeId) -> &VerticalStore {
        &self.shards[self.shard_of(p)]
    }

    /// A [`StoreView`] over the whole epoch — what unscoped queries and
    /// rule joins without a declared read set run against.
    pub fn view(&self) -> StoreView<'_> {
        StoreView::Snapshot(self)
    }

    /// A reader scoped to a declared read set — the lock-free analogue
    /// of [`ShardedStore::read_for`]. The scope is the same contract:
    /// querying a predicate outside the declared set panics by exact
    /// membership. `None` scopes nothing (= the full [`EpochSnapshot::view`]).
    pub fn reader<'a>(&'a self, read_set: Option<&'a ReadSet>) -> EpochReader<'a> {
        EpochReader {
            snapshot: self,
            read_set,
        }
    }

    /// True if `t` is present in this epoch.
    pub fn contains(&self, t: Triple) -> bool {
        self.shard_store(t.p).contains(t)
    }

    /// True if `t` is present and explicitly asserted in this epoch.
    pub fn is_explicit(&self, t: Triple) -> bool {
        self.shard_store(t.p).is_explicit(t)
    }

    /// Objects `o` such that `(s, p, o)` holds in this epoch.
    pub fn objects_with(&self, p: NodeId, s: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.shard_store(p).objects_with(p, s)
    }

    /// Subjects `s` such that `(s, p, o)` holds in this epoch.
    pub fn subjects_with(&self, p: NodeId, o: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.shard_store(p).subjects_with(p, o)
    }

    /// All `(s, o)` pairs for predicate `p` in this epoch.
    pub fn pairs(&self, p: NodeId) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.shard_store(p).pairs(p)
    }

    /// Number of triples with predicate `p` in this epoch.
    pub fn count_with_p(&self, p: NodeId) -> usize {
        self.shard_store(p).count_with_p(p)
    }

    /// Iterates over every triple in the epoch (no ordering guarantee).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// All triples matching `pattern` in this epoch.
    pub fn matches(&self, pattern: TriplePattern) -> Vec<Triple> {
        self.view().matches(pattern)
    }

    /// Sorted vector of every triple in the epoch (deterministic).
    pub fn to_sorted_vec(&self) -> Vec<Triple> {
        self.view().to_sorted_vec()
    }

    /// Store statistics merged across the epoch's shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for shard in self.shards.iter() {
            let s = shard.stats();
            total.triples += s.triples;
            total.explicit += s.explicit;
            total.derived += s.derived;
            total.predicates += s.predicates;
            total.largest_partition = total.largest_partition.max(s.largest_partition);
        }
        total
    }
}

impl ShardRead for EpochSnapshot {
    fn store_for(&self, p: NodeId) -> &VerticalStore {
        self.shard_store(p)
    }

    fn sub_stores(&self) -> Box<dyn Iterator<Item = &VerticalStore> + '_> {
        Box::new(self.shards.iter().map(|s| &**s))
    }
}

impl std::fmt::Debug for EpochSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochSnapshot")
            .field("generation", &self.generation)
            .field("shards", &self.shards.len())
            .field("len", &self.len)
            .finish()
    }
}

/// An [`EpochSnapshot`] scoped to a declared read set
/// ([`EpochSnapshot::reader`]) — the lock-free analogue of the pinned
/// [`StoreSnapshot`] a rule join used to hold. Queries outside the
/// declared predicates panic by exact membership, preserving the
/// loud-failure contract of `Rule::read_predicates`; since the epoch is
/// immutable, the scope costs nothing at construction (no shards to
/// pin).
#[derive(Debug, Clone, Copy)]
pub struct EpochReader<'a> {
    snapshot: &'a EpochSnapshot,
    read_set: Option<&'a ReadSet>,
}

impl EpochReader<'_> {
    /// A [`StoreView`] over this scoped reader — what rule joins with a
    /// declared read set run against.
    pub fn view(&self) -> StoreView<'_> {
        StoreView::Snapshot(self)
    }
}

impl ShardRead for EpochReader<'_> {
    fn store_for(&self, p: NodeId) -> &VerticalStore {
        if let Some(set) = self.read_set {
            assert!(
                set.preds.contains(&p),
                "predicate {p:?} is outside this snapshot's declared read set"
            );
        }
        self.snapshot.shard_store(p)
    }

    fn sub_stores(&self) -> Box<dyn Iterator<Item = &VerticalStore> + '_> {
        assert!(
            self.read_set.is_none(),
            "full-store walk on a partial snapshot — the rule's declared \
             read set does not license iter()/len()/predicates()/unbound \
             matches()"
        );
        self.snapshot.sub_stores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        assert_eq!(ShardedStore::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedStore::with_shards(1).shard_count(), 1);
        assert_eq!(ShardedStore::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedStore::with_shards(16).shard_count(), 16);
        assert_eq!(ShardedStore::new().shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let st = ShardedStore::with_shards(8);
        for p in 0..1000 {
            let idx = st.shard_of(NodeId(p));
            assert!(idx < 8);
            assert_eq!(idx, st.shard_of(NodeId(p)));
        }
        // The hash actually spreads predicates over several shards.
        let distinct: std::collections::HashSet<usize> =
            (0..1000).map(|p| st.shard_of(NodeId(p))).collect();
        assert!(distinct.len() > 1, "all predicates in one shard");
    }

    #[test]
    fn batch_insert_dedups() {
        let st = ShardedStore::new();
        let mut fresh = Vec::new();
        assert_eq!(st.insert_batch(&[t(1, 2, 3), t(1, 2, 3)], &mut fresh), 1);
        assert_eq!(fresh, vec![t(1, 2, 3)]);
        fresh.clear();
        assert_eq!(st.insert_batch(&[t(1, 2, 3)], &mut fresh), 0);
        assert!(fresh.is_empty());
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn empty_batch_short_circuits() {
        let st = ShardedStore::new();
        let mut fresh = Vec::new();
        assert_eq!(st.insert_batch(&[], &mut fresh), 0);
    }

    #[test]
    fn cross_shard_batch_preserves_input_order() {
        let st = ShardedStore::with_shards(8);
        // Predicates 1..=6 spread over several shards; fresh order must
        // still follow input order.
        let batch: Vec<Triple> = (1..=6).map(|p| t(p, p, p)).collect();
        let mut fresh = Vec::new();
        assert_eq!(st.insert_batch(&batch, &mut fresh), 6);
        assert_eq!(fresh, batch);
        assert_eq!(st.len(), 6);
    }

    #[test]
    fn explicit_insert_and_remove() {
        let st = ShardedStore::new();
        let mut fresh = Vec::new();
        assert_eq!(st.insert_batch_explicit(&[t(1, 2, 3)], &mut fresh), 1);
        assert!(st.is_explicit(t(1, 2, 3)));
        st.insert(t(4, 2, 3)); // derived
        assert!(!st.is_explicit(t(4, 2, 3)));
        let mut removed = Vec::new();
        assert_eq!(st.remove_batch(&[t(1, 2, 3), t(9, 9, 9)], &mut removed), 1);
        assert_eq!(removed, vec![t(1, 2, 3)]);
        assert!(st.remove(t(4, 2, 3)));
        assert!(st.is_empty());
        assert_eq!(st.remove_batch(&[], &mut removed), 0);
    }

    #[test]
    fn exclusive_guard_compound_mutation() {
        let st = ShardedStore::new();
        st.insert(t(1, 2, 3));
        {
            let mut guard = st.exclusive();
            guard.remove(t(1, 2, 3));
            guard.insert_explicit(t(7, 8, 9));
        }
        assert_eq!(st.len(), 1);
        assert!(st.is_explicit(t(7, 8, 9)));
        assert!(!st.contains(t(1, 2, 3)));
        assert_eq!(st.gate_write_acquisitions(), 1);
        // Stats reflect the re-scattered state.
        let stats = st.stats();
        assert_eq!(stats.triples, 1);
        assert_eq!(stats.explicit, 1);
    }

    #[test]
    fn read_snapshot_queries() {
        let st = ShardedStore::new();
        st.insert(t(1, 10, 2));
        st.insert(t(1, 10, 3));
        st.insert(t(5, 20, 6));
        let snap = st.read();
        assert_eq!(snap.objects_with(NodeId(10), NodeId(1)).count(), 2);
        assert_eq!(snap.subjects_with(NodeId(20), NodeId(6)).count(), 1);
        assert_eq!(snap.pairs(NodeId(10)).count(), 2);
        assert_eq!(snap.count_with_p(NodeId(10)), 2);
        assert_eq!(snap.len(), 3);
        assert!(!snap.is_empty());
        assert!(snap.contains(t(5, 20, 6)));
        assert_eq!(snap.iter().count(), 3);
        assert_eq!(
            snap.matches(TriplePattern::new(None, Some(NodeId(10)), None))
                .len(),
            2
        );
    }

    /// The acceptance pin for the two-level design: while one shard's
    /// write lock is held, a write to a *different* shard completes, and a
    /// write to the *same* shard blocks until release.
    #[test]
    fn disjoint_shard_writes_proceed_while_one_shard_is_locked() {
        let st = Arc::new(ShardedStore::with_shards(8));
        let p1 = NodeId(1);
        let p2 = (2..200)
            .map(NodeId)
            .find(|&p| st.shard_of(p) != st.shard_of(p1))
            .expect("some predicate hashes to another shard");
        let p_same = (2..200)
            .map(NodeId)
            .find(|&p| st.shard_of(p) == st.shard_of(p1) && p != p1)
            .expect("some predicate shares p1's shard");

        let guard = st.write_shard(p1);

        // Disjoint shard: completes while the lock is held.
        let st2 = Arc::clone(&st);
        let disjoint =
            std::thread::spawn(move || st2.insert(Triple::new(NodeId(9), p2, NodeId(9))));
        let (tx, rx) = std::sync::mpsc::channel();
        let waiter = std::thread::spawn(move || {
            let _ = tx.send(disjoint.join().unwrap());
        });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)),
            Ok(true),
            "write to a disjoint shard serialised on the held shard lock"
        );
        waiter.join().unwrap();

        // Same shard: blocks until the guard drops.
        let st3 = Arc::clone(&st);
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let same = std::thread::spawn(move || {
            st3.insert(Triple::new(NodeId(9), p_same, NodeId(9)));
            done2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !done.load(Ordering::SeqCst),
            "write to the locked shard did not block"
        );
        drop(guard);
        same.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        assert_eq!(st.len(), 2);
        assert!(st.shard_write_conflicts() >= 1, "the blocked write counted");
    }

    /// A partial snapshot pins only its declared read set's shards:
    /// while a reader holds one family's shard, writes to other shards
    /// complete, and a write to the pinned shard blocks until the
    /// snapshot drops.
    #[test]
    fn partial_snapshot_only_blocks_declared_shards() {
        let st = Arc::new(ShardedStore::with_shards(8));
        let p1 = NodeId(1);
        let p2 = (2..200)
            .map(NodeId)
            .find(|&p| st.shard_of(p) != st.shard_of(p1))
            .expect("some predicate hashes to another shard");
        st.insert(Triple::new(NodeId(5), p1, NodeId(6)));

        let plan = st.plan_read(&[p1]);
        let snap = st.read_for(Some(&plan));
        assert_eq!(snap.objects_with(p1, NodeId(5)).count(), 1);

        // Untouched shard: a write completes while the snapshot lives.
        let st2 = Arc::clone(&st);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(st2.insert(Triple::new(NodeId(9), p2, NodeId(9))));
        });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)),
            Ok(true),
            "write to an undeclared shard blocked behind a partial snapshot"
        );

        // Touched shard: a write blocks until the snapshot drops.
        let st3 = Arc::clone(&st);
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let blocked = std::thread::spawn(move || {
            st3.insert(Triple::new(NodeId(9), p1, NodeId(9)));
            done2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !done.load(Ordering::SeqCst),
            "write to the touched shard did not block"
        );
        drop(snap);
        blocked.join().unwrap();
        assert_eq!(st.len(), 3);
    }

    /// The read-set contract is exact: an undeclared predicate panics
    /// even when it hashes to a shard the snapshot pinned for another
    /// predicate (a shard-level check would let it slip through and make
    /// the loud-failure guarantee depend on the shard count).
    #[test]
    #[should_panic(expected = "outside this snapshot's declared read set")]
    fn undeclared_predicate_panics_even_on_a_pinned_shard() {
        let st = ShardedStore::with_shards(1); // every predicate shares shard 0
        st.insert(t(1, 7, 2));
        let plan = st.plan_read(&[NodeId(7)]);
        let snap = st.read_for(Some(&plan));
        let _ = snap.objects_with(NodeId(8), NodeId(1)).count();
    }

    #[test]
    fn shard_write_guard_mutations_keep_len_in_sync() {
        let st = ShardedStore::with_shards(4);
        st.insert(t(1, 7, 1));
        {
            let mut guard = st.write_shard(NodeId(7));
            guard.insert(Triple::new(NodeId(2), NodeId(7), NodeId(2)));
            guard.insert(Triple::new(NodeId(3), NodeId(7), NodeId(3)));
            guard.remove(t(1, 7, 1));
        }
        assert_eq!(st.len(), 2);
        {
            let mut guard = st.write_shard(NodeId(7));
            guard.remove(Triple::new(NodeId(2), NodeId(7), NodeId(2)));
            guard.remove(Triple::new(NodeId(3), NodeId(7), NodeId(3)));
        }
        assert_eq!(st.len(), 0);
        assert!(st.is_empty());
    }

    #[test]
    fn concurrent_writers_never_lose_or_duplicate() {
        let st = Arc::new(ShardedStore::new());
        let threads = 8;
        let per_thread = 1_000;
        let mut handles = Vec::new();
        for tid in 0..threads {
            let st = Arc::clone(&st);
            handles.push(std::thread::spawn(move || {
                let mut fresh = Vec::new();
                let mut new_count = 0;
                for i in 0..per_thread {
                    // Half the keys collide across threads; predicates vary
                    // so the writes spread over shards.
                    let key = if i % 2 == 0 { i } else { i * 1_000 + tid };
                    new_count += st.insert_batch(&[t(key as u64, (i % 7) as u64, 1)], &mut fresh);
                }
                new_count
            }));
        }
        let total_new: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Every insert that reported "new" corresponds to exactly one stored
        // triple, regardless of interleaving.
        assert_eq!(total_new, st.len());
        assert_eq!(st.len(), st.to_sorted_vec().len());
    }

    #[test]
    fn readers_run_during_reasoning_shape() {
        // Simulates the rule-instance pattern: grab a snapshot, many
        // lookups.
        let st = Arc::new(ShardedStore::new());
        for i in 0..100 {
            st.insert(t(i, 7, i + 1));
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let st = Arc::clone(&st);
            handles.push(std::thread::spawn(move || {
                let snap = st.read();
                (0..100)
                    .map(|i| snap.objects_with(NodeId(7), NodeId(i)).count())
                    .sum::<usize>()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 100);
        }
    }

    #[test]
    fn into_inner_roundtrip() {
        let st = ShardedStore::new();
        st.insert(t(1, 2, 3));
        st.insert(t(4, 5, 6));
        let inner = st.into_inner();
        assert!(inner.contains(t(1, 2, 3)));
        assert_eq!(inner.len(), 2);
        let st2 = ShardedStore::from_store_sharded(inner, 4);
        assert_eq!(st2.len(), 2);
        assert!(st2.contains(t(4, 5, 6)));
    }

    #[test]
    fn from_store_preserves_indexing_mode() {
        let mut plain = VerticalStore::without_object_index();
        plain.insert(t(1, 10, 2));
        let st = ShardedStore::from_store(plain);
        // Subjects query still answers via the scan path.
        let snap = st.read();
        assert_eq!(
            snap.subjects_with(NodeId(10), NodeId(2))
                .collect::<Vec<_>>(),
            vec![NodeId(1)]
        );
        drop(snap);
        // Exclusive round-trip keeps the mode too.
        {
            let guard = st.exclusive();
            assert!(!guard.has_object_index());
        }
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn single_shard_degenerates_to_global_lock() {
        let st = ShardedStore::with_shards(1);
        assert_eq!(st.shard_count(), 1);
        for p in 0..50 {
            assert_eq!(st.shard_of(NodeId(p)), 0);
        }
        let mut fresh = Vec::new();
        st.insert_batch(&(0..50).map(|i| t(i, i, i)).collect::<Vec<_>>(), &mut fresh);
        assert_eq!(st.len(), 50);
        assert_eq!(st.stats().triples, 50);
    }

    /// The acceptance pin for the lock-free read path: with a shard's
    /// write lock held **on this very thread** (the old read path would
    /// self-deadlock acquiring its read lock), every query API answers.
    #[test]
    fn reads_complete_while_a_shard_write_lock_is_held() {
        let st = ShardedStore::with_shards(8);
        st.insert(t(1, 7, 2));
        let guard = st.write_shard(NodeId(7));
        assert!(st.contains(t(1, 7, 2)));
        assert!(!st.is_explicit(t(1, 7, 2)));
        assert_eq!(st.stats().triples, 1);
        assert_eq!(st.to_sorted_vec(), vec![t(1, 7, 2)]);
        assert_eq!(
            st.matches(TriplePattern::new(None, Some(NodeId(7)), None)),
            vec![t(1, 7, 2)]
        );
        let snap = st.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.iter().count(), 1);
        drop(guard);
    }

    /// Reads also answer while an exclusive (gate-write) section is live
    /// on the same thread, and they see the pre-exclusive epoch; the
    /// compound mutation becomes visible atomically at release.
    #[test]
    fn reads_see_the_pre_exclusive_epoch_until_release() {
        let st = ShardedStore::with_shards(4);
        st.insert(t(1, 7, 2));
        {
            let mut guard = st.exclusive();
            guard.remove(t(1, 7, 2));
            guard.insert(t(9, 7, 9));
            assert!(st.contains(t(1, 7, 2)), "pre-exclusive epoch answers");
            assert!(!st.contains(t(9, 7, 9)), "mid-section state invisible");
        }
        assert!(!st.contains(t(1, 7, 2)));
        assert!(st.contains(t(9, 7, 9)));
    }

    /// Epochs are immutable and generations strictly increase: a held
    /// snapshot keeps answering exactly as acquired across later inserts
    /// and removals.
    #[test]
    fn epoch_snapshots_are_immutable_and_generations_monotone() {
        let st = ShardedStore::with_shards(4);
        st.insert(t(1, 7, 2));
        let before = st.snapshot();
        let g0 = before.generation();
        st.insert(t(3, 7, 4));
        st.remove(t(1, 7, 2));
        let after = st.snapshot();
        assert!(after.generation() > g0, "publication bumps the stamp");
        assert_eq!(st.snapshot_generation(), after.generation());
        assert!(before.contains(t(1, 7, 2)), "old epoch untouched");
        assert!(!before.contains(t(3, 7, 4)));
        assert_eq!(before.len(), 1);
        assert!(!after.contains(t(1, 7, 2)));
        assert!(after.contains(t(3, 7, 4)));
        assert_eq!(after.len(), 1);
    }

    /// Mutations made through a `ShardWriteGuard` are invisible to the
    /// lock-free read path until the guard drops, then appear atomically.
    #[test]
    fn shard_guard_mutations_publish_on_release() {
        let st = ShardedStore::with_shards(4);
        {
            let mut guard = st.write_shard(NodeId(7));
            guard.insert(t(1, 7, 2));
            guard.insert(t(3, 7, 4));
            assert!(!st.contains(t(1, 7, 2)), "unpublished write invisible");
            assert_eq!(st.stats().triples, 0);
        }
        assert!(st.contains(t(1, 7, 2)));
        assert!(st.contains(t(3, 7, 4)));
        assert_eq!(st.stats().triples, 2);
    }

    /// Re-asserting a triple already present as *derived* changes only its
    /// provenance — no fresh triple — but the flip must still republish
    /// the epoch, or the lock-free `stats()`/`is_explicit` would keep
    /// serving the stale flag forever.
    #[test]
    fn explicit_reassertion_of_a_derived_triple_republishes_the_epoch() {
        let st = ShardedStore::with_shards(4);
        let mut fresh = Vec::new();
        st.insert_batch(&[t(1, 7, 2)], &mut fresh); // derived provenance
        assert!(!st.is_explicit(t(1, 7, 2)));
        assert_eq!(st.stats().explicit, 0);
        let before = st.snapshot_generation();

        fresh.clear();
        assert_eq!(st.insert_batch_explicit(&[t(1, 7, 2)], &mut fresh), 0);
        assert!(fresh.is_empty(), "provenance flip is not a fresh triple");
        assert!(st.is_explicit(t(1, 7, 2)), "flip visible lock-free");
        assert_eq!(st.stats().explicit, 1);
        assert_eq!(st.stats().triples, 1);
        assert!(st.snapshot_generation() > before, "flip published an epoch");

        // Re-asserting an already-explicit triple mutates nothing and
        // publishes nothing.
        let settled = st.snapshot_generation();
        fresh.clear();
        assert_eq!(st.insert_batch_explicit(&[t(1, 7, 2)], &mut fresh), 0);
        assert_eq!(st.snapshot_generation(), settled);
    }

    /// The scoped epoch reader preserves the exact-membership read-set
    /// contract even though nothing is pinned.
    #[test]
    #[should_panic(expected = "outside this snapshot's declared read set")]
    fn epoch_reader_panics_on_undeclared_predicate() {
        let st = ShardedStore::with_shards(1); // every predicate shares shard 0
        st.insert(t(1, 7, 2));
        let plan = st.plan_read(&[NodeId(7)]);
        let snap = st.snapshot();
        let reader = snap.reader(Some(&plan));
        let _ = reader.view().objects_with(NodeId(8), NodeId(1)).count();
    }

    /// The scoped epoch reader answers declared-predicate queries from
    /// the epoch and refuses full-store walks, like the pinned snapshot.
    #[test]
    fn epoch_reader_scoped_queries_answer() {
        let st = ShardedStore::with_shards(8);
        st.insert(t(1, 7, 2));
        st.insert(t(5, 20, 6));
        let plan = st.plan_read(&[NodeId(7)]);
        let snap = st.snapshot();
        let reader = snap.reader(Some(&plan));
        assert_eq!(reader.view().objects_with(NodeId(7), NodeId(1)).count(), 1);
        let unscoped = snap.reader(None);
        assert_eq!(unscoped.view().len(), 2);
    }

    #[test]
    fn stats_merge_across_shards() {
        let st = ShardedStore::with_shards(8);
        let mut fresh = Vec::new();
        st.insert_batch_explicit(&[t(1, 10, 2), t(1, 20, 2)], &mut fresh);
        st.insert(t(3, 10, 4));
        let stats = st.stats();
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.explicit, 2);
        assert_eq!(stats.derived, 1);
        assert_eq!(stats.predicates, 2);
        assert_eq!(stats.largest_partition, 2);
    }
}
