//! The shared, lock-protected store used by the concurrent reasoner.

use crate::vertical::{StoreStats, VerticalStore};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use slider_model::Triple;

/// A [`VerticalStore`] behind a readers-writer lock.
///
/// This mirrors the paper's concurrency story (§2.2): "The concurrency of
/// the triple store is handled by using ReentrantReadWriteLock, which
/// provides both read and write (during addition of new triples) locks."
///
/// Rule instances take the read lock for the duration of one join batch;
/// distributors take the write lock per inferred batch. Writes return the
/// subset of triples that were actually new, which is what gets dispatched
/// onward — the duplicate-limitation mechanism.
#[derive(Debug, Default)]
pub struct ConcurrentStore {
    inner: RwLock<VerticalStore>,
}

impl ConcurrentStore {
    /// An empty store.
    pub fn new() -> Self {
        ConcurrentStore::default()
    }

    /// Wraps an existing store.
    pub fn from_store(store: VerticalStore) -> Self {
        ConcurrentStore {
            inner: RwLock::new(store),
        }
    }

    /// Inserts a batch under one write lock; appends the *new* triples to
    /// `fresh` and returns how many were new.
    pub fn insert_batch(&self, triples: &[Triple], fresh: &mut Vec<Triple>) -> usize {
        if triples.is_empty() {
            return 0;
        }
        self.inner.write().insert_batch(triples, fresh)
    }

    /// Inserts one triple; returns `true` if new.
    pub fn insert(&self, t: Triple) -> bool {
        self.inner.write().insert(t)
    }

    /// Inserts a batch as **explicit** (asserted) facts under one write
    /// lock; appends the *new* triples to `fresh` and returns how many
    /// were new. The input manager uses this path; rule distributors use
    /// the plain [`ConcurrentStore::insert_batch`], so the explicit flag
    /// separates assertions from conclusions for truth maintenance.
    pub fn insert_batch_explicit(&self, triples: &[Triple], fresh: &mut Vec<Triple>) -> usize {
        if triples.is_empty() {
            return 0;
        }
        self.inner.write().insert_batch_explicit(triples, fresh)
    }

    /// Removes one triple; returns `true` if it was present.
    pub fn remove(&self, t: Triple) -> bool {
        self.inner.write().remove(t)
    }

    /// Removes a batch under one write lock; appends the triples that were
    /// actually present to `removed` and returns how many were present.
    pub fn remove_batch(&self, triples: &[Triple], removed: &mut Vec<Triple>) -> usize {
        if triples.is_empty() {
            return 0;
        }
        self.inner.write().remove_batch(triples, removed)
    }

    /// True if `t` is present.
    pub fn contains(&self, t: Triple) -> bool {
        self.inner.read().contains(t)
    }

    /// True if `t` is present and explicitly asserted.
    pub fn is_explicit(&self, t: Triple) -> bool {
        self.inner.read().is_explicit(t)
    }

    /// Acquires the read lock for a batch of queries (one lock per rule
    /// application, not per lookup).
    pub fn read(&self) -> RwLockReadGuard<'_, VerticalStore> {
        self.inner.read()
    }

    /// Acquires the write lock for a compound mutation. The maintenance
    /// subsystem holds this across a whole DRed run so overdeletion and
    /// rederivation are atomic with respect to readers.
    pub fn write(&self) -> RwLockWriteGuard<'_, VerticalStore> {
        self.inner.write()
    }

    /// Total number of triples.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Store statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        self.inner.read().stats()
    }

    /// Sorted snapshot of all triples (deterministic; for tests/reports).
    pub fn to_sorted_vec(&self) -> Vec<Triple> {
        self.inner.read().to_sorted_vec()
    }

    /// Consumes the wrapper, returning the inner store.
    pub fn into_inner(self) -> VerticalStore {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::NodeId;
    use std::sync::Arc;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn batch_insert_dedups() {
        let st = ConcurrentStore::new();
        let mut fresh = Vec::new();
        assert_eq!(st.insert_batch(&[t(1, 2, 3), t(1, 2, 3)], &mut fresh), 1);
        assert_eq!(fresh, vec![t(1, 2, 3)]);
        fresh.clear();
        assert_eq!(st.insert_batch(&[t(1, 2, 3)], &mut fresh), 0);
        assert!(fresh.is_empty());
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn empty_batch_short_circuits() {
        let st = ConcurrentStore::new();
        let mut fresh = Vec::new();
        assert_eq!(st.insert_batch(&[], &mut fresh), 0);
    }

    #[test]
    fn explicit_insert_and_remove() {
        let st = ConcurrentStore::new();
        let mut fresh = Vec::new();
        assert_eq!(st.insert_batch_explicit(&[t(1, 2, 3)], &mut fresh), 1);
        assert!(st.is_explicit(t(1, 2, 3)));
        st.insert(t(4, 2, 3)); // derived
        assert!(!st.is_explicit(t(4, 2, 3)));
        let mut removed = Vec::new();
        assert_eq!(st.remove_batch(&[t(1, 2, 3), t(9, 9, 9)], &mut removed), 1);
        assert_eq!(removed, vec![t(1, 2, 3)]);
        assert!(st.remove(t(4, 2, 3)));
        assert!(st.is_empty());
        assert_eq!(st.remove_batch(&[], &mut removed), 0);
    }

    #[test]
    fn write_guard_compound_mutation() {
        let st = ConcurrentStore::new();
        st.insert(t(1, 2, 3));
        {
            let mut guard = st.write();
            guard.remove(t(1, 2, 3));
            guard.insert_explicit(t(7, 8, 9));
        }
        assert_eq!(st.len(), 1);
        assert!(st.is_explicit(t(7, 8, 9)));
    }

    #[test]
    fn read_guard_queries() {
        let st = ConcurrentStore::new();
        st.insert(t(1, 10, 2));
        st.insert(t(1, 10, 3));
        let guard = st.read();
        assert_eq!(guard.objects_with(NodeId(10), NodeId(1)).count(), 2);
    }

    #[test]
    fn concurrent_writers_never_lose_or_duplicate() {
        let st = Arc::new(ConcurrentStore::new());
        let threads = 8;
        let per_thread = 1_000;
        let mut handles = Vec::new();
        for tid in 0..threads {
            let st = Arc::clone(&st);
            handles.push(std::thread::spawn(move || {
                let mut fresh = Vec::new();
                let mut new_count = 0;
                for i in 0..per_thread {
                    // Half the keys collide across threads.
                    let key = if i % 2 == 0 { i } else { i * 1_000 + tid };
                    new_count += st.insert_batch(&[t(key as u64, 1, 1)], &mut fresh);
                }
                new_count
            }));
        }
        let total_new: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Every insert that reported "new" corresponds to exactly one stored
        // triple, regardless of interleaving.
        assert_eq!(total_new, st.len());
        // Colliding keys stored once: evens are shared across all threads.
        let evens = (0..per_thread).filter(|i| i % 2 == 0).count();
        let odds = (per_thread / 2) * threads;
        assert_eq!(st.len(), evens + odds);
    }

    #[test]
    fn readers_run_during_reasoning_shape() {
        // Simulates the rule-instance pattern: grab guard, many lookups.
        let st = Arc::new(ConcurrentStore::new());
        for i in 0..100 {
            st.insert(t(i, 7, i + 1));
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let st = Arc::clone(&st);
            handles.push(std::thread::spawn(move || {
                let g = st.read();
                (0..100)
                    .map(|i| g.objects_with(NodeId(7), NodeId(i)).count())
                    .sum::<usize>()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 100);
        }
    }

    #[test]
    fn into_inner_roundtrip() {
        let st = ConcurrentStore::new();
        st.insert(t(1, 2, 3));
        let inner = st.into_inner();
        assert!(inner.contains(t(1, 2, 3)));
        let st2 = ConcurrentStore::from_store(inner);
        assert_eq!(st2.len(), 1);
    }
}
