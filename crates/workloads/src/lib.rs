//! Deterministic ontology generators for the paper's benchmark (§3).
//!
//! The evaluation uses "a set of 13 ontologies divided in three categories":
//!
//! 1. **Generated** — five BSBM (Berlin SPARQL Benchmark) ontologies from
//!    100 k to 5 M triples. The original Java generator is replaced by
//!    [`bsbm`], which emits the same *workload character*: a big A-Box over
//!    a small schema, so that ρdf infers little and RDFS infers ≈⅓ of the
//!    input (see DESIGN.md §3 for the substitution argument).
//! 2. **subClassOf chains** — Equation 1 of the paper, implemented verbatim
//!    in [`chains`]: the worst case for duplicate limitation, O(n²) unique
//!    closure against O(n³) naive derivations.
//! 3. **Real-world** — Wikipedia- and WordNet-shaped generators
//!    ([`wikipedia`], [`wordnet`]) sized and tuned to the paper's
//!    input/inferred ratios (Wikipedia: inference-heavy category DAG;
//!    WordNet: no ρdf-visible schema at all, so ρdf infers exactly 0).
//!
//! All generators are seeded and fully deterministic; [`paper`] enumerates
//! the 13 ontologies of Table 1 with an optional scale factor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsbm;
pub mod chains;
pub mod paper;
pub mod stream;
pub mod wikipedia;
pub mod wordnet;

pub use paper::{PaperOntology, ONTOLOGIES};

use slider_model::{Dictionary, TermTriple, Triple};

/// Encodes a generated ontology through a dictionary (the input-manager
/// path used by every benchmark).
pub fn encode_all(triples: &[TermTriple], dict: &Dictionary) -> Vec<Triple> {
    triples.iter().map(|t| dict.encode_triple(t)).collect()
}

/// Serialises a generated ontology to N-Triples text (what the paper's
/// on-disk ontologies look like; benches parse this to include parse time).
pub fn to_ntriples(triples: &[TermTriple]) -> String {
    let mut out = String::with_capacity(triples.len() * 64);
    for t in triples {
        slider_parser::write_triple(&mut out, t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::Term;

    #[test]
    fn encode_all_roundtrips() {
        let dict = Dictionary::new();
        let data = vec![
            (
                Term::iri("http://e/a"),
                Term::iri("http://e/p"),
                Term::iri("http://e/b"),
            ),
            (
                Term::iri("http://e/a"),
                Term::iri("http://e/p"),
                Term::literal("x"),
            ),
        ];
        let encoded = encode_all(&data, &dict);
        assert_eq!(encoded.len(), 2);
        assert_eq!(dict.decode_triple(encoded[0]).unwrap(), data[0]);
    }

    #[test]
    fn to_ntriples_parses_back() {
        let data = vec![(
            Term::iri("http://e/a"),
            Term::iri("http://e/p"),
            Term::literal("hello world"),
        )];
        let text = to_ntriples(&data);
        let parsed: Vec<TermTriple> = slider_parser::parse_ntriples_str(&text)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(parsed, data);
    }
}
