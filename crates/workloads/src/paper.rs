//! The 13 benchmark ontologies of Table 1, as an enumerable catalogue.

use crate::{bsbm, chains, wikipedia, wordnet};
use slider_model::TermTriple;

/// One of the paper's 13 benchmark ontologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperOntology {
    /// BSBM-generated, ~100 k triples.
    Bsbm100k,
    /// BSBM-generated, ~200 k triples.
    Bsbm200k,
    /// BSBM-generated, ~500 k triples.
    Bsbm500k,
    /// BSBM-generated, ~1 M triples.
    Bsbm1M,
    /// BSBM-generated, ~5 M triples.
    Bsbm5M,
    /// Wikipedia-shaped, 458 369 triples.
    Wikipedia,
    /// WordNet-shaped, 473 589 triples.
    Wordnet,
    /// subClassOf chain, n = 10.
    SubClassOf10,
    /// subClassOf chain, n = 20.
    SubClassOf20,
    /// subClassOf chain, n = 50.
    SubClassOf50,
    /// subClassOf chain, n = 100.
    SubClassOf100,
    /// subClassOf chain, n = 200.
    SubClassOf200,
    /// subClassOf chain, n = 500.
    SubClassOf500,
}

/// All 13 ontologies in Table 1 row order.
pub const ONTOLOGIES: [PaperOntology; 13] = [
    PaperOntology::Bsbm100k,
    PaperOntology::Bsbm200k,
    PaperOntology::Bsbm500k,
    PaperOntology::Bsbm1M,
    PaperOntology::Bsbm5M,
    PaperOntology::Wikipedia,
    PaperOntology::Wordnet,
    PaperOntology::SubClassOf10,
    PaperOntology::SubClassOf20,
    PaperOntology::SubClassOf50,
    PaperOntology::SubClassOf100,
    PaperOntology::SubClassOf200,
    PaperOntology::SubClassOf500,
];

impl PaperOntology {
    /// Name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            PaperOntology::Bsbm100k => "BSBM_100k",
            PaperOntology::Bsbm200k => "BSBM_200k",
            PaperOntology::Bsbm500k => "BSBM_500k",
            PaperOntology::Bsbm1M => "BSBM_1M",
            PaperOntology::Bsbm5M => "BSBM_5M",
            PaperOntology::Wikipedia => "wikipedia",
            PaperOntology::Wordnet => "wordnet",
            PaperOntology::SubClassOf10 => "subClassOf10",
            PaperOntology::SubClassOf20 => "subClassOf20",
            PaperOntology::SubClassOf50 => "subClassOf50",
            PaperOntology::SubClassOf100 => "subClassOf100",
            PaperOntology::SubClassOf200 => "subClassOf200",
            PaperOntology::SubClassOf500 => "subClassOf500",
        }
    }

    /// Paper input size (triples), before scaling.
    pub fn paper_size(self) -> usize {
        match self {
            PaperOntology::Bsbm100k => 99_914,
            PaperOntology::Bsbm200k => 200_007,
            PaperOntology::Bsbm500k => 500_037,
            PaperOntology::Bsbm1M => 1_000_000,
            PaperOntology::Bsbm5M => 5_000_000,
            PaperOntology::Wikipedia => 458_369,
            PaperOntology::Wordnet => 473_589,
            PaperOntology::SubClassOf10 => 20,
            PaperOntology::SubClassOf20 => 40,
            PaperOntology::SubClassOf50 => 100,
            PaperOntology::SubClassOf100 => 200,
            PaperOntology::SubClassOf200 => 400,
            PaperOntology::SubClassOf500 => 1_000,
        }
    }

    /// True for the subClassOf chain family (never scaled: the chain *is*
    /// the experiment).
    pub fn is_chain(self) -> bool {
        matches!(
            self,
            PaperOntology::SubClassOf10
                | PaperOntology::SubClassOf20
                | PaperOntology::SubClassOf50
                | PaperOntology::SubClassOf100
                | PaperOntology::SubClassOf200
                | PaperOntology::SubClassOf500
        )
    }

    /// Generates the ontology. `scale` multiplies the large ontologies'
    /// target size (chains are exempt); `scale = 1.0` reproduces the paper
    /// sizes.
    pub fn generate(self, scale: f64) -> Vec<TermTriple> {
        let scaled = |n: usize| ((n as f64 * scale) as usize).max(500);
        match self {
            PaperOntology::Bsbm100k
            | PaperOntology::Bsbm200k
            | PaperOntology::Bsbm500k
            | PaperOntology::Bsbm1M
            | PaperOntology::Bsbm5M => {
                bsbm::generate(&bsbm::BsbmConfig::sized(scaled(self.paper_size())))
            }
            PaperOntology::Wikipedia => wikipedia::generate(&wikipedia::WikipediaConfig::sized(
                scaled(self.paper_size()),
            )),
            PaperOntology::Wordnet => {
                wordnet::generate(&wordnet::WordnetConfig::sized(scaled(self.paper_size())))
            }
            PaperOntology::SubClassOf10 => chains::subclass_chain(10),
            PaperOntology::SubClassOf20 => chains::subclass_chain(20),
            PaperOntology::SubClassOf50 => chains::subclass_chain(50),
            PaperOntology::SubClassOf100 => chains::subclass_chain(100),
            PaperOntology::SubClassOf200 => chains::subclass_chain(200),
            PaperOntology::SubClassOf500 => chains::subclass_chain(500),
        }
    }
}

impl std::fmt::Display for PaperOntology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_ontologies() {
        assert_eq!(ONTOLOGIES.len(), 13);
        let names: Vec<&str> = ONTOLOGIES.iter().map(|o| o.name()).collect();
        assert_eq!(names[0], "BSBM_100k");
        assert_eq!(names[6], "wordnet");
        assert_eq!(names[12], "subClassOf500");
    }

    #[test]
    fn chains_ignore_scale() {
        let full = PaperOntology::SubClassOf50.generate(1.0);
        let scaled = PaperOntology::SubClassOf50.generate(0.01);
        assert_eq!(full, scaled);
        assert_eq!(full.len(), 99);
    }

    #[test]
    fn scale_shrinks_big_ontologies() {
        let small = PaperOntology::Bsbm100k.generate(0.02);
        assert!(small.len() < 5_000, "{}", small.len());
        assert!(small.len() >= 1_000);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(PaperOntology::Wikipedia.to_string(), "wikipedia");
    }
}
