//! A WordNet-shaped ontology generator: lexical graph with **no
//! RDFS-visible schema**.
//!
//! Stands in for the paper's WordNet ontology (473 589 input triples). Its
//! distinguishing row in Table 1: **ρdf infers exactly 0 triples** (the
//! dataset uses only domain-specific properties — `hyponymOf`,
//! `containsWordSense`, `gloss`, … — and contains no `subClassOf` /
//! `subPropertyOf` / `domain` / `range` statements), while RDFS still
//! infers ≈68 % of the input through rdfs4a/rdfs4b/rdfs1 (`type Resource`
//! per IRI, `type Literal` per literal).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slider_model::{Term, TermTriple};

/// Namespace of the generated data.
pub const WN_NS: &str = "http://wordnet.example.org/";

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct WordnetConfig {
    /// Approximate number of triples to generate.
    pub target_triples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WordnetConfig {
    /// A config with the default seed.
    pub fn sized(target_triples: usize) -> Self {
        WordnetConfig {
            target_triples,
            seed: 0x5eed_30d5,
        }
    }

    /// The paper's WordNet ontology size.
    pub fn paper() -> Self {
        WordnetConfig::sized(473_589)
    }
}

/// Generates the ontology: synsets with glosses, hyponym links, word senses
/// and a shared word pool (worst case for ρdf, bulk case for RDFS).
pub fn generate(config: &WordnetConfig) -> Vec<TermTriple> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let target = config.target_triples.max(50);
    let mut out = Vec::with_capacity(target + 16);

    let contains_sense = Term::iri(format!("{WN_NS}schema/containsWordSense"));
    let in_word = Term::iri(format!("{WN_NS}schema/word"));
    let lexical_form = Term::iri(format!("{WN_NS}schema/lexicalForm"));
    let gloss = Term::iri(format!("{WN_NS}schema/gloss"));
    let pos = Term::iri(format!("{WN_NS}schema/partOfSpeech"));
    let hyponym_of = Term::iri(format!("{WN_NS}schema/hyponymOf"));

    // Part-of-speech literals come from a fixed pool: pooled literals
    // (like shared words below) add triples without adding distinct nodes,
    // pulling the RDFS inferred/input ratio to the paper's ≈0.68.
    let pos_pool = ["noun", "verb", "adjective", "adverb"].map(Term::literal);

    // Shared word pool: words are reused across synsets (as in WordNet,
    // where polysemous words belong to many synsets).
    let word_pool_size = (target / 15).max(16);
    let mut word_emitted = vec![false; word_pool_size];

    let mut synset_no = 0usize;
    let mut sense_no = 0usize;
    while out.len() < target {
        synset_no += 1;
        let synset = Term::iri(format!("{WN_NS}synset/{synset_no}"));
        out.push((
            synset.clone(),
            gloss.clone(),
            Term::literal(format!("gloss of synset {synset_no}")),
        ));
        out.push((
            synset.clone(),
            pos.clone(),
            pos_pool[rng.random_range(0..4)].clone(),
        ));
        if synset_no > 1 {
            // Hypernym tree: random earlier synset.
            let parent = rng.random_range(1..synset_no);
            out.push((
                synset.clone(),
                hyponym_of.clone(),
                Term::iri(format!("{WN_NS}synset/{parent}")),
            ));
        }
        for _ in 0..rng.random_range(2..=4usize) {
            sense_no += 1;
            let sense = Term::iri(format!("{WN_NS}wordsense/{sense_no}"));
            out.push((synset.clone(), contains_sense.clone(), sense.clone()));
            let w = rng.random_range(0..word_pool_size);
            let word = Term::iri(format!("{WN_NS}word/{w}"));
            out.push((sense, in_word.clone(), word.clone()));
            if !word_emitted[w] {
                word_emitted[w] = true;
                out.push((
                    word,
                    lexical_form.clone(),
                    Term::literal(format!("word-{w}")),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::vocab::{RDFS_NS, RDF_NS};

    #[test]
    fn hits_target() {
        let data = generate(&WordnetConfig::sized(10_000));
        assert!(data.len() >= 10_000);
        assert!(data.len() < 10_100);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(&WordnetConfig::sized(3_000)),
            generate(&WordnetConfig::sized(3_000))
        );
    }

    #[test]
    fn no_rdfs_schema_at_all() {
        // The defining property: nothing for ρdf to infer from.
        let data = generate(&WordnetConfig::sized(5_000));
        for (_, p, _) in &data {
            let iri = p.as_iri().unwrap();
            assert!(
                !iri.starts_with(RDFS_NS) && !iri.starts_with(RDF_NS),
                "unexpected RDF(S) predicate {iri}"
            );
        }
    }

    #[test]
    fn words_are_shared() {
        let data = generate(&WordnetConfig::sized(20_000));
        let in_word = Term::iri(format!("{WN_NS}schema/word"));
        let uses: Vec<&Term> = data
            .iter()
            .filter(|t| t.1 == in_word)
            .map(|t| &t.2)
            .collect();
        let distinct: std::collections::HashSet<&&Term> = uses.iter().collect();
        assert!(distinct.len() < uses.len(), "words must be polysemous");
    }
}
