//! The `subClassOfⁿ` ontologies — Equation 1 of the paper.
//!
//! ```text
//! <1, type, Class>
//! <i, type, Class>          i ∈ {2, 3, …, n}
//! <i, subClassOf, (i−1)>    i ∈ {2, 3, …, n}
//! ```
//!
//! "These ontologies are easy to generate but provide the utmost practical
//! interest due to their complexity. The chain of n rules produce O(n²)
//! unique triples, however commonly used iterative rules schemes produce
//! O(n³) triples."
//!
//! Under ρdf the closure adds exactly `(n−1)(n−2)/2` `subClassOf` triples
//! (every pair `(i, j)` with `i − j ≥ 2`), which is what Table 1 reports
//! (e.g. n = 10 → 36 inferred).

use slider_model::vocab::{RDFS_NS, RDF_NS};
use slider_model::{Term, TermTriple};

/// Namespace of the chain classes.
pub const CHAIN_NS: &str = "http://slider.example.org/chain#";

fn class(i: usize) -> Term {
    Term::iri(format!("{CHAIN_NS}{i}"))
}

/// Generates the `subClassOfⁿ` ontology per Equation 1 (`2n − 1` triples).
///
/// Note: Table 1 lists the input of `subClassOf10` as 20 triples while
/// Equation 1 produces 19; we implement the equation and document the
/// off-by-one in EXPERIMENTS.md.
pub fn subclass_chain(n: usize) -> Vec<TermTriple> {
    let rdf_type = Term::iri(format!("{RDF_NS}type"));
    let rdfs_class = Term::iri(format!("{RDFS_NS}Class"));
    let sco = Term::iri(format!("{RDFS_NS}subClassOf"));
    let mut out = Vec::with_capacity(2 * n);
    if n >= 1 {
        out.push((class(1), rdf_type.clone(), rdfs_class.clone()));
    }
    for i in 2..=n {
        out.push((class(i), rdf_type.clone(), rdfs_class.clone()));
        out.push((class(i), sco.clone(), class(i - 1)));
    }
    out
}

/// The number of `subClassOf` triples ρdf infers from `subclass_chain(n)`:
/// `(n−1)(n−2)/2`.
pub fn expected_rho_df_inferred(n: usize) -> usize {
    if n < 3 {
        0
    } else {
        (n - 1) * (n - 2) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_follow_equation_1() {
        assert_eq!(subclass_chain(1).len(), 1);
        assert_eq!(subclass_chain(10).len(), 19);
        assert_eq!(subclass_chain(500).len(), 999);
    }

    #[test]
    fn shape() {
        let data = subclass_chain(3);
        // (1 type Class), (2 type Class), (2 sco 1), (3 type Class), (3 sco 2)
        assert_eq!(data.len(), 5);
        let sco = Term::iri(format!("{RDFS_NS}subClassOf"));
        let sco_triples: Vec<_> = data.iter().filter(|t| t.1 == sco).collect();
        assert_eq!(sco_triples.len(), 2);
        assert_eq!(sco_triples[0].0, class(2));
        assert_eq!(sco_triples[0].2, class(1));
    }

    #[test]
    fn expected_inferred_counts_match_paper_table1() {
        // Table 1: subClassOf10 → 36, 20 → 171, 50 → 1176, 100 → 4851,
        // 200 → 19701, 500 → 124251.
        assert_eq!(expected_rho_df_inferred(10), 36);
        assert_eq!(expected_rho_df_inferred(20), 171);
        assert_eq!(expected_rho_df_inferred(50), 1176);
        assert_eq!(expected_rho_df_inferred(100), 4851);
        assert_eq!(expected_rho_df_inferred(200), 19701);
        assert_eq!(expected_rho_df_inferred(500), 124251);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(expected_rho_df_inferred(0), 0);
        assert_eq!(expected_rho_df_inferred(2), 0);
        assert!(subclass_chain(0).is_empty());
    }

    #[test]
    fn is_deterministic() {
        assert_eq!(subclass_chain(50), subclass_chain(50));
    }
}
