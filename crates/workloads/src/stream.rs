//! Stream shaping: turning a static ontology into an arriving triple flow.
//!
//! The paper positions Slider as a reasoner for "dynamic triple streams"
//! processed "as soon as \[data\] is published". These helpers chop a
//! dataset into arrival batches for the streaming benchmarks and the
//! `streaming_sensor` example.

use slider_model::TermTriple;
use std::time::Duration;

/// Splits `triples` into `batch_size`-sized arrival batches (last batch may
/// be short).
pub fn batches(triples: &[TermTriple], batch_size: usize) -> Vec<Vec<TermTriple>> {
    assert!(batch_size >= 1, "batch size must be at least 1");
    triples
        .chunks(batch_size)
        .map(<[TermTriple]>::to_vec)
        .collect()
}

/// An arrival schedule: batches paired with inter-arrival gaps.
#[derive(Debug, Clone)]
pub struct TimedStream {
    items: Vec<(Duration, Vec<TermTriple>)>,
}

impl TimedStream {
    /// A uniform schedule: every `gap`, one `batch_size` batch.
    pub fn uniform(triples: &[TermTriple], batch_size: usize, gap: Duration) -> Self {
        TimedStream {
            items: batches(triples, batch_size)
                .into_iter()
                .map(|b| (gap, b))
                .collect(),
        }
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the stream has no batches.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(gap_before_batch, batch)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(Duration, Vec<TermTriple>)> {
        self.items.iter()
    }

    /// Plays the stream: sleeps each gap, then hands the batch to `deliver`.
    pub fn play(&self, mut deliver: impl FnMut(&[TermTriple])) {
        for (gap, batch) in &self.items {
            if !gap.is_zero() {
                std::thread::sleep(*gap);
            }
            deliver(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::Term;

    fn data(n: usize) -> Vec<TermTriple> {
        (0..n)
            .map(|i| {
                (
                    Term::iri(format!("http://e/s{i}")),
                    Term::iri("http://e/p"),
                    Term::iri(format!("http://e/o{i}")),
                )
            })
            .collect()
    }

    #[test]
    fn batch_partitioning() {
        let d = data(10);
        let bs = batches(&d, 3);
        assert_eq!(bs.len(), 4);
        assert_eq!(bs[0].len(), 3);
        assert_eq!(bs[3].len(), 1);
        let rejoined: Vec<TermTriple> = bs.into_iter().flatten().collect();
        assert_eq!(rejoined, d);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = batches(&data(3), 0);
    }

    #[test]
    fn uniform_stream_plays_everything() {
        let d = data(7);
        let stream = TimedStream::uniform(&d, 2, Duration::ZERO);
        assert_eq!(stream.len(), 4);
        assert!(!stream.is_empty());
        let mut seen = 0;
        stream.play(|b| seen += b.len());
        assert_eq!(seen, 7);
    }

    #[test]
    fn iter_exposes_gaps() {
        let d = data(4);
        let stream = TimedStream::uniform(&d, 2, Duration::from_millis(5));
        for (gap, batch) in stream.iter() {
            assert_eq!(*gap, Duration::from_millis(5));
            assert_eq!(batch.len(), 2);
        }
    }
}
