//! Stream shaping: turning a static ontology into an arriving triple flow.
//!
//! The paper positions Slider as a reasoner for "dynamic triple streams"
//! processed "as soon as \[data\] is published". These helpers chop a
//! dataset into arrival batches for the streaming benchmarks and the
//! `streaming_sensor` example:
//!
//! * [`TimedStream`] — batches paired with inter-arrival gaps, either
//!   [`uniform`](TimedStream::uniform) or [`bursty`](TimedStream::bursty)
//!   (geometric gaps: back-to-back bursts with occasional long pauses);
//! * [`SlidingWindow`] — a count-based window that pairs each arrival
//!   batch with the batch expiring out of the window, feeding the
//!   retraction path (`Slider::remove_terms`) instead of a rebuild;
//! * [`TimedWindow`] — a **time-based** window over a [`TimedStream`]:
//!   every batch is stamped with its virtual arrival time (the cumulative
//!   inter-arrival gaps) and expires by *timestamp*, not batch count, so a
//!   bursty schedule expires several batches at once after a long pause —
//!   the high-churn shape the coalesced maintenance scheduler
//!   (`Slider::remove_deferred`) amortises.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slider_model::TermTriple;
use std::time::Duration;

/// Splits `triples` into `batch_size`-sized arrival batches (last batch may
/// be short).
pub fn batches(triples: &[TermTriple], batch_size: usize) -> Vec<Vec<TermTriple>> {
    assert!(batch_size >= 1, "batch size must be at least 1");
    triples
        .chunks(batch_size)
        .map(<[TermTriple]>::to_vec)
        .collect()
}

/// An arrival schedule: batches paired with inter-arrival gaps.
#[derive(Debug, Clone)]
pub struct TimedStream {
    items: Vec<(Duration, Vec<TermTriple>)>,
}

impl TimedStream {
    /// A uniform schedule: every `gap`, one `batch_size` batch.
    pub fn uniform(triples: &[TermTriple], batch_size: usize, gap: Duration) -> Self {
        TimedStream {
            items: batches(triples, batch_size)
                .into_iter()
                .map(|b| (gap, b))
                .collect(),
        }
    }

    /// A bursty schedule with geometric inter-arrival gaps (see
    /// [`bursty_gaps`]): most batches arrive back-to-back (`k = 0` ticks)
    /// with occasional long quiet stretches — the classic bursty-traffic
    /// shape the uniform schedule can't exercise. Deterministic per
    /// `seed`.
    ///
    /// Panics unless `0.0 <= continue_prob < 1.0`.
    pub fn bursty(
        triples: &[TermTriple],
        batch_size: usize,
        tick: Duration,
        continue_prob: f64,
        seed: u64,
    ) -> Self {
        let batches = batches(triples, batch_size);
        let gaps = bursty_gaps(batches.len(), tick, continue_prob, seed);
        TimedStream {
            items: gaps.into_iter().zip(batches).collect(),
        }
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the stream has no batches.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(gap_before_batch, batch)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(Duration, Vec<TermTriple>)> {
        self.items.iter()
    }

    /// Plays the stream: sleeps each gap, then hands the batch to `deliver`.
    pub fn play(&self, mut deliver: impl FnMut(&[TermTriple])) {
        for (gap, batch) in &self.items {
            if !gap.is_zero() {
                std::thread::sleep(*gap);
            }
            deliver(batch);
        }
    }
}

/// One step of a [`SlidingWindow`]: what arrives and what expires.
#[derive(Debug, Clone, Copy)]
pub struct WindowStep<'a> {
    /// Zero-based step index (= index of the arriving batch).
    pub index: usize,
    /// The batch entering the window.
    pub arrival: &'a [TermTriple],
    /// The batch leaving the window (`None` until the window is full).
    pub expiring: Option<&'a [TermTriple]>,
}

/// A count-based sliding window over arrival batches.
///
/// Step `i` delivers batch `i` and — once the window holds `window`
/// batches — expires batch `i − window`. Streaming consumers feed the
/// arrival to `Slider::add_terms` and the expiring batch to
/// `Slider::remove_terms`, keeping the materialisation equal to the
/// closure of exactly the last `window` batches *without* any rebuild
/// (the DRed maintenance path). `examples/streaming_sensor.rs` and the
/// `retraction` bench both drive this shape.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    batches: Vec<Vec<TermTriple>>,
    window: usize,
    gap: Duration,
}

impl SlidingWindow {
    /// Chops `triples` into `batch_size` batches sliding over a window of
    /// `window` batches, with `gap` between arrivals.
    ///
    /// Panics if `window` is 0 (an empty window expires every arrival
    /// immediately — use a plain [`TimedStream`] if you don't want state).
    pub fn new(triples: &[TermTriple], batch_size: usize, window: usize, gap: Duration) -> Self {
        assert!(window >= 1, "window must hold at least 1 batch");
        SlidingWindow {
            batches: batches(triples, batch_size),
            window,
            gap,
        }
    }

    /// Number of steps (= number of arrival batches).
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True if the stream has no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Window size, in batches.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Iterates the steps: each arrival paired with the batch (if any)
    /// that slides out of the window on that step.
    pub fn steps(&self) -> impl Iterator<Item = WindowStep<'_>> {
        self.batches
            .iter()
            .enumerate()
            .map(|(i, arrival)| WindowStep {
                index: i,
                arrival,
                expiring: i
                    .checked_sub(self.window)
                    .map(|j| self.batches[j].as_slice()),
            })
    }

    /// The batches still inside the window after the last arrival (at most
    /// `window` of them, in arrival order).
    pub fn tail(&self) -> &[Vec<TermTriple>] {
        let start = self.batches.len().saturating_sub(self.window);
        &self.batches[start..]
    }

    /// Plays the window: sleeps the gap, then hands
    /// `(arrival, expiring)` to `deliver` for each step.
    pub fn play(&self, mut deliver: impl FnMut(&[TermTriple], Option<&[TermTriple]>)) {
        for step in self.steps() {
            if !self.gap.is_zero() {
                std::thread::sleep(self.gap);
            }
            deliver(step.arrival, step.expiring);
        }
    }
}

/// `n` bursty inter-arrival gaps: each is `k · tick` where
/// `k ~ Geometric(continue_prob)` (`P(k) = (1−p)·pᵏ`, mean gap
/// `tick · p/(1−p)`), sampled by coin flips on a 2⁻⁵³-grained uniform.
/// The single source of the bursty shape — [`TimedStream::bursty`] and
/// the `retraction` bench's virtual clock both draw from here, so they
/// cannot drift apart. Deterministic per `seed`.
///
/// Panics unless `0.0 <= continue_prob < 1.0`.
pub fn bursty_gaps(n: usize, tick: Duration, continue_prob: f64, seed: u64) -> Vec<Duration> {
    assert!(
        (0.0..1.0).contains(&continue_prob),
        "continue_prob must be in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut geometric = move || {
        let mut k = 0u32;
        loop {
            let unit = rng.random_range(0u64..1 << 53) as f64 / (1u64 << 53) as f64;
            if unit >= continue_prob {
                return k;
            }
            k += 1;
        }
    };
    (0..n).map(|_| tick * geometric()).collect()
}

/// Virtual-time expiry computation, shared by [`TimedWindow`] and the
/// `retraction` bench: given each batch's virtual arrival time (monotone
/// non-decreasing) and a window length, returns for each step the indices
/// of the batches expiring at that step — batch `j` expires at the first
/// step `i` with `times[j] + window <= times[i]`. A batch never expires at
/// its own step (the window must be non-zero).
///
/// Panics if `window` is zero or `times` is not sorted.
pub fn expirations(times: &[Duration], window: Duration) -> Vec<Vec<usize>> {
    assert!(window > Duration::ZERO, "window must be non-zero");
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "virtual times must be monotone"
    );
    let mut cursor = 0usize; // first batch still live
    times
        .iter()
        .enumerate()
        .map(|(i, &now)| {
            let mut expiring = Vec::new();
            while cursor < i && times[cursor] + window <= now {
                expiring.push(cursor);
                cursor += 1;
            }
            expiring
        })
        .collect()
}

/// One step of a [`TimedWindow`]: the arrival, its virtual timestamp, and
/// every batch whose timestamp has aged out of the window by then.
#[derive(Debug, Clone)]
pub struct TimedWindowStep<'a> {
    /// Zero-based step index (= index of the arriving batch).
    pub index: usize,
    /// Virtual arrival time of this batch (cumulative inter-arrival gaps).
    pub at: Duration,
    /// Real inter-arrival gap before this batch (what [`TimedWindow::play`]
    /// sleeps).
    pub gap: Duration,
    /// The batch entering the window.
    pub arrival: &'a [TermTriple],
    /// Every batch expiring at this step — empty most steps, several at
    /// once after a long pause (none until the window first fills).
    pub expiring: Vec<&'a [TermTriple]>,
}

/// A time-based sliding window over a [`TimedStream`].
///
/// Unlike [`SlidingWindow`] (count-based: step `i` expires batch
/// `i − window`), a `TimedWindow` stamps every batch with its **virtual
/// arrival time** — the cumulative inter-arrival gaps of the underlying
/// stream — and expires batches whose timestamp is older than `window`
/// before the current arrival. Composed with
/// [`TimedStream::bursty`], this produces the bursty churn profile:
/// back-to-back arrivals expire nothing, then one arrival after a long
/// pause expires a whole run of batches at once. Streaming consumers feed
/// those to `Slider::remove_terms_deferred` and let the maintenance
/// scheduler coalesce them into a single DRed pass
/// (`examples/streaming_sensor.rs` drives exactly this shape).
#[derive(Debug, Clone)]
pub struct TimedWindow {
    /// `(virtual arrival time, real gap before arrival, batch)`.
    items: Vec<(Duration, Duration, Vec<TermTriple>)>,
    window: Duration,
}

impl TimedWindow {
    /// Stamps each batch of `stream` with its virtual arrival time and
    /// expires by timestamp with a window of `window`.
    ///
    /// Panics if `window` is zero (everything would expire on arrival).
    pub fn from_stream(stream: &TimedStream, window: Duration) -> Self {
        assert!(window > Duration::ZERO, "window must be non-zero");
        let mut at = Duration::ZERO;
        TimedWindow {
            items: stream
                .iter()
                .map(|(gap, batch)| {
                    at += *gap;
                    (at, *gap, batch.clone())
                })
                .collect(),
            window,
        }
    }

    /// Uniform-schedule convenience: `batch_size` batches every `gap`,
    /// expiring after `window`.
    pub fn uniform(
        triples: &[TermTriple],
        batch_size: usize,
        gap: Duration,
        window: Duration,
    ) -> Self {
        TimedWindow::from_stream(&TimedStream::uniform(triples, batch_size, gap), window)
    }

    /// Number of steps (= number of arrival batches).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the stream has no batches.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Window length (virtual time).
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Iterates the steps: each arrival paired with every batch that ages
    /// out of the window at that step.
    pub fn steps(&self) -> impl Iterator<Item = TimedWindowStep<'_>> {
        let times: Vec<Duration> = self.items.iter().map(|(at, _, _)| *at).collect();
        let expiry = expirations(&times, self.window);
        self.items
            .iter()
            .zip(expiry)
            .enumerate()
            .map(|(i, ((at, gap, batch), expiring))| TimedWindowStep {
                index: i,
                at: *at,
                gap: *gap,
                arrival: batch,
                expiring: expiring
                    .into_iter()
                    .map(|j| self.items[j].2.as_slice())
                    .collect(),
            })
    }

    /// The batches still live after the last arrival: those within
    /// `window` of the final virtual timestamp, in arrival order.
    pub fn live_tail(&self) -> Vec<&[TermTriple]> {
        let Some(&(last, _, _)) = self.items.last() else {
            return Vec::new();
        };
        self.items
            .iter()
            .filter(|(at, _, _)| *at + self.window > last)
            .map(|(_, _, batch)| batch.as_slice())
            .collect()
    }

    /// Plays the window in real time: sleeps each gap, then hands the step
    /// to `deliver`.
    pub fn play(&self, mut deliver: impl FnMut(TimedWindowStep<'_>)) {
        for step in self.steps() {
            if !step.gap.is_zero() {
                std::thread::sleep(step.gap);
            }
            deliver(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::Term;

    fn data(n: usize) -> Vec<TermTriple> {
        (0..n)
            .map(|i| {
                (
                    Term::iri(format!("http://e/s{i}")),
                    Term::iri("http://e/p"),
                    Term::iri(format!("http://e/o{i}")),
                )
            })
            .collect()
    }

    #[test]
    fn batch_partitioning() {
        let d = data(10);
        let bs = batches(&d, 3);
        assert_eq!(bs.len(), 4);
        assert_eq!(bs[0].len(), 3);
        assert_eq!(bs[3].len(), 1);
        let rejoined: Vec<TermTriple> = bs.into_iter().flatten().collect();
        assert_eq!(rejoined, d);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = batches(&data(3), 0);
    }

    #[test]
    fn uniform_stream_plays_everything() {
        let d = data(7);
        let stream = TimedStream::uniform(&d, 2, Duration::ZERO);
        assert_eq!(stream.len(), 4);
        assert!(!stream.is_empty());
        let mut seen = 0;
        stream.play(|b| seen += b.len());
        assert_eq!(seen, 7);
    }

    #[test]
    fn iter_exposes_gaps() {
        let d = data(4);
        let stream = TimedStream::uniform(&d, 2, Duration::from_millis(5));
        for (gap, batch) in stream.iter() {
            assert_eq!(*gap, Duration::from_millis(5));
            assert_eq!(batch.len(), 2);
        }
    }

    #[test]
    fn bursty_is_deterministic_and_preserves_data() {
        let d = data(64);
        let tick = Duration::from_millis(1);
        let a = TimedStream::bursty(&d, 4, tick, 0.5, 42);
        let b = TimedStream::bursty(&d, 4, tick, 0.5, 42);
        let gaps = |s: &TimedStream| s.iter().map(|(g, _)| *g).collect::<Vec<_>>();
        assert_eq!(gaps(&a), gaps(&b), "same seed, same schedule");
        assert_ne!(
            gaps(&a),
            gaps(&TimedStream::bursty(&d, 4, tick, 0.5, 43)),
            "different seed, different schedule"
        );
        let rejoined: Vec<TermTriple> = a.iter().flat_map(|(_, b)| b.clone()).collect();
        assert_eq!(rejoined, d, "batches cover the data in order");
        // The geometric shape: bursts (zero gaps) and pauses (>= 1 tick).
        assert!(gaps(&a).iter().any(Duration::is_zero));
        assert!(gaps(&a).iter().any(|g| *g >= tick));
        // Gaps are whole multiples of the tick.
        for g in gaps(&a) {
            assert_eq!(g.as_millis() % tick.as_millis(), 0);
        }
    }

    #[test]
    fn bursty_zero_probability_degenerates_to_back_to_back() {
        let d = data(10);
        let s = TimedStream::bursty(&d, 2, Duration::from_millis(3), 0.0, 1);
        assert!(s.iter().all(|(g, _)| g.is_zero()));
    }

    #[test]
    #[should_panic(expected = "continue_prob")]
    fn bursty_rejects_certain_continuation() {
        let _ = TimedStream::bursty(&data(2), 1, Duration::from_millis(1), 1.0, 0);
    }

    #[test]
    fn sliding_window_pairs_arrivals_with_expiries() {
        let d = data(10); // 5 batches of 2, window of 2
        let w = SlidingWindow::new(&d, 2, 2, Duration::ZERO);
        assert_eq!(w.len(), 5);
        assert_eq!(w.window(), 2);
        assert!(!w.is_empty());
        let steps: Vec<_> = w.steps().collect();
        // First `window` steps only fill the window.
        assert!(steps[0].expiring.is_none());
        assert!(steps[1].expiring.is_none());
        // From then on, step i expires batch i - window.
        for (i, step) in steps.iter().enumerate().skip(2) {
            assert_eq!(step.index, i);
            let expiring = step.expiring.expect("window full");
            assert_eq!(expiring, &d[(i - 2) * 2..(i - 2) * 2 + 2]);
            assert_eq!(step.arrival, &d[i * 2..(i * 2 + 2).min(d.len())]);
        }
        // The tail is exactly the last `window` batches.
        let tail: Vec<TermTriple> = w.tail().iter().flatten().cloned().collect();
        assert_eq!(tail, d[6..].to_vec());
    }

    #[test]
    fn sliding_window_play_maintains_live_set() {
        let d = data(12); // 6 batches of 2, window of 3
        let w = SlidingWindow::new(&d, 2, 3, Duration::ZERO);
        let mut live: Vec<TermTriple> = Vec::new();
        w.play(|arrival, expiring| {
            live.extend_from_slice(arrival);
            if let Some(gone) = expiring {
                for t in gone {
                    let pos = live.iter().position(|x| x == t).expect("was live");
                    live.remove(pos);
                }
            }
            assert!(live.len() <= 6, "never more than window × batch_size");
        });
        let tail: Vec<TermTriple> = w.tail().iter().flatten().cloned().collect();
        assert_eq!(live, tail, "after the stream the live set is the tail");
    }

    #[test]
    fn sliding_window_shorter_than_window_never_expires() {
        let d = data(4);
        let w = SlidingWindow::new(&d, 2, 5, Duration::ZERO);
        assert!(w.steps().all(|s| s.expiring.is_none()));
        assert_eq!(w.tail().len(), 2);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = SlidingWindow::new(&data(2), 1, 0, Duration::ZERO);
    }

    #[test]
    fn expirations_group_by_timestamp() {
        let ms = Duration::from_millis;
        // Arrivals at 0, 0, 1, 5, 5, 9 ms with a 4 ms window.
        let times = [ms(0), ms(0), ms(1), ms(5), ms(5), ms(9)];
        let expiry = expirations(&times, ms(4));
        // Step 3 (t=5): batches 0, 1 (t=0, 0+4 ≤ 5) and 2 (1+4 ≤ 5) all
        // expire at once; step 5 (t=9) expires 3 and 4 (5+4 ≤ 9).
        assert_eq!(
            expiry,
            vec![vec![], vec![], vec![], vec![0, 1, 2], vec![], vec![3, 4]]
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn expirations_reject_zero_window() {
        let _ = expirations(&[Duration::ZERO], Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn expirations_reject_unsorted_times() {
        let _ = expirations(
            &[Duration::from_millis(2), Duration::from_millis(1)],
            Duration::from_millis(1),
        );
    }

    #[test]
    fn timed_window_expires_by_timestamp_not_count() {
        let d = data(12); // 6 batches of 2
        let ms = Duration::from_millis;
        let w = TimedWindow::uniform(&d, 2, ms(10), ms(25));
        assert_eq!(w.len(), 6);
        assert_eq!(w.window(), ms(25));
        assert!(!w.is_empty());
        let steps: Vec<_> = w.steps().collect();
        // Uniform arrivals at 10, 20, …, 60 ms; batch j (at 10(j+1)) expires
        // at the first step with 10(j+1) + 25 ≤ 10(i+1), i.e. i = j + 3.
        for (i, step) in steps.iter().enumerate() {
            assert_eq!(step.index, i);
            assert_eq!(step.at, ms(10 * (i as u64 + 1)));
            assert_eq!(step.gap, ms(10));
            assert_eq!(step.arrival, &d[i * 2..i * 2 + 2]);
            let expected: Vec<&[TermTriple]> = if i >= 3 {
                vec![&d[(i - 3) * 2..(i - 3) * 2 + 2]]
            } else {
                Vec::new()
            };
            assert_eq!(step.expiring, expected, "step {i}");
        }
        // Live tail: batches within 25 ms of t=60 — arrivals at 40, 50, 60.
        let tail: Vec<TermTriple> = w.live_tail().iter().flat_map(|b| b.to_vec()).collect();
        assert_eq!(tail, d[6..].to_vec());
    }

    #[test]
    fn timed_window_over_bursty_stream_expires_in_bulk() {
        let d = data(64);
        let tick = Duration::from_millis(2);
        let stream = TimedStream::bursty(&d, 2, tick, 0.6, 7);
        let w = TimedWindow::from_stream(&stream, tick * 3);
        // Virtual times are the running sum of the stream's gaps.
        let mut at = Duration::ZERO;
        for (step, (gap, batch)) in w.steps().zip(stream.iter()) {
            at += *gap;
            assert_eq!(step.at, at);
            assert_eq!(step.arrival, batch.as_slice());
        }
        // Every batch either expired exactly once or is in the live tail.
        let expired: usize = w.steps().map(|s| s.expiring.len()).sum();
        assert_eq!(expired + w.live_tail().len(), w.len());
        // The bursty shape actually produced a multi-batch expiry.
        assert!(
            w.steps().any(|s| s.expiring.len() > 1),
            "no bulk expiry — tune seed/window"
        );
        // Expiry is by timestamp: everything expiring at step i is at
        // least `window` older than the arrival.
        let times: Vec<Duration> = w.steps().map(|s| s.at).collect();
        for step in w.steps() {
            for gone in &step.expiring {
                let j = w
                    .steps()
                    .position(|s| std::ptr::eq(s.arrival.as_ptr(), gone.as_ptr()))
                    .unwrap();
                assert!(times[j] + w.window() <= step.at);
            }
        }
    }

    #[test]
    fn timed_window_play_maintains_live_set() {
        let d = data(20); // 10 batches of 2
        let stream = TimedStream::bursty(&d, 2, Duration::from_micros(200), 0.5, 11);
        let w = TimedWindow::from_stream(&stream, Duration::from_micros(500));
        let mut live: Vec<TermTriple> = Vec::new();
        w.play(|step| {
            live.extend_from_slice(step.arrival);
            for gone in step.expiring {
                for t in gone {
                    let pos = live.iter().position(|x| x == t).expect("was live");
                    live.remove(pos);
                }
            }
        });
        let tail: Vec<TermTriple> = w.live_tail().iter().flat_map(|b| b.to_vec()).collect();
        assert_eq!(live, tail, "after the stream the live set is the tail");
    }

    #[test]
    fn timed_window_empty_stream() {
        let w = TimedWindow::uniform(&[], 4, Duration::from_millis(1), Duration::from_millis(5));
        assert!(w.is_empty());
        assert_eq!(w.steps().count(), 0);
        assert!(w.live_tail().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn timed_window_rejects_zero_window() {
        let _ = TimedWindow::uniform(&data(2), 1, Duration::from_millis(1), Duration::ZERO);
    }
}
