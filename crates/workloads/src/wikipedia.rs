//! A Wikipedia-shaped ontology generator: deep category hierarchy, heavily
//! typed articles.
//!
//! Stands in for the paper's Wikipedia-derived ontology (458 369 input
//! triples). Its distinguishing benchmark character in Table 1 is being
//! **inference-heavy under ρdf** (191 574 inferred ≈ 42 % of input, the
//! largest ratio of all non-chain ontologies): articles are typed with
//! *deep* categories and the category hierarchy is not pre-materialised,
//! so `CAX-SCO` fires per (article, ancestor) pair.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slider_model::vocab::{RDFS_NS, RDF_NS};
use slider_model::{Term, TermTriple};

/// Namespace of the generated data.
pub const WIKI_NS: &str = "http://wiki.example.org/";

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct WikipediaConfig {
    /// Approximate number of triples to generate.
    pub target_triples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WikipediaConfig {
    /// A config with the default seed.
    pub fn sized(target_triples: usize) -> Self {
        WikipediaConfig {
            target_triples,
            seed: 0x5eed_a11a,
        }
    }

    /// The paper's Wikipedia ontology size.
    pub fn paper() -> Self {
        WikipediaConfig::sized(458_369)
    }
}

/// Generates the ontology: a 16-ary category tree (≈5 % of the triples)
/// plus articles with one category type, a label and a handful of
/// wiki-links. The tree fan-out and the links-per-article count are tuned
/// so the ρdf inferred/input ratio lands at the paper's ≈0.42.
pub fn generate(config: &WikipediaConfig) -> Vec<TermTriple> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let target = config.target_triples.max(100);
    let mut out = Vec::with_capacity(target + 8);

    let rdf_type = Term::iri(format!("{RDF_NS}type"));
    let rdfs_class = Term::iri(format!("{RDFS_NS}Class"));
    let sco = Term::iri(format!("{RDFS_NS}subClassOf"));
    let label = Term::iri(format!("{RDFS_NS}label"));
    let links_to = Term::iri(format!("{WIKI_NS}schema/linksTo"));

    // Category tree: 16-ary, so a tree of C categories has average node
    // depth ≈ log₁₆(C) ≈ 3–4 — a uniformly sampled category then
    // contributes ~2.5 CAX-SCO ancestors per article.
    let cat_count = (target / 20).clamp(17, 40_000);
    let category = |i: usize| Term::iri(format!("{WIKI_NS}category/{i}"));
    out.push((category(1), rdf_type.clone(), rdfs_class.clone()));
    for i in 2..=cat_count {
        let parent = (i - 2) / 16 + 1;
        out.push((category(i), sco.clone(), category(parent)));
    }

    // Articles: one uniformly sampled category, one label, five links.
    let mut article_no = 0usize;
    let article = |i: usize| Term::iri(format!("{WIKI_NS}article/{i}"));
    while out.len() < target {
        article_no += 1;
        let a = article(article_no);
        let c = rng.random_range(1..=cat_count);
        out.push((a.clone(), rdf_type.clone(), category(c)));
        out.push((
            a.clone(),
            label.clone(),
            Term::literal(format!("Article {article_no}")),
        ));
        for _ in 0..5 {
            let other = rng.random_range(1..=article_no.max(2));
            out.push((a.clone(), links_to.clone(), article(other)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_target() {
        let data = generate(&WikipediaConfig::sized(10_000));
        assert!(data.len() >= 10_000);
        assert!(data.len() < 10_100);
    }

    #[test]
    fn deterministic() {
        let a = generate(&WikipediaConfig::sized(5_000));
        let b = generate(&WikipediaConfig::sized(5_000));
        assert_eq!(a, b);
    }

    #[test]
    fn has_category_hierarchy() {
        let data = generate(&WikipediaConfig::sized(20_000));
        let sco = Term::iri(format!("{RDFS_NS}subClassOf"));
        let sco_count = data.iter().filter(|t| t.1 == sco).count();
        // Roughly 1/20th of the data is hierarchy.
        assert!(sco_count > 800, "{sco_count}");
    }

    #[test]
    fn articles_typed_with_categories() {
        let data = generate(&WikipediaConfig::sized(5_000));
        let rdf_type = Term::iri(format!("{RDF_NS}type"));
        let type_count = data
            .iter()
            .filter(|t| t.1 == rdf_type && t.0.as_iri().is_some_and(|i| i.contains("article")))
            .count();
        // One type triple per ~7-triple article block.
        assert!(type_count > 500, "{type_count}");
    }
}
