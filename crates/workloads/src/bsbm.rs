//! A BSBM-shaped ontology generator (Berlin SPARQL Benchmark).
//!
//! Replaces the paper's BSBM generator tool (DESIGN.md §3). The generated
//! dataset has the BSBM schema shape — a `ProductType` subclass tree plus
//! `Product` / `Offer` / `Review` / `Producer` / `Vendor` / `Person`
//! instance data — and is tuned to the character the paper's Table 1 shows
//! for the BSBM family:
//!
//! * ρdf infers **very little** (~0.5 % of input): only the schema-level
//!   closure (type-tree transitivity plus domain/range propagation along
//!   the few `subPropertyOf` edges). Products reference their product type
//!   through the `productType` *property*, and every instance is already
//!   explicitly typed, so instance-level rule firings are duplicates.
//! * RDFS infers **≈ ⅓ of the input**: one `type Resource` triple per
//!   distinct IRI plus one `type Literal` per distinct literal.
//!
//! Generation is deterministic in (`target_triples`, `seed`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slider_model::vocab::{RDFS_NS, RDF_NS, XSD_NS};
use slider_model::{Literal, Term, TermTriple};

/// Vocabulary namespace of the generated data.
pub const VOCAB_NS: &str = "http://bsbm.example.org/vocabulary#";
/// Instance namespace of the generated data.
pub const INST_NS: &str = "http://bsbm.example.org/instances/";

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct BsbmConfig {
    /// Approximate number of triples to generate (the generator stops at
    /// the first block boundary ≥ target).
    pub target_triples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BsbmConfig {
    /// A config with the default seed.
    pub fn sized(target_triples: usize) -> Self {
        BsbmConfig {
            target_triples,
            seed: 0x5eed_b5b0,
        }
    }
}

struct Gen {
    rng: StdRng,
    out: Vec<TermTriple>,
    // Cached vocabulary terms.
    rdf_type: Term,
    rdfs_class: Term,
    rdf_property: Term,
    sco: Term,
    spo: Term,
    domain: Term,
    range: Term,
}

impl Gen {
    fn new(config: &BsbmConfig) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(config.seed),
            out: Vec::with_capacity(config.target_triples + 64),
            rdf_type: Term::iri(format!("{RDF_NS}type")),
            rdfs_class: Term::iri(format!("{RDFS_NS}Class")),
            rdf_property: Term::iri(format!("{RDF_NS}Property")),
            sco: Term::iri(format!("{RDFS_NS}subClassOf")),
            spo: Term::iri(format!("{RDFS_NS}subPropertyOf")),
            domain: Term::iri(format!("{RDFS_NS}domain")),
            range: Term::iri(format!("{RDFS_NS}range")),
        }
    }

    fn vocab(name: &str) -> Term {
        Term::iri(format!("{VOCAB_NS}{name}"))
    }

    fn inst(kind: &str, i: usize) -> Term {
        Term::iri(format!("{INST_NS}{kind}{i}"))
    }

    fn emit(&mut self, s: Term, p: Term, o: Term) {
        self.out.push((s, p, o));
    }

    fn declare_class(&mut self, name: &str) -> Term {
        let class = Gen::vocab(name);
        self.emit(
            class.clone(),
            self.rdf_type.clone(),
            self.rdfs_class.clone(),
        );
        class
    }

    fn declare_property(&mut self, name: &str, dom: Option<&Term>, rng: Option<&Term>) -> Term {
        let prop = Gen::vocab(name);
        self.emit(
            prop.clone(),
            self.rdf_type.clone(),
            self.rdf_property.clone(),
        );
        if let Some(dom) = dom {
            self.emit(prop.clone(), self.domain.clone(), dom.clone());
        }
        if let Some(rng) = rng {
            self.emit(prop.clone(), self.range.clone(), rng.clone());
        }
        prop
    }
}

/// Generates a BSBM-shaped ontology of roughly `config.target_triples`
/// triples.
pub fn generate(config: &BsbmConfig) -> Vec<TermTriple> {
    let mut g = Gen::new(config);
    let target = config.target_triples.max(200);

    // ---- Schema -----------------------------------------------------
    let product = g.declare_class("Product");
    let product_type = g.declare_class("ProductType");
    let product_feature = g.declare_class("ProductFeature");
    let offer_class = g.declare_class("Offer");
    let review_class = g.declare_class("Review");
    let person = g.declare_class("Person");
    let producer_class = g.declare_class("Producer");
    let vendor_class = g.declare_class("Vendor");

    let label = g.declare_property("label", None, None);
    let p_product_type = g.declare_property("productType", Some(&product), Some(&product_type));
    let p_feature = g.declare_property("productFeature", Some(&product), Some(&product_feature));
    let p_producer = g.declare_property("producer", Some(&product), Some(&producer_class));
    let p_price = g.declare_property("price", Some(&offer_class), None);
    let p_vendor = g.declare_property("vendor", Some(&offer_class), Some(&vendor_class));
    let p_offer_product = g.declare_property("offerProduct", Some(&offer_class), Some(&product));
    let p_review_for = g.declare_property("reviewFor", Some(&review_class), Some(&product));
    let p_reviewer = g.declare_property("reviewer", Some(&review_class), Some(&person));
    let p_rating = g.declare_property("rating", Some(&review_class), None);
    // A small subPropertyOf lattice among schema-only properties: feeds
    // SCM-SPO/SCM-DOM2/SCM-RNG2 without instance-level lifting.
    let p_numeric = g.declare_property("productPropertyNumeric", Some(&product), None);
    for i in 1..=4usize {
        let p = g.declare_property(&format!("productPropertyNumeric{i}"), None, None);
        g.emit(p, g.spo.clone(), p_numeric.clone());
    }

    // ProductType tree: quaternary, |types| scales with the target so that
    // the schema closure stays ≈0.5 % of the input, as in Table 1.
    let type_count = (target / 500).clamp(12, 4_000);
    let mut types: Vec<Term> = Vec::with_capacity(type_count);
    for i in 1..=type_count {
        let node = Gen::inst("ProductType", i);
        g.emit(node.clone(), g.rdf_type.clone(), product_type.clone());
        if i >= 2 {
            let parent = types[(i - 2) / 4].clone();
            g.emit(node.clone(), g.sco.clone(), parent);
        }
        types.push(node);
    }
    // Leaf types (no children) are assigned to products.
    let first_leaf = type_count.saturating_sub(3 * type_count / 4).max(1);
    let feature_count = (type_count * 2).max(8);
    let mut features = Vec::with_capacity(feature_count);
    for i in 1..=feature_count {
        let f = Gen::inst("ProductFeature", i);
        g.emit(f.clone(), g.rdf_type.clone(), product_feature.clone());
        features.push(f);
    }

    // ---- Entity pools ------------------------------------------------
    let pool = |g: &mut Gen, kind: &str, class: &Term, n: usize| -> Vec<Term> {
        (1..=n)
            .map(|i| {
                let e = Gen::inst(kind, i);
                g.emit(e.clone(), g.rdf_type.clone(), class.clone());
                e
            })
            .collect()
    };
    let pool_size = (target / 2_000).clamp(4, 2_000);
    let producers = pool(&mut g, "Producer", &producer_class, pool_size);
    let vendors = pool(&mut g, "Vendor", &vendor_class, pool_size);
    let persons = pool(&mut g, "Person", &person, pool_size * 2);

    // ---- Instance blocks ----------------------------------------------
    // Price/rating literal pools keep the literal population small, so the
    // RDFS inferred ratio lands near the paper's ≈⅓.
    let price_pool: Vec<Term> = (0..100)
        .map(|i| {
            Term::Literal(Literal::typed(
                format!("{}.99", 10 + i),
                format!("{XSD_NS}decimal"),
            ))
        })
        .collect();
    let rating_pool: Vec<Term> = (1..=10)
        .map(|i| Term::Literal(Literal::typed(i.to_string(), format!("{XSD_NS}integer"))))
        .collect();

    let mut product_no = 0usize;
    let mut offer_no = 0usize;
    let mut review_no = 0usize;
    while g.out.len() < target {
        product_no += 1;
        let prod = Gen::inst("Product", product_no);
        g.emit(prod.clone(), g.rdf_type.clone(), product.clone());
        g.emit(
            prod.clone(),
            label.clone(),
            Term::literal(format!("product {product_no}")),
        );
        let leaf = types[g.rng.random_range(first_leaf..type_count)].clone();
        g.emit(prod.clone(), p_product_type.clone(), leaf);
        let producer = producers[g.rng.random_range(0..producers.len())].clone();
        g.emit(prod.clone(), p_producer.clone(), producer);
        for _ in 0..2 {
            let f = features[g.rng.random_range(0..features.len())].clone();
            g.emit(prod.clone(), p_feature.clone(), f);
        }

        for _ in 0..g.rng.random_range(1..=2usize) {
            offer_no += 1;
            let offer = Gen::inst("Offer", offer_no);
            g.emit(offer.clone(), g.rdf_type.clone(), offer_class.clone());
            g.emit(offer.clone(), p_offer_product.clone(), prod.clone());
            let vendor = vendors[g.rng.random_range(0..vendors.len())].clone();
            g.emit(offer.clone(), p_vendor.clone(), vendor);
            let price = price_pool[g.rng.random_range(0..price_pool.len())].clone();
            g.emit(offer.clone(), p_price.clone(), price);
        }

        for _ in 0..g.rng.random_range(0..=2usize) {
            review_no += 1;
            let review = Gen::inst("Review", review_no);
            g.emit(review.clone(), g.rdf_type.clone(), review_class.clone());
            g.emit(review.clone(), p_review_for.clone(), prod.clone());
            let reviewer = persons[g.rng.random_range(0..persons.len())].clone();
            g.emit(review.clone(), p_reviewer.clone(), reviewer);
            let rating = rating_pool[g.rng.random_range(0..rating_pool.len())].clone();
            g.emit(review.clone(), p_rating.clone(), rating);
        }
    }
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::FxHashSet;

    #[test]
    fn hits_target_size() {
        for target in [1_000usize, 10_000] {
            let data = generate(&BsbmConfig::sized(target));
            assert!(data.len() >= target, "{} < {target}", data.len());
            // At most one block of overshoot.
            assert!(data.len() < target + 32, "{} ≫ {target}", data.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&BsbmConfig {
            target_triples: 2_000,
            seed: 7,
        });
        let b = generate(&BsbmConfig {
            target_triples: 2_000,
            seed: 7,
        });
        assert_eq!(a, b);
        let c = generate(&BsbmConfig {
            target_triples: 2_000,
            seed: 8,
        });
        assert_ne!(a, c);
    }

    #[test]
    fn no_duplicate_triples_to_speak_of() {
        let data = generate(&BsbmConfig::sized(5_000));
        let set: FxHashSet<&TermTriple> = data.iter().collect();
        // Feature assignment can repeat within a product; everything else
        // is unique. Allow a tiny slack.
        assert!(
            set.len() as f64 > data.len() as f64 * 0.98,
            "{} vs {}",
            set.len(),
            data.len()
        );
    }

    #[test]
    fn every_instance_subject_is_typed() {
        let data = generate(&BsbmConfig::sized(3_000));
        let rdf_type = Term::iri(format!("{RDF_NS}type"));
        let typed: FxHashSet<&Term> = data
            .iter()
            .filter(|t| t.1 == rdf_type)
            .map(|t| &t.0)
            .collect();
        let subjects: FxHashSet<&Term> = data.iter().map(|t| &t.0).collect();
        for s in subjects {
            assert!(typed.contains(s), "untyped subject {s}");
        }
    }

    #[test]
    fn schema_has_tree_and_properties() {
        let data = generate(&BsbmConfig::sized(2_000));
        let sco = Term::iri(format!("{RDFS_NS}subClassOf"));
        let spo = Term::iri(format!("{RDFS_NS}subPropertyOf"));
        let dom = Term::iri(format!("{RDFS_NS}domain"));
        assert!(data.iter().filter(|t| t.1 == sco).count() >= 10);
        assert_eq!(data.iter().filter(|t| t.1 == spo).count(), 4);
        assert!(data.iter().filter(|t| t.1 == dom).count() >= 8);
    }
}
