//! The RDFS axiomatic triples (optional).
//!
//! Full W3C RDFS entailment includes a fixed set of axiomatic triples
//! (`rdf:type rdfs:domain rdfs:Resource .` etc.). Production reasoners —
//! including the OWLIM configuration the paper benchmarks against — usually
//! run *without* them, because they blow up every closure with vocabulary
//! self-description of no application value. We follow suit: they are **off
//! by default** and available through this function for users who want the
//! strict W3C closure.

use slider_model::vocab::*;
use slider_model::Triple;

/// The core RDFS axiomatic triples (domains, ranges and typing of the
/// RDF/RDFS vocabulary).
pub fn axiomatic_triples() -> Vec<Triple> {
    let t = Triple::new;
    vec![
        // domains
        t(RDF_TYPE, RDFS_DOMAIN, RDFS_RESOURCE),
        t(RDFS_DOMAIN, RDFS_DOMAIN, RDF_PROPERTY),
        t(RDFS_RANGE, RDFS_DOMAIN, RDF_PROPERTY),
        t(RDFS_SUB_PROPERTY_OF, RDFS_DOMAIN, RDF_PROPERTY),
        t(RDFS_SUB_CLASS_OF, RDFS_DOMAIN, RDFS_CLASS),
        t(RDF_SUBJECT, RDFS_DOMAIN, RDF_STATEMENT),
        t(RDF_PREDICATE, RDFS_DOMAIN, RDF_STATEMENT),
        t(RDF_OBJECT, RDFS_DOMAIN, RDF_STATEMENT),
        t(RDFS_MEMBER, RDFS_DOMAIN, RDFS_RESOURCE),
        t(RDF_FIRST, RDFS_DOMAIN, RDF_LIST),
        t(RDF_REST, RDFS_DOMAIN, RDF_LIST),
        t(RDFS_SEE_ALSO, RDFS_DOMAIN, RDFS_RESOURCE),
        t(RDFS_IS_DEFINED_BY, RDFS_DOMAIN, RDFS_RESOURCE),
        t(RDFS_COMMENT, RDFS_DOMAIN, RDFS_RESOURCE),
        t(RDFS_LABEL, RDFS_DOMAIN, RDFS_RESOURCE),
        t(RDF_VALUE, RDFS_DOMAIN, RDFS_RESOURCE),
        // ranges
        t(RDF_TYPE, RDFS_RANGE, RDFS_CLASS),
        t(RDFS_DOMAIN, RDFS_RANGE, RDFS_CLASS),
        t(RDFS_RANGE, RDFS_RANGE, RDFS_CLASS),
        t(RDFS_SUB_PROPERTY_OF, RDFS_RANGE, RDF_PROPERTY),
        t(RDFS_SUB_CLASS_OF, RDFS_RANGE, RDFS_CLASS),
        t(RDF_SUBJECT, RDFS_RANGE, RDFS_RESOURCE),
        t(RDF_PREDICATE, RDFS_RANGE, RDFS_RESOURCE),
        t(RDF_OBJECT, RDFS_RANGE, RDFS_RESOURCE),
        t(RDFS_MEMBER, RDFS_RANGE, RDFS_RESOURCE),
        t(RDF_FIRST, RDFS_RANGE, RDFS_RESOURCE),
        t(RDF_REST, RDFS_RANGE, RDF_LIST),
        t(RDFS_SEE_ALSO, RDFS_RANGE, RDFS_RESOURCE),
        t(RDFS_IS_DEFINED_BY, RDFS_RANGE, RDFS_RESOURCE),
        t(RDFS_COMMENT, RDFS_RANGE, RDFS_LITERAL),
        t(RDFS_LABEL, RDFS_RANGE, RDFS_LITERAL),
        t(RDF_VALUE, RDFS_RANGE, RDFS_RESOURCE),
        // subproperty / subclass structure
        t(RDFS_IS_DEFINED_BY, RDFS_SUB_PROPERTY_OF, RDFS_SEE_ALSO),
        t(RDF_ALT, RDFS_SUB_CLASS_OF, RDFS_CONTAINER),
        t(RDF_BAG, RDFS_SUB_CLASS_OF, RDFS_CONTAINER),
        t(RDF_SEQ, RDFS_SUB_CLASS_OF, RDFS_CONTAINER),
        t(
            RDFS_CONTAINER_MEMBERSHIP_PROPERTY,
            RDFS_SUB_CLASS_OF,
            RDF_PROPERTY,
        ),
        t(RDF_XML_LITERAL, RDF_TYPE, RDFS_DATATYPE),
        t(RDF_XML_LITERAL, RDFS_SUB_CLASS_OF, RDFS_LITERAL),
        t(RDFS_DATATYPE, RDFS_SUB_CLASS_OF, RDFS_CLASS),
        t(RDF_NIL, RDF_TYPE, RDF_LIST),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::{Dictionary, NodeId};

    #[test]
    fn all_axioms_use_vocabulary_ids() {
        let max = NodeId(VOCAB_LEN as u64);
        for t in axiomatic_triples() {
            assert!(t.s < max && t.p < max && t.o < max, "{t}");
        }
    }

    #[test]
    fn axioms_decode_through_fresh_dictionary() {
        let dict = Dictionary::new();
        for t in axiomatic_triples() {
            assert!(dict.decode_triple(t).is_some(), "{t} must decode");
        }
    }

    #[test]
    fn no_duplicates() {
        let mut ax = axiomatic_triples();
        let n = ax.len();
        ax.sort_unstable();
        ax.dedup();
        assert_eq!(ax.len(), n);
    }

    #[test]
    fn expected_count() {
        assert_eq!(axiomatic_triples().len(), 41);
    }
}
