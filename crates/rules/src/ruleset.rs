//! Rulesets: named collections of rules forming a fragment.

use crate::rdfs::{Rdfs1, Rdfs10, Rdfs12, Rdfs13, Rdfs4a, Rdfs4b, Rdfs6, Rdfs8};
use crate::rho_df::{CaxSco, PrpDom, PrpRng, PrpSpo1, ScmDom2, ScmRng2, ScmSco, ScmSpo};
use crate::rule::Rule;
use slider_model::Dictionary;
use std::sync::Arc;

/// The fragments the paper supports natively, plus the RDFS-Plus
/// extension this reproduction adds (the paper's §5 future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fragment {
    /// The minimal ρdf fragment (8 rules, Figure 2).
    RhoDf,
    /// Full RDFS (ρdf + 8 structural rules).
    Rdfs,
    /// RDFS-Plus: RDFS + sameAs equality, inverse/symmetric/transitive and
    /// (inverse-)functional properties, class/property equivalence.
    RdfsPlus,
}

impl Fragment {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Fragment::RhoDf => "rho-df",
            Fragment::Rdfs => "RDFS",
            Fragment::RdfsPlus => "RDFS-Plus",
        }
    }
}

impl std::fmt::Display for Fragment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Options for the RDFS fragment (see `rdfs` module docs for the
/// generalised-RDF notes).
#[derive(Debug, Clone, Copy)]
pub struct RdfsConfig {
    /// Enable rdfs1 (`(x p l) ⊢ (l type Literal)`, generalised). Default on.
    pub literal_typing: bool,
    /// Enable rdfs4a/rdfs4b (`type Resource` for subjects/objects).
    /// Default on — this is what makes RDFS closures so much larger than
    /// ρdf in Table 1.
    pub resource_typing: bool,
    /// rdfs4b also types literal objects (generalised RDF). Default off.
    pub type_literal_objects: bool,
    /// Enable the class/property structural rules rdfs6/8/10/12/13.
    /// Default on.
    pub structural_rules: bool,
}

impl Default for RdfsConfig {
    fn default() -> Self {
        RdfsConfig {
            literal_typing: true,
            resource_typing: true,
            type_literal_objects: false,
            structural_rules: true,
        }
    }
}

/// A named, ordered collection of rules — the unit the reasoner is
/// initialised with.
#[derive(Clone)]
pub struct Ruleset {
    name: String,
    rules: Vec<Arc<dyn Rule>>,
}

impl Ruleset {
    /// An empty custom ruleset.
    pub fn custom(name: impl Into<String>) -> Self {
        Ruleset {
            name: name.into(),
            rules: Vec::new(),
        }
    }

    /// The ρdf fragment (paper Figure 2: 8 rules).
    pub fn rho_df() -> Self {
        let mut rs = Ruleset::custom("rho-df");
        rs.push(CaxSco);
        rs.push(ScmSco);
        rs.push(ScmSpo);
        rs.push(ScmDom2);
        rs.push(ScmRng2);
        rs.push(PrpDom);
        rs.push(PrpRng);
        rs.push(PrpSpo1);
        rs
    }

    /// The RDFS fragment with default options.
    pub fn rdfs(dict: &Arc<Dictionary>) -> Self {
        Ruleset::rdfs_with(dict, RdfsConfig::default())
    }

    /// The RDFS fragment with explicit options.
    pub fn rdfs_with(dict: &Arc<Dictionary>, config: RdfsConfig) -> Self {
        let mut rs = Ruleset::rho_df();
        rs.name = "RDFS".to_owned();
        if config.literal_typing {
            rs.push(Rdfs1::new(Arc::clone(dict)));
        }
        if config.resource_typing {
            rs.push(Rdfs4a);
            if config.type_literal_objects {
                rs.push(Rdfs4b::with_literals(Arc::clone(dict)));
            } else {
                rs.push(Rdfs4b::new(Arc::clone(dict)));
            }
        }
        if config.structural_rules {
            rs.push(Rdfs6);
            rs.push(Rdfs8);
            rs.push(Rdfs10);
            rs.push(Rdfs12);
            rs.push(Rdfs13);
        }
        rs
    }

    /// The RDFS-Plus fragment: RDFS plus the rule-expressible OWL core.
    pub fn rdfs_plus(dict: &Arc<Dictionary>) -> Self {
        use crate::rdfs_plus::*;
        let mut rs = Ruleset::rdfs(dict);
        rs.name = "RDFS-Plus".to_owned();
        rs.push(EqSym);
        rs.push(EqTrans);
        rs.push(EqRepS);
        rs.push(EqRepP);
        rs.push(EqRepO);
        rs.push(PrpInv);
        rs.push(PrpSymp);
        rs.push(PrpTrp);
        rs.push(PrpFp);
        rs.push(PrpIfp);
        rs.push(ScmEqc);
        rs.push(ScmEqp);
        rs
    }

    /// Builds a native fragment by name.
    pub fn fragment(fragment: Fragment, dict: &Arc<Dictionary>) -> Self {
        match fragment {
            Fragment::RhoDf => Ruleset::rho_df(),
            Fragment::Rdfs => Ruleset::rdfs(dict),
            Fragment::RdfsPlus => Ruleset::rdfs_plus(dict),
        }
    }

    /// Adds a rule (builder-style also available via [`Ruleset::with`]).
    pub fn push<R: Rule + 'static>(&mut self, rule: R) {
        self.rules.push(Arc::new(rule));
    }

    /// Adds an already-shared rule.
    pub fn push_arc(&mut self, rule: Arc<dyn Rule>) {
        self.rules.push(rule);
    }

    /// Builder-style [`Ruleset::push`].
    pub fn with<R: Rule + 'static>(mut self, rule: R) -> Self {
        self.push(rule);
        self
    }

    /// The ruleset name ("rho-df", "RDFS", or custom).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rules, in declaration order.
    pub fn rules(&self) -> &[Arc<dyn Rule>] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the ruleset holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rule names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Index of the rule with `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.rules.iter().position(|r| r.name() == name)
    }
}

impl std::fmt::Debug for Ruleset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ruleset")
            .field("name", &self.name)
            .field("rules", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_df_has_figure2_rules() {
        let rs = Ruleset::rho_df();
        assert_eq!(
            rs.names(),
            vec![
                "CAX-SCO", "SCM-SCO", "SCM-SPO", "SCM-DOM2", "SCM-RNG2", "PRP-DOM", "PRP-RNG",
                "PRP-SPO1"
            ]
        );
        assert_eq!(rs.name(), "rho-df");
    }

    #[test]
    fn rdfs_extends_rho_df() {
        let dict = Arc::new(Dictionary::new());
        let rs = Ruleset::rdfs(&dict);
        assert_eq!(rs.len(), 16);
        assert_eq!(rs.name(), "RDFS");
        for rho in Ruleset::rho_df().names() {
            assert!(rs.names().contains(&rho), "missing {rho}");
        }
        for extra in [
            "RDFS1", "RDFS4A", "RDFS4B", "RDFS6", "RDFS8", "RDFS10", "RDFS12", "RDFS13",
        ] {
            assert!(rs.names().contains(&extra), "missing {extra}");
        }
    }

    #[test]
    fn rdfs_config_toggles() {
        let dict = Arc::new(Dictionary::new());
        let slim = Ruleset::rdfs_with(
            &dict,
            RdfsConfig {
                literal_typing: false,
                resource_typing: false,
                type_literal_objects: false,
                structural_rules: false,
            },
        );
        assert_eq!(slim.len(), 8); // just ρdf
        let no_structural = Ruleset::rdfs_with(
            &dict,
            RdfsConfig {
                structural_rules: false,
                ..RdfsConfig::default()
            },
        );
        assert_eq!(no_structural.len(), 11);
    }

    #[test]
    fn index_of() {
        let rs = Ruleset::rho_df();
        assert_eq!(rs.index_of("CAX-SCO"), Some(0));
        assert_eq!(rs.index_of("PRP-SPO1"), Some(7));
        assert_eq!(rs.index_of("NOPE"), None);
    }

    #[test]
    fn fragment_constructor() {
        let dict = Arc::new(Dictionary::new());
        assert_eq!(Ruleset::fragment(Fragment::RhoDf, &dict).len(), 8);
        assert_eq!(Ruleset::fragment(Fragment::Rdfs, &dict).len(), 16);
        assert_eq!(Ruleset::fragment(Fragment::RdfsPlus, &dict).len(), 28);
        assert_eq!(Fragment::RhoDf.name(), "rho-df");
        assert_eq!(Fragment::Rdfs.to_string(), "RDFS");
        assert_eq!(Fragment::RdfsPlus.name(), "RDFS-Plus");
    }

    #[test]
    fn rdfs_plus_extends_rdfs() {
        let dict = Arc::new(Dictionary::new());
        let rs = Ruleset::rdfs_plus(&dict);
        assert_eq!(rs.name(), "RDFS-Plus");
        for base in Ruleset::rdfs(&dict).names() {
            assert!(rs.names().contains(&base), "missing {base}");
        }
        for extra in [
            "EQ-SYM", "EQ-TRANS", "EQ-REP-S", "EQ-REP-P", "EQ-REP-O", "PRP-INV", "PRP-SYMP",
            "PRP-TRP", "PRP-FP", "PRP-IFP", "SCM-EQC", "SCM-EQP",
        ] {
            assert!(rs.names().contains(&extra), "missing {extra}");
        }
    }

    /// Every built-in ρdf/RDFS rule implements the backward `derives`
    /// check, and it agrees exactly with one-step forward `apply` over an
    /// exhaustive probe universe.
    #[test]
    fn derives_matches_one_step_apply() {
        use slider_model::vocab::{
            RDFS_CLASS, RDFS_DATATYPE, RDFS_DOMAIN, RDFS_LITERAL, RDFS_RANGE, RDFS_RESOURCE,
            RDFS_SUB_CLASS_OF, RDFS_SUB_PROPERTY_OF, RDF_PROPERTY, RDF_TYPE,
        };
        use slider_model::{NodeId, Term, Triple};
        use slider_store::VerticalStore;

        let dict = Arc::new(Dictionary::new());
        let lit = dict.intern(&Term::literal("x"));
        let n = |v: u64| NodeId(1000 + v);
        // A store touching every rule: sco/spo chains, dom/rng schema, an
        // instance fact, typings of the structural classes, a literal.
        let store: VerticalStore = [
            Triple::new(n(1), RDFS_SUB_CLASS_OF, n(2)),
            Triple::new(n(2), RDFS_SUB_CLASS_OF, n(3)),
            Triple::new(n(9), RDF_TYPE, n(1)),
            Triple::new(n(5), RDFS_SUB_PROPERTY_OF, n(6)),
            Triple::new(n(6), RDFS_DOMAIN, n(2)),
            Triple::new(n(6), RDFS_RANGE, n(3)),
            Triple::new(n(7), n(5), n(8)),
            Triple::new(n(7), n(5), lit),
            Triple::new(n(4), RDF_TYPE, RDFS_CLASS),
            Triple::new(n(5), RDF_TYPE, RDF_PROPERTY),
            Triple::new(n(4), RDF_TYPE, RDFS_DATATYPE),
        ]
        .into_iter()
        .collect();
        let all: Vec<Triple> = store.iter().collect();

        // Probe universe: every (s, p, o) over the mentioned nodes and the
        // vocabulary constants.
        let nodes: Vec<NodeId> = (1..10)
            .map(n)
            .chain([
                lit,
                RDFS_RESOURCE,
                RDFS_LITERAL,
                RDFS_CLASS,
                RDF_PROPERTY,
                RDFS_MEMBER_PROBE,
            ])
            .collect();
        let preds = [
            RDF_TYPE,
            RDFS_SUB_CLASS_OF,
            RDFS_SUB_PROPERTY_OF,
            RDFS_DOMAIN,
            RDFS_RANGE,
            n(5),
            n(6),
        ];

        for ruleset in [Ruleset::rho_df(), Ruleset::rdfs(&dict)] {
            for rule in ruleset.rules() {
                let mut out = Vec::new();
                rule.apply(&store.view(), &all, &mut out);
                out.sort_unstable();
                out.dedup();
                for &s in &nodes {
                    for &p in &preds {
                        for &o in &nodes {
                            let probe = Triple::new(s, p, o);
                            assert_eq!(
                                rule.derives(&store.view(), probe),
                                Some(out.binary_search(&probe).is_ok()),
                                "{}: derives disagrees with apply on {probe:?}",
                                rule.name()
                            );
                        }
                    }
                }
            }
        }
    }

    /// Placeholder node so the probe grid also covers rdfs12's member
    /// object without colliding with the data nodes.
    const RDFS_MEMBER_PROBE: slider_model::NodeId = slider_model::vocab::RDFS_MEMBER;

    #[test]
    fn rdfs_plus_rules_have_no_backward_matcher_yet() {
        let dict = Arc::new(Dictionary::new());
        let store = slider_store::VerticalStore::new();
        let probe = slider_model::Triple::new(
            slider_model::NodeId(1),
            slider_model::NodeId(2),
            slider_model::NodeId(3),
        );
        // The RDFS-Plus extension rules fall back to the forward pass.
        let rs = Ruleset::rdfs_plus(&dict);
        let eq_sym = &rs.rules()[rs.index_of("EQ-SYM").unwrap()];
        assert_eq!(eq_sym.derives(&store.view(), probe), None);
    }

    #[test]
    fn custom_builder() {
        let rs = Ruleset::custom("mine").with(CaxSco).with(ScmSco);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.name(), "mine");
        assert!(!rs.is_empty());
    }
}
