//! Rulesets: named collections of rules forming a fragment.

use crate::rdfs::{Rdfs1, Rdfs10, Rdfs12, Rdfs13, Rdfs4a, Rdfs4b, Rdfs6, Rdfs8};
use crate::rho_df::{CaxSco, PrpDom, PrpRng, PrpSpo1, ScmDom2, ScmRng2, ScmSco, ScmSpo};
use crate::rule::Rule;
use slider_model::Dictionary;
use std::sync::Arc;

/// The fragments the paper supports natively, plus the RDFS-Plus
/// extension this reproduction adds (the paper's §5 future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fragment {
    /// The minimal ρdf fragment (8 rules, Figure 2).
    RhoDf,
    /// Full RDFS (ρdf + 8 structural rules).
    Rdfs,
    /// RDFS-Plus: RDFS + sameAs equality, inverse/symmetric/transitive and
    /// (inverse-)functional properties, class/property equivalence.
    RdfsPlus,
}

impl Fragment {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Fragment::RhoDf => "rho-df",
            Fragment::Rdfs => "RDFS",
            Fragment::RdfsPlus => "RDFS-Plus",
        }
    }
}

impl std::fmt::Display for Fragment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Options for the RDFS fragment (see `rdfs` module docs for the
/// generalised-RDF notes).
#[derive(Debug, Clone, Copy)]
pub struct RdfsConfig {
    /// Enable rdfs1 (`(x p l) ⊢ (l type Literal)`, generalised). Default on.
    pub literal_typing: bool,
    /// Enable rdfs4a/rdfs4b (`type Resource` for subjects/objects).
    /// Default on — this is what makes RDFS closures so much larger than
    /// ρdf in Table 1.
    pub resource_typing: bool,
    /// rdfs4b also types literal objects (generalised RDF). Default off.
    pub type_literal_objects: bool,
    /// Enable the class/property structural rules rdfs6/8/10/12/13.
    /// Default on.
    pub structural_rules: bool,
}

impl Default for RdfsConfig {
    fn default() -> Self {
        RdfsConfig {
            literal_typing: true,
            resource_typing: true,
            type_literal_objects: false,
            structural_rules: true,
        }
    }
}

/// A named, ordered collection of rules — the unit the reasoner is
/// initialised with.
#[derive(Clone)]
pub struct Ruleset {
    name: String,
    rules: Vec<Arc<dyn Rule>>,
}

impl Ruleset {
    /// An empty custom ruleset.
    pub fn custom(name: impl Into<String>) -> Self {
        Ruleset {
            name: name.into(),
            rules: Vec::new(),
        }
    }

    /// The ρdf fragment (paper Figure 2: 8 rules).
    pub fn rho_df() -> Self {
        let mut rs = Ruleset::custom("rho-df");
        rs.push(CaxSco);
        rs.push(ScmSco);
        rs.push(ScmSpo);
        rs.push(ScmDom2);
        rs.push(ScmRng2);
        rs.push(PrpDom);
        rs.push(PrpRng);
        rs.push(PrpSpo1);
        rs
    }

    /// The RDFS fragment with default options.
    pub fn rdfs(dict: &Arc<Dictionary>) -> Self {
        Ruleset::rdfs_with(dict, RdfsConfig::default())
    }

    /// The RDFS fragment with explicit options.
    pub fn rdfs_with(dict: &Arc<Dictionary>, config: RdfsConfig) -> Self {
        let mut rs = Ruleset::rho_df();
        rs.name = "RDFS".to_owned();
        if config.literal_typing {
            rs.push(Rdfs1::new(Arc::clone(dict)));
        }
        if config.resource_typing {
            rs.push(Rdfs4a);
            if config.type_literal_objects {
                rs.push(Rdfs4b::with_literals(Arc::clone(dict)));
            } else {
                rs.push(Rdfs4b::new(Arc::clone(dict)));
            }
        }
        if config.structural_rules {
            rs.push(Rdfs6);
            rs.push(Rdfs8);
            rs.push(Rdfs10);
            rs.push(Rdfs12);
            rs.push(Rdfs13);
        }
        rs
    }

    /// The RDFS-Plus fragment: RDFS plus the rule-expressible OWL core.
    pub fn rdfs_plus(dict: &Arc<Dictionary>) -> Self {
        use crate::rdfs_plus::*;
        let mut rs = Ruleset::rdfs(dict);
        rs.name = "RDFS-Plus".to_owned();
        rs.push(EqSym);
        rs.push(EqTrans);
        rs.push(EqRepS);
        rs.push(EqRepP);
        rs.push(EqRepO);
        rs.push(PrpInv);
        rs.push(PrpSymp);
        rs.push(PrpTrp);
        rs.push(PrpFp);
        rs.push(PrpIfp);
        rs.push(ScmEqc);
        rs.push(ScmEqp);
        rs
    }

    /// Builds a native fragment by name.
    pub fn fragment(fragment: Fragment, dict: &Arc<Dictionary>) -> Self {
        match fragment {
            Fragment::RhoDf => Ruleset::rho_df(),
            Fragment::Rdfs => Ruleset::rdfs(dict),
            Fragment::RdfsPlus => Ruleset::rdfs_plus(dict),
        }
    }

    /// Adds a rule (builder-style also available via [`Ruleset::with`]).
    pub fn push<R: Rule + 'static>(&mut self, rule: R) {
        self.rules.push(Arc::new(rule));
    }

    /// Adds an already-shared rule.
    pub fn push_arc(&mut self, rule: Arc<dyn Rule>) {
        self.rules.push(rule);
    }

    /// Builder-style [`Ruleset::push`].
    pub fn with<R: Rule + 'static>(mut self, rule: R) -> Self {
        self.push(rule);
        self
    }

    /// The ruleset name ("rho-df", "RDFS", or custom).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rules, in declaration order.
    pub fn rules(&self) -> &[Arc<dyn Rule>] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the ruleset holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rule names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Index of the rule with `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.rules.iter().position(|r| r.name() == name)
    }
}

impl std::fmt::Debug for Ruleset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ruleset")
            .field("name", &self.name)
            .field("rules", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_df_has_figure2_rules() {
        let rs = Ruleset::rho_df();
        assert_eq!(
            rs.names(),
            vec![
                "CAX-SCO", "SCM-SCO", "SCM-SPO", "SCM-DOM2", "SCM-RNG2", "PRP-DOM", "PRP-RNG",
                "PRP-SPO1"
            ]
        );
        assert_eq!(rs.name(), "rho-df");
    }

    #[test]
    fn rdfs_extends_rho_df() {
        let dict = Arc::new(Dictionary::new());
        let rs = Ruleset::rdfs(&dict);
        assert_eq!(rs.len(), 16);
        assert_eq!(rs.name(), "RDFS");
        for rho in Ruleset::rho_df().names() {
            assert!(rs.names().contains(&rho), "missing {rho}");
        }
        for extra in [
            "RDFS1", "RDFS4A", "RDFS4B", "RDFS6", "RDFS8", "RDFS10", "RDFS12", "RDFS13",
        ] {
            assert!(rs.names().contains(&extra), "missing {extra}");
        }
    }

    #[test]
    fn rdfs_config_toggles() {
        let dict = Arc::new(Dictionary::new());
        let slim = Ruleset::rdfs_with(
            &dict,
            RdfsConfig {
                literal_typing: false,
                resource_typing: false,
                type_literal_objects: false,
                structural_rules: false,
            },
        );
        assert_eq!(slim.len(), 8); // just ρdf
        let no_structural = Ruleset::rdfs_with(
            &dict,
            RdfsConfig {
                structural_rules: false,
                ..RdfsConfig::default()
            },
        );
        assert_eq!(no_structural.len(), 11);
    }

    #[test]
    fn index_of() {
        let rs = Ruleset::rho_df();
        assert_eq!(rs.index_of("CAX-SCO"), Some(0));
        assert_eq!(rs.index_of("PRP-SPO1"), Some(7));
        assert_eq!(rs.index_of("NOPE"), None);
    }

    #[test]
    fn fragment_constructor() {
        let dict = Arc::new(Dictionary::new());
        assert_eq!(Ruleset::fragment(Fragment::RhoDf, &dict).len(), 8);
        assert_eq!(Ruleset::fragment(Fragment::Rdfs, &dict).len(), 16);
        assert_eq!(Ruleset::fragment(Fragment::RdfsPlus, &dict).len(), 28);
        assert_eq!(Fragment::RhoDf.name(), "rho-df");
        assert_eq!(Fragment::Rdfs.to_string(), "RDFS");
        assert_eq!(Fragment::RdfsPlus.name(), "RDFS-Plus");
    }

    #[test]
    fn rdfs_plus_extends_rdfs() {
        let dict = Arc::new(Dictionary::new());
        let rs = Ruleset::rdfs_plus(&dict);
        assert_eq!(rs.name(), "RDFS-Plus");
        for base in Ruleset::rdfs(&dict).names() {
            assert!(rs.names().contains(&base), "missing {base}");
        }
        for extra in [
            "EQ-SYM", "EQ-TRANS", "EQ-REP-S", "EQ-REP-P", "EQ-REP-O", "PRP-INV", "PRP-SYMP",
            "PRP-TRP", "PRP-FP", "PRP-IFP", "SCM-EQC", "SCM-EQP",
        ] {
            assert!(rs.names().contains(&extra), "missing {extra}");
        }
    }

    #[test]
    fn custom_builder() {
        let rs = Ruleset::custom("mine").with(CaxSco).with(ScmSco);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.name(), "mine");
        assert!(!rs.is_empty());
    }
}
