//! The RDFS-Plus fragment: the paper's stated future work, realised.
//!
//! §5: "First, we will implement more complex inference rules, in order to
//! implement reasoning over a more complex fragments." RDFS-Plus (Allemang
//! & Hendler) is the canonical next step above RDFS: it adds the OWL
//! constructs that stay rule-expressible and PTIME —
//!
//! * `owl:sameAs` equality (symmetry, transitivity, substitution),
//! * `owl:inverseOf`, `owl:SymmetricProperty`, `owl:TransitiveProperty`,
//! * `owl:FunctionalProperty` / `owl:InverseFunctionalProperty`
//!   (which *derive* `sameAs` facts),
//! * `owl:equivalentClass` / `owl:equivalentProperty`.
//!
//! Rule names follow OWL 2 RL (Motik et al.). All rules are semi-naive
//! two-sided joins like the ρdf set, and none invents new term ids, so the
//! closure stays finite and the reasoner's termination argument is
//! unchanged.

use crate::rule::{InputFilter, OutputSignature, Rule};
use slider_model::vocab::{
    OWL_EQUIVALENT_CLASS, OWL_EQUIVALENT_PROPERTY, OWL_FUNCTIONAL_PROPERTY,
    OWL_INVERSE_FUNCTIONAL_PROPERTY, OWL_INVERSE_OF, OWL_SAME_AS, OWL_SYMMETRIC_PROPERTY,
    OWL_TRANSITIVE_PROPERTY, RDFS_SUB_CLASS_OF, RDFS_SUB_PROPERTY_OF, RDF_TYPE,
};
use slider_model::Triple;
use slider_store::StoreView;

/// `EQ-SYM`: `(x sameAs y) ⊢ (y sameAs x)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct EqSym;

impl Rule for EqSym {
    fn name(&self) -> &'static str {
        "EQ-SYM"
    }

    fn definition(&self) -> &'static str {
        "(x sameAs y) ⊢ (y sameAs x)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![OWL_SAME_AS])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![OWL_SAME_AS])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == OWL_SAME_AS {
                out.push(Triple::new(t.o, OWL_SAME_AS, t.s));
            }
        }
    }
}

/// `EQ-TRANS`: `(x sameAs y), (y sameAs z) ⊢ (x sameAs z)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct EqTrans;

impl Rule for EqTrans {
    fn name(&self) -> &'static str {
        "EQ-TRANS"
    }

    fn definition(&self) -> &'static str {
        "(x sameAs y), (y sameAs z) ⊢ (x sameAs z)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![OWL_SAME_AS])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![OWL_SAME_AS])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p != OWL_SAME_AS {
                continue;
            }
            for z in store.objects_with(OWL_SAME_AS, t.o) {
                out.push(Triple::new(t.s, OWL_SAME_AS, z));
            }
            for w in store.subjects_with(OWL_SAME_AS, t.s) {
                out.push(Triple::new(w, OWL_SAME_AS, t.o));
            }
        }
    }
}

/// `EQ-REP-S`: `(s sameAs s′), (s p o) ⊢ (s′ p o)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct EqRepS;

impl Rule for EqRepS {
    fn name(&self) -> &'static str {
        "EQ-REP-S"
    }

    fn definition(&self) -> &'static str {
        "(s sameAs s'), (s p o) ⊢ (s' p o)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Universal
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == OWL_SAME_AS {
                // New equality: rewrite every fact about s. The store has
                // no cross-predicate subject index, so walk the (few)
                // predicate partitions.
                for p in store.predicates() {
                    for o in store.objects_with(p, t.s) {
                        out.push(Triple::new(t.o, p, o));
                    }
                }
            }
            // New fact: rewrite through known equalities of its subject.
            for s2 in store.objects_with(OWL_SAME_AS, t.s) {
                out.push(Triple::new(s2, t.p, t.o));
            }
        }
    }
}

/// `EQ-REP-P`: `(p sameAs p′), (s p o) ⊢ (s p′ o)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct EqRepP;

impl Rule for EqRepP {
    fn name(&self) -> &'static str {
        "EQ-REP-P"
    }

    fn definition(&self) -> &'static str {
        "(p sameAs p'), (s p o) ⊢ (s p' o)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Universal
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == OWL_SAME_AS {
                for (s, o) in store.pairs(t.s) {
                    out.push(Triple::new(s, t.o, o));
                }
            }
            for p2 in store.objects_with(OWL_SAME_AS, t.p) {
                out.push(Triple::new(t.s, p2, t.o));
            }
        }
    }
}

/// `EQ-REP-O`: `(o sameAs o′), (s p o) ⊢ (s p o′)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct EqRepO;

impl Rule for EqRepO {
    fn name(&self) -> &'static str {
        "EQ-REP-O"
    }

    fn definition(&self) -> &'static str {
        "(o sameAs o'), (s p o) ⊢ (s p o')"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Universal
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == OWL_SAME_AS {
                for p in store.predicates() {
                    for s in store.subjects_with(p, t.s) {
                        out.push(Triple::new(s, p, t.o));
                    }
                }
            }
            for o2 in store.objects_with(OWL_SAME_AS, t.o) {
                out.push(Triple::new(t.s, t.p, o2));
            }
        }
    }
}

/// `PRP-INV`: `(p1 inverseOf p2), (x p1 y) ⊢ (y p2 x)` and symmetrically.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrpInv;

impl Rule for PrpInv {
    fn name(&self) -> &'static str {
        "PRP-INV"
    }

    fn definition(&self) -> &'static str {
        "(p1 inverseOf p2), (x p1 y) ⊢ (y p2 x)  [and symmetrically]"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Universal
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == OWL_INVERSE_OF {
                for (x, y) in store.pairs(t.s) {
                    out.push(Triple::new(y, t.o, x));
                }
                for (x, y) in store.pairs(t.o) {
                    out.push(Triple::new(y, t.s, x));
                }
            }
            for p2 in store.objects_with(OWL_INVERSE_OF, t.p) {
                out.push(Triple::new(t.o, p2, t.s));
            }
            for p1 in store.subjects_with(OWL_INVERSE_OF, t.p) {
                out.push(Triple::new(t.o, p1, t.s));
            }
        }
    }
}

/// `PRP-SYMP`: `(p type SymmetricProperty), (x p y) ⊢ (y p x)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrpSymp;

impl Rule for PrpSymp {
    fn name(&self) -> &'static str {
        "PRP-SYMP"
    }

    fn definition(&self) -> &'static str {
        "(p type SymmetricProperty), (x p y) ⊢ (y p x)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Universal
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDF_TYPE && t.o == OWL_SYMMETRIC_PROPERTY {
                for (x, y) in store.pairs(t.s) {
                    out.push(Triple::new(y, t.s, x));
                }
            }
            if store.contains(Triple::new(t.p, RDF_TYPE, OWL_SYMMETRIC_PROPERTY)) {
                out.push(Triple::new(t.o, t.p, t.s));
            }
        }
    }
}

/// `PRP-TRP`: `(p type TransitiveProperty), (x p y), (y p z) ⊢ (x p z)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrpTrp;

impl Rule for PrpTrp {
    fn name(&self) -> &'static str {
        "PRP-TRP"
    }

    fn definition(&self) -> &'static str {
        "(p type TransitiveProperty), (x p y), (y p z) ⊢ (x p z)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Universal
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDF_TYPE && t.o == OWL_TRANSITIVE_PROPERTY {
                // One transitive step over the whole partition; the
                // fixpoint loop completes the closure.
                for (x, y) in store.pairs(t.s) {
                    for z in store.objects_with(t.s, y) {
                        out.push(Triple::new(x, t.s, z));
                    }
                }
            }
            if store.contains(Triple::new(t.p, RDF_TYPE, OWL_TRANSITIVE_PROPERTY)) {
                for z in store.objects_with(t.p, t.o) {
                    out.push(Triple::new(t.s, t.p, z));
                }
                for w in store.subjects_with(t.p, t.s) {
                    out.push(Triple::new(w, t.p, t.o));
                }
            }
        }
    }
}

/// `PRP-FP`: `(p type FunctionalProperty), (x p y1), (x p y2) ⊢ (y1 sameAs y2)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrpFp;

impl Rule for PrpFp {
    fn name(&self) -> &'static str {
        "PRP-FP"
    }

    fn definition(&self) -> &'static str {
        "(p type FunctionalProperty), (x p y1), (x p y2) ⊢ (y1 sameAs y2)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![OWL_SAME_AS])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDF_TYPE && t.o == OWL_FUNCTIONAL_PROPERTY {
                for (x, y1) in store.pairs(t.s) {
                    for y2 in store.objects_with(t.s, x) {
                        if y1 != y2 {
                            out.push(Triple::new(y1, OWL_SAME_AS, y2));
                        }
                    }
                }
            }
            if store.contains(Triple::new(t.p, RDF_TYPE, OWL_FUNCTIONAL_PROPERTY)) {
                for y2 in store.objects_with(t.p, t.s) {
                    if y2 != t.o {
                        out.push(Triple::new(t.o, OWL_SAME_AS, y2));
                    }
                }
            }
        }
    }
}

/// `PRP-IFP`: `(p type InverseFunctionalProperty), (x1 p y), (x2 p y) ⊢ (x1 sameAs x2)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrpIfp;

impl Rule for PrpIfp {
    fn name(&self) -> &'static str {
        "PRP-IFP"
    }

    fn definition(&self) -> &'static str {
        "(p type InverseFunctionalProperty), (x1 p y), (x2 p y) ⊢ (x1 sameAs x2)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![OWL_SAME_AS])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDF_TYPE && t.o == OWL_INVERSE_FUNCTIONAL_PROPERTY {
                for (x1, y) in store.pairs(t.s) {
                    for x2 in store.subjects_with(t.s, y) {
                        if x1 != x2 {
                            out.push(Triple::new(x1, OWL_SAME_AS, x2));
                        }
                    }
                }
            }
            if store.contains(Triple::new(t.p, RDF_TYPE, OWL_INVERSE_FUNCTIONAL_PROPERTY)) {
                for x2 in store.subjects_with(t.p, t.o) {
                    if x2 != t.s {
                        out.push(Triple::new(t.s, OWL_SAME_AS, x2));
                    }
                }
            }
        }
    }
}

/// `SCM-EQC`: `(c1 equivalentClass c2) ⊢ (c1 subClassOf c2), (c2 subClassOf c1)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScmEqc;

impl Rule for ScmEqc {
    fn name(&self) -> &'static str {
        "SCM-EQC"
    }

    fn definition(&self) -> &'static str {
        "(c1 equivalentClass c2) ⊢ (c1 subClassOf c2), (c2 subClassOf c1)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![OWL_EQUIVALENT_CLASS])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_SUB_CLASS_OF])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == OWL_EQUIVALENT_CLASS {
                out.push(Triple::new(t.s, RDFS_SUB_CLASS_OF, t.o));
                out.push(Triple::new(t.o, RDFS_SUB_CLASS_OF, t.s));
            }
        }
    }
}

/// `SCM-EQP`: `(p1 equivalentProperty p2) ⊢ (p1 subPropertyOf p2), (p2 subPropertyOf p1)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScmEqp;

impl Rule for ScmEqp {
    fn name(&self) -> &'static str {
        "SCM-EQP"
    }

    fn definition(&self) -> &'static str {
        "(p1 equivalentProperty p2) ⊢ (p1 subPropertyOf p2), (p2 subPropertyOf p1)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![OWL_EQUIVALENT_PROPERTY])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_SUB_PROPERTY_OF])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == OWL_EQUIVALENT_PROPERTY {
                out.push(Triple::new(t.s, RDFS_SUB_PROPERTY_OF, t.o));
                out.push(Triple::new(t.o, RDFS_SUB_PROPERTY_OF, t.s));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::NodeId;
    use slider_store::VerticalStore;

    fn n(v: u64) -> NodeId {
        NodeId(1000 + v)
    }

    /// Applies `rule` with the full store (base ∪ delta) as in the engine.
    fn run(rule: &dyn Rule, base: &[Triple], delta: &[Triple]) -> Vec<Triple> {
        let mut store: VerticalStore = base.iter().copied().collect();
        for &t in delta {
            store.insert(t);
        }
        let mut out = Vec::new();
        rule.apply(&store.view(), delta, &mut out);
        out.retain(|&t| !store.contains(t));
        out.sort_unstable();
        out.dedup();
        out
    }

    fn same(a: u64, b: u64) -> Triple {
        Triple::new(n(a), OWL_SAME_AS, n(b))
    }
    fn fact(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(n(s), n(p), n(o))
    }

    #[test]
    fn eq_sym() {
        assert_eq!(run(&EqSym, &[], &[same(1, 2)]), vec![same(2, 1)]);
        assert!(run(&EqSym, &[], &[fact(1, 2, 3)]).is_empty());
    }

    #[test]
    fn eq_trans_both_sides() {
        assert_eq!(
            run(&EqTrans, &[same(2, 3)], &[same(1, 2)]),
            vec![same(1, 3)]
        );
        assert_eq!(
            run(&EqTrans, &[same(1, 2)], &[same(2, 3)]),
            vec![same(1, 3)]
        );
    }

    #[test]
    fn eq_rep_s_rewrites_subjects() {
        // equality first, fact second
        assert_eq!(
            run(&EqRepS, &[same(1, 9)], &[fact(1, 5, 3)]),
            vec![fact(9, 5, 3)]
        );
        // fact first, equality second — rewriting also applies to the
        // sameAs triple itself, soundly deriving (9 sameAs 9).
        assert_eq!(
            run(&EqRepS, &[fact(1, 5, 3)], &[same(1, 9)]),
            vec![same(9, 9), fact(9, 5, 3)]
        );
    }

    #[test]
    fn eq_rep_p_rewrites_predicates() {
        assert_eq!(
            run(&EqRepP, &[same(5, 6)], &[fact(1, 5, 3)]),
            vec![fact(1, 6, 3)]
        );
        assert_eq!(
            run(&EqRepP, &[fact(1, 5, 3)], &[same(5, 6)]),
            vec![fact(1, 6, 3)]
        );
    }

    #[test]
    fn eq_rep_o_rewrites_objects() {
        assert_eq!(
            run(&EqRepO, &[same(3, 9)], &[fact(1, 5, 3)]),
            vec![fact(1, 5, 9)]
        );
        assert_eq!(
            run(&EqRepO, &[fact(1, 5, 3)], &[same(3, 9)]),
            vec![fact(1, 5, 9)]
        );
    }

    #[test]
    fn prp_inv_both_orders() {
        let schema = Triple::new(n(5), OWL_INVERSE_OF, n(6));
        assert_eq!(
            run(&PrpInv, &[schema], &[fact(1, 5, 2)]),
            vec![fact(2, 6, 1)]
        );
        assert_eq!(
            run(&PrpInv, &[fact(1, 5, 2)], &[schema]),
            vec![fact(2, 6, 1)]
        );
        // Facts through the *inverse* predicate flip the other way.
        assert_eq!(
            run(&PrpInv, &[schema], &[fact(2, 6, 1)]),
            vec![fact(1, 5, 2)]
        );
    }

    #[test]
    fn prp_symp() {
        let schema = Triple::new(n(5), RDF_TYPE, OWL_SYMMETRIC_PROPERTY);
        assert_eq!(
            run(&PrpSymp, &[schema], &[fact(1, 5, 2)]),
            vec![fact(2, 5, 1)]
        );
        assert_eq!(
            run(&PrpSymp, &[fact(1, 5, 2)], &[schema]),
            vec![fact(2, 5, 1)]
        );
        // Non-symmetric predicates untouched.
        assert!(run(&PrpSymp, &[], &[fact(1, 5, 2)]).is_empty());
    }

    #[test]
    fn prp_trp_single_step() {
        let schema = Triple::new(n(5), RDF_TYPE, OWL_TRANSITIVE_PROPERTY);
        let got = run(&PrpTrp, &[schema, fact(2, 5, 3)], &[fact(1, 5, 2)]);
        assert_eq!(got, vec![fact(1, 5, 3)]);
        // Schema arriving last closes one step over existing pairs.
        let got = run(&PrpTrp, &[fact(1, 5, 2), fact(2, 5, 3)], &[schema]);
        assert_eq!(got, vec![fact(1, 5, 3)]);
    }

    #[test]
    fn prp_fp_derives_same_as() {
        let schema = Triple::new(n(5), RDF_TYPE, OWL_FUNCTIONAL_PROPERTY);
        let got = run(&PrpFp, &[schema, fact(1, 5, 7)], &[fact(1, 5, 8)]);
        assert_eq!(got, vec![same(8, 7)]);
        let got = run(&PrpFp, &[fact(1, 5, 7), fact(1, 5, 8)], &[schema]);
        // Both orientations derived when the schema lands.
        assert_eq!(got, vec![same(7, 8), same(8, 7)]);
    }

    #[test]
    fn prp_ifp_derives_same_as() {
        let schema = Triple::new(n(5), RDF_TYPE, OWL_INVERSE_FUNCTIONAL_PROPERTY);
        let got = run(&PrpIfp, &[schema, fact(7, 5, 1)], &[fact(8, 5, 1)]);
        assert_eq!(got, vec![same(8, 7)]);
    }

    #[test]
    fn scm_eqc_and_eqp() {
        let eqc = Triple::new(n(1), OWL_EQUIVALENT_CLASS, n(2));
        let got = run(&ScmEqc, &[], &[eqc]);
        assert_eq!(
            got,
            vec![
                Triple::new(n(1), RDFS_SUB_CLASS_OF, n(2)),
                Triple::new(n(2), RDFS_SUB_CLASS_OF, n(1)),
            ]
        );
        let eqp = Triple::new(n(1), OWL_EQUIVALENT_PROPERTY, n(2));
        let got = run(&ScmEqp, &[], &[eqp]);
        assert_eq!(
            got,
            vec![
                Triple::new(n(1), RDFS_SUB_PROPERTY_OF, n(2)),
                Triple::new(n(2), RDFS_SUB_PROPERTY_OF, n(1)),
            ]
        );
    }
}
