//! The rules dependency graph (paper §2.3, Figure 2).
//!
//! > "During the initialization process, Slider creates a list of dependent
//! > buffers for each rule … To implement such functionality, Slider builds
//! > a rules dependency graph. It is a directed graph, where edges
//! > represent the links (dependency) between the rules (vertices)."
//!
//! Edge `A → B` means "the output of rule A can be used by rule B", i.e.
//! `A`'s [`OutputSignature`] intersects `B`'s [`InputFilter`]. The
//! distributor of rule `A` dispatches `A`'s (deduplicated) conclusions to
//! exactly the buffers of `successors(A)`.

use crate::rule::{InputFilter, OutputSignature};
use crate::ruleset::Ruleset;
use slider_model::NodeId;
use std::fmt::Write as _;

/// The dependency graph over a [`Ruleset`], plus the entry routing used for
/// raw input triples.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    names: Vec<&'static str>,
    /// `succ[i]` = rules that must receive rule `i`'s fresh conclusions.
    succ: Vec<Vec<usize>>,
    /// Input filters, cached for routing raw input.
    filters: Vec<InputFilter>,
    /// Output signatures, cached for the partition/emitter queries.
    outputs: Vec<OutputSignature>,
    /// Per-rule declared subject-local inputs (see
    /// [`Rule::subject_local_inputs`](crate::Rule::subject_local_inputs)),
    /// cached for the sub-split plan.
    locals: Vec<Vec<NodeId>>,
    /// Maintenance partitions (see [`DependencyGraph::component_of`]).
    partitions: Partitions,
}

/// The graph's *maintenance partitions*: the finest grouping of rules such
/// that truth maintenance scoped to one group can never read or write a
/// triple that maintenance in another group writes.
///
/// Two rules land in the same component when any of these hold, closed
/// transitively:
///
/// * one **feeds** the other (a dependency edge either way) — group A's
///   overdeletion could invalidate conclusions of group B;
/// * their **input filters overlap** — a retracted predicate would seed
///   both rules' downward closures, so they must run in one pass;
/// * their **output signatures overlap** — both can emit some predicate,
///   so rederiving a deleted triple of that predicate must consult both.
///
/// Within one component, every predicate any member consumes or emits is
/// *owned* by the component, and ownership is exclusive: a predicate's
/// consumers and emitters are all in one component by construction. A rule
/// with a universal input or output owns every predicate — its component
/// reports no finite predicate list and partitioned maintenance falls back
/// to a single pass (in ρdf/RDFS the `PRP-*` rules collapse everything
/// into one component; partitioning pays off for predicate-scoped rulesets
/// such as [`Transitive`](crate::Transitive) families).
#[derive(Debug, Clone, Default)]
struct Partitions {
    /// Component id per rule, compacted to `0..count` in rule order.
    comp: Vec<usize>,
    /// Number of components.
    count: usize,
    /// Per component: the sorted, deduplicated predicates its rules consume
    /// or emit — `None` when a member has a universal input or output (the
    /// component then owns every predicate).
    owned: Vec<Option<Vec<NodeId>>>,
}

impl Partitions {
    fn build(succ: &[Vec<usize>], filters: &[InputFilter], outputs: &[OutputSignature]) -> Self {
        let n = filters.len();
        // Union-find over the rules; path-halving is overkill at n ≈ 10,
        // but keeps the closure transitive regardless of pair order.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let union = |parent: &mut [usize], a: usize, b: usize| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        };
        for (i, succs) in succ.iter().enumerate() {
            for &j in succs {
                union(&mut parent, i, j);
            }
        }
        for i in 0..n {
            for j in i + 1..n {
                if filters[i].overlaps(&filters[j]) || outputs[i].overlaps(&outputs[j]) {
                    union(&mut parent, i, j);
                }
            }
        }

        // Compact the roots to 0..count in rule order.
        let mut comp = vec![usize::MAX; n];
        let mut count = 0;
        for i in 0..n {
            let root = find(&mut parent, i);
            if comp[root] == usize::MAX {
                comp[root] = count;
                count += 1;
            }
            comp[i] = comp[root];
        }

        // Owned predicates per component; `None` once a member is
        // universal on either side.
        let mut owned: Vec<Option<Vec<NodeId>>> = vec![Some(Vec::new()); count];
        for i in 0..n {
            let slot = &mut owned[comp[i]];
            match (&filters[i], &outputs[i]) {
                (InputFilter::Universal, _) | (_, OutputSignature::Universal) => *slot = None,
                (InputFilter::Predicates(ins), OutputSignature::Predicates(outs)) => {
                    if let Some(preds) = slot {
                        preds.extend(ins.iter().chain(outs.iter()).copied());
                    }
                }
            }
        }
        for preds in owned.iter_mut().flatten() {
            preds.sort_unstable();
            preds.dedup();
        }
        Partitions { comp, count, owned }
    }
}

impl DependencyGraph {
    /// Builds the graph for `ruleset` by intersecting output signatures
    /// with input filters.
    pub fn build(ruleset: &Ruleset) -> Self {
        let rules = ruleset.rules();
        let filters: Vec<InputFilter> = rules.iter().map(|r| r.input_filter()).collect();
        let outputs: Vec<OutputSignature> = rules.iter().map(|r| r.output_signature()).collect();
        let succ: Vec<Vec<usize>> = outputs
            .iter()
            .map(|out| {
                filters
                    .iter()
                    .enumerate()
                    .filter(|(_, filter)| out.may_feed(filter))
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        let partitions = Partitions::build(&succ, &filters, &outputs);
        DependencyGraph {
            names: rules.iter().map(|r| r.name()).collect(),
            succ,
            filters,
            outputs,
            locals: rules.iter().map(|r| r.subject_local_inputs()).collect(),
            partitions,
        }
    }

    /// Number of rules (vertices).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The rules that consume rule `i`'s output.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succ[i]
    }

    /// True if rule `from` feeds rule `to`.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.succ[from].contains(&to)
    }

    /// Edge lookup by rule names (convenience for tests/tools).
    pub fn has_edge_named(&self, from: &str, to: &str) -> bool {
        match (self.index_of(from), self.index_of(to)) {
            (Some(a), Some(b)) => self.has_edge(a, b),
            _ => false,
        }
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Index of the rule named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|&n| n == name)
    }

    /// Rule name of vertex `i`.
    pub fn name(&self, i: usize) -> &'static str {
        self.names[i]
    }

    /// The rules with universal input (Figure 2's "Universal Input" box).
    pub fn universal_inputs(&self) -> Vec<usize> {
        self.filters
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f, InputFilter::Universal))
            .map(|(i, _)| i)
            .collect()
    }

    /// The cached input filter of rule `i` (used for entry routing).
    pub fn filter(&self, i: usize) -> &InputFilter {
        &self.filters[i]
    }

    /// Rules whose buffer should receive a raw input triple with
    /// predicate `p`.
    pub fn entry_routes(&self, p: slider_model::NodeId) -> impl Iterator<Item = usize> + '_ {
        self.filters
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.accepts_predicate(p))
            .map(|(i, _)| i)
    }

    /// The rules transitively reachable from `seeds` along dependency
    /// edges, seeds included. Result is sorted and deduplicated.
    ///
    /// This is the graph query behind DRed overdeletion (the *downward
    /// closure* of a retraction): a deleted triple can only invalidate
    /// conclusions of rules reachable from the rules that consume it, so
    /// maintenance restricts its rule set to `reachable(entry_routes(p))`
    /// for the retracted predicates `p`.
    pub fn reachable(&self, seeds: impl IntoIterator<Item = usize>) -> Vec<usize> {
        let mut visited = vec![false; self.len()];
        let mut stack: Vec<usize> = seeds.into_iter().collect();
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            out.push(i);
            stack.extend(self.succ[i].iter().copied().filter(|&j| !visited[j]));
        }
        out.sort_unstable();
        out
    }

    /// The rules that may participate in the downward closure of a deleted
    /// triple with predicate `p`: the [`DependencyGraph::reachable`] set of
    /// its [`DependencyGraph::entry_routes`].
    pub fn affected_by(&self, p: slider_model::NodeId) -> Vec<usize> {
        self.reachable(self.entry_routes(p).collect::<Vec<_>>())
    }

    /// Number of maintenance partitions: the finest grouping of rules such
    /// that maintenance scoped to one group never reads or writes a triple
    /// that maintenance in another group writes (see
    /// [`DependencyGraph::component_of`] for the grouping criterion).
    pub fn partition_count(&self) -> usize {
        self.partitions.count
    }

    /// The maintenance partition (component id in
    /// `0..`[`partition_count`](DependencyGraph::partition_count)) of rule
    /// `i`.
    ///
    /// Two rules share a component when (transitively) one feeds the
    /// other, their input filters overlap, or their output signatures
    /// overlap — the union of everything that could make their
    /// overdeletion/rederivation footprints touch. Retractions whose
    /// predicates map to *different* components
    /// ([`DependencyGraph::component_of_predicate`]) can therefore be
    /// maintained by independent DRed passes, in parallel.
    pub fn component_of(&self, i: usize) -> usize {
        self.partitions.comp[i]
    }

    /// The maintenance partition responsible for predicate `p`: the
    /// component of the rules that consume or emit `p`. By construction
    /// all of them share one component, so the answer is unique; `None`
    /// means no rule touches `p` — retracting such a triple is a plain
    /// delete with no derived consequences (an *inert* retraction).
    pub fn component_of_predicate(&self, p: NodeId) -> Option<usize> {
        (0..self.len())
            .find(|&i| self.filters[i].accepts_predicate(p) || self.outputs[i].may_emit(p))
            .map(|i| self.partitions.comp[i])
    }

    /// Every predicate component `c`'s rules consume or emit (sorted,
    /// deduplicated) — the tables a maintenance pass scoped to `c` may
    /// touch. `None` when a member rule has a universal input or output:
    /// the component owns every predicate and cannot be split off.
    pub fn component_predicates(&self, c: usize) -> Option<&[NodeId]> {
        self.partitions.owned[c].as_deref()
    }

    /// The **subject sub-split plan** for maintenance partition `c`,
    /// seeded by retractions of `seed_preds`: the *affected predicate
    /// closure* of the seeds under `c`'s rules, if maintaining it
    /// decomposes by subject — `None` if sub-splitting `c` for these
    /// seeds would be unsound.
    ///
    /// The affected closure `A` is the least fixpoint of `seeds ⊆ A` and
    /// "a component rule consuming a predicate in `A` adds its output
    /// predicates to `A`" — the predicates whose tables DRed scoped to
    /// these seeds may *mutate* (everything else in the partition is only
    /// read). Sub-splitting is sound iff every component rule whose
    /// inputs meet `A` meets it **only through declared subject-local
    /// inputs** ([`Rule::subject_local_inputs`](crate::Rule::subject_local_inputs)):
    /// then every overdeletion/rederivation step stays on the seed's own
    /// subject, two seeds with different subjects have disjoint downward
    /// closures, and the planner may carve `A` into subject-hash buckets
    /// maintained in parallel — each bucket mutating its own carve of the
    /// `A` tables while joining read-only against the rest of the
    /// partition.
    ///
    /// Returns the sorted affected closure on success. Components with a
    /// universal member ([`DependencyGraph::component_predicates`] =
    /// `None`) never qualify, and a rule meeting `A` through a non-local
    /// input (e.g. a [`Transitive`](crate::Transitive) chain join, which
    /// walks foreign subjects in both directions) disqualifies the plan —
    /// sub-splitting then silently degrades to the whole-partition pass.
    pub fn subsplit_affected(&self, c: usize, seed_preds: &[NodeId]) -> Option<Vec<NodeId>> {
        self.partitions.owned.get(c)?.as_ref()?;
        let mut affected: Vec<NodeId> = seed_preds.to_vec();
        affected.sort_unstable();
        affected.dedup();
        loop {
            let mut grew = false;
            for i in 0..self.len() {
                if self.partitions.comp[i] != c {
                    continue;
                }
                let InputFilter::Predicates(ins) = &self.filters[i] else {
                    return None; // unreachable given owned ≠ None, but stay safe
                };
                let touched: Vec<NodeId> = ins
                    .iter()
                    .copied()
                    .filter(|p| affected.binary_search(p).is_ok())
                    .collect();
                if touched.is_empty() {
                    continue;
                }
                // Soundness gate: every touched input must be declared
                // subject-local by the rule.
                if !touched.iter().all(|p| self.locals[i].contains(p)) {
                    return None;
                }
                let OutputSignature::Predicates(outs) = &self.outputs[i] else {
                    return None;
                };
                for &p in outs {
                    if affected.binary_search(&p).is_err() {
                        affected.push(p);
                        affected.sort_unstable();
                        grew = true;
                    }
                }
            }
            if !grew {
                return Some(affected);
            }
        }
    }

    /// Renders the graph in Graphviz DOT, reproducing Figure 2's layout
    /// conventions (a "Universal Input" source node feeding the universal
    /// rules).
    pub fn to_dot(&self) -> String {
        let mut dot = String::from("digraph rules_dependency {\n  rankdir=LR;\n");
        dot.push_str("  universal_input [label=\"Universal Input\", shape=box];\n");
        for (i, name) in self.names.iter().enumerate() {
            let _ = writeln!(dot, "  r{i} [label=\"{name}\"];");
        }
        for i in self.universal_inputs() {
            let _ = writeln!(dot, "  universal_input -> r{i};");
        }
        for (i, succs) in self.succ.iter().enumerate() {
            for &j in succs {
                let _ = writeln!(dot, "  r{i} -> r{j};");
            }
        }
        dot.push_str("}\n");
        dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::vocab::{RDFS_SUB_CLASS_OF, RDF_TYPE};
    use slider_model::Dictionary;
    use std::sync::Arc;

    #[test]
    fn rho_df_graph_matches_figure2() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        assert_eq!(g.len(), 8);

        // Figure 2: PRP-DOM, PRP-RNG, PRP-SPO1 take universal input.
        let universal: Vec<&str> = g
            .universal_inputs()
            .into_iter()
            .map(|i| g.name(i))
            .collect();
        assert_eq!(universal, vec!["PRP-DOM", "PRP-RNG", "PRP-SPO1"]);

        // The worked example from §2.3: "the directed edge from rule
        // SCM-SCO to CAX-SCO depicts that output of first rule, a
        // subclassOf relation can be used as an input for second rule".
        assert!(g.has_edge_named("SCM-SCO", "CAX-SCO"));

        // Transitive rules feed themselves.
        assert!(g.has_edge_named("SCM-SCO", "SCM-SCO"));
        assert!(g.has_edge_named("SCM-SPO", "SCM-SPO"));

        // subPropertyOf flows into the dom/rng schema rules.
        assert!(g.has_edge_named("SCM-SPO", "SCM-DOM2"));
        assert!(g.has_edge_named("SCM-SPO", "SCM-RNG2"));

        // type-producers feed CAX-SCO.
        for producer in ["PRP-DOM", "PRP-RNG", "CAX-SCO"] {
            assert!(
                g.has_edge_named(producer, "CAX-SCO"),
                "{producer} → CAX-SCO"
            );
        }

        // Everything feeds the universal-input rules.
        for from in 0..g.len() {
            for to_name in ["PRP-DOM", "PRP-RNG", "PRP-SPO1"] {
                assert!(
                    g.has_edge(from, g.index_of(to_name).unwrap()),
                    "{} → {to_name}",
                    g.name(from)
                );
            }
        }

        // PRP-SPO1 (universal output) feeds everything.
        let spo1 = g.index_of("PRP-SPO1").unwrap();
        for to in 0..g.len() {
            assert!(g.has_edge(spo1, to));
        }

        // Negative cases: type-producers do not feed the schema-only rules.
        assert!(!g.has_edge_named("CAX-SCO", "SCM-SCO"));
        assert!(!g.has_edge_named("PRP-DOM", "SCM-DOM2"));
        assert!(!g.has_edge_named("SCM-DOM2", "SCM-SCO"));
        assert!(!g.has_edge_named("SCM-RNG2", "SCM-DOM2"));
    }

    /// Pin the exact ρdf edge set: 8 rules; every rule feeds the 3
    /// universal ones; plus the predicate-mediated edges.
    #[test]
    fn rho_df_exact_edge_count() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        let mut expected = 0usize;
        // every rule → 3 universal-input rules
        expected += 8 * 3;
        // PRP-SPO1 (universal out) → the 5 non-universal rules
        expected += 5;
        // sco producers (CAX? no — CAX-SCO emits type) :
        // SCM-SCO (sco) → {CAX-SCO, SCM-SCO}
        expected += 2;
        // SCM-SPO (spo) → {SCM-SPO, SCM-DOM2, SCM-RNG2}
        expected += 3;
        // SCM-DOM2 (dom) → {SCM-DOM2}
        expected += 1;
        // SCM-RNG2 (rng) → {SCM-RNG2}
        expected += 1;
        // type producers CAX-SCO, PRP-DOM, PRP-RNG → {CAX-SCO}
        expected += 3;
        assert_eq!(g.edge_count(), expected, "\n{}", g.to_dot());
    }

    #[test]
    fn rdfs_graph_wires_structural_rules() {
        let dict = Arc::new(Dictionary::new());
        let g = DependencyGraph::build(&Ruleset::rdfs(&dict));
        // rdfs8 emits subClassOf → feeds SCM-SCO and CAX-SCO.
        assert!(g.has_edge_named("RDFS8", "SCM-SCO"));
        assert!(g.has_edge_named("RDFS8", "CAX-SCO"));
        // rdfs6 emits subPropertyOf → feeds SCM-SPO and PRP-SPO1.
        assert!(g.has_edge_named("RDFS6", "SCM-SPO"));
        assert!(g.has_edge_named("RDFS6", "PRP-SPO1"));
        // rdfs4a emits type → feeds the type-filtered structural rules.
        assert!(g.has_edge_named("RDFS4A", "RDFS8"));
        assert!(g.has_edge_named("RDFS4A", "RDFS10"));
        // …but not the sco-only rule.
        assert!(!g.has_edge_named("RDFS4A", "SCM-SCO"));
    }

    #[test]
    fn entry_routes_by_predicate() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        let sco_routes: Vec<&str> = g
            .entry_routes(RDFS_SUB_CLASS_OF)
            .map(|i| g.name(i))
            .collect();
        assert_eq!(
            sco_routes,
            vec!["CAX-SCO", "SCM-SCO", "PRP-DOM", "PRP-RNG", "PRP-SPO1"]
        );
        let type_routes: Vec<&str> = g.entry_routes(RDF_TYPE).map(|i| g.name(i)).collect();
        assert_eq!(
            type_routes,
            vec!["CAX-SCO", "PRP-DOM", "PRP-RNG", "PRP-SPO1"]
        );
        // A random predicate only reaches the universal rules.
        let other: Vec<&str> = g
            .entry_routes(slider_model::NodeId(99_999))
            .map(|i| g.name(i))
            .collect();
        assert_eq!(other, vec!["PRP-DOM", "PRP-RNG", "PRP-SPO1"]);
    }

    #[test]
    fn reachability_closure() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        // Empty seed set reaches nothing.
        assert!(g.reachable(Vec::new()).is_empty());
        // Seeds are included even without a self-loop.
        let cax = g.index_of("CAX-SCO").unwrap();
        let from_cax = g.reachable([cax]);
        assert!(from_cax.contains(&cax));
        // CAX-SCO feeds the universal rules; PRP-SPO1 (universal output)
        // then feeds everything — so the closure is all 8 rules.
        assert_eq!(from_cax.len(), 8);
        // Result is sorted + deduplicated even with duplicate seeds.
        let dup = g.reachable([cax, cax]);
        assert_eq!(dup, from_cax);
        assert!(dup.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn affected_by_predicate() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        // In ρdf every predicate routes into the universal-input rules and
        // PRP-SPO1's universal output closes over everything: deleting any
        // triple can, in principle, touch all 8 rules.
        assert_eq!(g.affected_by(RDFS_SUB_CLASS_OF).len(), 8);
        assert_eq!(g.affected_by(slider_model::NodeId(99_999)).len(), 8);
        // A ruleset without universal rules localises the closure.
        let rs = Ruleset::custom("sco-only")
            .with(crate::rho_df::CaxSco)
            .with(crate::rho_df::ScmSco)
            .with(crate::rho_df::ScmSpo);
        let g = DependencyGraph::build(&rs);
        let affected: Vec<&str> = g
            .affected_by(RDF_TYPE)
            .into_iter()
            .map(|i| g.name(i))
            .collect();
        // type only enters CAX-SCO, whose output (type) feeds only itself.
        assert_eq!(affected, vec!["CAX-SCO"]);
        let affected: Vec<&str> = g
            .affected_by(RDFS_SUB_CLASS_OF)
            .into_iter()
            .map(|i| g.name(i))
            .collect();
        // sco enters CAX-SCO + SCM-SCO; SCM-SPO stays untouched.
        assert_eq!(affected, vec!["CAX-SCO", "SCM-SCO"]);
    }

    #[test]
    fn rho_df_collapses_to_one_partition() {
        // The PRP-* rules are universal on input (PRP-DOM/RNG) or output
        // (PRP-SPO1): everything overlaps, so ρdf has a single maintenance
        // partition that owns every predicate.
        let g = DependencyGraph::build(&Ruleset::rho_df());
        assert_eq!(g.partition_count(), 1);
        for i in 0..g.len() {
            assert_eq!(g.component_of(i), 0);
        }
        assert_eq!(g.component_predicates(0), None, "universal ownership");
        assert_eq!(g.component_of_predicate(RDF_TYPE), Some(0));
        assert_eq!(
            g.component_of_predicate(slider_model::NodeId(99_999)),
            Some(0),
            "universal input consumes every predicate"
        );
    }

    #[test]
    fn predicate_scoped_rules_partition() {
        // {CAX-SCO, SCM-SCO} share sco; SCM-SPO's spo vocabulary is
        // disjoint from both — two partitions.
        let rs = Ruleset::custom("scoped")
            .with(crate::rho_df::CaxSco)
            .with(crate::rho_df::ScmSco)
            .with(crate::rho_df::ScmSpo);
        let g = DependencyGraph::build(&rs);
        assert_eq!(g.partition_count(), 2);
        let sco_comp = g.component_of(g.index_of("CAX-SCO").unwrap());
        assert_eq!(g.component_of(g.index_of("SCM-SCO").unwrap()), sco_comp);
        let spo_comp = g.component_of(g.index_of("SCM-SPO").unwrap());
        assert_ne!(sco_comp, spo_comp);
        // Consumers and emitters agree on ownership.
        assert_eq!(g.component_of_predicate(RDFS_SUB_CLASS_OF), Some(sco_comp));
        assert_eq!(g.component_of_predicate(RDF_TYPE), Some(sco_comp));
        use slider_model::vocab::RDFS_SUB_PROPERTY_OF;
        assert_eq!(
            g.component_of_predicate(RDFS_SUB_PROPERTY_OF),
            Some(spo_comp)
        );
        // Unknown predicates are inert.
        assert_eq!(g.component_of_predicate(slider_model::NodeId(42)), None);
        // Owned vocabularies are finite, sorted and disjoint.
        let sco_owned = g.component_predicates(sco_comp).unwrap();
        let spo_owned = g.component_predicates(spo_comp).unwrap();
        assert!(sco_owned.contains(&RDFS_SUB_CLASS_OF));
        assert!(sco_owned.contains(&RDF_TYPE));
        assert_eq!(spo_owned, [RDFS_SUB_PROPERTY_OF]);
        assert!(sco_owned.iter().all(|p| !spo_owned.contains(p)));
    }

    #[test]
    fn output_overlap_joins_partitions_without_edges() {
        // Two rules that both emit type but never feed each other must
        // share a partition: rederiving a deleted type triple consults
        // both. (CAX-SCO feeds itself; the second family's Subsumption
        // emits into the same `type` predicate.)
        let rs = Ruleset::custom("shared-output")
            .with(crate::rho_df::CaxSco)
            .with(crate::Subsumption::new(
                "S-B",
                RDF_TYPE,
                slider_model::NodeId(7_000),
            ));
        let g = DependencyGraph::build(&rs);
        assert_eq!(g.partition_count(), 1);
    }

    #[test]
    fn subsplit_qualifies_only_subject_local_closures() {
        use crate::{Subsumption, Transitive};
        let trans = slider_model::NodeId(8_000);
        let is = slider_model::NodeId(8_001);
        let rs = Ruleset::custom("one-family")
            .with(Transitive::new("T", trans))
            .with(Subsumption::new("S", is, trans));
        let g = DependencyGraph::build(&rs);
        let c = g.component_of(0);

        // Membership retractions: the affected closure is {is}, touched
        // only through Subsumption's declared subject-local input.
        assert_eq!(g.subsplit_affected(c, &[is]), Some(vec![is]));
        // Chain-link retractions: Transitive meets the closure through a
        // non-local input (its join walks foreign subjects) — no split.
        assert_eq!(g.subsplit_affected(c, &[trans]), None);
        assert_eq!(g.subsplit_affected(c, &[is, trans]), None);

        // A universal component never qualifies.
        let g = DependencyGraph::build(&Ruleset::rho_df());
        assert_eq!(
            g.subsplit_affected(0, &[slider_model::vocab::RDF_TYPE]),
            None
        );
    }

    #[test]
    fn subsplit_closure_grows_through_local_chains() {
        use crate::Subsumption;
        // S1 propagates is1 along sub edges; S2 relabels is1 into is2
        // (is2 plays "IS", is1 plays... no — S2: (x is2 c),(c is1 d) ⊢
        // (x is2 d): is1 is S2's SUB input). Retracting is1 memberships
        // seeds {is1}; S1's local input is is1 → closure stays {is1}.
        // But retracting is2 touches S2 locally → closure {is2}.
        let sub = slider_model::NodeId(8_100);
        let is1 = slider_model::NodeId(8_101);
        let is2 = slider_model::NodeId(8_102);
        let rs = Ruleset::custom("chained")
            .with(Subsumption::new("S1", is1, sub))
            .with(Subsumption::new("S2", is2, is1));
        let g = DependencyGraph::build(&rs);
        let c = g.component_of(0);
        // is1 is S1's local IS input but S2's *non-local* SUB input: a
        // retraction seeding is1 reaches S2 through it → disqualified.
        assert_eq!(g.subsplit_affected(c, &[is1]), None);
        // is2 only meets S2's local IS input; the closure stays {is2}.
        assert_eq!(g.subsplit_affected(c, &[is2]), Some(vec![is2]));
    }

    #[test]
    fn empty_graph_has_no_partitions() {
        let g = DependencyGraph::build(&Ruleset::custom("empty"));
        assert_eq!(g.partition_count(), 0);
        assert_eq!(g.component_of_predicate(RDF_TYPE), None);
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("Universal Input"));
        assert!(dot.contains("CAX-SCO"));
        // 3 universal-input edges drawn from the source box.
        assert_eq!(dot.matches("universal_input -> ").count(), 3);
    }

    #[test]
    fn empty_ruleset() {
        let g = DependencyGraph::build(&Ruleset::custom("empty"));
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert!(g.universal_inputs().is_empty());
    }
}
