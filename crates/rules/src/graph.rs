//! The rules dependency graph (paper §2.3, Figure 2).
//!
//! > "During the initialization process, Slider creates a list of dependent
//! > buffers for each rule … To implement such functionality, Slider builds
//! > a rules dependency graph. It is a directed graph, where edges
//! > represent the links (dependency) between the rules (vertices)."
//!
//! Edge `A → B` means "the output of rule A can be used by rule B", i.e.
//! `A`'s [`OutputSignature`] intersects `B`'s [`InputFilter`]. The
//! distributor of rule `A` dispatches `A`'s (deduplicated) conclusions to
//! exactly the buffers of `successors(A)`.

use crate::rule::{InputFilter, OutputSignature};
use crate::ruleset::Ruleset;
use std::fmt::Write as _;

/// The dependency graph over a [`Ruleset`], plus the entry routing used for
/// raw input triples.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    names: Vec<&'static str>,
    /// `succ[i]` = rules that must receive rule `i`'s fresh conclusions.
    succ: Vec<Vec<usize>>,
    /// Input filters, cached for routing raw input.
    filters: Vec<InputFilter>,
}

impl DependencyGraph {
    /// Builds the graph for `ruleset` by intersecting output signatures
    /// with input filters.
    pub fn build(ruleset: &Ruleset) -> Self {
        let rules = ruleset.rules();
        let filters: Vec<InputFilter> = rules.iter().map(|r| r.input_filter()).collect();
        let outputs: Vec<OutputSignature> = rules.iter().map(|r| r.output_signature()).collect();
        let succ = outputs
            .iter()
            .map(|out| {
                filters
                    .iter()
                    .enumerate()
                    .filter(|(_, filter)| out.may_feed(filter))
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        DependencyGraph {
            names: rules.iter().map(|r| r.name()).collect(),
            succ,
            filters,
        }
    }

    /// Number of rules (vertices).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The rules that consume rule `i`'s output.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succ[i]
    }

    /// True if rule `from` feeds rule `to`.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.succ[from].contains(&to)
    }

    /// Edge lookup by rule names (convenience for tests/tools).
    pub fn has_edge_named(&self, from: &str, to: &str) -> bool {
        match (self.index_of(from), self.index_of(to)) {
            (Some(a), Some(b)) => self.has_edge(a, b),
            _ => false,
        }
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Index of the rule named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|&n| n == name)
    }

    /// Rule name of vertex `i`.
    pub fn name(&self, i: usize) -> &'static str {
        self.names[i]
    }

    /// The rules with universal input (Figure 2's "Universal Input" box).
    pub fn universal_inputs(&self) -> Vec<usize> {
        self.filters
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f, InputFilter::Universal))
            .map(|(i, _)| i)
            .collect()
    }

    /// The cached input filter of rule `i` (used for entry routing).
    pub fn filter(&self, i: usize) -> &InputFilter {
        &self.filters[i]
    }

    /// Rules whose buffer should receive a raw input triple with
    /// predicate `p`.
    pub fn entry_routes(&self, p: slider_model::NodeId) -> impl Iterator<Item = usize> + '_ {
        self.filters
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.accepts_predicate(p))
            .map(|(i, _)| i)
    }

    /// The rules transitively reachable from `seeds` along dependency
    /// edges, seeds included. Result is sorted and deduplicated.
    ///
    /// This is the graph query behind DRed overdeletion (the *downward
    /// closure* of a retraction): a deleted triple can only invalidate
    /// conclusions of rules reachable from the rules that consume it, so
    /// maintenance restricts its rule set to `reachable(entry_routes(p))`
    /// for the retracted predicates `p`.
    pub fn reachable(&self, seeds: impl IntoIterator<Item = usize>) -> Vec<usize> {
        let mut visited = vec![false; self.len()];
        let mut stack: Vec<usize> = seeds.into_iter().collect();
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            out.push(i);
            stack.extend(self.succ[i].iter().copied().filter(|&j| !visited[j]));
        }
        out.sort_unstable();
        out
    }

    /// The rules that may participate in the downward closure of a deleted
    /// triple with predicate `p`: the [`DependencyGraph::reachable`] set of
    /// its [`DependencyGraph::entry_routes`].
    pub fn affected_by(&self, p: slider_model::NodeId) -> Vec<usize> {
        self.reachable(self.entry_routes(p).collect::<Vec<_>>())
    }

    /// Renders the graph in Graphviz DOT, reproducing Figure 2's layout
    /// conventions (a "Universal Input" source node feeding the universal
    /// rules).
    pub fn to_dot(&self) -> String {
        let mut dot = String::from("digraph rules_dependency {\n  rankdir=LR;\n");
        dot.push_str("  universal_input [label=\"Universal Input\", shape=box];\n");
        for (i, name) in self.names.iter().enumerate() {
            let _ = writeln!(dot, "  r{i} [label=\"{name}\"];");
        }
        for i in self.universal_inputs() {
            let _ = writeln!(dot, "  universal_input -> r{i};");
        }
        for (i, succs) in self.succ.iter().enumerate() {
            for &j in succs {
                let _ = writeln!(dot, "  r{i} -> r{j};");
            }
        }
        dot.push_str("}\n");
        dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::vocab::{RDFS_SUB_CLASS_OF, RDF_TYPE};
    use slider_model::Dictionary;
    use std::sync::Arc;

    #[test]
    fn rho_df_graph_matches_figure2() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        assert_eq!(g.len(), 8);

        // Figure 2: PRP-DOM, PRP-RNG, PRP-SPO1 take universal input.
        let universal: Vec<&str> = g
            .universal_inputs()
            .into_iter()
            .map(|i| g.name(i))
            .collect();
        assert_eq!(universal, vec!["PRP-DOM", "PRP-RNG", "PRP-SPO1"]);

        // The worked example from §2.3: "the directed edge from rule
        // SCM-SCO to CAX-SCO depicts that output of first rule, a
        // subclassOf relation can be used as an input for second rule".
        assert!(g.has_edge_named("SCM-SCO", "CAX-SCO"));

        // Transitive rules feed themselves.
        assert!(g.has_edge_named("SCM-SCO", "SCM-SCO"));
        assert!(g.has_edge_named("SCM-SPO", "SCM-SPO"));

        // subPropertyOf flows into the dom/rng schema rules.
        assert!(g.has_edge_named("SCM-SPO", "SCM-DOM2"));
        assert!(g.has_edge_named("SCM-SPO", "SCM-RNG2"));

        // type-producers feed CAX-SCO.
        for producer in ["PRP-DOM", "PRP-RNG", "CAX-SCO"] {
            assert!(
                g.has_edge_named(producer, "CAX-SCO"),
                "{producer} → CAX-SCO"
            );
        }

        // Everything feeds the universal-input rules.
        for from in 0..g.len() {
            for to_name in ["PRP-DOM", "PRP-RNG", "PRP-SPO1"] {
                assert!(
                    g.has_edge(from, g.index_of(to_name).unwrap()),
                    "{} → {to_name}",
                    g.name(from)
                );
            }
        }

        // PRP-SPO1 (universal output) feeds everything.
        let spo1 = g.index_of("PRP-SPO1").unwrap();
        for to in 0..g.len() {
            assert!(g.has_edge(spo1, to));
        }

        // Negative cases: type-producers do not feed the schema-only rules.
        assert!(!g.has_edge_named("CAX-SCO", "SCM-SCO"));
        assert!(!g.has_edge_named("PRP-DOM", "SCM-DOM2"));
        assert!(!g.has_edge_named("SCM-DOM2", "SCM-SCO"));
        assert!(!g.has_edge_named("SCM-RNG2", "SCM-DOM2"));
    }

    /// Pin the exact ρdf edge set: 8 rules; every rule feeds the 3
    /// universal ones; plus the predicate-mediated edges.
    #[test]
    fn rho_df_exact_edge_count() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        let mut expected = 0usize;
        // every rule → 3 universal-input rules
        expected += 8 * 3;
        // PRP-SPO1 (universal out) → the 5 non-universal rules
        expected += 5;
        // sco producers (CAX? no — CAX-SCO emits type) :
        // SCM-SCO (sco) → {CAX-SCO, SCM-SCO}
        expected += 2;
        // SCM-SPO (spo) → {SCM-SPO, SCM-DOM2, SCM-RNG2}
        expected += 3;
        // SCM-DOM2 (dom) → {SCM-DOM2}
        expected += 1;
        // SCM-RNG2 (rng) → {SCM-RNG2}
        expected += 1;
        // type producers CAX-SCO, PRP-DOM, PRP-RNG → {CAX-SCO}
        expected += 3;
        assert_eq!(g.edge_count(), expected, "\n{}", g.to_dot());
    }

    #[test]
    fn rdfs_graph_wires_structural_rules() {
        let dict = Arc::new(Dictionary::new());
        let g = DependencyGraph::build(&Ruleset::rdfs(&dict));
        // rdfs8 emits subClassOf → feeds SCM-SCO and CAX-SCO.
        assert!(g.has_edge_named("RDFS8", "SCM-SCO"));
        assert!(g.has_edge_named("RDFS8", "CAX-SCO"));
        // rdfs6 emits subPropertyOf → feeds SCM-SPO and PRP-SPO1.
        assert!(g.has_edge_named("RDFS6", "SCM-SPO"));
        assert!(g.has_edge_named("RDFS6", "PRP-SPO1"));
        // rdfs4a emits type → feeds the type-filtered structural rules.
        assert!(g.has_edge_named("RDFS4A", "RDFS8"));
        assert!(g.has_edge_named("RDFS4A", "RDFS10"));
        // …but not the sco-only rule.
        assert!(!g.has_edge_named("RDFS4A", "SCM-SCO"));
    }

    #[test]
    fn entry_routes_by_predicate() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        let sco_routes: Vec<&str> = g
            .entry_routes(RDFS_SUB_CLASS_OF)
            .map(|i| g.name(i))
            .collect();
        assert_eq!(
            sco_routes,
            vec!["CAX-SCO", "SCM-SCO", "PRP-DOM", "PRP-RNG", "PRP-SPO1"]
        );
        let type_routes: Vec<&str> = g.entry_routes(RDF_TYPE).map(|i| g.name(i)).collect();
        assert_eq!(
            type_routes,
            vec!["CAX-SCO", "PRP-DOM", "PRP-RNG", "PRP-SPO1"]
        );
        // A random predicate only reaches the universal rules.
        let other: Vec<&str> = g
            .entry_routes(slider_model::NodeId(99_999))
            .map(|i| g.name(i))
            .collect();
        assert_eq!(other, vec!["PRP-DOM", "PRP-RNG", "PRP-SPO1"]);
    }

    #[test]
    fn reachability_closure() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        // Empty seed set reaches nothing.
        assert!(g.reachable(Vec::new()).is_empty());
        // Seeds are included even without a self-loop.
        let cax = g.index_of("CAX-SCO").unwrap();
        let from_cax = g.reachable([cax]);
        assert!(from_cax.contains(&cax));
        // CAX-SCO feeds the universal rules; PRP-SPO1 (universal output)
        // then feeds everything — so the closure is all 8 rules.
        assert_eq!(from_cax.len(), 8);
        // Result is sorted + deduplicated even with duplicate seeds.
        let dup = g.reachable([cax, cax]);
        assert_eq!(dup, from_cax);
        assert!(dup.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn affected_by_predicate() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        // In ρdf every predicate routes into the universal-input rules and
        // PRP-SPO1's universal output closes over everything: deleting any
        // triple can, in principle, touch all 8 rules.
        assert_eq!(g.affected_by(RDFS_SUB_CLASS_OF).len(), 8);
        assert_eq!(g.affected_by(slider_model::NodeId(99_999)).len(), 8);
        // A ruleset without universal rules localises the closure.
        let rs = Ruleset::custom("sco-only")
            .with(crate::rho_df::CaxSco)
            .with(crate::rho_df::ScmSco)
            .with(crate::rho_df::ScmSpo);
        let g = DependencyGraph::build(&rs);
        let affected: Vec<&str> = g
            .affected_by(RDF_TYPE)
            .into_iter()
            .map(|i| g.name(i))
            .collect();
        // type only enters CAX-SCO, whose output (type) feeds only itself.
        assert_eq!(affected, vec!["CAX-SCO"]);
        let affected: Vec<&str> = g
            .affected_by(RDFS_SUB_CLASS_OF)
            .into_iter()
            .map(|i| g.name(i))
            .collect();
        // sco enters CAX-SCO + SCM-SCO; SCM-SPO stays untouched.
        assert_eq!(affected, vec!["CAX-SCO", "SCM-SCO"]);
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let g = DependencyGraph::build(&Ruleset::rho_df());
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("Universal Input"));
        assert!(dot.contains("CAX-SCO"));
        // 3 universal-input edges drawn from the source box.
        assert_eq!(dot.matches("universal_input -> ").count(), 3);
    }

    #[test]
    fn empty_ruleset() {
        let g = DependencyGraph::build(&Ruleset::custom("empty"));
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert!(g.universal_inputs().is_empty());
    }
}
