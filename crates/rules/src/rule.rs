//! The [`Rule`] trait and rule I/O signatures.

use slider_model::{NodeId, Triple};
use slider_store::StoreView;

/// Which incoming triples a rule's buffer accepts.
///
/// The paper routes triples to modules "according to configured rules'
/// predicates" (§2); rules whose body contains an atom with a *variable*
/// predicate (e.g. the `(s p o)` atom of `PRP-DOM`) have **universal
/// input** — they must see every triple (Figure 2's "Universal Input").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputFilter {
    /// The rule must see every triple.
    Universal,
    /// The rule only consumes triples whose predicate is in the list.
    Predicates(Vec<NodeId>),
}

impl InputFilter {
    /// True if a triple with predicate `p` is relevant to the rule.
    #[inline]
    pub fn accepts_predicate(&self, p: NodeId) -> bool {
        match self {
            InputFilter::Universal => true,
            InputFilter::Predicates(ps) => ps.contains(&p),
        }
    }

    /// True if `t` is relevant to the rule.
    #[inline]
    pub fn accepts(&self, t: Triple) -> bool {
        self.accepts_predicate(t.p)
    }

    /// True if some triple is relevant to both filters (a retraction of a
    /// shared predicate would seed both rules' downward closures — the
    /// partition criterion in
    /// [`DependencyGraph`](crate::DependencyGraph)).
    pub fn overlaps(&self, other: &InputFilter) -> bool {
        match (self, other) {
            (InputFilter::Universal, _) | (_, InputFilter::Universal) => true,
            (InputFilter::Predicates(a), InputFilter::Predicates(b)) => {
                a.iter().any(|p| b.contains(p))
            }
        }
    }
}

/// Which predicates a rule's conclusions can carry.
///
/// Used to build the [`DependencyGraph`](crate::DependencyGraph): rule `A`
/// feeds rule `B` iff some predicate `A` can emit is accepted by `B`'s
/// input filter. `PRP-SPO1` emits a *variable* predicate (the super
/// property), so its output signature is universal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputSignature {
    /// The rule can emit triples with any predicate.
    Universal,
    /// The rule only emits triples whose predicate is in the list.
    Predicates(Vec<NodeId>),
}

impl OutputSignature {
    /// True if output with this signature can be consumed by `filter`.
    pub fn may_feed(&self, filter: &InputFilter) -> bool {
        match (self, filter) {
            (_, InputFilter::Universal) => true,
            (OutputSignature::Universal, _) => true,
            (OutputSignature::Predicates(outs), InputFilter::Predicates(ins)) => {
                outs.iter().any(|p| ins.contains(p))
            }
        }
    }

    /// True if the rule can emit a triple with predicate `p`.
    #[inline]
    pub fn may_emit(&self, p: NodeId) -> bool {
        match self {
            OutputSignature::Universal => true,
            OutputSignature::Predicates(ps) => ps.contains(&p),
        }
    }

    /// True if both signatures can emit some common predicate (rederiving
    /// a deleted triple of that predicate must consult both rules — the
    /// partition criterion in
    /// [`DependencyGraph`](crate::DependencyGraph)).
    pub fn overlaps(&self, other: &OutputSignature) -> bool {
        match (self, other) {
            (OutputSignature::Universal, _) | (_, OutputSignature::Universal) => true,
            (OutputSignature::Predicates(a), OutputSignature::Predicates(b)) => {
                a.iter().any(|p| b.contains(p))
            }
        }
    }
}

/// One inference rule — the unit the reasoner maps to a module (§2).
///
/// Implementations must be `Send + Sync`: the thread pool runs many
/// instances of the same rule concurrently against a shared read-locked
/// store.
pub trait Rule: Send + Sync {
    /// Rule name as used in the paper/figures (e.g. `"CAX-SCO"`).
    fn name(&self) -> &'static str;

    /// Human-readable `body ⊢ head` form, for docs/demo UI.
    fn definition(&self) -> &'static str;

    /// Which triples this rule's buffer accepts.
    fn input_filter(&self) -> InputFilter;

    /// Which predicates this rule's conclusions carry.
    fn output_signature(&self) -> OutputSignature;

    /// Semi-naive application: join `delta` (new triples, already in
    /// `store`) against `store` in both directions, appending conclusions
    /// to `out`. Conclusions may repeat; the distributor deduplicates
    /// against the store.
    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>);

    /// The static **read set** of [`Rule::apply`]: every predicate the
    /// join may pass to a store accessor, independent of the delta.
    /// `None` (the default) means the read set is unbounded — the rule
    /// may look up data-dependent predicates (e.g. `PRP-SPO1` walks the
    /// partition of whatever property the delta mentions) — and the
    /// reasoner hands such rules a full store snapshot. `Some(preds)`
    /// lets the sharded store pin only `preds`' shards, in a fixed order,
    /// so the join never blocks writers on unrelated predicate families;
    /// `Some(vec![])` declares a delta-only rule that reads no store
    /// partition at all.
    ///
    /// The declaration is a *contract*: `apply` touching a predicate
    /// outside a `Some` read set panics loudly inside the engine (the
    /// closure test suite exercises every built-in rule's declaration).
    /// [`Rule::derives`] is exempt — maintenance always runs it against
    /// a whole-store view.
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        None
    }

    /// The subset of this rule's input predicates whose reads are
    /// **subject-local**: for every input predicate `p` in the returned
    /// list, both [`Rule::apply`] and [`Rule::derives`] only ever access
    /// `p`'s partition at the *subject of the triple being derived or
    /// checked* (patterns of the shape `(s, p, ?)` with `s` the
    /// conclusion's subject), and every conclusion whose derivation
    /// touched `p` carries that same subject.
    ///
    /// This is the soundness gate for **intra-partition subject
    /// sub-splitting** (the maintenance planner's second level): if a
    /// deletion's affected predicate closure only meets this rule through
    /// subject-local inputs, then the downward closure of a set of
    /// retractions decomposes by subject — two seeds with different
    /// subjects can never overdelete or rederive each other's
    /// consequences through this rule — and the planner may carve the
    /// affected predicates into disjoint subject-range buckets and
    /// maintain them in parallel.
    ///
    /// The default (empty) is the conservative answer: no input is
    /// declared subject-local and any deletion touching this rule's
    /// inputs disables sub-splitting for its partition. Declaring a
    /// predicate here that the rule in fact reads at foreign subjects
    /// (e.g. a transitive join walking `(?, p, s)`) would let the planner
    /// tear one closure across buckets — only declare inputs whose
    /// accesses provably stay on the conclusion's subject.
    fn subject_local_inputs(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// Backward support check — the optional fast path for DRed
    /// rederivation: is `t` derivable by this rule **in one step** from
    /// premises currently in `store`?
    ///
    /// `Some(_)` answers must agree exactly with [`Rule::apply`]: `t` is
    /// one-step derivable iff applying the rule with the full store as the
    /// delta could emit `t`. `t` itself need not be in the store (the
    /// maintenance subsystem asks about triples it just deleted). The
    /// default `None` means "no backward matcher"; maintenance then falls
    /// back to a forward full-store pass — sound for any rule, just
    /// slower. All built-in ρdf and RDFS rules implement this.
    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        let _ = (store, t);
        None
    }
}

impl std::fmt::Debug for dyn Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rule({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn input_filter_accepts() {
        let f = InputFilter::Predicates(vec![n(1), n(2)]);
        assert!(f.accepts_predicate(n(1)));
        assert!(!f.accepts_predicate(n(3)));
        assert!(InputFilter::Universal.accepts_predicate(n(3)));
        assert!(f.accepts(Triple::new(n(9), n(2), n(9))));
        assert!(!f.accepts(Triple::new(n(9), n(9), n(9))));
    }

    #[test]
    fn output_feeding() {
        let out_ab = OutputSignature::Predicates(vec![n(1), n(2)]);
        let in_bc = InputFilter::Predicates(vec![n(2), n(3)]);
        let in_cd = InputFilter::Predicates(vec![n(3), n(4)]);
        assert!(out_ab.may_feed(&in_bc));
        assert!(!out_ab.may_feed(&in_cd));
        assert!(out_ab.may_feed(&InputFilter::Universal));
        assert!(OutputSignature::Universal.may_feed(&in_cd));
        assert!(OutputSignature::Universal.may_feed(&InputFilter::Universal));
    }
}
