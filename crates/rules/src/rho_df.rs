//! The ρdf fragment: the eight rules of the paper's Figure 2.
//!
//! ρdf (Muñoz, Pérez & Gutierrez, *Minimal deductive systems for RDF*) is
//! the minimal core of RDFS: `subClassOf`, `subPropertyOf`, `domain`,
//! `range` and `type`. The paper names the rules after their OWL 2 RL
//! counterparts (Motik et al., tables 4–9), which we follow.
//!
//! Every implementation below follows paper Algorithm 1: join the new
//! triples (`delta`) against the store in both directions, using the
//! vertical indexes instead of the algorithm's nested loops (§2.2 motivates
//! the predicate → subject → object index with exactly these lookups).

use crate::rule::{InputFilter, OutputSignature, Rule};
use slider_model::vocab::{
    RDFS_DOMAIN, RDFS_RANGE, RDFS_SUB_CLASS_OF, RDFS_SUB_PROPERTY_OF, RDF_TYPE,
};
use slider_model::{NodeId, Triple};
use slider_store::StoreView;

/// `CAX-SCO`: `(c1 subClassOf c2), (x type c1) ⊢ (x type c2)`.
///
/// This is the rule the paper spells out as Algorithm 1.
#[derive(Debug, Default, Clone, Copy)]
pub struct CaxSco;

impl Rule for CaxSco {
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(vec![RDFS_SUB_CLASS_OF, RDF_TYPE])
    }

    fn name(&self) -> &'static str {
        "CAX-SCO"
    }

    fn definition(&self) -> &'static str {
        "(c1 subClassOf c2), (x type c1) ⊢ (x type c2)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![RDFS_SUB_CLASS_OF, RDF_TYPE])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDF_TYPE])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDFS_SUB_CLASS_OF {
                // new (c1 sco c2) × store (x type c1)
                for x in store.subjects_with(RDF_TYPE, t.s) {
                    out.push(Triple::new(x, RDF_TYPE, t.o));
                }
            } else if t.p == RDF_TYPE {
                // new (x type c1) × store (c1 sco c2)
                for c2 in store.objects_with(RDFS_SUB_CLASS_OF, t.o) {
                    out.push(Triple::new(t.s, RDF_TYPE, c2));
                }
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (x type c2) ⇐ ∃c1: (c1 sco c2) ∧ (x type c1).
        Some(
            t.p == RDF_TYPE
                && store
                    .subjects_with(RDFS_SUB_CLASS_OF, t.o)
                    .any(|c1| store.contains(Triple::new(t.s, RDF_TYPE, c1))),
        )
    }

    /// `type` is subject-local (the membership shape): a `type`-delta's
    /// join reads only the `subClassOf` partition
    /// (`objects_with(subClassOf, t.o)`) and emits at the delta's own
    /// subject, and `derives((x type c2))` reads the `type` partition
    /// only at subject `x`. `subClassOf` is *not* local — a schema-edge
    /// delta fans out to every member of the class
    /// (`subjects_with(type, ..)`), crossing subjects — so a deletion
    /// whose affected closure reaches `subClassOf` correctly disables
    /// sub-splitting. (In the full ρdf program this never fires: the
    /// universal-input rules collapse the graph to one unsplittable
    /// component. It pays off in predicate-scoped custom rulesets.)
    fn subject_local_inputs(&self) -> Vec<NodeId> {
        vec![RDF_TYPE]
    }
}

/// `SCM-SCO`: `(c1 subClassOf c2), (c2 subClassOf c3) ⊢ (c1 subClassOf c3)`.
///
/// Transitivity of subsumption — the rule stressed by the paper's
/// `subClassOfⁿ` ontologies, whose chains produce O(n²) unique triples.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScmSco;

impl Rule for ScmSco {
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(vec![RDFS_SUB_CLASS_OF])
    }

    fn name(&self) -> &'static str {
        "SCM-SCO"
    }

    fn definition(&self) -> &'static str {
        "(c1 subClassOf c2), (c2 subClassOf c3) ⊢ (c1 subClassOf c3)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![RDFS_SUB_CLASS_OF])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_SUB_CLASS_OF])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p != RDFS_SUB_CLASS_OF {
                continue;
            }
            // Forward: new (c1 sco c2) × store (c2 sco c3).
            for c3 in store.objects_with(RDFS_SUB_CLASS_OF, t.o) {
                out.push(Triple::new(t.s, RDFS_SUB_CLASS_OF, c3));
            }
            // Backward: store (c0 sco c1) × new (c1 sco c2).
            for c0 in store.subjects_with(RDFS_SUB_CLASS_OF, t.s) {
                out.push(Triple::new(c0, RDFS_SUB_CLASS_OF, t.o));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (c1 sco c3) ⇐ ∃c2: (c1 sco c2) ∧ (c2 sco c3).
        Some(
            t.p == RDFS_SUB_CLASS_OF
                && store
                    .objects_with(RDFS_SUB_CLASS_OF, t.s)
                    .any(|c2| store.contains(Triple::new(c2, RDFS_SUB_CLASS_OF, t.o))),
        )
    }
}

/// `SCM-SPO`: `(p1 subPropertyOf p2), (p2 subPropertyOf p3) ⊢ (p1 subPropertyOf p3)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScmSpo;

impl Rule for ScmSpo {
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(vec![RDFS_SUB_PROPERTY_OF])
    }

    fn name(&self) -> &'static str {
        "SCM-SPO"
    }

    fn definition(&self) -> &'static str {
        "(p1 subPropertyOf p2), (p2 subPropertyOf p3) ⊢ (p1 subPropertyOf p3)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![RDFS_SUB_PROPERTY_OF])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_SUB_PROPERTY_OF])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p != RDFS_SUB_PROPERTY_OF {
                continue;
            }
            for p3 in store.objects_with(RDFS_SUB_PROPERTY_OF, t.o) {
                out.push(Triple::new(t.s, RDFS_SUB_PROPERTY_OF, p3));
            }
            for p0 in store.subjects_with(RDFS_SUB_PROPERTY_OF, t.s) {
                out.push(Triple::new(p0, RDFS_SUB_PROPERTY_OF, t.o));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (p1 spo p3) ⇐ ∃p2: (p1 spo p2) ∧ (p2 spo p3).
        Some(
            t.p == RDFS_SUB_PROPERTY_OF
                && store
                    .objects_with(RDFS_SUB_PROPERTY_OF, t.s)
                    .any(|p2| store.contains(Triple::new(p2, RDFS_SUB_PROPERTY_OF, t.o))),
        )
    }
}

/// `SCM-DOM2`: `(p2 domain c), (p1 subPropertyOf p2) ⊢ (p1 domain c)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScmDom2;

impl Rule for ScmDom2 {
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(vec![RDFS_DOMAIN, RDFS_SUB_PROPERTY_OF])
    }

    fn name(&self) -> &'static str {
        "SCM-DOM2"
    }

    fn definition(&self) -> &'static str {
        "(p2 domain c), (p1 subPropertyOf p2) ⊢ (p1 domain c)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![RDFS_DOMAIN, RDFS_SUB_PROPERTY_OF])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_DOMAIN])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDFS_DOMAIN {
                // new (p2 dom c) × store (p1 spo p2)
                for p1 in store.subjects_with(RDFS_SUB_PROPERTY_OF, t.s) {
                    out.push(Triple::new(p1, RDFS_DOMAIN, t.o));
                }
            } else if t.p == RDFS_SUB_PROPERTY_OF {
                // new (p1 spo p2) × store (p2 dom c)
                for c in store.objects_with(RDFS_DOMAIN, t.o) {
                    out.push(Triple::new(t.s, RDFS_DOMAIN, c));
                }
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (p1 dom c) ⇐ ∃p2: (p1 spo p2) ∧ (p2 dom c).
        Some(
            t.p == RDFS_DOMAIN
                && store
                    .objects_with(RDFS_SUB_PROPERTY_OF, t.s)
                    .any(|p2| store.contains(Triple::new(p2, RDFS_DOMAIN, t.o))),
        )
    }
}

/// `SCM-RNG2`: `(p2 range c), (p1 subPropertyOf p2) ⊢ (p1 range c)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScmRng2;

impl Rule for ScmRng2 {
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(vec![RDFS_RANGE, RDFS_SUB_PROPERTY_OF])
    }

    fn name(&self) -> &'static str {
        "SCM-RNG2"
    }

    fn definition(&self) -> &'static str {
        "(p2 range c), (p1 subPropertyOf p2) ⊢ (p1 range c)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![RDFS_RANGE, RDFS_SUB_PROPERTY_OF])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_RANGE])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDFS_RANGE {
                for p1 in store.subjects_with(RDFS_SUB_PROPERTY_OF, t.s) {
                    out.push(Triple::new(p1, RDFS_RANGE, t.o));
                }
            } else if t.p == RDFS_SUB_PROPERTY_OF {
                for c in store.objects_with(RDFS_RANGE, t.o) {
                    out.push(Triple::new(t.s, RDFS_RANGE, c));
                }
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (p1 rng c) ⇐ ∃p2: (p1 spo p2) ∧ (p2 rng c).
        Some(
            t.p == RDFS_RANGE
                && store
                    .objects_with(RDFS_SUB_PROPERTY_OF, t.s)
                    .any(|p2| store.contains(Triple::new(p2, RDFS_RANGE, t.o))),
        )
    }
}

/// `PRP-DOM`: `(p domain c), (x p y) ⊢ (x type c)`.
///
/// The `(x p y)` atom has a variable predicate, so this rule has
/// **universal input** (Figure 2).
#[derive(Debug, Default, Clone, Copy)]
pub struct PrpDom;

impl Rule for PrpDom {
    fn name(&self) -> &'static str {
        "PRP-DOM"
    }

    fn definition(&self) -> &'static str {
        "(p domain c), (x p y) ⊢ (x type c)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDF_TYPE])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDFS_DOMAIN {
                // new (p dom c) × store (x p y): walk the p-partition.
                for (x, _y) in store.pairs(t.s) {
                    out.push(Triple::new(x, RDF_TYPE, t.o));
                }
            }
            // new (x p y) × store (p dom c).
            for c in store.objects_with(RDFS_DOMAIN, t.p) {
                out.push(Triple::new(t.s, RDF_TYPE, c));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (x type c) ⇐ ∃p: (p dom c) ∧ (x p _).
        Some(
            t.p == RDF_TYPE
                && store
                    .subjects_with(RDFS_DOMAIN, t.o)
                    .any(|p| store.objects_with(p, t.s).next().is_some()),
        )
    }
}

/// `PRP-RNG`: `(p range c), (x p y) ⊢ (y type c)`.
///
/// Universal input, like [`PrpDom`].
#[derive(Debug, Default, Clone, Copy)]
pub struct PrpRng;

impl Rule for PrpRng {
    fn name(&self) -> &'static str {
        "PRP-RNG"
    }

    fn definition(&self) -> &'static str {
        "(p range c), (x p y) ⊢ (y type c)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDF_TYPE])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDFS_RANGE {
                for (_x, y) in store.pairs(t.s) {
                    out.push(Triple::new(y, RDF_TYPE, t.o));
                }
            }
            for c in store.objects_with(RDFS_RANGE, t.p) {
                out.push(Triple::new(t.o, RDF_TYPE, c));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (y type c) ⇐ ∃p: (p rng c) ∧ (_ p y).
        Some(
            t.p == RDF_TYPE
                && store
                    .subjects_with(RDFS_RANGE, t.o)
                    .any(|p| store.subjects_with(p, t.s).next().is_some()),
        )
    }
}

/// `PRP-SPO1`: `(p1 subPropertyOf p2), (x p1 y) ⊢ (x p2 y)`.
///
/// Universal input *and* universal output: the emitted predicate `p2` is a
/// variable, so in the dependency graph this rule can feed every other rule.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrpSpo1;

impl Rule for PrpSpo1 {
    fn name(&self) -> &'static str {
        "PRP-SPO1"
    }

    fn definition(&self) -> &'static str {
        "(p1 subPropertyOf p2), (x p1 y) ⊢ (x p2 y)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Universal
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDFS_SUB_PROPERTY_OF {
                // new (p1 spo p2) × store (x p1 y).
                for (x, y) in store.pairs(t.s) {
                    out.push(Triple::new(x, t.o, y));
                }
            }
            // new (x p1 y) × store (p1 spo p2).
            for p2 in store.objects_with(RDFS_SUB_PROPERTY_OF, t.p) {
                out.push(Triple::new(t.s, p2, t.o));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (x p2 y) ⇐ ∃p1: (p1 spo p2) ∧ (x p1 y).
        Some(
            store
                .subjects_with(RDFS_SUB_PROPERTY_OF, t.p)
                .any(|p1| store.contains(Triple::new(t.s, p1, t.o))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::NodeId;
    use slider_store::VerticalStore;

    // Test node ids, clear of the vocabulary range.
    fn n(v: u64) -> NodeId {
        NodeId(1000 + v)
    }

    /// Applies `rule` with `delta` = `new`, store = `base ∪ new`
    /// (the reasoner inserts before dispatching), returning sorted unique
    /// conclusions minus what the store already contains.
    fn run(rule: &dyn Rule, base: &[Triple], new: &[Triple]) -> Vec<Triple> {
        let mut store: VerticalStore = base.iter().copied().collect();
        for &t in new {
            store.insert(t);
        }
        let mut out = Vec::new();
        rule.apply(&store.view(), new, &mut out);
        out.retain(|&t| !store.contains(t));
        out.sort_unstable();
        out.dedup();
        out
    }

    fn sco(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDFS_SUB_CLASS_OF, n(b))
    }
    fn spo(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDFS_SUB_PROPERTY_OF, n(b))
    }
    fn ty(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDF_TYPE, n(b))
    }
    fn dom(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDFS_DOMAIN, n(b))
    }
    fn rng(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDFS_RANGE, n(b))
    }

    #[test]
    fn cax_sco_both_directions() {
        // Schema in store, instance arrives.
        assert_eq!(run(&CaxSco, &[sco(1, 2)], &[ty(9, 1)]), vec![ty(9, 2)]);
        // Instance in store, schema arrives.
        assert_eq!(run(&CaxSco, &[ty(9, 1)], &[sco(1, 2)]), vec![ty(9, 2)]);
        // Both arrive together (delta × delta via store superset).
        assert_eq!(run(&CaxSco, &[], &[sco(1, 2), ty(9, 1)]), vec![ty(9, 2)]);
    }

    #[test]
    fn cax_sco_no_match() {
        assert!(run(&CaxSco, &[sco(1, 2)], &[ty(9, 3)]).is_empty());
        assert!(run(&CaxSco, &[], &[Triple::new(n(1), n(99), n(2))]).is_empty());
    }

    /// In a predicate-scoped ruleset, CAX-SCO's declared `type` locality
    /// lets a membership burst sub-split; schema-edge seeds still
    /// disqualify, and the full ρdf program stays universal (one
    /// unsplittable component).
    #[test]
    fn cax_sco_qualifies_type_bursts_for_subsplit() {
        use crate::{DependencyGraph, Ruleset};
        let g = DependencyGraph::build(&Ruleset::custom("cax-only").with(CaxSco));
        let c = g.component_of(0);
        assert_eq!(g.subsplit_affected(c, &[RDF_TYPE]), Some(vec![RDF_TYPE]));
        assert_eq!(g.subsplit_affected(c, &[RDFS_SUB_CLASS_OF]), None);
        let rho = DependencyGraph::build(&Ruleset::rho_df());
        let rho_c = rho.component_of(0);
        assert_eq!(rho.subsplit_affected(rho_c, &[RDF_TYPE]), None);
    }

    #[test]
    fn scm_sco_transitivity_both_sides() {
        assert_eq!(run(&ScmSco, &[sco(2, 3)], &[sco(1, 2)]), vec![sco(1, 3)]);
        assert_eq!(run(&ScmSco, &[sco(1, 2)], &[sco(2, 3)]), vec![sco(1, 3)]);
        // Chain of 3 in one delta: one application closes length-2 paths.
        let got = run(&ScmSco, &[], &[sco(1, 2), sco(2, 3), sco(3, 4)]);
        assert_eq!(got, vec![sco(1, 3), sco(2, 4)]);
    }

    #[test]
    fn scm_sco_cycle_is_safe() {
        let got = run(&ScmSco, &[], &[sco(1, 2), sco(2, 1)]);
        // Derives the reflexive edges; no unbounded growth.
        assert_eq!(got, vec![sco(1, 1), sco(2, 2)]);
    }

    #[test]
    fn scm_spo_transitivity() {
        assert_eq!(run(&ScmSpo, &[spo(2, 3)], &[spo(1, 2)]), vec![spo(1, 3)]);
        assert_eq!(run(&ScmSpo, &[spo(1, 2)], &[spo(2, 3)]), vec![spo(1, 3)]);
    }

    #[test]
    fn scm_dom2_both_directions() {
        assert_eq!(run(&ScmDom2, &[spo(1, 2)], &[dom(2, 7)]), vec![dom(1, 7)]);
        assert_eq!(run(&ScmDom2, &[dom(2, 7)], &[spo(1, 2)]), vec![dom(1, 7)]);
    }

    #[test]
    fn scm_rng2_both_directions() {
        assert_eq!(run(&ScmRng2, &[spo(1, 2)], &[rng(2, 7)]), vec![rng(1, 7)]);
        assert_eq!(run(&ScmRng2, &[rng(2, 7)], &[spo(1, 2)]), vec![rng(1, 7)]);
    }

    #[test]
    fn prp_dom_types_subjects() {
        let fact = Triple::new(n(9), n(5), n(8));
        // Schema first.
        assert_eq!(run(&PrpDom, &[dom(5, 7)], &[fact]), vec![ty(9, 7)]);
        // Fact first.
        assert_eq!(run(&PrpDom, &[fact], &[dom(5, 7)]), vec![ty(9, 7)]);
    }

    #[test]
    fn prp_rng_types_objects() {
        let fact = Triple::new(n(9), n(5), n(8));
        assert_eq!(run(&PrpRng, &[rng(5, 7)], &[fact]), vec![ty(8, 7)]);
        assert_eq!(run(&PrpRng, &[fact], &[rng(5, 7)]), vec![ty(8, 7)]);
    }

    #[test]
    fn prp_spo1_lifts_facts() {
        let fact = Triple::new(n(9), n(5), n(8));
        let lifted = Triple::new(n(9), n(6), n(8));
        assert_eq!(run(&PrpSpo1, &[spo(5, 6)], &[fact]), vec![lifted]);
        assert_eq!(run(&PrpSpo1, &[fact], &[spo(5, 6)]), vec![lifted]);
    }

    #[test]
    fn prp_spo1_is_universal_io() {
        assert_eq!(PrpSpo1.input_filter(), InputFilter::Universal);
        assert_eq!(PrpSpo1.output_signature(), OutputSignature::Universal);
    }

    #[test]
    fn figure2_universal_input_rules() {
        // Figure 2: PRP-SPO, PRP-RNG, PRP-DOM take universal input; the
        // SCM-* and CAX-* rules are predicate-filtered.
        assert_eq!(PrpDom.input_filter(), InputFilter::Universal);
        assert_eq!(PrpRng.input_filter(), InputFilter::Universal);
        assert!(matches!(CaxSco.input_filter(), InputFilter::Predicates(_)));
        assert!(matches!(ScmSco.input_filter(), InputFilter::Predicates(_)));
        assert!(matches!(ScmSpo.input_filter(), InputFilter::Predicates(_)));
        assert!(matches!(ScmDom2.input_filter(), InputFilter::Predicates(_)));
        assert!(matches!(ScmRng2.input_filter(), InputFilter::Predicates(_)));
    }

    #[test]
    fn names_match_paper() {
        let rules: Vec<&dyn Rule> = vec![
            &CaxSco, &ScmSco, &ScmSpo, &ScmDom2, &ScmRng2, &PrpDom, &PrpRng, &PrpSpo1,
        ];
        let names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec![
                "CAX-SCO", "SCM-SCO", "SCM-SPO", "SCM-DOM2", "SCM-RNG2", "PRP-DOM", "PRP-RNG",
                "PRP-SPO1"
            ]
        );
        for r in rules {
            assert!(r.definition().contains('⊢'));
        }
    }
}
