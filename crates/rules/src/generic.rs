//! Predicate-parameterised rules for custom fragments.
//!
//! The built-in ρdf/RDFS rules are pinned to the RDFS vocabulary. Many
//! streaming workloads instead carry *domain* hierarchies — part-of
//! chains, org charts, sensor containment trees — each over its own
//! predicate. [`Transitive`] and [`Subsumption`] are the two recurring
//! shapes, parameterised by predicate so one ruleset can host several
//! independent **families**:
//!
//! ```
//! use slider_model::NodeId;
//! use slider_rules::{DependencyGraph, Ruleset, Subsumption, Transitive};
//!
//! let part_of = NodeId(100);
//! let within = NodeId(101);
//! let located_in = NodeId(200);
//! let rs = Ruleset::custom("facilities")
//!     .with(Transitive::new("PART-OF", part_of))
//!     .with(Subsumption::new("WITHIN", within, part_of))
//!     .with(Transitive::new("LOCATED-IN", located_in));
//!
//! // The two families never exchange triples: the dependency graph
//! // reports two maintenance partitions, so their retractions can be
//! // flushed by independent (parallel) DRed passes.
//! let graph = DependencyGraph::build(&rs);
//! assert_eq!(graph.partition_count(), 2);
//! ```
//!
//! Both rules implement the backward [`Rule::derives`] check, so DRed
//! rederivation over them stays proportional to the deleted set — and
//! partitioned maintenance never needs the forward fallback.

use crate::rule::{InputFilter, OutputSignature, Rule};
use slider_model::{NodeId, Triple};
use slider_store::StoreView;

/// `(x P y), (y P z) ⊢ (x P z)` — transitivity over a configurable
/// predicate `P` (the generic [`ScmSco`](crate::ScmSco)).
#[derive(Debug, Clone, Copy)]
pub struct Transitive {
    name: &'static str,
    pred: NodeId,
}

impl Transitive {
    /// A transitivity rule over `pred`, reported as `name` in stats and
    /// dependency-graph dumps.
    pub fn new(name: &'static str, pred: NodeId) -> Self {
        Transitive { name, pred }
    }
}

impl Rule for Transitive {
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(vec![self.pred])
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn definition(&self) -> &'static str {
        "(x P y), (y P z) ⊢ (x P z)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![self.pred])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![self.pred])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p != self.pred {
                continue;
            }
            // Forward: new (x P y) × store (y P z).
            for z in store.objects_with(self.pred, t.o) {
                out.push(Triple::new(t.s, self.pred, z));
            }
            // Backward: store (w P x) × new (x P y).
            for w in store.subjects_with(self.pred, t.s) {
                out.push(Triple::new(w, self.pred, t.o));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (x P z) ⇐ ∃y: (x P y) ∧ (y P z).
        Some(
            t.p == self.pred
                && store
                    .objects_with(self.pred, t.s)
                    .any(|y| store.contains(Triple::new(y, self.pred, t.o))),
        )
    }
}

/// `(x IS c), (c SUB d) ⊢ (x IS d)` — membership propagation up a
/// configurable hierarchy (the generic [`CaxSco`](crate::CaxSco), with
/// `IS` playing `rdf:type` and `SUB` playing `rdfs:subClassOf`).
#[derive(Debug, Clone, Copy)]
pub struct Subsumption {
    name: &'static str,
    is: NodeId,
    sub: NodeId,
}

impl Subsumption {
    /// A subsumption rule propagating `is` memberships along `sub` edges,
    /// reported as `name`.
    pub fn new(name: &'static str, is: NodeId, sub: NodeId) -> Self {
        Subsumption { name, is, sub }
    }
}

impl Rule for Subsumption {
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(vec![self.is, self.sub])
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn definition(&self) -> &'static str {
        "(x IS c), (c SUB d) ⊢ (x IS d)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![self.is, self.sub])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![self.is])
    }

    fn apply(&self, store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == self.sub {
                // new (c SUB d) × store (x IS c)
                for x in store.subjects_with(self.is, t.s) {
                    out.push(Triple::new(x, self.is, t.o));
                }
            } else if t.p == self.is {
                // new (x IS c) × store (c SUB d)
                for d in store.objects_with(self.sub, t.o) {
                    out.push(Triple::new(t.s, self.is, d));
                }
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (x IS d) ⇐ ∃c: (c SUB d) ∧ (x IS c).
        Some(
            t.p == self.is
                && store
                    .subjects_with(self.sub, t.o)
                    .any(|c| store.contains(Triple::new(t.s, self.is, c))),
        )
    }

    /// `is` is subject-local: an `is`-delta's join reads only the `sub`
    /// partition (`objects_with(sub, t.o)`) and emits at the delta's own
    /// subject, and `derives((x IS d))` reads the `is` partition only at
    /// subject `x`. `sub` is *not* local — a `sub`-edge delta fans out to
    /// every member of the class (`subjects_with(is, ..)`), crossing
    /// subjects — so a deletion whose affected closure reaches `sub`
    /// correctly disables sub-splitting.
    fn subject_local_inputs(&self) -> Vec<NodeId> {
        vec![self.is]
    }
}

/// `(x P y) ⊢ (x IS c)` — domain typing over a configurable property
/// (the generic `PRP-DOM` for one known property/class pair; the built-in
/// [`PrpDom`](crate::PrpDom) reads the schema at run time and is therefore
/// universal-input, which bars its component from every partitioned plan).
#[derive(Debug, Clone, Copy)]
pub struct Domain {
    name: &'static str,
    pred: NodeId,
    is: NodeId,
    class: NodeId,
}

impl Domain {
    /// A domain rule typing subjects of `pred` as `class` members via the
    /// `is` membership predicate, reported as `name`.
    pub fn new(name: &'static str, pred: NodeId, is: NodeId, class: NodeId) -> Self {
        Domain {
            name,
            pred,
            is,
            class,
        }
    }
}

impl Rule for Domain {
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(vec![self.pred])
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn definition(&self) -> &'static str {
        "(x P y) ⊢ (x IS c)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![self.pred])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![self.is])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == self.pred {
                out.push(Triple::new(t.s, self.is, self.class));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (x IS c) ⇐ ∃y: (x P y).
        Some(
            t.p == self.is
                && t.o == self.class
                && store.objects_with(self.pred, t.s).next().is_some(),
        )
    }

    /// `pred` is subject-local (the membership shape): a `pred`-delta
    /// emits at its own subject, and `derives((x IS c))` reads the `pred`
    /// partition only at subject `x` — every maintenance step stays on
    /// the seed's subject.
    fn subject_local_inputs(&self) -> Vec<NodeId> {
        vec![self.pred]
    }
}

/// `(x P y) ⊢ (y IS c)` — range typing over a configurable property (the
/// generic `PRP-RNG` for one known property/class pair).
///
/// Unlike [`Domain`], `pred` is **not** subject-local and must not be
/// declared: a `(x P y)` delta emits at the triple's *object* `y`, and
/// `derives((y IS c))` reads the `pred` partition by object
/// (`subjects_with(pred, y)`) — both cross subjects, so a deletion whose
/// affected closure reaches `pred` through this rule correctly disables
/// sub-splitting.
#[derive(Debug, Clone, Copy)]
pub struct Range {
    name: &'static str,
    pred: NodeId,
    is: NodeId,
    class: NodeId,
}

impl Range {
    /// A range rule typing objects of `pred` as `class` members via the
    /// `is` membership predicate, reported as `name`.
    pub fn new(name: &'static str, pred: NodeId, is: NodeId, class: NodeId) -> Self {
        Range {
            name,
            pred,
            is,
            class,
        }
    }
}

impl Rule for Range {
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(vec![self.pred])
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn definition(&self) -> &'static str {
        "(x P y) ⊢ (y IS c)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![self.pred])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![self.is])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == self.pred {
                out.push(Triple::new(t.o, self.is, self.class));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (y IS c) ⇐ ∃x: (x P y).
        Some(
            t.p == self.is
                && t.o == self.class
                && store.subjects_with(self.pred, t.s).next().is_some(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ruleset::Ruleset;
    use crate::DependencyGraph;
    use slider_store::VerticalStore;

    fn n(v: u64) -> NodeId {
        NodeId(v)
    }
    const P: NodeId = NodeId(100);
    const IS: NodeId = NodeId(101);

    fn family() -> Ruleset {
        Ruleset::custom("family")
            .with(Transitive::new("TRANS", P))
            .with(Subsumption::new("SUB", IS, P))
    }

    #[test]
    fn transitive_closes_chains() {
        use slider_baseline_free_closure::closure;
        let input: Vec<Triple> = (1..5).map(|i| Triple::new(n(i), P, n(i + 1))).collect();
        let store = closure(&family(), &input);
        assert!(store.contains(Triple::new(n(1), P, n(4))));
        // C(4,2) = 6 chain pairs… plus the membership rule derives nothing.
        assert_eq!(store.len(), 4 + 3 + 2 + 1);
    }

    #[test]
    fn subsumption_propagates_membership() {
        use slider_baseline_free_closure::closure;
        let input = vec![
            Triple::new(n(1), P, n(2)),
            Triple::new(n(2), P, n(3)),
            Triple::new(n(9), IS, n(1)),
        ];
        let store = closure(&family(), &input);
        for c in 1..=3 {
            assert!(store.contains(Triple::new(n(9), IS, n(c))), "IS {c}");
        }
    }

    /// `derives` agrees with one-step `apply` over a probe universe.
    #[test]
    fn derives_matches_one_step_apply() {
        let store: VerticalStore = [
            Triple::new(n(1), P, n(2)),
            Triple::new(n(2), P, n(3)),
            Triple::new(n(9), IS, n(1)),
        ]
        .into_iter()
        .collect();
        let all: Vec<Triple> = store.iter().collect();
        for rule in family().rules() {
            let mut out = Vec::new();
            rule.apply(&store.view(), &all, &mut out);
            out.sort_unstable();
            out.dedup();
            for s in 1..10u64 {
                for p in [P, IS, n(77)] {
                    for o in 1..10u64 {
                        let probe = Triple::new(n(s), p, n(o));
                        assert_eq!(
                            rule.derives(&store.view(), probe),
                            Some(out.binary_search(&probe).is_ok()),
                            "{}: derives disagrees with apply on {probe:?}",
                            rule.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn domain_types_subjects_range_types_objects() {
        use slider_baseline_free_closure::closure;
        let rs = Ruleset::custom("typing")
            .with(Domain::new("DOM", P, IS, n(7)))
            .with(Range::new("RNG", P, IS, n(8)));
        let store = closure(&rs, &[Triple::new(n(1), P, n(2))]);
        assert!(store.contains(Triple::new(n(1), IS, n(7))));
        assert!(store.contains(Triple::new(n(2), IS, n(8))));
        assert_eq!(store.len(), 3);
    }

    /// `derives` agrees with one-step `apply` for the typing rules too.
    #[test]
    fn domain_range_derives_match_one_step_apply() {
        let store: VerticalStore = [
            Triple::new(n(1), P, n(2)),
            Triple::new(n(3), P, n(2)),
            Triple::new(n(9), IS, n(7)),
        ]
        .into_iter()
        .collect();
        let all: Vec<Triple> = store.iter().collect();
        let rules: Vec<Box<dyn Rule>> = vec![
            Box::new(Domain::new("DOM", P, IS, n(7))),
            Box::new(Range::new("RNG", P, IS, n(8))),
        ];
        for rule in &rules {
            let mut out = Vec::new();
            rule.apply(&store.view(), &all, &mut out);
            out.sort_unstable();
            out.dedup();
            for s in 1..10u64 {
                for p in [P, IS, n(77)] {
                    for o in 1..10u64 {
                        let probe = Triple::new(n(s), p, n(o));
                        assert_eq!(
                            rule.derives(&store.view(), probe),
                            Some(out.binary_search(&probe).is_ok()),
                            "{}: derives disagrees with apply on {probe:?}",
                            rule.name()
                        );
                    }
                }
            }
        }
    }

    /// The membership-shaped typing family sub-splits on fact bursts:
    /// `Domain` declares its fact input subject-local, so the affected
    /// closure {P, IS} passes the gate; `Range` (object-emitting) does
    /// not declare it and correctly disqualifies the plan; schema-edge
    /// seeds disqualify through `Subsumption` as before.
    #[test]
    fn domain_bursts_qualify_for_subsplit_range_disqualifies() {
        const SUB: NodeId = NodeId(102);
        let local = Ruleset::custom("dom-family")
            .with(Domain::new("DOM", P, IS, n(7)))
            .with(Subsumption::new("SUB", IS, SUB));
        let g = DependencyGraph::build(&local);
        let c = g.component_of(0);
        assert_eq!(g.component_of(1), c, "one family");
        assert_eq!(g.subsplit_affected(c, &[P]), Some(vec![P, IS]));
        assert_eq!(g.subsplit_affected(c, &[IS]), Some(vec![IS]));
        assert_eq!(g.subsplit_affected(c, &[SUB]), None, "schema seeds");
        let with_range = Ruleset::custom("dom-rng-family")
            .with(Domain::new("DOM", P, IS, n(7)))
            .with(Range::new("RNG", P, IS, n(8)))
            .with(Subsumption::new("SUB", IS, SUB));
        let g2 = DependencyGraph::build(&with_range);
        let c2 = g2.component_of(0);
        assert_eq!(
            g2.subsplit_affected(c2, &[P]),
            None,
            "Range's object emission crosses subjects"
        );
    }

    #[test]
    fn families_partition_the_graph() {
        let rs = Ruleset::custom("two-families")
            .with(Transitive::new("T-A", n(100)))
            .with(Subsumption::new("S-A", n(101), n(100)))
            .with(Transitive::new("T-B", n(200)))
            .with(Subsumption::new("S-B", n(201), n(200)));
        let g = DependencyGraph::build(&rs);
        assert_eq!(g.partition_count(), 2);
        assert_eq!(g.component_of(0), g.component_of(1));
        assert_eq!(g.component_of(2), g.component_of(3));
        assert_ne!(g.component_of(0), g.component_of(2));
        // Predicate → owning component, in both consumer and emitter roles.
        assert_eq!(g.component_of_predicate(n(100)), Some(g.component_of(0)));
        assert_eq!(g.component_of_predicate(n(201)), Some(g.component_of(2)));
        assert_eq!(g.component_of_predicate(n(999)), None, "inert predicate");
        // Owned predicate lists are exactly the family vocabularies.
        assert_eq!(
            g.component_predicates(g.component_of(0)),
            Some([n(100), n(101)].as_slice())
        );
        assert_eq!(
            g.component_predicates(g.component_of(2)),
            Some([n(200), n(201)].as_slice())
        );
    }

    /// Minimal fixpoint helper for these tests (the real baselines live in
    /// `slider-baseline`, which depends on this crate).
    mod slider_baseline_free_closure {
        use super::*;

        pub fn closure(rs: &Ruleset, input: &[Triple]) -> VerticalStore {
            let mut store: VerticalStore = input.iter().copied().collect();
            let mut delta: Vec<Triple> = input.to_vec();
            let mut out = Vec::new();
            let mut fresh = Vec::new();
            while !delta.is_empty() {
                out.clear();
                for rule in rs.rules() {
                    rule.apply(&store.view(), &delta, &mut out);
                }
                fresh.clear();
                store.insert_batch(&out, &mut fresh);
                delta = fresh.clone();
            }
            store
        }
    }
}
