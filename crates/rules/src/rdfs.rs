//! The RDFS extension rules: structural entailment beyond ρdf.
//!
//! Together with the ρdf rules these form the paper's "RDFS" fragment.
//! Rule names follow the W3C RDF Semantics entailment rules (rdfs1–rdfs13);
//! the ρdf rules already cover rdfs2/3/5/7/9/11 (as PRP-DOM, PRP-RNG,
//! SCM-SPO, PRP-SPO1, CAX-SCO, SCM-SCO).
//!
//! ## Generalised-RDF note (rdfs1, rdfs4b)
//!
//! W3C rdfs1 introduces a fresh blank node per literal; like other
//! materialisation engines we instead emit the *generalised* triple
//! `(lit rdf:type rdfs:Literal)` with the literal itself in subject
//! position — deterministic and loss-free. rdfs4b skips literal objects by
//! default (so the closure remains valid RDF); both behaviours are
//! configurable through [`RdfsConfig`](crate::RdfsConfig).

use crate::rule::{InputFilter, OutputSignature, Rule};
use slider_model::vocab::{
    RDFS_CLASS, RDFS_CONTAINER_MEMBERSHIP_PROPERTY, RDFS_DATATYPE, RDFS_LITERAL, RDFS_MEMBER,
    RDFS_RESOURCE, RDFS_SUB_CLASS_OF, RDFS_SUB_PROPERTY_OF, RDF_PROPERTY, RDF_TYPE,
};
use slider_model::{Dictionary, NodeId, Triple};
use slider_store::StoreView;
use std::sync::Arc;

/// `rdfs1`: `(x p l), l is a literal ⊢ (l type Literal)` *(generalised)*.
pub struct Rdfs1 {
    dict: Arc<Dictionary>,
}

impl Rdfs1 {
    /// Builds the rule; it needs the dictionary to classify term kinds.
    pub fn new(dict: Arc<Dictionary>) -> Self {
        Rdfs1 { dict }
    }
}

impl Rule for Rdfs1 {
    // Delta-only: `apply` never queries the store.
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(Vec::new())
    }

    fn name(&self) -> &'static str {
        "RDFS1"
    }

    fn definition(&self) -> &'static str {
        "(x p l), l literal ⊢ (l type Literal)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDF_TYPE])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        // One guard for the whole batch (hot path — see Dictionary::kinds).
        let kinds = self.dict.kinds();
        for &t in delta {
            if kinds.is_literal(t.o) {
                out.push(Triple::new(t.o, RDF_TYPE, RDFS_LITERAL));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (l type Literal) ⇐ l is a literal ∧ ∃p: (_ p l).
        Some(
            t.p == RDF_TYPE
                && t.o == RDFS_LITERAL
                && self.dict.is_literal(t.s)
                && store
                    .predicates()
                    .any(|p| store.subjects_with(p, t.s).next().is_some()),
        )
    }
}

/// `rdfs4a`: `(x p y) ⊢ (x type Resource)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rdfs4a;

impl Rule for Rdfs4a {
    // Delta-only: `apply` never queries the store.
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(Vec::new())
    }

    fn name(&self) -> &'static str {
        "RDFS4A"
    }

    fn definition(&self) -> &'static str {
        "(x p y) ⊢ (x type Resource)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDF_TYPE])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            out.push(Triple::new(t.s, RDF_TYPE, RDFS_RESOURCE));
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (x type Resource) ⇐ ∃p: (x p _).
        Some(
            t.p == RDF_TYPE
                && t.o == RDFS_RESOURCE
                && store
                    .predicates()
                    .any(|p| store.objects_with(p, t.s).next().is_some()),
        )
    }
}

/// `rdfs4b`: `(x p y) ⊢ (y type Resource)` — literal objects skipped unless
/// configured otherwise (see module docs).
pub struct Rdfs4b {
    dict: Arc<Dictionary>,
    include_literals: bool,
}

impl Rdfs4b {
    /// Standard behaviour: literal objects are not typed.
    pub fn new(dict: Arc<Dictionary>) -> Self {
        Rdfs4b {
            dict,
            include_literals: false,
        }
    }

    /// Generalised behaviour: also type literal objects as Resources.
    pub fn with_literals(dict: Arc<Dictionary>) -> Self {
        Rdfs4b {
            dict,
            include_literals: true,
        }
    }
}

impl Rule for Rdfs4b {
    // Delta-only: `apply` never queries the store.
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(Vec::new())
    }

    fn name(&self) -> &'static str {
        "RDFS4B"
    }

    fn definition(&self) -> &'static str {
        "(x p y) ⊢ (y type Resource)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Universal
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDF_TYPE])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        let kinds = self.dict.kinds();
        for &t in delta {
            if self.include_literals || !kinds.is_literal(t.o) {
                out.push(Triple::new(t.o, RDF_TYPE, RDFS_RESOURCE));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        // (y type Resource) ⇐ ∃p: (_ p y), with the literal gate.
        Some(
            t.p == RDF_TYPE
                && t.o == RDFS_RESOURCE
                && (self.include_literals || !self.dict.is_literal(t.s))
                && store
                    .predicates()
                    .any(|p| store.subjects_with(p, t.s).next().is_some()),
        )
    }
}

/// `rdfs6`: `(p type Property) ⊢ (p subPropertyOf p)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rdfs6;

impl Rule for Rdfs6 {
    // Delta-only: `apply` never queries the store.
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(Vec::new())
    }

    fn name(&self) -> &'static str {
        "RDFS6"
    }

    fn definition(&self) -> &'static str {
        "(p type Property) ⊢ (p subPropertyOf p)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![RDF_TYPE])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_SUB_PROPERTY_OF])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDF_TYPE && t.o == RDF_PROPERTY {
                out.push(Triple::new(t.s, RDFS_SUB_PROPERTY_OF, t.s));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        Some(
            t.p == RDFS_SUB_PROPERTY_OF
                && t.s == t.o
                && store.contains(Triple::new(t.s, RDF_TYPE, RDF_PROPERTY)),
        )
    }
}

/// `rdfs8`: `(c type Class) ⊢ (c subClassOf Resource)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rdfs8;

impl Rule for Rdfs8 {
    // Delta-only: `apply` never queries the store.
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(Vec::new())
    }

    fn name(&self) -> &'static str {
        "RDFS8"
    }

    fn definition(&self) -> &'static str {
        "(c type Class) ⊢ (c subClassOf Resource)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![RDF_TYPE])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_SUB_CLASS_OF])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDF_TYPE && t.o == RDFS_CLASS {
                out.push(Triple::new(t.s, RDFS_SUB_CLASS_OF, RDFS_RESOURCE));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        Some(
            t.p == RDFS_SUB_CLASS_OF
                && t.o == RDFS_RESOURCE
                && store.contains(Triple::new(t.s, RDF_TYPE, RDFS_CLASS)),
        )
    }
}

/// `rdfs10`: `(c type Class) ⊢ (c subClassOf c)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rdfs10;

impl Rule for Rdfs10 {
    // Delta-only: `apply` never queries the store.
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(Vec::new())
    }

    fn name(&self) -> &'static str {
        "RDFS10"
    }

    fn definition(&self) -> &'static str {
        "(c type Class) ⊢ (c subClassOf c)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![RDF_TYPE])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_SUB_CLASS_OF])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDF_TYPE && t.o == RDFS_CLASS {
                out.push(Triple::new(t.s, RDFS_SUB_CLASS_OF, t.s));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        Some(
            t.p == RDFS_SUB_CLASS_OF
                && t.s == t.o
                && store.contains(Triple::new(t.s, RDF_TYPE, RDFS_CLASS)),
        )
    }
}

/// `rdfs12`: `(p type ContainerMembershipProperty) ⊢ (p subPropertyOf member)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rdfs12;

impl Rule for Rdfs12 {
    // Delta-only: `apply` never queries the store.
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(Vec::new())
    }

    fn name(&self) -> &'static str {
        "RDFS12"
    }

    fn definition(&self) -> &'static str {
        "(p type ContainerMembershipProperty) ⊢ (p subPropertyOf member)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![RDF_TYPE])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_SUB_PROPERTY_OF])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDF_TYPE && t.o == RDFS_CONTAINER_MEMBERSHIP_PROPERTY {
                out.push(Triple::new(t.s, RDFS_SUB_PROPERTY_OF, RDFS_MEMBER));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        Some(
            t.p == RDFS_SUB_PROPERTY_OF
                && t.o == RDFS_MEMBER
                && store.contains(Triple::new(
                    t.s,
                    RDF_TYPE,
                    RDFS_CONTAINER_MEMBERSHIP_PROPERTY,
                )),
        )
    }
}

/// `rdfs13`: `(d type Datatype) ⊢ (d subClassOf Literal)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rdfs13;

impl Rule for Rdfs13 {
    // Delta-only: `apply` never queries the store.
    fn read_predicates(&self) -> Option<Vec<NodeId>> {
        Some(Vec::new())
    }

    fn name(&self) -> &'static str {
        "RDFS13"
    }

    fn definition(&self) -> &'static str {
        "(d type Datatype) ⊢ (d subClassOf Literal)"
    }

    fn input_filter(&self) -> InputFilter {
        InputFilter::Predicates(vec![RDF_TYPE])
    }

    fn output_signature(&self) -> OutputSignature {
        OutputSignature::Predicates(vec![RDFS_SUB_CLASS_OF])
    }

    fn apply(&self, _store: &StoreView, delta: &[Triple], out: &mut Vec<Triple>) {
        for &t in delta {
            if t.p == RDF_TYPE && t.o == RDFS_DATATYPE {
                out.push(Triple::new(t.s, RDFS_SUB_CLASS_OF, RDFS_LITERAL));
            }
        }
    }

    fn derives(&self, store: &StoreView, t: Triple) -> Option<bool> {
        Some(
            t.p == RDFS_SUB_CLASS_OF
                && t.o == RDFS_LITERAL
                && store.contains(Triple::new(t.s, RDF_TYPE, RDFS_DATATYPE)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::Term;
    use slider_store::VerticalStore;

    fn n(v: u64) -> NodeId {
        NodeId(1000 + v)
    }

    fn run(rule: &dyn Rule, delta: &[Triple]) -> Vec<Triple> {
        let store: VerticalStore = delta.iter().copied().collect();
        let mut out = Vec::new();
        rule.apply(&store.view(), delta, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn rdfs1_types_literals_generalised() {
        let dict = Arc::new(Dictionary::new());
        let lit = dict.intern(&Term::literal("hello"));
        let iri = dict.intern(&Term::iri("http://e/o"));
        let rule = Rdfs1::new(Arc::clone(&dict));
        let got = run(
            &rule,
            &[Triple::new(n(1), n(2), lit), Triple::new(n(1), n(2), iri)],
        );
        assert_eq!(got, vec![Triple::new(lit, RDF_TYPE, RDFS_LITERAL)]);
    }

    #[test]
    fn rdfs4a_types_all_subjects() {
        let got = run(
            &Rdfs4a,
            &[Triple::new(n(1), n(2), n(3)), Triple::new(n(4), n(5), n(6))],
        );
        assert_eq!(
            got,
            vec![
                Triple::new(n(1), RDF_TYPE, RDFS_RESOURCE),
                Triple::new(n(4), RDF_TYPE, RDFS_RESOURCE),
            ]
        );
    }

    #[test]
    fn rdfs4b_skips_literals_by_default() {
        let dict = Arc::new(Dictionary::new());
        let lit = dict.intern(&Term::literal("x"));
        let iri = dict.intern(&Term::iri("http://e/o"));
        let rule = Rdfs4b::new(Arc::clone(&dict));
        let got = run(
            &rule,
            &[Triple::new(n(1), n(2), lit), Triple::new(n(1), n(2), iri)],
        );
        assert_eq!(got, vec![Triple::new(iri, RDF_TYPE, RDFS_RESOURCE)]);

        let rule = Rdfs4b::with_literals(dict);
        let got = run(&rule, &[Triple::new(n(1), n(2), lit)]);
        assert_eq!(got, vec![Triple::new(lit, RDF_TYPE, RDFS_RESOURCE)]);
    }

    #[test]
    fn rdfs6_reflexive_subproperty() {
        let got = run(&Rdfs6, &[Triple::new(n(1), RDF_TYPE, RDF_PROPERTY)]);
        assert_eq!(got, vec![Triple::new(n(1), RDFS_SUB_PROPERTY_OF, n(1))]);
        assert!(run(&Rdfs6, &[Triple::new(n(1), RDF_TYPE, RDFS_CLASS)]).is_empty());
    }

    #[test]
    fn rdfs8_and_10_on_classes() {
        let c = Triple::new(n(1), RDF_TYPE, RDFS_CLASS);
        assert_eq!(
            run(&Rdfs8, &[c]),
            vec![Triple::new(n(1), RDFS_SUB_CLASS_OF, RDFS_RESOURCE)]
        );
        assert_eq!(
            run(&Rdfs10, &[c]),
            vec![Triple::new(n(1), RDFS_SUB_CLASS_OF, n(1))]
        );
        // Non-class typing triggers neither.
        let p = Triple::new(n(1), RDF_TYPE, RDF_PROPERTY);
        assert!(run(&Rdfs8, &[p]).is_empty());
        assert!(run(&Rdfs10, &[p]).is_empty());
    }

    #[test]
    fn rdfs12_container_membership() {
        let got = run(
            &Rdfs12,
            &[Triple::new(
                n(1),
                RDF_TYPE,
                RDFS_CONTAINER_MEMBERSHIP_PROPERTY,
            )],
        );
        assert_eq!(
            got,
            vec![Triple::new(n(1), RDFS_SUB_PROPERTY_OF, RDFS_MEMBER)]
        );
    }

    #[test]
    fn rdfs13_datatypes() {
        let got = run(&Rdfs13, &[Triple::new(n(1), RDF_TYPE, RDFS_DATATYPE)]);
        assert_eq!(
            got,
            vec![Triple::new(n(1), RDFS_SUB_CLASS_OF, RDFS_LITERAL)]
        );
    }

    #[test]
    fn structural_rules_are_type_filtered() {
        for rule in [&Rdfs6 as &dyn Rule, &Rdfs8, &Rdfs10, &Rdfs12, &Rdfs13] {
            assert_eq!(
                rule.input_filter(),
                InputFilter::Predicates(vec![RDF_TYPE]),
                "{}",
                rule.name()
            );
        }
    }
}
