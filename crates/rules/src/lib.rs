//! Inference rules for the Slider reasoner.
//!
//! Slider is *fragment agnostic* (paper §1): a fragment is just a set of
//! rules implementing the [`Rule`] trait, and the reasoner wires them
//! together at initialisation time through the [`DependencyGraph`]
//! (paper §2.3, Figure 2).
//!
//! This crate ships the two fragments the paper supports natively:
//!
//! * **ρdf** ([`Ruleset::rho_df`]) — the minimal RDFS fragment of Muñoz,
//!   Pérez & Gutierrez, as the eight rules of the paper's Figure 2:
//!   `CAX-SCO`, `SCM-SCO`, `SCM-SPO`, `SCM-DOM2`, `SCM-RNG2`, `PRP-DOM`,
//!   `PRP-RNG`, `PRP-SPO1` (OWL 2 RL rule names, after Motik et al.);
//! * **RDFS** ([`Ruleset::rdfs`]) — ρdf plus the structural RDFS entailment
//!   rules rdfs1, rdfs4a, rdfs4b, rdfs6, rdfs8, rdfs10, rdfs12, rdfs13.
//!
//! Custom rules plug in exactly like the built-ins (the paper exposes Java
//! interfaces for this; here it is the [`Rule`] trait — see
//! `examples/custom_rule.rs`).
//!
//! ## Rule application contract
//!
//! [`Rule::apply`] is *semi-naive*: it joins a `delta` of newly added
//! triples against the full store, in both directions (paper Algorithm 1).
//! The caller guarantees `delta ⊆ store` — incoming triples are inserted
//! into the store *before* being dispatched (Figure 1) — which makes the
//! two one-sided joins cover the `delta × delta` case as well.
//!
//! ## Example
//!
//! Build the ρdf fragment and inspect its dependency graph (the paper's
//! Figure 2): `SCM-SCO` produces `subClassOf` triples, which `CAX-SCO`
//! consumes, so the graph has that edge:
//!
//! ```
//! use slider_rules::{DependencyGraph, Ruleset};
//!
//! let rho = Ruleset::rho_df();
//! assert_eq!(rho.len(), 8);
//!
//! let graph = DependencyGraph::build(&rho);
//! assert_eq!(graph.len(), 8);
//! assert!(graph.has_edge_named("SCM-SCO", "CAX-SCO"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod axioms;
mod generic;
mod graph;
mod rdfs;
mod rdfs_plus;
mod rho_df;
mod rule;
mod ruleset;

pub use axioms::axiomatic_triples;
pub use generic::{Domain, Range, Subsumption, Transitive};
pub use graph::DependencyGraph;
pub use rdfs::{Rdfs1, Rdfs10, Rdfs12, Rdfs13, Rdfs4a, Rdfs4b, Rdfs6, Rdfs8};
pub use rdfs_plus::{
    EqRepO, EqRepP, EqRepS, EqSym, EqTrans, PrpFp, PrpIfp, PrpInv, PrpSymp, PrpTrp, ScmEqc, ScmEqp,
};
pub use rho_df::{CaxSco, PrpDom, PrpRng, PrpSpo1, ScmDom2, ScmRng2, ScmSco, ScmSpo};
pub use rule::{InputFilter, OutputSignature, Rule};
pub use ruleset::{Fragment, RdfsConfig, Ruleset};
