//! The demo's tuning parameters (§4): buffer size and timeout sweeps.
//!
//! "Three additional parameters can be adjusted … the size of the buffers,
//! which determines how many triples are needed to fire a new rule
//! execution; and the timeout, which defines after how long an inactive
//! buffer is forced to flush."

use criterion::{criterion_group, BenchmarkId, Criterion};
use slider_bench::report::{BenchReport, Cell};
use slider_bench::{generate_ntriples, run_slider};
use slider_core::SliderConfig;
use slider_rules::Fragment;
use slider_workloads::PaperOntology;
use std::time::Duration;

fn buffer_size_sweep(c: &mut Criterion) {
    let text = generate_ntriples(PaperOntology::Bsbm100k, 0.05); // ~5k triples
    let mut group = c.benchmark_group("buffer_params/buffer_size");
    group.sample_size(10);
    for capacity in [1usize, 10, 100, 1_000, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    run_slider(
                        &text,
                        Fragment::RhoDf,
                        SliderConfig::default().with_buffer_capacity(cap),
                    )
                })
            },
        );
    }
    group.finish();
}

fn timeout_sweep(c: &mut Criterion) {
    let text = generate_ntriples(PaperOntology::Bsbm100k, 0.05);
    let mut group = c.benchmark_group("buffer_params/timeout");
    group.sample_size(10);
    let timeouts: [(&str, Option<Duration>); 4] = [
        ("1ms", Some(Duration::from_millis(1))),
        ("10ms", Some(Duration::from_millis(10))),
        ("100ms", Some(Duration::from_millis(100))),
        ("none", None),
    ];
    for (label, timeout) in timeouts {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &timeout,
            |b, timeout| {
                b.iter(|| {
                    run_slider(
                        &text,
                        Fragment::RhoDf,
                        SliderConfig::default().with_timeout(*timeout),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(buffer_params, buffer_size_sweep, timeout_sweep);

/// Custom harness entry: run the criterion groups, then emit the shim's
/// collected summaries as a `slider_bench::report` trajectory via
/// `cargo bench --bench buffer_params -- --json <path>`.
fn main() {
    buffer_params();
    let Some(path) = slider_bench::report::json_arg() else {
        return;
    };
    let mut report = BenchReport::new(
        "buffer_params_criterion",
        "BSBM_100k @ 0.05 ingest under buffer-size and timeout sweeps",
    )
    .best_of(1);
    for s in criterion::take_summaries() {
        report.push(
            Cell::new(&s.label)
                .param("samples", s.samples)
                .metric("min_ms", s.min.as_secs_f64() * 1e3)
                .metric("mean_ms", s.mean.as_secs_f64() * 1e3)
                .metric("max_ms", s.max.as_secs_f64() * 1e3),
        );
    }
    report.write(&path).expect("bench trajectory written");
}
