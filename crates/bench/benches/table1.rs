//! Criterion version of the Table 1 comparison, on scaled-down ontologies
//! (one representative per family) so `cargo bench` stays tractable. The
//! `table1` *binary* produces the full 13-row table.

use criterion::{criterion_group, BenchmarkId, Criterion};
use slider_bench::report::{BenchReport, Cell};
use slider_bench::{generate_ntriples, run_baseline, run_slider};
use slider_core::SliderConfig;
use slider_rules::Fragment;
use slider_workloads::PaperOntology;

const SCALE: f64 = 0.01; // BSBM_100k → ~1k triples etc.

fn bench_family(c: &mut Criterion, ontology: PaperOntology, scale: f64) {
    let text = generate_ntriples(ontology, scale);
    let mut group = c.benchmark_group(format!("table1/{}", ontology.name()));
    group.sample_size(10);
    for fragment in [Fragment::RhoDf, Fragment::Rdfs] {
        group.bench_with_input(
            BenchmarkId::new("baseline", fragment.name()),
            &fragment,
            |b, &fragment| b.iter(|| run_baseline(&text, fragment)),
        );
        group.bench_with_input(
            BenchmarkId::new("slider", fragment.name()),
            &fragment,
            |b, &fragment| b.iter(|| run_slider(&text, fragment, SliderConfig::default())),
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_family(c, PaperOntology::Bsbm100k, SCALE * 5.0); // ~5k triples
    bench_family(c, PaperOntology::Wikipedia, SCALE);
    bench_family(c, PaperOntology::Wordnet, SCALE);
    bench_family(c, PaperOntology::SubClassOf100, 1.0);
}

criterion_group!(table1, benches);

/// Custom harness entry: run the criterion group, then emit the shim's
/// collected summaries as a `slider_bench::report` trajectory via
/// `cargo bench --bench table1 -- --json <path>`.
fn main() {
    table1();
    let Some(path) = slider_bench::report::json_arg() else {
        return;
    };
    let mut report = BenchReport::new(
        "table1_criterion",
        "scaled-down ontology ingest, baseline vs slider per fragment",
    )
    .best_of(1);
    for s in criterion::take_summaries() {
        report.push(
            Cell::new(&s.label)
                .param("samples", s.samples)
                .metric("min_ms", s.min.as_secs_f64() * 1e3)
                .metric("mean_ms", s.mean.as_secs_f64() * 1e3)
                .metric("max_ms", s.max.as_secs_f64() * 1e3),
        );
    }
    report.write(&path).expect("bench trajectory written");
}
