//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **object index** — §2.2's "multiple indexing (on predicates, subjects
//!   and objects)": with the object index off, `(p, ?, o)` lookups scan the
//!   partition;
//! * **pool size** — §1's "multiple instances of same rule to run in
//!   parallel": worker count 1 vs N;
//! * **duplicate limitation** — Slider's distributor-level dedup vs the
//!   naive baseline's re-derivation, measured on the subsumption chains the
//!   paper designed for exactly this comparison.

use criterion::{criterion_group, BenchmarkId, Criterion};
use slider_bench::report::{BenchReport, Cell};
use slider_bench::{generate_ntriples, run_baseline, run_slider};
use slider_core::SliderConfig;
use slider_rules::Fragment;
use slider_workloads::PaperOntology;

fn object_index(c: &mut Criterion) {
    // Wikipedia is CAX-SCO-heavy: the `(type, ?, class)` lookups need the
    // object index.
    let text = generate_ntriples(PaperOntology::Wikipedia, 0.01);
    let mut group = c.benchmark_group("ablation/object_index");
    group.sample_size(10);
    for (label, enabled) in [("on", true), ("off", false)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &enabled,
            |b, &enabled| {
                b.iter(|| {
                    run_slider(
                        &text,
                        Fragment::RhoDf,
                        SliderConfig::default().with_object_index(enabled),
                    )
                })
            },
        );
    }
    group.finish();
}

fn pool_size(c: &mut Criterion) {
    let text = generate_ntriples(PaperOntology::Bsbm100k, 0.05);
    let mut group = c.benchmark_group("ablation/pool_size");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                run_slider(
                    &text,
                    Fragment::Rdfs,
                    SliderConfig::default().with_workers(w),
                )
            })
        });
    }
    group.finish();
}

fn duplicate_limitation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/duplicate_limitation");
    group.sample_size(10);
    for n in [100usize, 200] {
        let ontology = if n == 100 {
            PaperOntology::SubClassOf100
        } else {
            PaperOntology::SubClassOf200
        };
        let text = generate_ntriples(ontology, 1.0);
        group.bench_with_input(BenchmarkId::new("slider_dedup", n), &text, |b, text| {
            b.iter(|| run_slider(text, Fragment::RhoDf, SliderConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("naive_rederive", n), &text, |b, text| {
            b.iter(|| run_baseline(text, Fragment::RhoDf))
        });
    }
    group.finish();
}

fn adaptive_scheduling(c: &mut Criterion) {
    // The §5 future-work extension: run-time dynamic plans vs static
    // buffer capacities, on the duplicate-heavy chain workload where
    // retuning has the most to gain.
    let text = generate_ntriples(PaperOntology::SubClassOf200, 1.0);
    let mut group = c.benchmark_group("ablation/adaptive_scheduling");
    group.sample_size(10);
    for (label, adaptive) in [("static", false), ("adaptive", true)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &adaptive,
            |b, &adaptive| {
                b.iter(|| {
                    run_slider(
                        &text,
                        Fragment::RhoDf,
                        SliderConfig::default()
                            .with_buffer_capacity(64)
                            .with_adaptive_buffers(adaptive),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    ablation,
    object_index,
    pool_size,
    duplicate_limitation,
    adaptive_scheduling
);

/// Custom harness entry: run the criterion groups, then emit the shim's
/// collected summaries as a `slider_bench::report` trajectory via
/// `cargo bench --bench ablation -- --json <path>`.
fn main() {
    ablation();
    let Some(path) = slider_bench::report::json_arg() else {
        return;
    };
    let mut report = BenchReport::new(
        "ablation_criterion",
        "object index / pool size / duplicate limitation / adaptive scheduling ablations",
    )
    .best_of(1);
    for s in criterion::take_summaries() {
        report.push(
            Cell::new(&s.label)
                .param("samples", s.samples)
                .metric("min_ms", s.min.as_secs_f64() * 1e3)
                .metric("mean_ms", s.mean.as_secs_f64() * 1e3)
                .metric("max_ms", s.max.as_secs_f64() * 1e3),
        );
    }
    report.write(&path).expect("bench trajectory written");
}
