//! Microbenchmarks of the substrates: dictionary interning, store insert,
//! indexed pattern lookups, and the N-Triples parser.

use criterion::{criterion_group, BenchmarkId, Criterion};
use slider_bench::report::{BenchReport, Cell};
use slider_model::{Dictionary, NodeId, Term, Triple};
use slider_parser::NTriplesParser;
use slider_store::VerticalStore;
use std::hint::black_box;

fn synthetic_triples(n: u64) -> Vec<Triple> {
    // 16 predicates, subjects/objects spread over n/4 values.
    (0..n)
        .map(|i| {
            Triple::new(
                NodeId(1000 + i % (n / 4 + 1)),
                NodeId(100 + i % 16),
                NodeId(2000 + (i * 7) % (n / 4 + 1)),
            )
        })
        .collect()
}

fn dictionary_intern(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_micro/dictionary");
    group.sample_size(20);
    group.bench_function("intern_10k_fresh", |b| {
        b.iter(|| {
            let dict = Dictionary::new();
            for i in 0..10_000 {
                black_box(dict.intern(&Term::iri(format!("http://example.org/resource/{i}"))));
            }
        })
    });
    group.bench_function("intern_10k_repeat", |b| {
        let dict = Dictionary::new();
        let terms: Vec<Term> = (0..100)
            .map(|i| Term::iri(format!("http://example.org/resource/{i}")))
            .collect();
        b.iter(|| {
            for _ in 0..100 {
                for t in &terms {
                    black_box(dict.intern(t));
                }
            }
        })
    });
    group.finish();
}

fn store_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_micro/insert");
    group.sample_size(20);
    for n in [10_000u64, 100_000] {
        let triples = synthetic_triples(n);
        group.bench_with_input(BenchmarkId::new("fresh", n), &triples, |b, triples| {
            b.iter(|| {
                let mut store = VerticalStore::new();
                for &t in triples {
                    black_box(store.insert(t));
                }
                store.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("duplicate", n), &triples, |b, triples| {
            let mut store = VerticalStore::new();
            for &t in triples {
                store.insert(t);
            }
            b.iter(|| {
                let mut dupes = 0usize;
                for &t in triples {
                    if !store.contains(t) {
                        dupes += 1;
                    }
                }
                black_box(dupes)
            })
        });
    }
    group.finish();
}

fn store_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_micro/lookup");
    group.sample_size(20);
    let triples = synthetic_triples(100_000);
    let store: VerticalStore = triples.iter().copied().collect();
    group.bench_function("objects_with", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..1_000u64 {
                total += store
                    .objects_with(NodeId(100 + i % 16), NodeId(1000 + i))
                    .count();
            }
            black_box(total)
        })
    });
    group.bench_function("subjects_with", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..1_000u64 {
                total += store
                    .subjects_with(NodeId(100 + i % 16), NodeId(2000 + i))
                    .count();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn parser_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_micro/parser");
    group.sample_size(10);
    let mut text = String::new();
    for i in 0..50_000 {
        text.push_str(&format!(
            "<http://example.org/s{i}> <http://example.org/p{}> \"literal value {i}\" .\n",
            i % 10
        ));
    }
    group.bench_function("ntriples_50k_lines", |b| {
        b.iter(|| {
            let n = NTriplesParser::new(text.as_bytes())
                .filter(Result::is_ok)
                .count();
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(
    store_micro,
    dictionary_intern,
    store_insert,
    store_lookup,
    parser_throughput
);

/// Custom harness entry: run the criterion groups, then emit the shim's
/// collected summaries as a `slider_bench::report` trajectory via
/// `cargo bench --bench store_micro -- --json <path>`.
fn main() {
    store_micro();
    let Some(path) = slider_bench::report::json_arg() else {
        return;
    };
    let mut report = BenchReport::new(
        "store_micro_criterion",
        "dictionary interning, store insert, indexed lookups, N-Triples parsing",
    )
    .best_of(1);
    for s in criterion::take_summaries() {
        report.push(
            Cell::new(&s.label)
                .param("samples", s.samples)
                .metric("min_ms", s.min.as_secs_f64() * 1e3)
                .metric("mean_ms", s.mean.as_secs_f64() * 1e3)
                .metric("max_ms", s.max.as_secs_f64() * 1e3),
        );
    }
    report.write(&path).expect("bench trajectory written");
}
