//! Criterion bench: one sliding-window maintenance step — add a batch,
//! retract the expiring batch — under incremental DRed vs recompute.

use criterion::{criterion_group, criterion_main, Criterion};
use slider_baseline::RecomputeOracle;
use slider_core::{Slider, SliderConfig};
use slider_model::vocab::{RDFS_SUB_CLASS_OF, RDF_TYPE};
use slider_model::{Dictionary, NodeId, Triple};
use slider_rules::Ruleset;
use std::hint::black_box;
use std::sync::Arc;

const DEPTH: u64 = 12;
const BATCH: u64 = 100;
const WINDOW: usize = 4;

fn class(d: u64) -> NodeId {
    NodeId(10_000 + d)
}

fn taxonomy() -> Vec<Triple> {
    (0..DEPTH - 1)
        .map(|d| Triple::new(class(d), RDFS_SUB_CLASS_OF, class(d + 1)))
        .collect()
}

fn batch(i: u64) -> Vec<Triple> {
    (0..BATCH)
        .map(|k| Triple::new(NodeId(1_000_000 + i * BATCH + k), RDF_TYPE, class(0)))
        .collect()
}

fn window_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("retraction/window_step");
    group.sample_size(10);

    group.bench_function("slider_dred", |b| {
        b.iter(|| {
            let slider = Slider::new(
                Arc::new(Dictionary::new()),
                Ruleset::rho_df(),
                SliderConfig::batch(),
            );
            slider.materialize(&taxonomy());
            for i in 0..(WINDOW as u64 + 4) {
                slider.add_triples(&batch(i));
                if let Some(j) = i.checked_sub(WINDOW as u64) {
                    slider.remove_triples(&batch(j));
                }
                slider.wait_idle();
            }
            black_box(slider.store().len())
        })
    });

    group.bench_function("recompute_baseline", |b| {
        b.iter(|| {
            let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
            oracle.add(&taxonomy());
            let mut size = 0usize;
            for i in 0..(WINDOW as u64 + 4) {
                oracle.add(&batch(i));
                if let Some(j) = i.checked_sub(WINDOW as u64) {
                    oracle.remove(&batch(j));
                }
                size = oracle.closure().len();
            }
            black_box(size)
        })
    });

    group.finish();
}

criterion_group!(retraction, window_step);
criterion_main!(retraction);
