//! Criterion bench: sliding-window maintenance — add a batch, retract the
//! expiring batch(es) — comparing incremental DRed vs recompute, and
//! per-batch eager DRed vs one coalesced run per step.

use criterion::{criterion_group, criterion_main, Criterion};
use slider_baseline::RecomputeOracle;
use slider_core::{Slider, SliderConfig};
use slider_model::vocab::{RDFS_DOMAIN, RDFS_SUB_CLASS_OF, RDF_TYPE};
use slider_model::{Dictionary, NodeId, Triple};
use slider_rules::Ruleset;
use std::hint::black_box;
use std::sync::Arc;

const DEPTH: u64 = 12;
const BATCH: u64 = 60;
/// Shared subjects observed by every batch (the overlapping downward
/// closure the coalesced mode amortises).
const SHARED: u64 = 120;
const WINDOW: usize = 4;
const STEPS: u64 = WINDOW as u64 + 4;
/// Batches expiring per step in the coalesced-vs-eager comparison (a
/// bursty multi-expiry step).
const CHURN: u64 = 2;

fn class(d: u64) -> NodeId {
    NodeId(10_000 + d)
}

fn obs_pred(i: u64) -> NodeId {
    NodeId(20_000 + i)
}

fn taxonomy() -> Vec<Triple> {
    (0..DEPTH - 1)
        .map(|d| Triple::new(class(d), RDFS_SUB_CLASS_OF, class(d + 1)))
        .chain((0..2 * STEPS).map(|i| Triple::new(obs_pred(i), RDFS_DOMAIN, class(0))))
        .collect()
}

fn batch(i: u64) -> Vec<Triple> {
    (0..BATCH)
        .map(|k| Triple::new(NodeId(1_000_000 + i * BATCH + k), RDF_TYPE, class(0)))
        .chain((0..SHARED).map(|s| {
            Triple::new(
                NodeId(2_000_000 + s),
                obs_pred(i),
                NodeId(3_000_000 + i * 10_000 + s),
            )
        }))
        .collect()
}

fn maintained_slider() -> Slider {
    let config = SliderConfig::batch()
        .with_maintenance_batch(usize::MAX)
        .with_maintenance_max_age(None);
    Slider::new(Arc::new(Dictionary::new()), Ruleset::rho_df(), config)
}

fn window_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("retraction/window_step");
    group.sample_size(10);

    group.bench_function("slider_dred", |b| {
        b.iter(|| {
            let slider = maintained_slider();
            slider.materialize(&taxonomy());
            for i in 0..STEPS {
                slider.add_triples(&batch(i));
                if let Some(j) = i.checked_sub(WINDOW as u64) {
                    slider.remove_triples(&batch(j));
                }
                slider.wait_idle();
            }
            black_box(slider.store().len())
        })
    });

    group.bench_function("recompute_baseline", |b| {
        b.iter(|| {
            let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
            oracle.add(&taxonomy());
            let mut size = 0usize;
            for i in 0..STEPS {
                oracle.add(&batch(i));
                if let Some(j) = i.checked_sub(WINDOW as u64) {
                    oracle.remove(&batch(j));
                }
                size = oracle.closure().len();
            }
            black_box(size)
        })
    });

    group.finish();
}

/// A high-churn step expires `CHURN` batches at once: per-batch eager DRed
/// pays the shared downward closure per batch, the coalesced flush once.
fn coalesced_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("retraction/coalesced_step");
    group.sample_size(10);

    group.bench_function("eager_per_batch", |b| {
        b.iter(|| {
            let slider = maintained_slider();
            slider.materialize(&taxonomy());
            for i in 0..STEPS {
                slider.add_triples(&batch(2 * i));
                slider.add_triples(&batch(2 * i + 1));
                if let Some(j) = i.checked_sub(WINDOW as u64) {
                    for k in 0..CHURN {
                        slider.remove_triples(&batch(2 * j + k));
                    }
                }
                slider.wait_idle();
            }
            black_box(slider.store().len())
        })
    });

    group.bench_function("coalesced_flush", |b| {
        b.iter(|| {
            let slider = maintained_slider();
            slider.materialize(&taxonomy());
            for i in 0..STEPS {
                slider.add_triples(&batch(2 * i));
                slider.add_triples(&batch(2 * i + 1));
                if let Some(j) = i.checked_sub(WINDOW as u64) {
                    for k in 0..CHURN {
                        slider.remove_deferred(&batch(2 * j + k));
                    }
                    slider.flush_maintenance();
                }
                slider.wait_idle();
            }
            black_box(slider.store().len())
        })
    });

    group.finish();
}

criterion_group!(retraction, window_step, coalesced_step);
criterion_main!(retraction);
