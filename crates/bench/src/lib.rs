//! Benchmark harness reproducing the paper's evaluation (§3).
//!
//! The measured pipeline follows the paper exactly: "for both systems …
//! the running times include both parsing and inferencing times". One run =
//! parse N-Triples text → dictionary-encode → materialise, timed end to
//! end.
//!
//! * engine `Baseline` = [`slider_baseline::NaiveReasoner`] (the OWLIM-SE
//!   stand-in — batch fixpoint over the whole store);
//! * engine `Slider` = [`slider_core::Slider`] (buffered incremental).
//!
//! Binaries:
//!
//! * `table1` — regenerates Table 1 (all 13 ontologies × {ρdf, RDFS} ×
//!   {Baseline, Slider}) plus the §3 headline averages;
//! * `figure3` — the same data as inference-time series (Table 1 minus
//!   BSBM_5M, as in the paper's figure), with an ASCII rendering and CSV;
//! * `figure2` — the ρdf rules dependency graph as DOT;
//! * `retraction` — sliding-window streaming with incremental deletion:
//!   eager per-batch DRed vs single-pass coalesced vs partitioned parallel
//!   flushes vs recompute-from-scratch, over the shared [`family`]
//!   workload; `--smoke` runs the tiny CI configuration with per-step
//!   oracle verification (including re-assertions that must cancel
//!   pending retractions).
//!
//! Criterion benches: `table1` (scaled-down row set), `buffer_params`
//! (buffer size / timeout sweeps — the demo's §4 parameters), `ablation`
//! (object index, pool size), `store_micro` (substrate microbenchmarks),
//! `retraction` (one sliding-window maintenance step, both engines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use slider_baseline::NaiveReasoner;
use slider_core::{Slider, SliderConfig};
use slider_model::Dictionary;
use slider_parser::load_ntriples;
use slider_rules::{Fragment, Ruleset};
use slider_workloads::{to_ntriples, PaperOntology};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which engine a measurement used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Batch fixpoint materialiser (the OWLIM-SE stand-in).
    Baseline,
    /// The Slider incremental reasoner.
    Slider,
}

impl EngineKind {
    /// Column label.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Baseline => "baseline",
            EngineKind::Slider => "slider",
        }
    }
}

/// One timed materialisation (parse + inference, as in the paper).
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Input triples parsed (after in-file duplicate removal).
    pub input: usize,
    /// Triples inferred (closure size − input).
    pub inferred: usize,
    /// Wall-clock time, parsing included.
    pub elapsed: Duration,
}

impl RunResult {
    /// Throughput over input triples (the paper reports "up to 36,000
    /// triples/sec").
    pub fn throughput(&self) -> f64 {
        self.input as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Parses `nt_text` and materialises it with the batch baseline.
pub fn run_baseline(nt_text: &str, fragment: Fragment) -> RunResult {
    let start = Instant::now();
    let dict = Arc::new(Dictionary::new());
    let triples = load_ntriples(nt_text.as_bytes(), &dict).expect("generated data parses");
    let ruleset = Ruleset::fragment(fragment, &dict);
    let mut reasoner = NaiveReasoner::new(ruleset);
    // Count distinct inputs: generated data may repeat a triple.
    reasoner.load(&triples);
    let input = reasoner.store().len();
    reasoner.materialize();
    let elapsed = start.elapsed();
    RunResult {
        input,
        inferred: reasoner.store().len() - input,
        elapsed,
    }
}

/// Parses `nt_text` and materialises it with Slider.
///
/// Unlike the batch baseline, Slider is fed *while parsing*: the input
/// manager pushes parser chunks straight into the rule buffers, so parsing
/// and inference overlap on the pool — the paper's "parallelisation of
/// parsing and reasoning process" (§1, Data Stream Support). The batch
/// baseline, like OWLIM, must finish parsing before it can start its
/// fixpoint.
pub fn run_slider(nt_text: &str, fragment: Fragment, config: SliderConfig) -> RunResult {
    const CHUNK: usize = 4096;
    let start = Instant::now();
    let dict = Arc::new(Dictionary::new());
    let ruleset = Ruleset::fragment(fragment, &dict);
    let slider = Slider::new(Arc::clone(&dict), ruleset, config);
    let mut chunk = Vec::with_capacity(CHUNK);
    for t in slider_parser::NTriplesParser::new(nt_text.as_bytes()) {
        chunk.push(dict.encode_triple_owned(t.expect("generated data parses")));
        if chunk.len() == CHUNK {
            slider.add_triples(&chunk);
            chunk.clear();
        }
    }
    slider.add_triples(&chunk);
    slider.wait_idle();
    let elapsed = start.elapsed();
    let stats = slider.stats();
    RunResult {
        input: stats.input_fresh as usize,
        inferred: stats.total_inferred() as usize,
        elapsed,
    }
}

/// One Table 1 cell pair: both engines on one (ontology, fragment) point.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Input size (distinct triples).
    pub input: usize,
    /// Baseline measurement.
    pub baseline: RunResult,
    /// Slider measurement.
    pub slider: RunResult,
}

impl Comparison {
    /// The paper's "Gain" column: `(t_baseline / t_slider − 1) × 100 %`
    /// (e.g. BSBM_100k ρdf: 9.907 s vs 4.636 s → 113.69 %).
    pub fn gain_percent(&self) -> f64 {
        (self.baseline.elapsed.as_secs_f64() / self.slider.elapsed.as_secs_f64().max(1e-9) - 1.0)
            * 100.0
    }
}

/// Runs both engines on one ontology/fragment point.
pub fn compare(nt_text: &str, fragment: Fragment, config: &SliderConfig) -> Comparison {
    let baseline = run_baseline(nt_text, fragment);
    let slider = run_slider(nt_text, fragment, config.clone());
    Comparison {
        input: slider.input,
        baseline,
        slider,
    }
}

/// A full Table 1 row: one ontology, both fragments, both engines.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Ontology name (Table 1 spelling).
    pub ontology: String,
    /// Input size.
    pub input: usize,
    /// ρdf comparison.
    pub rho_df: Comparison,
    /// RDFS comparison.
    pub rdfs: Comparison,
}

/// Generates the N-Triples text for an ontology at `scale`.
pub fn generate_ntriples(ontology: PaperOntology, scale: f64) -> String {
    to_ntriples(&ontology.generate(scale))
}

/// Runs the full Table 1 measurement for one ontology.
pub fn table1_row(ontology: PaperOntology, scale: f64, config: &SliderConfig) -> TableRow {
    let text = generate_ntriples(ontology, scale);
    let rho_df = compare(&text, Fragment::RhoDf, config);
    let rdfs = compare(&text, Fragment::Rdfs, config);
    TableRow {
        ontology: ontology.name().to_owned(),
        input: rho_df.input,
        rho_df,
        rdfs,
    }
}

/// Formats a duration like the paper ("9.907s").
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Renders rows in Table 1's layout.
pub fn render_table(rows: &[TableRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<14} {:>9} | {:>9} {:>10} {:>10} {:>9} | {:>9} {:>10} {:>10} {:>9}",
        "Ontology",
        "Input",
        "Inferred",
        "Baseline",
        "Slider",
        "Gain",
        "Inferred",
        "Baseline",
        "Slider",
        "Gain"
    );
    let _ = writeln!(
        s,
        "{:<14} {:>9} | {:>52} | {:>52}",
        "", "", "rho-df reasoning", "RDFS reasoning"
    );
    let mut rho_gains = Vec::new();
    let mut rdfs_gains = Vec::new();
    for row in rows {
        // Mirror the paper: the wordnet ρdf row is "-" (nothing inferred).
        let rho_gain = if row.rho_df.slider.inferred == 0 && row.rho_df.baseline.inferred == 0 {
            "-".to_owned()
        } else {
            rho_gains.push(row.rho_df.gain_percent());
            format!("{:.2}%", row.rho_df.gain_percent())
        };
        rdfs_gains.push(row.rdfs.gain_percent());
        let _ = writeln!(
            s,
            "{:<14} {:>9} | {:>9} {:>10} {:>10} {:>9} | {:>9} {:>10} {:>10} {:>9}",
            row.ontology,
            row.input,
            row.rho_df.slider.inferred,
            fmt_secs(row.rho_df.baseline.elapsed),
            fmt_secs(row.rho_df.slider.elapsed),
            rho_gain,
            row.rdfs.slider.inferred,
            fmt_secs(row.rdfs.baseline.elapsed),
            fmt_secs(row.rdfs.slider.elapsed),
            format!("{:.2}%", row.rdfs.gain_percent()),
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let rho_avg = avg(&rho_gains);
    let rdfs_avg = avg(&rdfs_gains);
    let _ = writeln!(
        s,
        "{:<24} rho-df average gain: {rho_avg:.2}%   (paper: 106.86%)",
        ""
    );
    let _ = writeln!(
        s,
        "{:<24} RDFS   average gain: {rdfs_avg:.2}%   (paper: 36.08%)",
        ""
    );
    let _ = writeln!(
        s,
        "{:<24} overall average gain: {:.2}%   (paper: 71.47%)",
        "",
        (rho_avg + rdfs_avg) / 2.0
    );
    let peak = rows
        .iter()
        .flat_map(|r| [r.rho_df.slider, r.rdfs.slider])
        .map(|r| r.throughput())
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        s,
        "{:<24} peak Slider throughput: {:.0} triples/sec (paper: up to 36,000)",
        "", peak
    );
    s
}

/// Renders rows as CSV (one line per ontology × fragment × engine).
pub fn render_csv(rows: &[TableRow]) -> String {
    let mut s = String::from("ontology,fragment,engine,input,inferred,seconds,gain_percent\n");
    for row in rows {
        for (frag, cmp) in [("rho-df", &row.rho_df), ("RDFS", &row.rdfs)] {
            for (engine, run) in [("baseline", &cmp.baseline), ("slider", &cmp.slider)] {
                use std::fmt::Write as _;
                let _ = writeln!(
                    s,
                    "{},{},{},{},{},{:.6},{:.2}",
                    row.ontology,
                    frag,
                    engine,
                    run.input,
                    run.inferred,
                    run.elapsed.as_secs_f64(),
                    cmp.gain_percent()
                );
            }
        }
    }
    s
}

/// The multi-family partitioned-maintenance workload, shared by the
/// `retraction` bin and the criterion `retraction/partitioned_flush`
/// group so the CI smoke gate and the microbenchmark measure the same
/// thing.
///
/// Each *family* `f` is an independent rule pair — a
/// [`Transitive`](slider_rules::Transitive) hierarchy over its own
/// predicate plus a [`Subsumption`](slider_rules::Subsumption) membership
/// rule — with a vocabulary disjoint from every other family, so the
/// dependency graph reports one maintenance partition per family and a
/// flush spanning families fans out into parallel DRed passes.
pub mod family {
    use slider_core::{Slider, SliderConfig};
    use slider_model::{Dictionary, NodeId, Triple};
    use slider_rules::{Ruleset, Subsumption, Transitive};
    use std::sync::Arc;

    /// Shape of the workload (stream scheduling stays with the caller).
    #[derive(Debug, Clone, Copy)]
    pub struct FamilyParams {
        /// Independent rule families (= maintenance partitions); at most
        /// [`MAX_FAMILIES`].
        pub families: u64,
        /// Depth of each family's resident class chain.
        pub depth: u64,
        /// Instance-membership triples per family per stream batch.
        pub batch: u64,
        /// Shared subjects every batch of a family re-types (the
        /// overlapping downward closure within the family); 0 disables.
        pub shared: u64,
    }

    /// Upper bound on `families` (rule names are `&'static`).
    pub const MAX_FAMILIES: usize = 8;
    const T_NAMES: [&str; MAX_FAMILIES] = ["T-0", "T-1", "T-2", "T-3", "T-4", "T-5", "T-6", "T-7"];
    const S_NAMES: [&str; MAX_FAMILIES] = ["S-0", "S-1", "S-2", "S-3", "S-4", "S-5", "S-6", "S-7"];

    /// Family `f`'s transitive hierarchy predicate.
    pub fn trans_pred(f: u64) -> NodeId {
        NodeId(50_000 + f * 100)
    }
    /// Family `f`'s membership predicate.
    pub fn is_pred(f: u64) -> NodeId {
        NodeId(50_001 + f * 100)
    }
    /// Class `d` of family `f`'s resident chain.
    pub fn class(f: u64, d: u64) -> NodeId {
        NodeId(10_000 + f * 1_000 + d)
    }
    /// Per-batch leaf class of family `f` (links into the resident chain).
    pub fn batch_leaf(f: u64, i: u64) -> NodeId {
        NodeId(100_000 + f * 10_000 + i)
    }
    /// Shared subject `s` of family `f`.
    pub fn shared_subj(f: u64, s: u64) -> NodeId {
        NodeId(2_000_000 + f * 100_000 + s)
    }

    /// The `families`-partition ruleset: one `Transitive` + `Subsumption`
    /// pair per family, disjoint vocabularies.
    pub fn ruleset(families: u64) -> Ruleset {
        assert!(families as usize <= MAX_FAMILIES);
        let mut rs = Ruleset::custom("families");
        for f in 0..families {
            rs.push(Transitive::new(T_NAMES[f as usize], trans_pred(f)));
            rs.push(Subsumption::new(
                S_NAMES[f as usize],
                is_pred(f),
                trans_pred(f),
            ));
        }
        rs
    }

    /// Resident background: one class chain per family.
    pub fn taxonomy(p: &FamilyParams) -> Vec<Triple> {
        (0..p.families)
            .flat_map(|f| {
                (0..p.depth - 1)
                    .map(move |d| Triple::new(class(f, d), trans_pred(f), class(f, d + 1)))
            })
            .collect()
    }

    /// Stream batch `i`: per family, a fresh leaf class linked into the
    /// chain, `batch` instances and `shared` shared subjects typed at that
    /// leaf. Each membership derives the whole chain of super-memberships;
    /// the shared subjects' derived memberships are supported by *every*
    /// live batch of the family, so retracting one batch overdeletes and
    /// rederives that overlapping closure — per batch in eager mode, once
    /// per flush in the coalesced modes, and once per family-partition
    /// (in parallel) in partitioned mode.
    pub fn batch(p: &FamilyParams, i: u64) -> Vec<Triple> {
        (0..p.families)
            .flat_map(move |f| {
                let leaf = batch_leaf(f, i);
                std::iter::once(Triple::new(leaf, trans_pred(f), class(f, 0)))
                    .chain((0..p.batch).map(move |k| {
                        let inst = NodeId(1_000_000 + f * 100_000 + i * p.batch + k);
                        Triple::new(inst, is_pred(f), leaf)
                    }))
                    .chain(
                        (0..p.shared)
                            .map(move |s| Triple::new(shared_subj(f, s), is_pred(f), leaf)),
                    )
            })
            .collect()
    }

    /// Stream batch `i` of the **single-family membership-burst**
    /// workload: purely `is`-typed triples — `batch` fresh instances at
    /// the chain head plus `shared` shared subjects re-typed at the
    /// batch's chain position — so an expiring batch seeds maintenance
    /// with a subject-local retraction set and the two-level planner may
    /// sub-split it by subject hash. (The regular [`batch`] includes a
    /// per-batch `trans` leaf link, whose retraction correctly
    /// disqualifies sub-splitting.)
    pub fn membership_batch(p: &FamilyParams, i: u64) -> Vec<Triple> {
        (0..p.batch)
            .map(move |k| {
                let inst = NodeId(3_000_000 + i * p.batch + k);
                Triple::new(inst, is_pred(0), class(0, 0))
            })
            .chain((0..p.shared).map(move |s| {
                Triple::new(shared_subj(0, s), is_pred(0), class(0, i % (p.depth - 1)))
            }))
            .collect()
    }

    /// A family-ruleset reasoner whose deferred queue only flushes
    /// explicitly (no threshold, no deadline — timings measure the
    /// maintenance itself, not flusher scheduling), with partitioned
    /// flushes on or off.
    pub fn deferred_slider(families: u64, partitioning: bool) -> Slider {
        let config = SliderConfig::batch()
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None)
            .with_maintenance_partitioning(partitioning);
        Slider::new(Arc::new(Dictionary::new()), ruleset(families), config)
    }

    /// A deferred-flush reasoner with the two-level deletion planner at
    /// `subsplit` subject buckets (1 = the single-pass baseline of the
    /// sub-split ablation).
    pub fn subsplit_slider(families: u64, subsplit: usize) -> Slider {
        let config = SliderConfig::batch()
            .with_maintenance_batch(usize::MAX)
            .with_maintenance_max_age(None)
            .with_deletion_subsplit(subsplit);
        Slider::new(Arc::new(Dictionary::new()), ruleset(families), config)
    }
}

/// Machine-readable benchmark trajectories: every bench bin can emit a
/// `BENCH_*.json` file (workload shape, configuration, one entry per
/// measured cell with its best-of-N timings) so successive runs of the
/// same bin are comparable across commits — the start of the
/// bench-trajectory record the roadmap asks for.
///
/// The format is deliberately flat — one object with `bench`, `workload`,
/// `best_of`, a string-valued `config` map, and a `cells` array whose
/// entries carry a `label`, a string-valued `params` map and a
/// float-valued `metrics` map — so a few lines of any plotting script can
/// consume it without a schema.
pub mod report {
    use std::fmt::Write as _;

    /// One measured cell: a labelled point in the bench's sweep.
    #[derive(Debug, Clone, Default)]
    pub struct Cell {
        label: String,
        params: Vec<(String, String)>,
        metrics: Vec<(String, f64)>,
    }

    impl Cell {
        /// A cell named `label` (e.g. `"sharded/2-producers"`).
        pub fn new(label: impl Into<String>) -> Self {
            Cell {
                label: label.into(),
                ..Cell::default()
            }
        }

        /// Attaches a sweep parameter (stringified).
        pub fn param(mut self, key: &str, value: impl std::fmt::Display) -> Self {
            self.params.push((key.to_owned(), value.to_string()));
            self
        }

        /// Attaches a measurement. Non-finite values are recorded as 0
        /// (JSON has no NaN/Inf).
        pub fn metric(mut self, key: &str, value: f64) -> Self {
            let value = if value.is_finite() { value } else { 0.0 };
            self.metrics.push((key.to_owned(), value));
            self
        }
    }

    /// A whole bench run: workload description, config, measured cells.
    #[derive(Debug, Clone)]
    pub struct BenchReport {
        bench: String,
        workload: String,
        best_of: usize,
        config: Vec<(String, String)>,
        cells: Vec<Cell>,
    }

    impl BenchReport {
        /// A report for bench `bench` over `workload` (human-readable
        /// shape summary).
        pub fn new(bench: impl Into<String>, workload: impl Into<String>) -> Self {
            BenchReport {
                bench: bench.into(),
                workload: workload.into(),
                best_of: 1,
                config: Vec::new(),
                cells: Vec::new(),
            }
        }

        /// Records that each cell's timing is the best of `n` runs.
        pub fn best_of(mut self, n: usize) -> Self {
            self.best_of = n;
            self
        }

        /// Attaches a configuration key (stringified).
        pub fn config(mut self, key: &str, value: impl std::fmt::Display) -> Self {
            self.config.push((key.to_owned(), value.to_string()));
            self
        }

        /// Appends a measured cell.
        pub fn push(&mut self, cell: Cell) {
            self.cells.push(cell);
        }

        /// Serialises the report (flat JSON, no external dependencies).
        pub fn to_json(&self) -> String {
            fn escape(s: &str) -> String {
                let mut out = String::with_capacity(s.len());
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out
            }
            fn string_map(pairs: &[(String, String)]) -> String {
                let entries: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!(r#""{}":"{}""#, escape(k), escape(v)))
                    .collect();
                format!("{{{}}}", entries.join(","))
            }
            let cells: Vec<String> = self
                .cells
                .iter()
                .map(|cell| {
                    let metrics: Vec<String> = cell
                        .metrics
                        .iter()
                        .map(|(k, v)| format!(r#""{}":{:.6}"#, escape(k), v))
                        .collect();
                    format!(
                        r#"{{"label":"{}","params":{},"metrics":{{{}}}}}"#,
                        escape(&cell.label),
                        string_map(&cell.params),
                        metrics.join(",")
                    )
                })
                .collect();
            format!(
                r#"{{"bench":"{}","workload":"{}","best_of":{},"config":{},"cells":[{}]}}"#,
                escape(&self.bench),
                escape(&self.workload),
                self.best_of,
                string_map(&self.config),
                cells.join(",")
            )
        }

        /// Writes the report to `path` and prints where it went.
        pub fn write(&self, path: &str) -> std::io::Result<()> {
            std::fs::write(path, self.to_json())?;
            println!("bench trajectory written to {path}");
            Ok(())
        }
    }

    /// Scans the process arguments for `--json <path>`, ignoring anything
    /// else (cargo appends `--bench` when running criterion benches, so
    /// the strict [`parse_bench_args`](crate::parse_bench_args) would
    /// reject the invocation). Used by the criterion benches' custom
    /// harness mains to decide whether to emit a report trajectory.
    pub fn json_arg() -> Option<String> {
        json_arg_in(std::env::args().skip(1))
    }

    fn json_arg_in(args: impl Iterator<Item = String>) -> Option<String> {
        let mut args = args;
        while let Some(arg) = args.next() {
            if arg == "--json" {
                return args.next();
            }
        }
        None
    }

    #[cfg(test)]
    mod tests {
        use super::json_arg_in;

        #[test]
        fn json_arg_tolerates_cargo_bench_flags() {
            let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
            assert_eq!(
                json_arg_in(args(&["--bench", "--json", "out.json"]).into_iter()),
                Some("out.json".to_string())
            );
            assert_eq!(json_arg_in(args(&["--bench"]).into_iter()), None);
            assert_eq!(json_arg_in(args(&["--json"]).into_iter()), None);
        }
    }
}

/// Parses the shared bench CLI shape: `[--smoke] [--json <path>]`.
/// Exits with usage on anything else. Returns `(smoke, json_path)`.
pub fn parse_bench_args(usage: &str) -> (bool, Option<String>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => match it.next() {
                Some(path) => json = Some(path),
                None => {
                    eprintln!("usage: {usage}");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("usage: {usage}");
                std::process::exit(2);
            }
        }
    }
    (smoke, json)
}

/// Parses the extended bench CLI shape used by the `retraction` bin:
/// `[--smoke] [--json <path>] [--subsplit <n>]`. Exits with usage on
/// anything else. `subsplit` defaults to `default_subsplit` and is
/// clamped to ≥ 1.
pub fn parse_bench_args_subsplit(
    usage: &str,
    default_subsplit: usize,
) -> (bool, Option<String>, usize) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json = None;
    let mut subsplit = default_subsplit;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => match it.next() {
                Some(path) => json = Some(path),
                None => {
                    eprintln!("usage: {usage}");
                    std::process::exit(2);
                }
            },
            "--subsplit" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => subsplit = n.max(1),
                None => {
                    eprintln!("usage: {usage}");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("usage: {usage}");
                std::process::exit(2);
            }
        }
    }
    (smoke, json, subsplit)
}

/// Reads the benchmark scale factor from `SLIDER_SCALE` (default
/// `default_scale`).
pub fn env_scale(default_scale: f64) -> f64 {
    std::env::var("SLIDER_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(default_scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_run_end_to_end() {
        let text = generate_ntriples(PaperOntology::SubClassOf10, 1.0);
        let cmp = compare(&text, Fragment::RhoDf, &SliderConfig::default());
        assert_eq!(cmp.input, 19);
        // Table 1: 36 inferred for subClassOf10 under ρdf.
        assert_eq!(cmp.slider.inferred, 36);
        assert_eq!(cmp.baseline.inferred, 36);
    }

    #[test]
    fn engines_agree_on_closure_sizes() {
        for ont in [
            PaperOntology::Bsbm100k,
            PaperOntology::Wikipedia,
            PaperOntology::Wordnet,
        ] {
            let text = generate_ntriples(ont, 0.01);
            for fragment in [Fragment::RhoDf, Fragment::Rdfs] {
                let b = run_baseline(&text, fragment);
                let s = run_slider(&text, fragment, SliderConfig::default());
                assert_eq!(b.input, s.input, "{ont} {fragment} input");
                assert_eq!(b.inferred, s.inferred, "{ont} {fragment} inferred");
            }
        }
    }

    #[test]
    fn wordnet_infers_nothing_under_rho_df() {
        let text = generate_ntriples(PaperOntology::Wordnet, 0.01);
        let r = run_slider(&text, Fragment::RhoDf, SliderConfig::default());
        assert_eq!(r.inferred, 0);
    }

    #[test]
    fn gain_formula_matches_paper_example() {
        // BSBM_100k ρdf row: 9.907s baseline, 4.636s slider → 113.69 %.
        let cmp = Comparison {
            input: 0,
            baseline: RunResult {
                input: 0,
                inferred: 0,
                elapsed: Duration::from_secs_f64(9.907),
            },
            slider: RunResult {
                input: 0,
                inferred: 0,
                elapsed: Duration::from_secs_f64(4.636),
            },
        };
        assert!(
            (cmp.gain_percent() - 113.69).abs() < 0.05,
            "{}",
            cmp.gain_percent()
        );
    }

    #[test]
    fn table_and_csv_render() {
        let row = table1_row(PaperOntology::SubClassOf10, 1.0, &SliderConfig::default());
        let table = render_table(std::slice::from_ref(&row));
        assert!(table.contains("subClassOf10"));
        assert!(table.contains("average gain"));
        let csv = render_csv(std::slice::from_ref(&row));
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.contains("subClassOf10,rho-df,slider"));
    }

    #[test]
    fn bench_report_json_is_flat_and_balanced() {
        let mut report = report::BenchReport::new("ingest", "4 families × depth 5")
            .best_of(3)
            .config("shards", 16)
            .config("note", "quote \" and\nnewline");
        report.push(
            report::Cell::new("sharded/2-producers")
                .param("producers", 2)
                .metric("elapsed_ms", 12.5)
                .metric("throughput", f64::NAN),
        );
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Balanced delimiter quotes (escaped quotes excluded).
        assert_eq!(
            json.replace("\\\"", "").matches('"').count() % 2,
            0,
            "{json}"
        );
        assert!(json.contains(r#""bench":"ingest""#));
        assert!(json.contains(r#""best_of":3"#));
        assert!(json.contains(r#""shards":"16""#));
        assert!(json.contains(r#""label":"sharded/2-producers""#));
        assert!(json.contains(r#""elapsed_ms":12.5"#));
        // Non-finite metrics are clamped, escapes round-trip.
        assert!(json.contains(r#""throughput":0.0"#));
        assert!(json.contains(r#"quote \" and\nnewline"#));
    }

    #[test]
    fn env_scale_parsing() {
        // Not setting the variable in-process (tests run in parallel);
        // exercise only the default path here.
        assert_eq!(env_scale(0.25), 0.25);
    }
}
