//! The `retraction` benchmark: sliding-window streaming with incremental
//! deletion (DRed) versus recompute-from-scratch, and **per-batch eager**
//! versus **coalesced** maintenance under a bursty time-based window.
//!
//! A fixed class taxonomy (subClassOf chains) stays resident while typed
//! instance batches stream through a sliding window on a *bursty* virtual
//! clock (geometric inter-arrival gaps): most arrivals are back-to-back,
//! and the arrival after a long pause expires a whole run of batches at
//! once. Three maintainers process the identical schedule:
//!
//! * **eager (per-batch DRed)** — every expiring batch pays its own
//!   overdelete/rederive cycle (`Slider::remove_triples`), exactly what a
//!   count-based window does per step;
//! * **coalesced** — expiring batches are deferred
//!   (`Slider::remove_deferred`) and each step with expiries ends in one
//!   `Slider::flush_maintenance`: a single DRed pass over the union;
//! * **recompute** — the closure of the surviving explicit set is rebuilt
//!   from scratch every step (`slider_baseline::RecomputeOracle`), what a
//!   monotone-additive reasoner is forced to do.
//!
//! ```text
//! cargo run --release -p slider-bench --bin retraction            # full size
//! cargo run --release -p slider-bench --bin retraction -- --smoke # CI smoke
//! ```
//!
//! `--smoke` runs a tiny workload and additionally cross-checks the eager
//! *and* coalesced stores against the oracle at every step — each
//! coalesced flush must leave the store exactly where N eager removals
//! would have — so CI both exercises the bench binary and re-verifies the
//! coalescing invariant end to end.

use slider_baseline::RecomputeOracle;
use slider_core::{Slider, SliderConfig};
use slider_model::vocab::{RDFS_DOMAIN, RDFS_SUB_CLASS_OF, RDF_TYPE};
use slider_model::{Dictionary, NodeId, Triple};
use slider_rules::Ruleset;
use slider_workloads::stream::{bursty_gaps, expirations};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Params {
    /// Depth of each subClassOf chain in the background taxonomy.
    depth: u64,
    /// Number of parallel chains.
    chains: u64,
    /// Instance-typing triples per stream batch.
    batch: u64,
    /// Shared subjects every batch observes (the overlapping downward
    /// closure — see [`batch`]).
    shared: u64,
    /// Window length, in bursty-clock ticks.
    window_ticks: u32,
    /// Stream steps to play.
    steps: u64,
    /// Cross-check every step against the oracle closure.
    verify: bool,
}

const SMOKE: Params = Params {
    depth: 8,
    chains: 3,
    batch: 40,
    shared: 10,
    window_ticks: 4,
    steps: 14,
    verify: true,
};

const FULL: Params = Params {
    depth: 24,
    chains: 8,
    batch: 300,
    shared: 1_000,
    window_ticks: 8,
    steps: 60,
    verify: false,
};

/// Geometric-gap continuation probability of the bursty virtual clock.
const CONTINUE_PROB: f64 = 0.6;
/// Seed of the bursty virtual clock (deterministic runs).
const SEED: u64 = 42;

fn class(c: u64, d: u64) -> NodeId {
    NodeId(10_000 + c * 1_000 + d)
}

/// Per-batch observation predicate (see [`batch`]).
fn obs_pred(i: u64) -> NodeId {
    NodeId(20_000 + i)
}

/// A subject observed by *every* batch.
fn shared_subj(s: u64) -> NodeId {
    NodeId(2_000_000 + s)
}

/// Background: `chains` subClassOf chains of `depth` classes each, plus a
/// domain axiom per observation predicate pointing its subjects at the
/// *same* leaf class — every live batch independently supports the shared
/// subjects' type chain.
fn taxonomy(p: &Params) -> Vec<Triple> {
    (0..p.chains)
        .flat_map(|c| {
            (0..p.depth - 1)
                .map(move |d| Triple::new(class(c, d), RDFS_SUB_CLASS_OF, class(c, d + 1)))
        })
        .chain((0..p.steps).map(|i| Triple::new(obs_pred(i), RDFS_DOMAIN, class(0, 0))))
        .collect()
}

/// Stream batch `i`: instances typed with the *leaf* class of a chain
/// (every arrival derives `depth − 1` superclass types per instance), plus
/// one observation of each **shared** subject through the batch's own
/// predicate. Via the domain axioms, every live batch independently
/// derives the same `shared × depth` type triples — so retracting one
/// batch overdeletes that *overlapping downward closure* and rederives it
/// from the still-live batches. Per-batch eager DRed repeats that
/// overdelete/rederive cycle for every expiring batch; one coalesced pass
/// over the union pays it once — exactly the sharing the scheduler
/// amortises.
fn batch(p: &Params, i: u64) -> Vec<Triple> {
    (0..p.batch)
        .map(|k| {
            let inst = NodeId(1_000_000 + i * p.batch + k);
            Triple::new(inst, RDF_TYPE, class((i + k) % p.chains, 0))
        })
        .chain((0..p.shared).map(|s| {
            Triple::new(
                shared_subj(s),
                obs_pred(i),
                NodeId(3_000_000 + i * 10_000 + s),
            )
        }))
        .collect()
}

/// Bursty virtual arrival times: the cumulative sum of
/// [`bursty_gaps`] — the exact sampler behind `TimedStream::bursty`.
fn bursty_times(steps: u64, continue_prob: f64, seed: u64) -> Vec<Duration> {
    let tick = Duration::from_millis(1);
    let mut at = Duration::ZERO;
    bursty_gaps(steps as usize, tick, continue_prob, seed)
        .into_iter()
        .map(|gap| {
            at += gap;
            at
        })
        .collect()
}

fn fmt_ms(d: Duration) -> String {
    format!("{:8.2} ms", d.as_secs_f64() * 1e3)
}

fn batch_slider() -> Slider {
    // Deferred flushing is driven explicitly here; disable the deadline so
    // timings measure the maintenance itself, not flusher scheduling.
    let config = SliderConfig::batch()
        .with_maintenance_batch(usize::MAX)
        .with_maintenance_max_age(None);
    Slider::new(Arc::new(Dictionary::new()), Ruleset::rho_df(), config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a != "--smoke") {
        eprintln!("usage: retraction [--smoke]");
        std::process::exit(2);
    }
    let p = if smoke { SMOKE } else { FULL };

    let schema = taxonomy(&p);
    let batches: Vec<Vec<Triple>> = (0..p.steps).map(|i| batch(&p, i)).collect();
    // The bursty time-based window: per step, which batches expire.
    let times = bursty_times(p.steps, CONTINUE_PROB, SEED);
    let window = Duration::from_millis(p.window_ticks as u64);
    let expiry = expirations(&times, window);
    let expired_total: usize = expiry.iter().map(Vec::len).sum();
    let bulk_steps = expiry.iter().filter(|e| e.len() > 1).count();

    println!(
        "retraction bench: {} chains × depth {}, {} steps of {} instance triples, \
         {}-tick window over a bursty clock ({} expiries, {} bulk steps){}",
        p.chains,
        p.depth,
        p.steps,
        p.batch,
        p.window_ticks,
        expired_total,
        bulk_steps,
        if smoke { " [smoke]" } else { "" }
    );

    // --- eager: one DRed run per expiring batch ------------------------
    let eager = batch_slider();
    eager.materialize(&schema);
    // --- coalesced: defer expiring batches, one flush per step ---------
    let coalesced = batch_slider();
    coalesced.materialize(&schema);
    // --- recompute baseline --------------------------------------------
    let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
    oracle.add(&schema);

    let mut eager_elapsed = Duration::ZERO;
    let mut coalesced_elapsed = Duration::ZERO;
    let mut oracle_elapsed = Duration::ZERO;
    for (i, arriving) in batches.iter().enumerate() {
        let expiring = &expiry[i];

        let start = Instant::now();
        eager.add_triples(arriving);
        for &j in expiring {
            eager.remove_triples(&batches[j]);
        }
        eager.wait_idle();
        eager_elapsed += start.elapsed();

        let start = Instant::now();
        coalesced.add_triples(arriving);
        for &j in expiring {
            coalesced.remove_deferred(&batches[j]);
        }
        if !expiring.is_empty() {
            coalesced.flush_maintenance();
        }
        coalesced.wait_idle();
        coalesced_elapsed += start.elapsed();

        let start = Instant::now();
        oracle.add(arriving);
        for &j in expiring {
            oracle.remove(&batches[j]);
        }
        let closure = oracle.closure();
        oracle_elapsed += start.elapsed();

        if p.verify {
            let expected = closure.to_sorted_vec();
            assert_eq!(
                eager.store().to_sorted_vec(),
                expected,
                "eager DRed diverged from recompute at step {i}"
            );
            // The coalescing invariant: one flush over the union must land
            // exactly where the per-batch runs did.
            assert_eq!(
                coalesced.store().to_sorted_vec(),
                expected,
                "coalesced DRed diverged from recompute at step {i}"
            );
        }
    }

    let eager_stats = eager.stats();
    let co_stats = coalesced.stats();
    println!(
        "  eager (per-batch DRed): {} total, {} / step  ({} maintenance runs)",
        fmt_ms(eager_elapsed),
        fmt_ms(eager_elapsed / p.steps as u32),
        eager_stats.removal_runs
    );
    println!(
        "  coalesced DRed:         {} total, {} / step  ({} coalesced runs)",
        fmt_ms(coalesced_elapsed),
        fmt_ms(coalesced_elapsed / p.steps as u32),
        co_stats.coalesced_runs
    );
    println!(
        "  recompute baseline:     {} total, {} / step",
        fmt_ms(oracle_elapsed),
        fmt_ms(oracle_elapsed / p.steps as u32)
    );
    println!(
        "  coalesced vs eager: {:.2}x   coalesced vs recompute: {:.2}x   (store: {} triples, \
         {} explicit; {} retracted, {} overdeleted, {} rederived)",
        eager_elapsed.as_secs_f64() / coalesced_elapsed.as_secs_f64().max(1e-9),
        oracle_elapsed.as_secs_f64() / coalesced_elapsed.as_secs_f64().max(1e-9),
        co_stats.store_size,
        co_stats.store.explicit,
        co_stats.retracted,
        co_stats.overdeleted,
        co_stats.rederived
    );
    assert_eq!(
        eager_stats.retracted, co_stats.retracted,
        "both maintainers retracted the same assertions"
    );
    assert!(
        co_stats.coalesced_runs < eager_stats.removal_runs,
        "coalescing must batch runs: {} coalesced vs {} eager",
        co_stats.coalesced_runs,
        eager_stats.removal_runs
    );
    if p.verify {
        println!("  verified: eager and coalesced stores == recompute closure at every step");
    }
}
