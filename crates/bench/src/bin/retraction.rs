//! The `retraction` benchmark: sliding-window streaming with incremental
//! deletion (DRed) versus recompute-from-scratch.
//!
//! A fixed class taxonomy (subClassOf chains) stays resident while typed
//! instance batches stream through a count-based sliding window: each step
//! adds the arriving batch and retracts the batch expiring out of the
//! window. Slider maintains the materialisation with DRed
//! (`Slider::remove_triples`); the baseline recomputes the closure of the
//! surviving explicit set from scratch every step
//! (`slider_baseline::RecomputeOracle`) — exactly what a monotone-additive
//! reasoner is forced to do.
//!
//! ```text
//! cargo run --release -p slider-bench --bin retraction            # full size
//! cargo run --release -p slider-bench --bin retraction -- --smoke # CI smoke
//! ```
//!
//! `--smoke` runs a tiny workload and additionally cross-checks every
//! step's store against the oracle, so CI both exercises the bench binary
//! and re-verifies DRed end to end.

use slider_baseline::RecomputeOracle;
use slider_core::{Slider, SliderConfig};
use slider_model::vocab::{RDFS_SUB_CLASS_OF, RDF_TYPE};
use slider_model::{Dictionary, NodeId, Triple};
use slider_rules::Ruleset;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Params {
    /// Depth of each subClassOf chain in the background taxonomy.
    depth: u64,
    /// Number of parallel chains.
    chains: u64,
    /// Instance-typing triples per stream batch.
    batch: u64,
    /// Window size, in batches.
    window: usize,
    /// Stream steps to play.
    steps: u64,
    /// Cross-check every step against the oracle closure.
    verify: bool,
}

const SMOKE: Params = Params {
    depth: 8,
    chains: 3,
    batch: 40,
    window: 4,
    steps: 14,
    verify: true,
};

const FULL: Params = Params {
    depth: 24,
    chains: 8,
    batch: 500,
    window: 8,
    steps: 60,
    verify: false,
};

/// Background: `chains` subClassOf chains of `depth` classes each.
fn taxonomy(p: &Params) -> Vec<Triple> {
    let class = |c: u64, d: u64| NodeId(10_000 + c * 1_000 + d);
    (0..p.chains)
        .flat_map(|c| {
            (0..p.depth - 1)
                .map(move |d| Triple::new(class(c, d), RDFS_SUB_CLASS_OF, class(c, d + 1)))
        })
        .collect()
}

/// Stream batch `i`: instances typed with the *leaf* class of a chain, so
/// every arrival derives `depth − 1` superclass types per instance.
fn batch(p: &Params, i: u64) -> Vec<Triple> {
    let class = |c: u64, d: u64| NodeId(10_000 + c * 1_000 + d);
    (0..p.batch)
        .map(|k| {
            let inst = NodeId(1_000_000 + i * p.batch + k);
            Triple::new(inst, RDF_TYPE, class((i + k) % p.chains, 0))
        })
        .collect()
}

fn fmt_ms(d: Duration) -> String {
    format!("{:8.2} ms", d.as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a != "--smoke") {
        eprintln!("usage: retraction [--smoke]");
        std::process::exit(2);
    }
    let p = if smoke { SMOKE } else { FULL };

    let schema = taxonomy(&p);
    let batches: Vec<Vec<Triple>> = (0..p.steps).map(|i| batch(&p, i)).collect();

    println!(
        "retraction bench: {} chains × depth {}, {} steps of {} instance triples, window {}{}",
        p.chains,
        p.depth,
        p.steps,
        p.batch,
        p.window,
        if smoke { " [smoke]" } else { "" }
    );

    // --- Slider: incremental DRed maintenance --------------------------
    let slider = Slider::new(
        Arc::new(Dictionary::new()),
        Ruleset::rho_df(),
        SliderConfig::batch(),
    );
    let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
    slider.materialize(&schema);
    oracle.add(&schema);

    let mut slider_elapsed = Duration::ZERO;
    let mut oracle_elapsed = Duration::ZERO;
    for (i, arriving) in batches.iter().enumerate() {
        let expiring = i.checked_sub(p.window).map(|j| &batches[j]);

        let start = Instant::now();
        slider.add_triples(arriving);
        if let Some(gone) = expiring {
            slider.remove_triples(gone);
        }
        slider.wait_idle();
        slider_elapsed += start.elapsed();

        let start = Instant::now();
        oracle.add(arriving);
        if let Some(gone) = expiring {
            oracle.remove(gone);
        }
        let closure = oracle.closure();
        oracle_elapsed += start.elapsed();

        if p.verify {
            assert_eq!(
                slider.store().to_sorted_vec(),
                closure.to_sorted_vec(),
                "DRed diverged from recompute at step {i}"
            );
        }
    }

    let stats = slider.stats();
    println!(
        "  slider (DRed):        {} total, {} / step",
        fmt_ms(slider_elapsed),
        fmt_ms(slider_elapsed / p.steps as u32)
    );
    println!(
        "  recompute baseline:   {} total, {} / step",
        fmt_ms(oracle_elapsed),
        fmt_ms(oracle_elapsed / p.steps as u32)
    );
    println!(
        "  gain: {:.2}x   (store: {} triples, {} explicit; {} retracted, {} overdeleted, {} rederived)",
        oracle_elapsed.as_secs_f64() / slider_elapsed.as_secs_f64().max(1e-9),
        stats.store_size,
        stats.store.explicit,
        stats.retracted,
        stats.overdeleted,
        stats.rederived
    );
    if p.verify {
        println!("  verified: store == recompute closure at every step");
    }
}
