//! The `retraction` benchmark: sliding-window streaming with incremental
//! deletion (DRed), comparing **four** maintainers on an identical bursty
//! multi-predicate schedule:
//!
//! * **eager (per-batch DRed)** — every expiring batch pays its own
//!   overdelete/rederive cycle (`Slider::remove_triples`), exactly what a
//!   count-based window does per step;
//! * **coalesced (single pass)** — expiring batches are deferred
//!   (`Slider::remove_deferred`) and each step with expiries ends in one
//!   `Slider::flush_maintenance` running a single sequential DRed pass
//!   over the union (PR 3's mode, pinned via
//!   `SliderConfig::maintenance_partitioning(false)`);
//! * **partitioned** — same deferrals, but the flush buckets the pending
//!   set by dependency-graph partition and runs one DRed pass per
//!   partition in parallel on the worker pool;
//! * **recompute** — the closure of the surviving explicit set is rebuilt
//!   from scratch every step (`slider_baseline::RecomputeOracle`).
//!
//! The workload is built to have **disjoint downward closures**: several
//! independent rule *families* (a [`Transitive`](slider_rules::Transitive)
//! hierarchy plus a [`Subsumption`](slider_rules::Subsumption) membership
//! rule per family, disjoint vocabularies — see [`slider_bench::family`]), so
//! the dependency graph reports one maintenance partition per family and a
//! flush spanning families fans out. Within each family, every live batch
//! types the same shared subjects at its own per-batch leaf class, so
//! expiring batches share a downward closure that coalescing amortises —
//! the same shape PR 3's bench used, minus the universal `PRP-*` rules
//! (which would collapse all partitions into one).
//!
//! A second phase replays the same bursty window over a **single-family
//! membership-burst** workload (purely `is`-typed batches — see
//! [`slider_bench::family::membership_batch`]), where the family-level
//! planner has nothing to parallelise: it compares the two-level subject
//! sub-split (`--subsplit N`, PR 8) against the `deletion_subsplit = 1`
//! single-pass ablation on wall-clock and on the `coordinator_work`
//! counter (triples the coordinator's own unit had to maintain).
//!
//! ```text
//! cargo run --release -p slider-bench --bin retraction            # full size
//! cargo run --release -p slider-bench --bin retraction -- --smoke # CI smoke
//! cargo run --release -p slider-bench --bin retraction -- --smoke --subsplit 4
//! ```
//!
//! `--smoke` runs a tiny workload and additionally cross-checks all
//! incremental maintainers (both phases) against the oracle **at every
//! step** — and the multi-family schedule deliberately **re-asserts
//! triples whose retraction is still pending** before some flushes,
//! verifying the cancellation semantics (the re-asserted fact and its
//! consequences must survive the flush) in eager, single-pass and
//! partitioned modes alike. `--json <path>` writes the machine-readable
//! trajectory (`slider_bench::report`) with subsplit-labelled cells.

use slider_baseline::RecomputeOracle;
use slider_bench::family::{self, FamilyParams};
use slider_bench::parse_bench_args_subsplit;
use slider_bench::report::{BenchReport, Cell};
use slider_model::Triple;
use slider_workloads::stream::{bursty_gaps, expirations};
use std::time::{Duration, Instant};

struct Params {
    /// Workload shape: families, chain depth, batch and shared-subject
    /// sizes (see [`slider_bench::family`] — the same generators back the
    /// criterion `retraction/partitioned_flush` group).
    shape: FamilyParams,
    /// Window length, in bursty-clock ticks.
    window_ticks: u32,
    /// Stream steps to play.
    steps: u64,
    /// Cross-check every step against the oracle closure.
    verify: bool,
}

const SMOKE: Params = Params {
    shape: FamilyParams {
        families: 3,
        depth: 6,
        batch: 15,
        shared: 6,
    },
    window_ticks: 4,
    steps: 12,
    verify: true,
};

const FULL: Params = Params {
    shape: FamilyParams {
        families: 8,
        depth: 16,
        batch: 120,
        shared: 300,
    },
    window_ticks: 8,
    steps: 48,
    verify: false,
};

/// Geometric-gap continuation probability of the bursty virtual clock.
const CONTINUE_PROB: f64 = 0.6;
/// Seed of the bursty virtual clock (deterministic runs).
const SEED: u64 = 42;

/// Bursty virtual arrival times: the cumulative sum of [`bursty_gaps`] —
/// the exact sampler behind `TimedStream::bursty`.
fn bursty_times(steps: u64, continue_prob: f64, seed: u64) -> Vec<Duration> {
    let tick = Duration::from_millis(1);
    let mut at = Duration::ZERO;
    bursty_gaps(steps as usize, tick, continue_prob, seed)
        .into_iter()
        .map(|gap| {
            at += gap;
            at
        })
        .collect()
}

/// Triples of `from` re-asserted while their retraction is pending at step
/// `i` (smoke only): a few instances of the batch's first family.
fn re_assertions(p: &Params, from: &[Triple], i: u64) -> Vec<Triple> {
    if !p.verify || i % 2 == 0 {
        return Vec::new();
    }
    from.iter().copied().take(3).collect()
}

fn fmt_ms(d: Duration) -> String {
    format!("{:8.2} ms", d.as_secs_f64() * 1e3)
}

fn main() {
    let (smoke, json_path, subsplit) =
        parse_bench_args_subsplit("retraction [--smoke] [--json <path>] [--subsplit <n>]", 4);
    let p = if smoke { SMOKE } else { FULL };

    let schema = family::taxonomy(&p.shape);
    let batches: Vec<Vec<Triple>> = (0..p.steps).map(|i| family::batch(&p.shape, i)).collect();
    // The bursty time-based window: per step, which batches expire.
    let times = bursty_times(p.steps, CONTINUE_PROB, SEED);
    let window = Duration::from_millis(p.window_ticks as u64);
    let expiry = expirations(&times, window);
    let expired_total: usize = expiry.iter().map(Vec::len).sum();
    let bulk_steps = expiry.iter().filter(|e| e.len() > 1).count();

    println!(
        "retraction bench: {} families × depth {}, {} steps of {} membership triples/family, \
         {}-tick window over a bursty clock ({} expiries, {} bulk steps){}",
        p.shape.families,
        p.shape.depth,
        p.steps,
        p.shape.batch + p.shape.shared,
        p.window_ticks,
        expired_total,
        bulk_steps,
        if smoke {
            " [smoke + re-assertions]"
        } else {
            ""
        }
    );

    // --- eager: one DRed run per expiring batch ------------------------
    let eager = family::deferred_slider(p.shape.families, false);
    eager.materialize(&schema);
    // --- coalesced single pass (PR 3's mode) ---------------------------
    let coalesced = family::deferred_slider(p.shape.families, false);
    coalesced.materialize(&schema);
    // --- partitioned parallel flushes ----------------------------------
    let partitioned = family::deferred_slider(p.shape.families, true);
    partitioned.materialize(&schema);
    assert_eq!(
        partitioned.maintenance_partitions(),
        p.shape.families as usize,
        "one maintenance partition per family"
    );
    // --- recompute baseline --------------------------------------------
    let mut oracle = RecomputeOracle::new(family::ruleset(p.shape.families));
    oracle.add(&schema);

    let mut eager_elapsed = Duration::ZERO;
    let mut coalesced_elapsed = Duration::ZERO;
    let mut partitioned_elapsed = Duration::ZERO;
    let mut oracle_elapsed = Duration::ZERO;
    for (i, arriving) in batches.iter().enumerate() {
        let expiring = &expiry[i];
        // In smoke mode, some steps re-assert a few triples of the first
        // expiring batch *while their retraction is pending* — the flush
        // must leave them (and their consequences) in place.
        let readd: Vec<Triple> = expiring
            .first()
            .map(|&j| re_assertions(&p, &batches[j], i as u64))
            .unwrap_or_default();

        let start = Instant::now();
        eager.add_triples(arriving);
        for &j in expiring {
            eager.remove_triples(&batches[j]);
        }
        // Eager equivalent of the cancellation: retract, then re-assert.
        eager.add_triples(&readd);
        eager.wait_idle();
        eager_elapsed += start.elapsed();

        for (slider, elapsed) in [
            (&coalesced, &mut coalesced_elapsed),
            (&partitioned, &mut partitioned_elapsed),
        ] {
            let start = Instant::now();
            slider.add_triples(arriving);
            for &j in expiring {
                slider.remove_deferred(&batches[j]);
            }
            // The re-assertion lands while the retractions are pending and
            // must cancel them.
            slider.add_triples(&readd);
            if !expiring.is_empty() {
                slider.flush_maintenance();
            }
            slider.wait_idle();
            *elapsed += start.elapsed();
        }

        let start = Instant::now();
        oracle.add(arriving);
        for &j in expiring {
            oracle.remove(&batches[j]);
        }
        oracle.add(&readd);
        let closure = oracle.closure();
        oracle_elapsed += start.elapsed();

        if p.verify {
            let expected = closure.to_sorted_vec();
            assert_eq!(
                eager.store().to_sorted_vec(),
                expected,
                "eager DRed diverged from recompute at step {i}"
            );
            assert_eq!(
                coalesced.store().to_sorted_vec(),
                expected,
                "single-pass coalesced DRed diverged from recompute at step {i}"
            );
            assert_eq!(
                partitioned.store().to_sorted_vec(),
                expected,
                "partitioned DRed diverged from recompute at step {i}"
            );
        }
    }

    let eager_stats = eager.stats();
    let co_stats = coalesced.stats();
    let part_stats = partitioned.stats();
    println!(
        "  eager (per-batch DRed):  {} total, {} / step  ({} maintenance runs)",
        fmt_ms(eager_elapsed),
        fmt_ms(eager_elapsed / p.steps as u32),
        eager_stats.removal_runs
    );
    println!(
        "  coalesced (single pass): {} total, {} / step  ({} coalesced runs)",
        fmt_ms(coalesced_elapsed),
        fmt_ms(coalesced_elapsed / p.steps as u32),
        co_stats.coalesced_runs
    );
    println!(
        "  partitioned flushes:     {} total, {} / step  ({} runs, {} partitioned)",
        fmt_ms(partitioned_elapsed),
        fmt_ms(partitioned_elapsed / p.steps as u32),
        part_stats.coalesced_runs,
        part_stats.partitioned_runs
    );
    println!(
        "  recompute baseline:      {} total, {} / step",
        fmt_ms(oracle_elapsed),
        fmt_ms(oracle_elapsed / p.steps as u32)
    );
    println!(
        "  partitioned vs single-pass: {:.2}x   coalesced vs eager: {:.2}x   \
         partitioned vs recompute: {:.2}x",
        coalesced_elapsed.as_secs_f64() / partitioned_elapsed.as_secs_f64().max(1e-9),
        eager_elapsed.as_secs_f64() / coalesced_elapsed.as_secs_f64().max(1e-9),
        oracle_elapsed.as_secs_f64() / partitioned_elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "  (store: {} triples, {} explicit; partitioned: {} retracted, {} overdeleted, \
         {} rederived, {} cancelled)",
        part_stats.store_size,
        part_stats.store.explicit,
        part_stats.retracted,
        part_stats.overdeleted,
        part_stats.rederived,
        part_stats.cancelled_removals
    );
    assert_eq!(
        co_stats.retracted, part_stats.retracted,
        "both coalesced maintainers retracted the same assertions"
    );
    assert!(
        co_stats.coalesced_runs < eager_stats.removal_runs,
        "coalescing must batch runs: {} coalesced vs {} eager",
        co_stats.coalesced_runs,
        eager_stats.removal_runs
    );
    assert!(
        part_stats.partitioned_runs > 0,
        "no flush split into partitions"
    );
    assert_eq!(
        co_stats.partitioned_runs, 0,
        "the single-pass maintainer must not partition"
    );
    if p.verify {
        assert!(
            part_stats.cancelled_removals > 0,
            "the smoke schedule must exercise re-assertion-while-pending"
        );
        println!(
            "  verified: eager, single-pass and partitioned stores == recompute closure at \
             every step (incl. {} re-assertions cancelling pending retractions)",
            part_stats.cancelled_removals
        );
    }

    // --- single-family membership bursts: the subject sub-split phase --
    // One family = one maintenance partition: the family-level planner
    // has nothing to fan out, so any parallelism must come from the
    // two-level subject sub-split. Batches are purely `is`-typed
    // (subject-local), so every expiry qualifies for the split plan.
    let sub_shape = FamilyParams {
        families: 1,
        ..p.shape
    };
    println!(
        "single-family membership bursts: depth {}, {} steps of {} is-triples, \
         sub-split width {} vs single pass",
        sub_shape.depth,
        p.steps,
        sub_shape.batch + sub_shape.shared,
        subsplit
    );
    let sub_batches: Vec<Vec<Triple>> = (0..p.steps)
        .map(|i| family::membership_batch(&sub_shape, i))
        .collect();
    let sub_taxonomy = family::taxonomy(&sub_shape);
    let single = family::subsplit_slider(1, 1);
    let split = family::subsplit_slider(1, subsplit);
    single.materialize(&sub_taxonomy);
    split.materialize(&sub_taxonomy);
    let mut sub_oracle = RecomputeOracle::new(family::ruleset(1));
    sub_oracle.add(&sub_taxonomy);

    let mut single_elapsed = Duration::ZERO;
    let mut split_elapsed = Duration::ZERO;
    for (i, arriving) in sub_batches.iter().enumerate() {
        let expiring = &expiry[i];
        for (slider, elapsed) in [(&single, &mut single_elapsed), (&split, &mut split_elapsed)] {
            let start = Instant::now();
            slider.add_triples(arriving);
            for &j in expiring {
                slider.remove_deferred(&sub_batches[j]);
            }
            if !expiring.is_empty() {
                slider.flush_maintenance();
            }
            slider.wait_idle();
            *elapsed += start.elapsed();
        }
        sub_oracle.add(arriving);
        for &j in expiring {
            sub_oracle.remove(&sub_batches[j]);
        }
        if p.verify {
            let expected = sub_oracle.closure().to_sorted_vec();
            assert_eq!(
                single.store().to_sorted_vec(),
                expected,
                "single-pass (subsplit=1) diverged from recompute at step {i}"
            );
            assert_eq!(
                split.store().to_sorted_vec(),
                expected,
                "sub-split (subsplit={subsplit}) diverged from recompute at step {i}"
            );
        }
    }

    let single_stats = single.stats();
    let split_stats = split.stats();
    println!(
        "  subsplit=1 (single pass): {} total, {} / step  ({} coordinator work)",
        fmt_ms(single_elapsed),
        fmt_ms(single_elapsed / p.steps as u32),
        single_stats.coordinator_work
    );
    println!(
        "  subsplit={} (two-level):  {} total, {} / step  ({} coordinator work, \
         {} subpartitioned runs)",
        subsplit,
        fmt_ms(split_elapsed),
        fmt_ms(split_elapsed / p.steps as u32),
        split_stats.coordinator_work,
        split_stats.subpartitioned_runs
    );
    assert_eq!(
        single_stats.retracted, split_stats.retracted,
        "both sub-split maintainers retracted the same assertions"
    );
    if subsplit >= 2 {
        assert!(
            split_stats.subpartitioned_runs > 0,
            "no membership flush sub-split by subject"
        );
        assert!(
            split_stats.coordinator_work < single_stats.coordinator_work,
            "sub-splitting did not shed coordinator work: {} vs {}",
            split_stats.coordinator_work,
            single_stats.coordinator_work
        );
        println!(
            "  coordinator-work reduction: {:.2}x ({} -> {})",
            single_stats.coordinator_work as f64 / split_stats.coordinator_work.max(1) as f64,
            single_stats.coordinator_work,
            split_stats.coordinator_work
        );
    }
    if p.verify {
        println!(
            "  verified: subsplit=1 and subsplit={subsplit} stores == recompute closure \
             at every step"
        );
    }

    if let Some(path) = json_path {
        let mut report = BenchReport::new(
            "retraction",
            format!(
                "{} families × depth {}, {} steps × {} triples/family, {}-tick window \
                 ({} expiries, {} bulk steps)",
                p.shape.families,
                p.shape.depth,
                p.steps,
                p.shape.batch + p.shape.shared,
                p.window_ticks,
                expired_total,
                bulk_steps
            ),
        )
        .config("smoke", smoke)
        .config("families", p.shape.families)
        .config("steps", p.steps)
        .config("window_ticks", p.window_ticks)
        .config("subsplit", subsplit);
        let per_step = |total: Duration| total.as_secs_f64() * 1e3 / p.steps as f64;
        for (label, elapsed, runs) in [
            ("eager", eager_elapsed, eager_stats.removal_runs),
            ("coalesced", coalesced_elapsed, co_stats.coalesced_runs),
            (
                "partitioned",
                partitioned_elapsed,
                part_stats.coalesced_runs,
            ),
            ("recompute", oracle_elapsed, 0),
        ] {
            report.push(
                Cell::new(format!("maintainer/{label}"))
                    .param("maintainer", label)
                    .metric("elapsed_ms", elapsed.as_secs_f64() * 1e3)
                    .metric("per_step_ms", per_step(elapsed))
                    .metric("maintenance_runs", runs as f64),
            );
        }
        // The single-family sub-split phase: one cell per planner width.
        let split_label = format!("subsplit/{subsplit}");
        for (label, width, elapsed, stats) in [
            ("subsplit/1", 1usize, single_elapsed, &single_stats),
            (split_label.as_str(), subsplit, split_elapsed, &split_stats),
        ] {
            report.push(
                Cell::new(label)
                    .param("subsplit", width)
                    .metric("elapsed_ms", elapsed.as_secs_f64() * 1e3)
                    .metric("per_step_ms", per_step(elapsed))
                    .metric("coordinator_work", stats.coordinator_work as f64)
                    .metric("subpartitioned_runs", stats.subpartitioned_runs as f64),
            );
        }
        report.write(&path).expect("bench trajectory written");
    }
}
