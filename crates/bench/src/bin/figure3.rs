//! Regenerates **Figure 3** of the paper: inference-time comparison between
//! Slider and the batch baseline on ρdf and RDFS, for every ontology except
//! BSBM_5M ("omitted … for the sake of clarity", §3).
//!
//! Prints an ASCII bar chart per fragment plus a CSV of the series.
//!
//! ```text
//! cargo run --release -p slider-bench --bin figure3 -- [--scale F] [--csv PATH]
//! ```

use slider_bench::{env_scale, table1_row, TableRow};
use slider_core::SliderConfig;
use slider_workloads::{PaperOntology, ONTOLOGIES};
use std::time::Duration;

fn bar(d: Duration, unit: Duration) -> String {
    let n = (d.as_secs_f64() / unit.as_secs_f64()).round() as usize;
    "█".repeat(n.clamp(1, 70))
}

fn render_series(
    rows: &[TableRow],
    fragment_name: &str,
    pick: impl Fn(&TableRow) -> (Duration, Duration),
) {
    println!("## {fragment_name} (lower is better)");
    let max = rows
        .iter()
        .map(|r| {
            let (b, s) = pick(r);
            b.max(s)
        })
        .max()
        .unwrap_or(Duration::from_secs(1));
    let unit = max / 60;
    for row in rows {
        let (baseline, slider) = pick(row);
        println!(
            "{:<14} baseline {:>9} {}",
            row.ontology,
            format!("{:.3}s", baseline.as_secs_f64()),
            bar(baseline, unit)
        );
        println!(
            "{:<14} slider   {:>9} {}",
            "",
            format!("{:.3}s", slider.as_secs_f64()),
            bar(slider, unit)
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = env_scale(0.1);
    let mut csv_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                scale = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number")
            }
            "--csv" => csv_path = Some(iter.next().expect("--csv needs a path").clone()),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let config = SliderConfig::default();
    // Figure 3 omits BSBM_5M.
    let ontologies: Vec<PaperOntology> = ONTOLOGIES
        .iter()
        .copied()
        .filter(|o| *o != PaperOntology::Bsbm5M)
        .collect();

    let mut rows = Vec::new();
    for ontology in ontologies {
        eprintln!("running {ontology} …");
        rows.push(table1_row(ontology, scale, &config));
    }

    println!("# Figure 3 reproduction — inference time, scale {scale}\n");
    render_series(&rows, "rho-df", |r| {
        (r.rho_df.baseline.elapsed, r.rho_df.slider.elapsed)
    });
    render_series(&rows, "RDFS", |r| {
        (r.rdfs.baseline.elapsed, r.rdfs.slider.elapsed)
    });

    if let Some(path) = csv_path {
        let mut csv = String::from("ontology,fragment,baseline_seconds,slider_seconds\n");
        for row in &rows {
            csv.push_str(&format!(
                "{},rho-df,{:.6},{:.6}\n",
                row.ontology,
                row.rho_df.baseline.elapsed.as_secs_f64(),
                row.rho_df.slider.elapsed.as_secs_f64()
            ));
            csv.push_str(&format!(
                "{},RDFS,{:.6},{:.6}\n",
                row.ontology,
                row.rdfs.baseline.elapsed.as_secs_f64(),
                row.rdfs.slider.elapsed.as_secs_f64()
            ));
        }
        std::fs::write(&path, csv).expect("write CSV");
        eprintln!("wrote {path}");
    }
}
